// Quickstart: re-encrypt one secret from distributed service A to
// distributed service B without the plaintext ever existing outside the
// endpoints.
//
//   build/examples/quickstart
//
// Walks the whole pipeline: group setup, two (n=4, f=1) services with
// threshold keys, a byte-string secret encrypted under K_A, the asynchronous
// re-encryption protocol of the paper's Figure 4, and decryption of the
// resulting E_B(m) with B's (test-oracle) key.
#include <cstdio>
#include <string>

#include "core/system.hpp"

int main() {
  using namespace dblind;  // NOLINT

  // 1. Two distributed services over a shared safe-prime group. Each has
  //    n = 4 servers and tolerates f = 1 Byzantine compromise (3f + 1 = n).
  core::SystemOptions opts;
  opts.params = group::GroupParams::named(group::ParamId::kTest256);
  opts.a = {4, 1};
  opts.b = {4, 1};
  opts.seed = 2005;
  core::System system(std::move(opts));
  std::printf("services ready: |A| = %zu servers, |B| = %zu servers, group = %zu bits\n",
              system.a_cfg().n, system.b_cfg().n, system.config().params.bits());

  // 2. The secret: an arbitrary short byte string, encoded into the group
  //    and encrypted under A's service public key. Only E_A(m) is stored on
  //    A's servers — no server ever holds m.
  const std::string secret = "launch code: 0000";
  mpz::Bigint m = system.config().params.encode_bytes(
      {reinterpret_cast<const std::uint8_t*>(secret.data()), secret.size()});
  core::TransferId transfer = system.add_transfer(m);
  std::printf("secret stored at A as E_A(m): \"%s\"\n", secret.c_str());

  // 3. Run the asynchronous re-encryption protocol: B's servers jointly
  //    produce a blinding pair (E_A(rho), E_B(rho)); A threshold-decrypts
  //    the blinded ciphertext and un-blinds into E_B(m). The plaintext never
  //    materializes at any single server.
  if (!system.run_to_completion()) {
    std::puts("protocol did not complete");
    return 1;
  }
  const net::NetStats& stats = system.sim().stats();
  std::printf("re-encryption complete: %.1f ms virtual latency, %llu messages, %.1f KiB\n",
              stats.end_time / 1000.0, static_cast<unsigned long long>(stats.messages_sent),
              stats.bytes_sent / 1024.0);

  // 4. Every B server now holds a validated E_B(m). Decrypt one (with the
  //    test oracle standing in for B's threshold decryption) and check it.
  auto eb_m = system.result(transfer);
  if (!eb_m) {
    std::puts("no result at B");
    return 1;
  }
  mpz::Bigint decoded = system.oracle_decrypt_b(*eb_m);
  auto bytes = system.config().params.decode_bytes(decoded);
  std::string recovered(bytes.begin(), bytes.end());
  std::printf("B decrypts E_B(m) -> \"%s\"  [%s]\n", recovered.c_str(),
              recovered == secret ? "MATCH" : "MISMATCH");
  return recovered == secret ? 0 : 1;
}
