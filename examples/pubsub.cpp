// Publish/subscribe: the application that motivated the paper (§1).
//
//   build/examples/pubsub
//
// A trusted broker service (A) holds encrypted publications; a subscriber
// service (B) receives them by re-encryption. The example demonstrates the
// two step-flexibility optimizations on a realistic flow:
//
//   * blinding pairs for upcoming publications are produced by the
//     SUBSCRIBER side ahead of time (offloading + pre-computation), and
//   * when a publication finally arrives at the broker, only one threshold
//     decryption remains on the critical path.
#include <cstdio>
#include <string>
#include <vector>

#include "core/system.hpp"

int main() {
  using namespace dblind;  // NOLINT

  core::SystemOptions opts;
  opts.params = group::GroupParams::named(group::ParamId::kTest256);
  opts.seed = 99;
  opts.protocol.precompute_contributions = true;  // contributions before init
  core::System system(std::move(opts));

  // Three topics; their payloads are "published" (arrive at the broker) at
  // different times, while the blinding machinery runs from t = 0.
  struct Publication {
    std::string topic;
    std::string payload;
    net::Time published_at;
  };
  std::vector<Publication> pubs = {
      {"alerts/weather", "storm warning: flooding", 1'000'000},
      {"markets/fx", "EURUSD 1.0842 bid", 2'000'000},
      {"ops/status", "all systems nominal", 3'000'000},
  };

  std::vector<core::TransferId> transfers;
  for (const Publication& p : pubs) {
    mpz::Bigint m = system.config().params.encode_bytes(
        {reinterpret_cast<const std::uint8_t*>(p.payload.data()), p.payload.size()});
    transfers.push_back(system.add_transfer_at(m, p.published_at));
    std::printf("scheduled publication on %-16s at t=%.0f ms\n", p.topic.c_str(),
                p.published_at / 1000.0);
  }

  std::puts("\nsubscriber-side blinding starts immediately (before any payload exists)...");
  if (!system.run_to_completion()) {
    std::puts("delivery failed");
    return 1;
  }

  std::puts("\ndeliveries:");
  bool all_ok = true;
  for (std::size_t i = 0; i < pubs.size(); ++i) {
    auto ct = system.result(transfers[i]);
    if (!ct) {
      std::printf("  %-16s NOT delivered\n", pubs[i].topic.c_str());
      all_ok = false;
      continue;
    }
    auto bytes = system.config().params.decode_bytes(system.oracle_decrypt_b(*ct));
    std::string got(bytes.begin(), bytes.end());
    bool ok = got == pubs[i].payload;
    all_ok = all_ok && ok;
    std::printf("  %-16s -> \"%s\" [%s]\n", pubs[i].topic.c_str(), got.c_str(),
                ok ? "ok" : "CORRUPT");
  }
  std::printf("\ntotal: %.1f ms virtual time, %llu messages; last payload appeared at 3000 ms\n",
              system.sim().stats().end_time / 1000.0,
              static_cast<unsigned long long>(system.sim().stats().messages_sent));
  std::printf("post-publication latency of final topic: ~%.1f ms (blinding pre-ran)\n",
              (system.sim().stats().end_time - 3'000'000) / 1000.0);
  return all_ok ? 0 : 1;
}
