// The complete pipeline through the client API — no test oracle anywhere.
//
//   build/examples/end_to_end_client
//
// A publisher client encrypts a secret under service A's public key and
// publishes it; the two services run the paper's re-encryption protocol; a
// subscriber-side retrieval verifies the service-signed result with B's
// public key alone and combines threshold-decryption shares (each carrying a
// Chaum-Pedersen correctness proof) into the plaintext. At no point does any
// single machine other than the two clients hold the secret.
#include <cstdio>
#include <string>

#include "core/client.hpp"
#include "core/system.hpp"

int main() {
  using namespace dblind;  // NOLINT

  core::SystemOptions opts;
  opts.params = group::GroupParams::named(group::ParamId::kTest256);
  opts.seed = 20260704;
  core::System system(std::move(opts));

  const std::string secret = "meet at the old mill";
  mpz::Bigint m = system.config().params.encode_bytes(
      {reinterpret_cast<const std::uint8_t*>(secret.data()), secret.size()});

  auto client = std::make_unique<core::ClientNode>(system.config(), /*transfer=*/4242, m);
  core::ClientNode* handle = client.get();
  system.sim().add_node(std::move(client));

  std::puts("publisher: encrypting under K_A and publishing to service A...");
  std::puts("services: blinding at B, threshold decryption at A, unblinding to E_B(m)...");
  std::puts("subscriber: polling B, verifying the service signature, collecting shares...");

  bool done = system.sim().run_until([&] { return handle->plaintext().has_value(); },
                                     20'000'000);
  if (!done) {
    std::puts("pipeline did not complete");
    return 1;
  }
  auto bytes = system.config().params.decode_bytes(*handle->plaintext());
  std::string recovered(bytes.begin(), bytes.end());
  std::printf("subscriber recovered: \"%s\"  [%s]\n", recovered.c_str(),
              recovered == secret ? "MATCH" : "MISMATCH");
  std::printf("end-to-end: %.1f ms virtual, %llu messages — zero trust in any single server\n",
              system.sim().stats().end_time / 1000.0,
              static_cast<unsigned long long>(system.sim().stats().messages_sent));
  return recovered == secret ? 0 : 1;
}
