// Proactive epochs: why re-encryption beats PSS storage against a MOBILE
// adversary (paper §5).
//
//   build/examples/proactive_epochs
//
// A mobile adversary compromises different servers in different periods.
// Defense: refresh the secret-shared material every epoch so that shares
// stolen in different epochs do not combine. This example contrasts:
//
//   * a PSS-style vault storing S secrets as shares — refreshing costs one
//     resharing PER SECRET per epoch, and
//   * the paper's architecture storing E_A(m) ciphertexts — only the ONE set
//     of key shares is refreshed, in O(1) per epoch, with the service public
//     key (and thus every stored ciphertext) unchanged.
//
// It then simulates a two-epoch mobile adversary and shows that mixed-epoch
// shares are useless while the refreshed service keeps decrypting.
#include <chrono>
#include <cstdio>
#include <vector>

#include "baselines/pss_transfer.hpp"
#include "threshold/refresh.hpp"
#include "threshold/thresh_decrypt.hpp"

int main() {
  using namespace dblind;  // NOLINT
  using Clock = std::chrono::steady_clock;

  group::GroupParams gp = group::GroupParams::named(group::ParamId::kTest256);
  mpz::Prng prng(1337);

  // --- the paper's architecture: ciphertext store + one threshold key ------
  threshold::ServiceKeyMaterial key_epoch0 =
      threshold::ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  constexpr int kStoredSecrets = 64;
  std::vector<mpz::Bigint> plaintexts;
  std::vector<elgamal::Ciphertext> vault;
  for (int i = 0; i < kStoredSecrets; ++i) {
    plaintexts.push_back(gp.random_element(prng));
    vault.push_back(key_epoch0.public_key().encrypt(plaintexts.back(), prng));
  }
  std::printf("service stores %d encrypted secrets under one threshold key\n", kStoredSecrets);

  auto t0 = Clock::now();
  threshold::ServiceKeyMaterial key_epoch1 = threshold::refresh_service(key_epoch0, prng);
  double ours_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  std::printf("epoch refresh (ours): ONE key resharing          = %7.2f ms\n", ours_ms);

  // --- PSS-style vault: every secret is itself share-stored ----------------
  t0 = Clock::now();
  for (int i = 0; i < kStoredSecrets; ++i) {
    auto poly = threshold::sharing_polynomial(gp.random_exponent(prng), 1, gp.q(), prng);
    auto commitments = threshold::feldman_commit(gp, poly);
    std::vector<threshold::Share> quorum;
    for (std::uint32_t j = 1; j <= 2; ++j)
      quorum.push_back({j, threshold::eval_polynomial(poly, j, gp.q())});
    (void)baselines::pss_transfer(gp, quorum, commitments, 4, 1, prng);
  }
  double pss_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  std::printf("epoch refresh (PSS vault): %d resharings          = %7.2f ms  (%.0fx)\n",
              kStoredSecrets, pss_ms, pss_ms / ours_ms);

  // --- the mobile adversary ------------------------------------------------
  // Epoch 0: steals server 1's key share. Epoch 1 (after refresh): steals
  // server 2's. f+1 = 2 shares in hand — but from different epochs.
  threshold::Share stolen_old = key_epoch0.share_of(1);
  threshold::Share stolen_new = key_epoch1.share_of(2);
  std::vector<threshold::Share> mixed = {stolen_old, stolen_new};
  mpz::Bigint guess = threshold::shamir_reconstruct(mixed, gp.q());
  bool broken = gp.pow_g(guess) == key_epoch0.public_key().y();
  std::printf("mobile adversary combines epoch-0 + epoch-1 shares: key recovered? %s\n",
              broken ? "YES (!!)" : "no — refresh worked");

  // --- and the service still works ------------------------------------------
  std::vector<threshold::DecryptionShare> shares;
  for (std::uint32_t i : {3u, 4u})
    shares.push_back(
        threshold::make_decryption_share(gp, vault[7], key_epoch1.share_of(i), "epoch1", prng));
  bool ok = threshold::combine_decryption(gp, vault[7], shares) == plaintexts[7];
  std::printf("epoch-1 servers decrypt an epoch-0 ciphertext: %s\n",
              ok ? "correct (public key never changed)" : "FAILED");
  std::printf("\nsummary: refresh cost O(1) vs O(#secrets); mixed-epoch shares useless.\n");
  return (!broken && ok) ? 0 : 1;
}
