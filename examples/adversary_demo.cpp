// Adversary demo: the §4.2.1 adaptive-contribution attack, before and after
// the paper's defenses.
//
//   build/examples/adversary_demo
//
// Act 1 — against the fail-stop blinding protocol (Figure 3): a Byzantine
// coordinator waits for honest contributions, then submits the canceling
// "contribution" of expression (1). The combined blinding factor is the
// adversary's own ρ̂ — Randomness-Confidentiality is broken, and nothing in
// the output reveals it.
//
// Act 2 — the same adversary against the hardened protocol (Figure 4): the
// commit-then-reveal order, the VDE proofs, and the same-reveal evidence rule
// make every honest signing member reject the spliced request. The adversary
// gets no service signature, honest backup coordinators finish the transfer,
// and the result still decrypts to the right plaintext.
#include <cstdio>

#include "core/failstop.hpp"
#include "core/system.hpp"

int main() {
  using namespace dblind;  // NOLINT
  using Behavior = core::ProtocolServer::Behavior;

  std::puts("=== Act 1: adaptive-cancellation attack vs the FAIL-STOP protocol (Fig. 3) ===");
  {
    core::FailstopOptions opts;
    opts.adaptive_attack = true;
    opts.seed = 1;
    core::FailstopBlindingSystem sys(std::move(opts));
    sys.run();
    auto out = sys.outcome(1);
    if (!out) {
      std::puts("attacker produced no output (unexpected)");
      return 1;
    }
    bool controlled = sys.decrypt_a(out->blinded.ea) == sys.attacker_rho();
    std::printf("  output is a well-formed pair (E_A(rho), E_B(rho)): %s\n",
                sys.consistent(*out) ? "yes" : "no");
    std::printf("  blinding factor equals the attacker's rho_hat:     %s\n",
                controlled ? "YES  <-- attack succeeded" : "no");
    std::puts("  the adversary now knows rho: the later threshold decryption of");
    std::puts("  E_A(m*rho) would hand it the plaintext m. Fig. 3 is fail-stop-only.");
    if (!controlled) return 1;
  }

  std::puts("");
  std::puts("=== Act 2: the same adversary vs the COMPLETE protocol (Fig. 4) ===");
  {
    core::SystemOptions opts;
    opts.seed = 2;
    opts.b_behaviors = {Behavior::kAdaptiveCancelCoordinator, Behavior::kHonest,
                        Behavior::kHonest, Behavior::kHonest};
    core::System sys(std::move(opts));
    core::TransferId t =
        sys.add_transfer(sys.config().params.encode_message(mpz::Bigint(31415926)));
    bool done = sys.run_to_completion();
    std::printf("  transfer completed despite the Byzantine coordinator: %s\n",
                done ? "yes" : "NO");
    std::printf("  service signatures obtained on spliced payloads:      %d\n",
                sys.b_server(1).attack_successes());
    bool integrity = true;
    for (core::ServerRank r = 2; r <= 4; ++r) {
      auto res = sys.result(t, r);
      integrity = integrity && res && sys.oracle_decrypt_b(*res) == sys.plaintext_of(t);
    }
    std::printf("  every honest B server's result decrypts to m:         %s\n",
                integrity ? "yes" : "NO");
    std::puts("  commit-before-reveal + VDE + same-reveal evidence leave the attacker");
    std::puts("  with no valid signing request; honest backups preserve liveness.");
    if (!done || sys.b_server(1).attack_successes() != 0 || !integrity) return 1;
  }

  std::puts("");
  std::puts("=== Bonus: inconsistent dual encryption (the §4.2.2 attack) ===");
  {
    core::SystemOptions opts;
    opts.seed = 3;
    opts.b_behaviors = {Behavior::kHonest, Behavior::kInconsistentContribution,
                        Behavior::kHonest, Behavior::kHonest};
    core::System sys(std::move(opts));
    core::TransferId t =
        sys.add_transfer(sys.config().params.encode_message(mpz::Bigint(27182818)));
    bool done = sys.run_to_completion();
    auto res = sys.result(t, 1);
    bool ok = done && res && sys.oracle_decrypt_b(*res) == sys.plaintext_of(t);
    std::printf("  contribution with rho != rho' was filtered by VDE; transfer correct: %s\n",
                ok ? "yes" : "NO");
    if (!ok) return 1;
  }
  std::puts("");
  std::puts("all three acts behaved exactly as the paper predicts.");
  return 0;
}
