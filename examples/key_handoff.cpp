// Key hand-off between service generations.
//
//   build/examples/key_handoff
//
// A long-lived escrow service (generation A) holds a customer's Schnorr
// signing key, encrypted under K_A. The operator decommissions A and brings
// up its successor (generation B) with entirely fresh servers and keys.
// Re-encryption hands the escrowed key to B **without the key ever being
// reconstructed in the clear during the transfer** — the property that makes
// this safe even while both generations contain up to f compromised servers.
//
// After the hand-off, B demonstrates custody by signing a challenge with the
// escrowed key, and the customer verifies against their long-known public
// key (which never changed).
#include <cstdio>
#include <string>

#include "core/system.hpp"
#include "zkp/schnorr.hpp"

int main() {
  using namespace dblind;  // NOLINT

  group::GroupParams params = group::GroupParams::named(group::ParamId::kTest256);

  // The customer's signing key, created years ago.
  mpz::Prng customer_rng(7);
  zkp::SchnorrSigningKey customer_key = zkp::SchnorrSigningKey::generate(params, customer_rng);
  std::puts("customer key created; public key registered with relying parties");

  // Escrow: the private scalar is encoded into the group and stored at
  // service A (encrypted under K_A).
  core::SystemOptions opts;
  opts.params = params;
  opts.a = {4, 1};  // generation A
  opts.b = {7, 2};  // generation B: bigger, different fault budget
  opts.seed = 4242;
  core::System system(std::move(opts));

  mpz::Bigint escrowed = params.encode_message(customer_key.secret());
  core::TransferId transfer = system.add_transfer(escrowed);
  std::printf("key escrowed at generation A (%zu servers, f=%zu)\n", system.a_cfg().n,
              system.a_cfg().f);

  // Hand-off: run the re-encryption protocol A -> B.
  std::printf("handing off to generation B (%zu servers, f=%zu)...\n", system.b_cfg().n,
              system.b_cfg().f);
  if (!system.run_to_completion()) {
    std::puts("hand-off failed");
    return 1;
  }
  std::printf("hand-off complete in %.1f ms (virtual), %llu messages\n",
              system.sim().stats().end_time / 1000.0,
              static_cast<unsigned long long>(system.sim().stats().messages_sent));

  // Generation B proves custody: decrypt (via the oracle standing in for
  // B's threshold decryption) and sign a fresh challenge.
  auto eb = system.result(transfer);
  if (!eb) {
    std::puts("no ciphertext at B");
    return 1;
  }
  mpz::Bigint recovered_scalar = params.decode_message(system.oracle_decrypt_b(*eb));
  zkp::SchnorrSigningKey recovered =
      zkp::SchnorrSigningKey::from_private(params, recovered_scalar);

  std::string challenge = "prove custody, generation B";
  std::vector<std::uint8_t> msg(challenge.begin(), challenge.end());
  mpz::Prng sign_rng(11);
  zkp::SchnorrSignature sig = recovered.sign(msg, sign_rng);

  bool ok = customer_key.verify_key().verify(msg, sig);
  std::printf("customer verifies B's signature with the ORIGINAL public key: %s\n",
              ok ? "VALID — custody transferred, key never exposed in transit" : "INVALID");
  return ok ? 0 : 1;
}
