// EXT-REFRESH: the online proactive-refresh protocol (library extension of
// §5's periodic share refresh), swept over service size and fault scenario.
//
// Complements CMP-PSS in bench_baselines: that bench measures the per-epoch
// CPU cost asymmetry (O(1) vs O(#secrets)); this one measures the
// distributed round itself — latency, messages, and the echo-quorum
// consistency machinery under a crashed or equivocating coordinator.
#include "core/refresh_protocol.hpp"
#include "table.hpp"
#include "threshold/shamir.hpp"

namespace {

using namespace dblind;  // NOLINT

struct Row {
  double latency_ms = 0;
  std::uint64_t messages = 0;
  double kbytes = 0;
  bool key_preserved = false;
};

Row run(core::RefreshSystemOptions opts) {
  core::RefreshSystem sys(std::move(opts));
  bool done = sys.run();
  Row row;
  row.latency_ms = sys.sim().stats().end_time / 1000.0;
  row.messages = sys.sim().stats().messages_sent;
  row.kbytes = sys.sim().stats().bytes_sent / 1024.0;
  if (done) {
    const group::GroupParams& gp = sys.old_material().params();
    const auto& cfg = sys.old_material().config();
    std::vector<threshold::Share> quorum;
    for (std::uint32_t r = 1; quorum.size() < cfg.quorum() && r <= cfg.n; ++r) {
      auto s = sys.new_share(r);
      if (s) quorum.push_back(*s);
    }
    row.key_preserved = quorum.size() == cfg.quorum() &&
                        gp.pow_g(threshold::shamir_reconstruct(quorum, gp.q())) ==
                            sys.old_material().public_key().y();
  }
  return row;
}

}  // namespace

int main() {
  std::puts("EXT-REFRESH — online proactive share refresh (one epoch, async simulator)");
  std::puts("");
  bench::Table table({"n", "f", "scenario", "latency_ms", "messages", "kbytes",
                      "key preserved"});
  for (std::size_t f : {1u, 2u, 3u}) {
    std::size_t n = 3 * f + 1;

    core::RefreshSystemOptions honest;
    honest.cfg = {n, f};
    honest.seed = 100 + f;
    Row h = run(std::move(honest));
    table.row({std::to_string(n), std::to_string(f), "honest", bench::fmt(h.latency_ms),
               bench::fmt_u(h.messages), bench::fmt(h.kbytes), h.key_preserved ? "yes" : "NO"});

    core::RefreshSystemOptions crashed;
    crashed.cfg = {n, f};
    crashed.seed = 200 + f;
    crashed.crashed = {1};
    Row c = run(std::move(crashed));
    table.row({std::to_string(n), std::to_string(f), "coordinator crashed",
               bench::fmt(c.latency_ms), bench::fmt_u(c.messages), bench::fmt(c.kbytes),
               c.key_preserved ? "yes" : "NO"});

    core::RefreshSystemOptions bad;
    bad.cfg = {n, f};
    bad.seed = 300 + f;
    for (std::uint32_t d = 0; d < f; ++d) bad.bad_dealers.insert(n - d);
    Row b = run(std::move(bad));
    table.row({std::to_string(n), std::to_string(f), "f corrupt dealers",
               bench::fmt(b.latency_ms), bench::fmt_u(b.messages), bench::fmt(b.kbytes),
               b.key_preserved ? "yes" : "NO"});

    core::RefreshSystemOptions equiv;
    equiv.cfg = {n, f};
    equiv.seed = 400 + f;
    equiv.equivocating_coordinator = true;
    Row e = run(std::move(equiv));
    table.row({std::to_string(n), std::to_string(f), "equivocating coordinator",
               bench::fmt(e.latency_ms), bench::fmt_u(e.messages), bench::fmt(e.kbytes),
               e.key_preserved ? "yes" : "NO"});
  }
  table.print();
  std::puts("");
  std::puts("Expected shape: ~3 message delays per healthy epoch independent of n;");
  std::puts("messages O(n^2) (echo round); coordinator failure costs the backup delay;");
  std::puts("every row preserves the service public key exactly.");
  return 0;
}
