// PRIM: substrate microbenchmarks (context for every protocol-level number).
//
// Covers the cryptographic operations the re-encryption protocol is built
// from, across the embedded parameter sizes. Run: build/bench/bench_primitives
#include <benchmark/benchmark.h>

#include "elgamal/elgamal.hpp"
#include "group/params.hpp"
#include "hash/sha256.hpp"
#include "mpz/modmath.hpp"
#include "threshold/keygen.hpp"
#include "threshold/thresh_decrypt.hpp"
#include "zkp/batch.hpp"
#include "zkp/chaum_pedersen.hpp"
#include "zkp/schnorr.hpp"
#include "zkp/vde.hpp"

namespace {

using namespace dblind;  // NOLINT
using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

ParamId param_of(std::int64_t bits) {
  switch (bits) {
    case 128: return ParamId::kTest128;
    case 256: return ParamId::kTest256;
    case 512: return ParamId::kSec512;
    case 1024: return ParamId::kSec1024;
    case 2048: return ParamId::kSec2048;
    default: return ParamId::kToy64;
  }
}

void BM_ModExp(benchmark::State& state) {
  GroupParams gp = GroupParams::named(param_of(state.range(0)));
  Prng prng(1);
  Bigint base = gp.random_element(prng);
  Bigint exp = gp.random_exponent(prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.pow(base, exp));
  }
}
BENCHMARK(BM_ModExp)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModExpFixedBase(benchmark::State& state) {
  // pow_g through the precomputed comb table (vs BM_ModExp's generic path).
  GroupParams gp = GroupParams::named(param_of(state.range(0)));
  Prng prng(1);
  Bigint exp = gp.random_exponent(prng);
  (void)gp.pow_g(exp);  // force table construction outside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.pow_g(exp));
  }
}
BENCHMARK(BM_ModExpFixedBase)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)->Arg(2048);

void BM_ModExp2Shamir(benchmark::State& state) {
  // a^ea * b^eb in one pass (the shape of every verification equation).
  GroupParams gp = GroupParams::named(param_of(state.range(0)));
  Prng prng(1);
  Bigint a = gp.random_element(prng);
  Bigint b = gp.random_element(prng);
  Bigint ea = gp.random_exponent(prng);
  Bigint eb = gp.random_exponent(prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.pow2(a, ea, b, eb));
  }
}
BENCHMARK(BM_ModExp2Shamir)->Arg(256)->Arg(512)->Arg(1024);

void BM_MultiPow(benchmark::State& state) {
  // Π b_i^e_i in one interleaved pass (Shamir <= 4 bases, Pippenger beyond) —
  // the engine under every batch verifier.
  GroupParams gp = GroupParams::named(ParamId::kSec512);
  Prng prng(1);
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<Bigint> bases, exps;
  for (std::size_t i = 0; i < k; ++i) {
    bases.push_back(gp.random_element(prng));
    exps.push_back(gp.random_exponent(prng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.multi_pow(bases, exps));
  }
}
BENCHMARK(BM_MultiPow)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_MultiPowNaive(benchmark::State& state) {
  // The serial baseline BM_MultiPow replaces: k independent exponentiations.
  GroupParams gp = GroupParams::named(ParamId::kSec512);
  Prng prng(1);
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<Bigint> bases, exps;
  for (std::size_t i = 0; i < k; ++i) {
    bases.push_back(gp.random_element(prng));
    exps.push_back(gp.random_exponent(prng));
  }
  for (auto _ : state) {
    Bigint acc(1);
    for (std::size_t i = 0; i < k; ++i) acc = gp.mul(acc, gp.pow(bases[i], exps[i]));
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MultiPowNaive)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(64);

void BM_ModMul(benchmark::State& state) {
  GroupParams gp = GroupParams::named(param_of(state.range(0)));
  Prng prng(2);
  Bigint a = gp.random_element(prng);
  Bigint b = gp.random_element(prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.mul(a, b));
  }
}
BENCHMARK(BM_ModMul)->Arg(256)->Arg(1024)->Arg(2048);

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash::Sha256::digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_ElGamalEncrypt(benchmark::State& state) {
  GroupParams gp = GroupParams::named(param_of(state.range(0)));
  Prng prng(3);
  elgamal::KeyPair kp = elgamal::KeyPair::generate(gp, prng);
  Bigint m = gp.random_element(prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.public_key().encrypt(m, prng));
  }
}
BENCHMARK(BM_ElGamalEncrypt)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_ElGamalDecrypt(benchmark::State& state) {
  GroupParams gp = GroupParams::named(param_of(state.range(0)));
  Prng prng(4);
  elgamal::KeyPair kp = elgamal::KeyPair::generate(gp, prng);
  elgamal::Ciphertext c = kp.public_key().encrypt(gp.random_element(prng), prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.decrypt(c));
  }
}
BENCHMARK(BM_ElGamalDecrypt)->Arg(128)->Arg(256)->Arg(512)->Arg(1024);

void BM_ChaumPedersenProve(benchmark::State& state) {
  GroupParams gp = GroupParams::named(param_of(state.range(0)));
  Prng prng(5);
  Bigint a = gp.random_exponent(prng);
  Bigint y = gp.random_element(prng);
  zkp::DlogStatement stmt{gp.g(), gp.pow_g(a), y, gp.pow(y, a)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(zkp::dlog_prove(gp, stmt, a, "bench", prng));
  }
}
BENCHMARK(BM_ChaumPedersenProve)->Arg(256)->Arg(512)->Arg(1024);

void BM_ChaumPedersenVerify(benchmark::State& state) {
  GroupParams gp = GroupParams::named(param_of(state.range(0)));
  Prng prng(6);
  Bigint a = gp.random_exponent(prng);
  Bigint y = gp.random_element(prng);
  zkp::DlogStatement stmt{gp.g(), gp.pow_g(a), y, gp.pow(y, a)};
  zkp::DlogEqProof proof = zkp::dlog_prove(gp, stmt, a, "bench", prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zkp::dlog_verify(gp, stmt, proof, "bench"));
  }
}
BENCHMARK(BM_ChaumPedersenVerify)->Arg(256)->Arg(512)->Arg(1024);

struct VdeFixture {
  // prng_ is declared (and thus constructed) before everything that uses it.
  Prng prng_;
  GroupParams gp;
  elgamal::KeyPair ka, kb;
  Bigint rho, r1, r2;
  elgamal::Ciphertext ca, cb;

  explicit VdeFixture(ParamId id, std::uint64_t seed)
      : prng_(seed),
        gp(GroupParams::named(id)),
        ka(elgamal::KeyPair::generate(gp, prng_)),
        kb(elgamal::KeyPair::generate(gp, prng_)),
        rho(gp.random_element(prng_)),
        r1(gp.random_exponent(prng_)),
        r2(gp.random_exponent(prng_)),
        ca(ka.public_key().encrypt_with_nonce(rho, r1)),
        cb(kb.public_key().encrypt_with_nonce(rho, r2)) {}

  Prng& prng() { return prng_; }
};

void BM_VdeProve(benchmark::State& state) {
  VdeFixture fx(param_of(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zkp::vde_prove(fx.ka.public_key(), fx.ca, fx.r1, fx.kb.public_key(),
                                            fx.cb, fx.r2, "bench", fx.prng()));
  }
}
BENCHMARK(BM_VdeProve)->Arg(256)->Arg(512)->Arg(1024);

void BM_VdeVerify(benchmark::State& state) {
  VdeFixture fx(param_of(state.range(0)), 8);
  zkp::VdeProof proof = zkp::vde_prove(fx.ka.public_key(), fx.ca, fx.r1, fx.kb.public_key(),
                                       fx.cb, fx.r2, "bench", fx.prng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        zkp::vde_verify(fx.ka.public_key(), fx.ca, fx.kb.public_key(), fx.cb, proof, "bench"));
  }
}
BENCHMARK(BM_VdeVerify)->Arg(256)->Arg(512)->Arg(1024);

void BM_SchnorrSign(benchmark::State& state) {
  GroupParams gp = GroupParams::named(param_of(state.range(0)));
  Prng prng(9);
  zkp::SchnorrSigningKey sk = zkp::SchnorrSigningKey::generate(gp, prng);
  std::vector<std::uint8_t> msg(256, 0x7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sk.sign(msg, prng));
  }
}
BENCHMARK(BM_SchnorrSign)->Arg(256)->Arg(512)->Arg(1024);

void BM_SchnorrVerify(benchmark::State& state) {
  GroupParams gp = GroupParams::named(param_of(state.range(0)));
  Prng prng(10);
  zkp::SchnorrSigningKey sk = zkp::SchnorrSigningKey::generate(gp, prng);
  std::vector<std::uint8_t> msg(256, 0x7);
  zkp::SchnorrSignature sig = sk.sign(msg, prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sk.verify_key().verify(msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify)->Arg(256)->Arg(512)->Arg(1024);

void BM_SchnorrBatchVerify(benchmark::State& state) {
  // Batch-verifying k signatures vs k individual verifications (the shape of
  // the paper's reveal validation: 2f+1 commit signatures, all-or-nothing).
  GroupParams gp = GroupParams::named(ParamId::kSec512);
  Prng prng(10);
  const int k = static_cast<int>(state.range(0));
  std::vector<zkp::SchnorrSigningKey> keys;
  std::vector<zkp::SchnorrVerifyKey> vks;
  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<zkp::SchnorrSignature> sigs;
  for (int i = 0; i < k; ++i) {
    keys.push_back(zkp::SchnorrSigningKey::generate(gp, prng));
    vks.push_back(keys.back().verify_key());
    msgs.emplace_back(64, static_cast<std::uint8_t>(i));
    sigs.push_back(keys.back().sign(msgs.back(), prng));
  }
  std::vector<zkp::BatchEntry> batch;
  for (int i = 0; i < k; ++i)
    batch.push_back({&vks[static_cast<std::size_t>(i)], msgs[static_cast<std::size_t>(i)],
                     &sigs[static_cast<std::size_t>(i)]});
  for (auto _ : state) {
    benchmark::DoNotOptimize(zkp::schnorr_batch_verify(gp, batch));
  }
}
BENCHMARK(BM_SchnorrBatchVerify)->Arg(3)->Arg(7)->Arg(15);

void BM_SchnorrVerifyIndividually(benchmark::State& state) {
  GroupParams gp = GroupParams::named(ParamId::kSec512);
  Prng prng(10);
  const int k = static_cast<int>(state.range(0));
  std::vector<zkp::SchnorrSigningKey> keys;
  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<zkp::SchnorrSignature> sigs;
  for (int i = 0; i < k; ++i) {
    keys.push_back(zkp::SchnorrSigningKey::generate(gp, prng));
    msgs.emplace_back(64, static_cast<std::uint8_t>(i));
    sigs.push_back(keys.back().sign(msgs.back(), prng));
  }
  for (auto _ : state) {
    bool ok = true;
    for (int i = 0; i < k; ++i)
      ok = ok && keys[static_cast<std::size_t>(i)].verify_key().verify(
                     msgs[static_cast<std::size_t>(i)], sigs[static_cast<std::size_t>(i)]);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SchnorrVerifyIndividually)->Arg(3)->Arg(7)->Arg(15);

std::vector<zkp::CpBatchItem> cp_batch_fixture(const GroupParams& gp, int k, Prng& prng) {
  std::vector<zkp::CpBatchItem> items;
  for (int i = 0; i < k; ++i) {
    Bigint a = gp.random_exponent(prng);
    Bigint y = gp.random_element(prng);
    zkp::DlogStatement stmt{gp.g(), gp.pow_g(a), y, gp.pow(y, a)};
    items.push_back({stmt, zkp::dlog_prove(gp, stmt, a, "bench", prng), "bench"});
  }
  return items;
}

void BM_CpBatchVerify(benchmark::State& state) {
  // k Chaum-Pedersen proofs in one random-linear-combination multi-exp (the
  // PR 3 fast path) vs BM_CpVerifyIndividually's k separate checks.
  GroupParams gp = GroupParams::named(ParamId::kSec512);
  Prng prng(14);
  auto items = cp_batch_fixture(gp, static_cast<int>(state.range(0)), prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zkp::cp_batch_verify(gp, items, prng));
  }
}
BENCHMARK(BM_CpBatchVerify)->Arg(3)->Arg(7)->Arg(15);

void BM_CpVerifyIndividually(benchmark::State& state) {
  GroupParams gp = GroupParams::named(ParamId::kSec512);
  Prng prng(14);
  auto items = cp_batch_fixture(gp, static_cast<int>(state.range(0)), prng);
  for (auto _ : state) {
    bool ok = true;
    for (const auto& it : items) ok = ok && zkp::dlog_verify(gp, it.stmt, it.proof, it.context);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_CpVerifyIndividually)->Arg(3)->Arg(7)->Arg(15);

void BM_ThresholdDecryptShare(benchmark::State& state) {
  GroupParams gp = GroupParams::named(param_of(state.range(0)));
  Prng prng(11);
  auto km = threshold::ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  elgamal::Ciphertext c = km.public_key().encrypt(gp.random_element(prng), prng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        threshold::make_decryption_share(gp, c, km.share_of(1), "bench", prng));
  }
}
BENCHMARK(BM_ThresholdDecryptShare)->Arg(256)->Arg(512)->Arg(1024);

void BM_ThresholdDecryptCombine(benchmark::State& state) {
  GroupParams gp = GroupParams::named(ParamId::kSec512);
  Prng prng(12);
  std::size_t f = static_cast<std::size_t>(state.range(0));
  auto km = threshold::ServiceKeyMaterial::dealer_keygen(gp, {3 * f + 1, f}, prng);
  elgamal::Ciphertext c = km.public_key().encrypt(gp.random_element(prng), prng);
  std::vector<threshold::DecryptionShare> shares;
  for (std::uint32_t i = 1; i <= f + 1; ++i)
    shares.push_back(threshold::make_decryption_share(gp, c, km.share_of(i), "bench", prng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold::combine_decryption(gp, c, shares));
  }
}
BENCHMARK(BM_ThresholdDecryptCombine)->Arg(1)->Arg(2)->Arg(3)->Arg(5);

void BM_ShamirShareReconstruct(benchmark::State& state) {
  GroupParams gp = GroupParams::named(ParamId::kSec512);
  Prng prng(13);
  std::size_t f = static_cast<std::size_t>(state.range(0));
  Bigint secret = prng.uniform_below(gp.q());
  auto shares = threshold::shamir_share(secret, 3 * f + 1, f, gp.q(), prng);
  std::vector<threshold::Share> quorum(shares.begin(),
                                       shares.begin() + static_cast<std::ptrdiff_t>(f + 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(threshold::shamir_reconstruct(quorum, gp.q()));
  }
}
BENCHMARK(BM_ShamirShareReconstruct)->Arg(1)->Arg(3)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
