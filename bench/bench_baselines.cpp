// CMP-JAK + CMP-PSS: comparison against the two alternatives discussed in §5.
//
//  - Jakobsson's quorum-controlled proxy re-encryption: one round at A, but
//    all computation on A and nothing can start before E_A(m) exists.
//  - PSS-based transfer: share resharing A→B, cheap per transfer but requires
//    pairwise server-to-server secure links and — the paper's key point — a
//    recurring proactive-refresh cost proportional to the NUMBER OF SECRETS
//    STORED, whereas re-encryption refreshes only one key sharing.
#include <chrono>

#include "baselines/jakobsson.hpp"
#include "baselines/pss_transfer.hpp"
#include "core/system.hpp"
#include "table.hpp"
#include "threshold/keygen.hpp"
#include "threshold/refresh.hpp"

namespace {

using namespace dblind;  // NOLINT
using mpz::Bigint;
using mpz::Prng;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

// Minimal simulator nodes for Jakobsson's one-round protocol: requester
// broadcasts E_A(m), every A server replies with a partial, requester
// combines and ships E_B(m) to all of B.
struct JakState {
  group::GroupParams gp = group::GroupParams::named(group::ParamId::kToy64);
  std::unique_ptr<threshold::ServiceKeyMaterial> a_km;
  std::unique_ptr<elgamal::KeyPair> kb;
  elgamal::Ciphertext c;
  Bigint m;
  std::size_t n_a = 4, f_a = 1, n_b = 4;
  std::vector<baselines::JakobssonPartial> partials;
  std::optional<elgamal::Ciphertext> out;
  int b_received = 0;
};

class JakServer final : public net::Node {
 public:
  JakServer(JakState& st, std::uint32_t rank) : st_(st), rank_(rank) {}
  void on_message(net::Context& ctx, net::NodeId from, std::span<const std::uint8_t>) override {
    auto partial = baselines::jakobsson_partial(st_.gp, st_.c, st_.a_km->share_of(rank_),
                                                st_.kb->public_key().y(), "jak", ctx.rng());
    // Reply "with" the partial: the sim carries opaque bytes; sizes are what
    // matter for accounting, so serialize roughly (4 group elements + 2
    // proofs ≈ 10 elements).
    std::vector<std::uint8_t> bytes(10 * st_.gp.element_size(), 0);
    pending_ = std::move(partial);
    st_.partials.push_back(*pending_);
    ctx.send(from, std::move(bytes));
  }

 private:
  JakState& st_;
  std::uint32_t rank_;
  std::optional<baselines::JakobssonPartial> pending_;
};

class JakRequester final : public net::Node {
 public:
  explicit JakRequester(JakState& st) : st_(st) {}
  void on_start(net::Context& ctx) override {
    std::vector<std::uint8_t> req(2 * st_.gp.element_size(), 0);
    for (std::uint32_t i = 0; i < st_.n_a; ++i) ctx.send(1 + i, req);
  }
  void on_message(net::Context& ctx, net::NodeId, std::span<const std::uint8_t>) override {
    ++replies_;
    if (replies_ != st_.f_a + 1) return;
    // Verify + combine the first f+1 partials, ship result to B.
    std::vector<baselines::JakobssonPartial> quorum(st_.partials.begin(),
                                                    st_.partials.begin() +
                                                        static_cast<std::ptrdiff_t>(st_.f_a + 1));
    for (const auto& p : quorum) {
      if (!baselines::jakobsson_verify_partial(st_.gp, st_.a_km->commitments(), st_.c,
                                               st_.kb->public_key().y(), p, "jak"))
        return;
    }
    st_.out = baselines::jakobsson_combine(st_.gp, st_.c, quorum);
    std::vector<std::uint8_t> result(2 * st_.gp.element_size(), 0);
    for (std::uint32_t i = 0; i < st_.n_b; ++i)
      ctx.send(1 + st_.n_a + i, result);
  }

 private:
  JakState& st_;
  std::size_t replies_ = 0;
};

class JakReceiver final : public net::Node {
 public:
  explicit JakReceiver(JakState& st) : st_(st) {}
  void on_message(net::Context&, net::NodeId, std::span<const std::uint8_t>) override {
    ++st_.b_received;
  }

 private:
  JakState& st_;
};

}  // namespace

int main() {
  std::puts("CMP-JAK / CMP-PSS — one transfer, n=4, f=1 per service, U[0.5ms,20ms] delays");
  std::puts("");
  bench::Table table({"scheme", "latency_ms", "messages", "kbytes", "correct",
                      "pre-computable", "needs pairwise server keys"});

  // Ours.
  {
    core::SystemOptions o;
    o.seed = 1;
    core::System sys(std::move(o));
    core::TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(5000)));
    bool done = sys.run_to_completion();
    auto res = sys.result(t);
    bool ok = done && res && sys.oracle_decrypt_b(*res) == sys.plaintext_of(t);
    table.row({"ours (Fig. 4)", bench::fmt(sys.sim().stats().end_time / 1000.0),
               bench::fmt_u(sys.sim().stats().messages_sent),
               bench::fmt(sys.sim().stats().bytes_sent / 1024.0), ok ? "yes" : "NO",
               "yes (all but 1 threshold decryption)", "no"});
  }

  // Jakobsson.
  {
    JakState st;
    Prng setup(2);
    st.a_km = std::make_unique<threshold::ServiceKeyMaterial>(
        threshold::ServiceKeyMaterial::dealer_keygen(st.gp, {st.n_a, st.f_a}, setup));
    st.kb = std::make_unique<elgamal::KeyPair>(elgamal::KeyPair::generate(st.gp, setup));
    st.m = st.gp.random_element(setup);
    st.c = st.a_km->public_key().encrypt(st.m, setup);

    net::Simulator sim(3, std::make_unique<net::UniformDelay>(500, 20'000));
    sim.add_node(std::make_unique<JakRequester>(st));          // node 0
    for (std::uint32_t i = 1; i <= st.n_a; ++i) sim.add_node(std::make_unique<JakServer>(st, i));
    for (std::uint32_t i = 0; i < st.n_b; ++i) sim.add_node(std::make_unique<JakReceiver>(st));
    sim.run_until([&] { return st.b_received == static_cast<int>(st.n_b); }, 1'000'000);
    bool ok = st.out && st.kb->decrypt(*st.out) == st.m;
    table.row({"jakobsson (quorum proxy)", bench::fmt(sim.stats().end_time / 1000.0),
               bench::fmt_u(sim.stats().messages_sent),
               bench::fmt(sim.stats().bytes_sent / 1024.0), ok ? "yes" : "NO",
               "no (needs E_A(m) and k_A)", "no"});
  }

  // PSS transfer (one round of pairwise sub-share messages).
  {
    group::GroupParams gp = group::GroupParams::named(group::ParamId::kToy64);
    Prng prng(4);
    Bigint secret = prng.uniform_below(gp.q());
    auto poly = threshold::sharing_polynomial(secret, 1, gp.q(), prng);
    auto commitments = threshold::feldman_commit(gp, poly);
    std::vector<threshold::Share> quorum;
    for (std::uint32_t i = 1; i <= 2; ++i)
      quorum.push_back({i, threshold::eval_polynomial(poly, i, gp.q())});

    auto r = baselines::pss_transfer(gp, quorum, commitments, 4, 1, prng);
    // One message round: latency = max of |Q|*n_B independent delays.
    Prng delays(5);
    std::uint64_t latency = 0;
    for (std::uint64_t i = 0; i < r.messages; ++i)
      latency = std::max(latency, 500 + delays.uniform_u64(19'500));
    std::vector<threshold::Share> bq = {r.b_shares[0], r.b_shares[1]};
    bool ok = threshold::shamir_reconstruct(bq, gp.q()) == secret;
    table.row({"pss resharing", bench::fmt(latency / 1000.0), bench::fmt_u(r.messages),
               bench::fmt(r.bytes / 1024.0), ok ? "yes" : "NO", "no (per-secret resharing)",
               "YES (pairwise secure links)"});
  }
  table.print();

  std::puts("");
  std::puts("CMP-PSS — recurring proactive-refresh cost vs number of stored secrets");
  std::puts("(mobile-adversary defense, 256-bit group; ours refreshes ONLY the key shares)");
  std::puts("");
  {
    bench::Table refresh({"stored secrets", "pss refresh (ms/epoch)", "ours refresh (ms/epoch)",
                          "ratio"});
    group::GroupParams gp = group::GroupParams::named(group::ParamId::kTest256);
    Prng prng(6);
    auto one_resharing_ms = [&]() {
      Bigint secret = prng.uniform_below(gp.q());
      auto poly = threshold::sharing_polynomial(secret, 1, gp.q(), prng);
      auto commitments = threshold::feldman_commit(gp, poly);
      std::vector<threshold::Share> quorum;
      for (std::uint32_t i = 1; i <= 2; ++i)
        quorum.push_back({i, threshold::eval_polynomial(poly, i, gp.q())});
      auto t0 = std::chrono::steady_clock::now();
      (void)baselines::pss_transfer(gp, quorum, commitments, 4, 1, prng);
      return ms_since(t0);
    };
    // Ours: one zero-sharing refresh of the service key shares per epoch,
    // regardless of how many ciphertexts the service stores (the ciphertexts
    // themselves need no refresh).
    auto km = threshold::ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
    auto t0 = std::chrono::steady_clock::now();
    (void)threshold::refresh_service(km, prng);
    double key_only = ms_since(t0);
    for (int secrets : {1, 10, 100}) {
      double pss = 0;
      for (int s = 0; s < secrets; ++s) pss += one_resharing_ms();
      refresh.row({std::to_string(secrets), bench::fmt(pss), bench::fmt(key_only),
                   bench::fmt(pss / key_only, 1) + "x"});
    }
    refresh.print();
  }
  std::puts("");
  std::puts("Expected shape: PSS wins on per-transfer latency/messages but pays a refresh");
  std::puts("cost linear in stored secrets and exposes server keys across services;");
  std::puts("Jakobsson is compact but serializes all work on A after E_A(m) exists;");
  std::puts("ours costs more messages per transfer but pre-computes everything except");
  std::puts("one threshold decryption and keeps refresh O(1) in stored secrets (§5).");
  return 0;
}
