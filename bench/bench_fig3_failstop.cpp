// FIG3: the fail-stop distributed blinding protocol, swept over service size
// and crash-failure scenarios in the asynchronous simulator.
//
// Reports virtual-time latency (the protocol sees only message delays),
// message and byte counts, and verifies the Consistency requirement on every
// produced blinding pair.
#include "core/failstop.hpp"
#include "table.hpp"

namespace {

using namespace dblind;  // NOLINT

}  // namespace

int main() {
  std::puts("FIG3 — fail-stop distributed blinding (async simulator, delays U[0.5ms, 20ms])");
  std::puts("");

  bench::Table table({"n", "f", "scenario", "latency_ms", "messages", "kbytes", "consistent"});

  for (std::size_t f : {1u, 2u, 3u, 4u, 5u}) {
    std::size_t n = 3 * f + 1;
    // Honest run.
    {
      core::FailstopOptions o;
      o.n = n;
      o.f = f;
      o.seed = 1000 + f;
      core::FailstopBlindingSystem sys(std::move(o));
      bool done = sys.run();
      auto out = sys.outcome(1);
      table.row({std::to_string(n), std::to_string(f), "honest",
                 bench::fmt(sys.sim().stats().end_time / 1000.0),
                 bench::fmt_u(sys.sim().stats().messages_sent),
                 bench::fmt(sys.sim().stats().bytes_sent / 1024.0),
                 done && out && sys.consistent(*out) ? "yes" : "NO"});
    }
    // f contributors crashed.
    {
      core::FailstopOptions o;
      o.n = n;
      o.f = f;
      o.seed = 2000 + f;
      for (std::size_t i = 0; i < f; ++i) o.crashed.insert(static_cast<std::uint32_t>(n - i));
      core::FailstopBlindingSystem sys(std::move(o));
      bool done = sys.run();
      auto out = sys.outcome(1);
      table.row({std::to_string(n), std::to_string(f), "f contributors crashed",
                 bench::fmt(sys.sim().stats().end_time / 1000.0),
                 bench::fmt_u(sys.sim().stats().messages_sent),
                 bench::fmt(sys.sim().stats().bytes_sent / 1024.0),
                 done && out && sys.consistent(*out) ? "yes" : "NO"});
    }
    // Designated coordinator crashed: backup takes over after its delay.
    {
      core::FailstopOptions o;
      o.n = n;
      o.f = f;
      o.seed = 3000 + f;
      o.crashed.insert(1);
      core::FailstopBlindingSystem sys(std::move(o));
      bool done = sys.run();
      auto out = sys.outcome(2);
      table.row({std::to_string(n), std::to_string(f), "coordinator crashed",
                 bench::fmt(sys.sim().stats().end_time / 1000.0),
                 bench::fmt_u(sys.sim().stats().messages_sent),
                 bench::fmt(sys.sim().stats().bytes_sent / 1024.0),
                 done && out && sys.consistent(*out) ? "yes" : "NO"});
    }
  }
  table.print();

  std::puts("");
  std::puts("Attack row (§4.2.1): a Byzantine coordinator against Figure 3 CHOOSES the");
  std::puts("blinding factor — the output decrypts to its rho_hat:");
  {
    core::FailstopOptions o;
    o.adaptive_attack = true;
    o.seed = 99;
    core::FailstopBlindingSystem sys(std::move(o));
    sys.run();
    auto out = sys.outcome(1);
    bool chose = out && sys.decrypt_a(out->blinded.ea) == sys.attacker_rho();
    std::printf("  attacker controlled blinding factor: %s (consistency checks still pass: %s)\n",
                chose ? "YES — Fig. 3 is NOT Byzantine-safe" : "no",
                out && sys.consistent(*out) ? "yes" : "no");
  }
  return 0;
}
