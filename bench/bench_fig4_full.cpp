// FIG4: the complete Byzantine re-encryption protocol, end to end in the
// asynchronous simulator.
//
// Rows sweep service size and fault scenario; columns report virtual-time
// latency, message/byte totals, and whether integrity held (result decrypts
// to the original plaintext under B's key). The fail-stop blinding rows from
// bench_fig3 provide the ablation contrast: the commit/reveal round, VDE
// proofs, threshold signatures and self-verifying evidence are the price of
// Byzantine tolerance.
#include "core/failstop.hpp"
#include "core/system.hpp"
#include "table.hpp"

namespace {

using namespace dblind;  // NOLINT
using Behavior = core::ProtocolServer::Behavior;
using mpz::Bigint;

struct RunResult {
  double latency_ms = 0;
  std::uint64_t messages = 0;
  double kbytes = 0;
  bool ok = false;
  int attack_successes = 0;
};

RunResult run(core::SystemOptions opts, Behavior b1 = Behavior::kHonest,
              bool crash_designated = false) {
  if (b1 != Behavior::kHonest) {
    opts.b_behaviors.assign(opts.b.n, Behavior::kHonest);
    opts.b_behaviors[0] = b1;
  }
  core::System sys(std::move(opts));
  core::TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(123456)));
  if (crash_designated) sys.sim().crash_at(sys.config().b.node_of(1), 0);

  RunResult r;
  bool done = sys.run_to_completion();
  r.latency_ms = sys.sim().stats().end_time / 1000.0;
  r.messages = sys.sim().stats().messages_sent;
  r.kbytes = sys.sim().stats().bytes_sent / 1024.0;
  r.attack_successes = sys.b_server(1).attack_successes();
  r.ok = done;
  if (done) {
    for (core::ServerRank rank = 1; rank <= sys.b_cfg().n && r.ok; ++rank) {
      if (!sys.is_honest_b(rank)) continue;
      auto res = sys.result(t, rank);
      r.ok = res && sys.oracle_decrypt_b(*res) == sys.plaintext_of(t);
    }
  }
  return r;
}

}  // namespace

int main() {
  std::puts("FIG4 — complete re-encryption protocol (async simulator, delays U[0.5ms, 20ms])");
  std::puts("");

  bench::Table table(
      {"n", "f", "scenario", "latency_ms", "messages", "kbytes", "integrity", "attack_signed"});

  for (std::size_t f : {1u, 2u, 3u}) {
    std::size_t n = 3 * f + 1;
    auto opts = [&](std::uint64_t seed) {
      core::SystemOptions o;
      o.a = {n, f};
      o.b = {n, f};
      o.seed = seed;
      return o;
    };

    RunResult honest = run(opts(10 + f));
    table.row({std::to_string(n), std::to_string(f), "honest", bench::fmt(honest.latency_ms),
               bench::fmt_u(honest.messages), bench::fmt(honest.kbytes),
               honest.ok ? "yes" : "NO", "-"});

    RunResult crash = run(opts(20 + f), Behavior::kHonest, /*crash_designated=*/true);
    table.row({std::to_string(n), std::to_string(f), "coordinator crashed",
               bench::fmt(crash.latency_ms), bench::fmt_u(crash.messages),
               bench::fmt(crash.kbytes), crash.ok ? "yes" : "NO", "-"});

    RunResult badvde = run(opts(30 + f), Behavior::kInconsistentContribution);
    table.row({std::to_string(n), std::to_string(f), "inconsistent contribution (4.2.2)",
               bench::fmt(badvde.latency_ms), bench::fmt_u(badvde.messages),
               bench::fmt(badvde.kbytes), badvde.ok ? "yes" : "NO", "-"});

    RunResult withhold = run(opts(40 + f), Behavior::kWithholdContribution);
    table.row({std::to_string(n), std::to_string(f), "withheld contribution",
               bench::fmt(withhold.latency_ms), bench::fmt_u(withhold.messages),
               bench::fmt(withhold.kbytes), withhold.ok ? "yes" : "NO", "-"});

    RunResult bogus = run(opts(50 + f), Behavior::kBogusBlindCoordinator);
    table.row({std::to_string(n), std::to_string(f), "bogus-blind coordinator (4.2.3)",
               bench::fmt(bogus.latency_ms), bench::fmt_u(bogus.messages),
               bench::fmt(bogus.kbytes), bogus.ok ? "yes" : "NO",
               std::to_string(bogus.attack_successes)});

    RunResult adaptive = run(opts(60 + f), Behavior::kAdaptiveCancelCoordinator);
    table.row({std::to_string(n), std::to_string(f), "adaptive-cancel coordinator (4.2.1)",
               bench::fmt(adaptive.latency_ms), bench::fmt_u(adaptive.messages),
               bench::fmt(adaptive.kbytes), adaptive.ok ? "yes" : "NO",
               std::to_string(adaptive.attack_successes)});
  }
  table.print();

  std::puts("");
  std::puts("Ablation — the cost of Byzantine tolerance (blinding phase only, n=3f+1, honest):");
  bench::Table ab({"n", "f", "fig3 failstop msgs", "fig4 full-protocol msgs", "ratio"});
  for (std::size_t f : {1u, 2u, 3u}) {
    std::size_t n = 3 * f + 1;
    core::FailstopOptions fo;
    fo.n = n;
    fo.f = f;
    fo.seed = 70 + f;
    core::FailstopBlindingSystem fsys(std::move(fo));
    fsys.run();
    std::uint64_t fig3_msgs = fsys.sim().stats().messages_sent;

    core::SystemOptions o;
    o.a = {n, f};
    o.b = {n, f};
    o.seed = 80 + f;
    RunResult full = run(std::move(o));
    ab.row({std::to_string(n), std::to_string(f), bench::fmt_u(fig3_msgs),
            bench::fmt_u(full.messages),
            bench::fmt(static_cast<double>(full.messages) / static_cast<double>(fig3_msgs), 1)});
  }
  ab.print();

  std::puts("");
  std::puts("Loss sweep — retransmission overhead under per-link drop (honest, n=4, f=1):");
  {
    bench::Table lt({"loss", "latency_ms", "messages", "dropped", "retransmits", "msg_overhead"});
    std::uint64_t baseline_msgs = 0;
    for (unsigned loss : {0u, 1u, 5u}) {
      core::SystemOptions o;
      o.a = {4, 1};
      o.b = {4, 1};
      o.seed = 200;  // same seed across rows: deltas are attributable to loss alone
      core::System sys(std::move(o));
      if (loss > 0) {
        net::FaultPlan plan;
        plan.drop_percent = loss;
        sys.sim().set_fault_plan(plan);
      }
      core::TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(4242)));
      bool done = sys.run_to_completion();
      bool ok = done;
      for (core::ServerRank rank = 1; rank <= 4 && ok; ++rank) {
        auto res = sys.result(t, rank);
        ok = res && sys.oracle_decrypt_b(*res) == sys.plaintext_of(t);
      }
      std::uint64_t retransmits = 0;
      for (core::ServerRank rank = 1; rank <= 4; ++rank)
        retransmits += sys.a_server(rank).retransmits_sent() + sys.b_server(rank).retransmits_sent();
      const auto& st = sys.sim().stats();
      if (loss == 0) baseline_msgs = st.messages_sent;
      double overhead =
          baseline_msgs ? static_cast<double>(st.messages_sent) / static_cast<double>(baseline_msgs)
                        : 1.0;
      lt.row({std::to_string(loss) + "%", bench::fmt(st.end_time / 1000.0),
              bench::fmt_u(st.messages_sent), bench::fmt_u(st.messages_dropped),
              bench::fmt_u(retransmits), ok ? bench::fmt(overhead, 2) + "x" : "FAILED"});
    }
    lt.print();
  }

  std::puts("");
  std::puts("Message breakdown by protocol phase (honest run, n=7, f=2, received counts):");
  {
    core::SystemOptions o;
    o.a = {7, 2};
    o.b = {7, 2};
    o.seed = 90;
    core::System sys(std::move(o));
    sys.add_transfer(sys.config().params.encode_message(Bigint(8)));
    sys.run_to_completion();
    auto hist = sys.rx_histogram();
    auto name = [](core::MsgType t) -> const char* {
      switch (t) {
        case core::MsgType::kInit: return "init";
        case core::MsgType::kCommit: return "commit";
        case core::MsgType::kReveal: return "reveal";
        case core::MsgType::kContribute: return "contribute";
        case core::MsgType::kBlind: return "blind";
        case core::MsgType::kDone: return "done";
        case core::MsgType::kSignRequest: return "sign-request";
        case core::MsgType::kSignCommitReply: return "sign-commit-reply";
        case core::MsgType::kSignQuorum: return "sign-quorum";
        case core::MsgType::kSignRevealReply: return "sign-reveal-reply";
        case core::MsgType::kSignRevealSet: return "sign-reveal-set";
        case core::MsgType::kSignPartialReply: return "sign-partial-reply";
        case core::MsgType::kDecryptRequest: return "decrypt-request";
        case core::MsgType::kDecryptShareReply: return "decrypt-share-reply";
        case core::MsgType::kTransferRequest: return "transfer-request";
        case core::MsgType::kResultRequest: return "result-request";
        case core::MsgType::kResultReply: return "result-reply";
        case core::MsgType::kClientDecryptRequest: return "client-decrypt-request";
        case core::MsgType::kClientDecryptReply: return "client-decrypt-reply";
      }
      return "?";
    };
    bench::Table mt({"message type", "received"});
    for (const auto& [type, count] : hist) mt.row({name(type), bench::fmt_u(count)});
    mt.print();
  }

  std::puts("");
  std::puts("Expected shape: latency grows mildly with f (more round-trip participants),");
  std::puts("messages grow ~quadratically (n broadcasts of n-sized quorum evidence);");
  std::puts("every adversarial row completes with integrity=yes and attack_signed=0.");
  return 0;
}
