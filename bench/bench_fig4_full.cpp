// FIG4: the complete Byzantine re-encryption protocol, end to end in the
// asynchronous simulator.
//
// Rows sweep service size and fault scenario; columns report virtual-time
// latency, message/byte totals, and whether integrity held (result decrypts
// to the original plaintext under B's key). The fail-stop blinding rows from
// bench_fig3 provide the ablation contrast: the commit/reveal round, VDE
// proofs, threshold signatures and self-verifying evidence are the price of
// Byzantine tolerance.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/failstop.hpp"
#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "table.hpp"
#include "zkp/schnorr.hpp"
#include "zkp/vde.hpp"

namespace {

using namespace dblind;  // NOLINT
using Behavior = core::ProtocolServer::Behavior;
using mpz::Bigint;

struct RunResult {
  double latency_ms = 0;
  std::uint64_t messages = 0;
  double kbytes = 0;
  bool ok = false;
  int attack_successes = 0;
};

RunResult run(core::SystemOptions opts, Behavior b1 = Behavior::kHonest,
              bool crash_designated = false) {
  if (b1 != Behavior::kHonest) {
    opts.b_behaviors.assign(opts.b.n, Behavior::kHonest);
    opts.b_behaviors[0] = b1;
  }
  core::System sys(std::move(opts));
  core::TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(123456)));
  if (crash_designated) sys.sim().crash_at(sys.config().b.node_of(1), 0);

  RunResult r;
  bool done = sys.run_to_completion();
  r.latency_ms = sys.sim().stats().end_time / 1000.0;
  r.messages = sys.sim().stats().messages_sent;
  r.kbytes = sys.sim().stats().bytes_sent / 1024.0;
  r.attack_successes = sys.b_server(1).attack_successes();
  r.ok = done;
  if (done) {
    for (core::ServerRank rank = 1; rank <= sys.b_cfg().n && r.ok; ++rank) {
      if (!sys.is_honest_b(rank)) continue;
      auto res = sys.result(t, rank);
      r.ok = res && sys.oracle_decrypt_b(*res) == sys.plaintext_of(t);
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // --metrics: additionally dump the instrumented run's full registry in
  // Prometheus text format (after the obs-overhead section).
  // --pool-size N / --warm: contribution-pool capacity and prefill for the
  // pipelined-throughput section (the cold-vs-warm comparison section always
  // runs both arms so the BENCHJSON gate rows are emitted unconditionally).
  bool dump_metrics = false;
  std::size_t pool_size = 8;
  bool warm = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else if (std::strcmp(argv[i], "--warm") == 0) {
      warm = true;
    } else if (std::strcmp(argv[i], "--pool-size") == 0 && i + 1 < argc) {
      pool_size = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  std::puts("FIG4 — complete re-encryption protocol (async simulator, delays U[0.5ms, 20ms])");
  std::puts("");

  bench::Table table(
      {"n", "f", "scenario", "latency_ms", "messages", "kbytes", "integrity", "attack_signed"});

  for (std::size_t f : {1u, 2u, 3u}) {
    std::size_t n = 3 * f + 1;
    auto opts = [&](std::uint64_t seed) {
      core::SystemOptions o;
      o.a = {n, f};
      o.b = {n, f};
      o.seed = seed;
      return o;
    };

    RunResult honest = run(opts(10 + f));
    table.row({std::to_string(n), std::to_string(f), "honest", bench::fmt(honest.latency_ms),
               bench::fmt_u(honest.messages), bench::fmt(honest.kbytes),
               honest.ok ? "yes" : "NO", "-"});

    RunResult crash = run(opts(20 + f), Behavior::kHonest, /*crash_designated=*/true);
    table.row({std::to_string(n), std::to_string(f), "coordinator crashed",
               bench::fmt(crash.latency_ms), bench::fmt_u(crash.messages),
               bench::fmt(crash.kbytes), crash.ok ? "yes" : "NO", "-"});

    RunResult badvde = run(opts(30 + f), Behavior::kInconsistentContribution);
    table.row({std::to_string(n), std::to_string(f), "inconsistent contribution (4.2.2)",
               bench::fmt(badvde.latency_ms), bench::fmt_u(badvde.messages),
               bench::fmt(badvde.kbytes), badvde.ok ? "yes" : "NO", "-"});

    RunResult withhold = run(opts(40 + f), Behavior::kWithholdContribution);
    table.row({std::to_string(n), std::to_string(f), "withheld contribution",
               bench::fmt(withhold.latency_ms), bench::fmt_u(withhold.messages),
               bench::fmt(withhold.kbytes), withhold.ok ? "yes" : "NO", "-"});

    RunResult bogus = run(opts(50 + f), Behavior::kBogusBlindCoordinator);
    table.row({std::to_string(n), std::to_string(f), "bogus-blind coordinator (4.2.3)",
               bench::fmt(bogus.latency_ms), bench::fmt_u(bogus.messages),
               bench::fmt(bogus.kbytes), bogus.ok ? "yes" : "NO",
               std::to_string(bogus.attack_successes)});

    RunResult adaptive = run(opts(60 + f), Behavior::kAdaptiveCancelCoordinator);
    table.row({std::to_string(n), std::to_string(f), "adaptive-cancel coordinator (4.2.1)",
               bench::fmt(adaptive.latency_ms), bench::fmt_u(adaptive.messages),
               bench::fmt(adaptive.kbytes), adaptive.ok ? "yes" : "NO",
               std::to_string(adaptive.attack_successes)});
  }
  table.print();

  std::puts("");
  std::puts("Ablation — the cost of Byzantine tolerance (blinding phase only, n=3f+1, honest):");
  bench::Table ab({"n", "f", "fig3 failstop msgs", "fig4 full-protocol msgs", "ratio"});
  for (std::size_t f : {1u, 2u, 3u}) {
    std::size_t n = 3 * f + 1;
    core::FailstopOptions fo;
    fo.n = n;
    fo.f = f;
    fo.seed = 70 + f;
    core::FailstopBlindingSystem fsys(std::move(fo));
    fsys.run();
    std::uint64_t fig3_msgs = fsys.sim().stats().messages_sent;

    core::SystemOptions o;
    o.a = {n, f};
    o.b = {n, f};
    o.seed = 80 + f;
    RunResult full = run(std::move(o));
    ab.row({std::to_string(n), std::to_string(f), bench::fmt_u(fig3_msgs),
            bench::fmt_u(full.messages),
            bench::fmt(static_cast<double>(full.messages) / static_cast<double>(fig3_msgs), 1)});
  }
  ab.print();

  std::puts("");
  std::puts("Loss sweep — retransmission overhead under per-link drop (honest, n=4, f=1):");
  {
    bench::Table lt({"loss", "latency_ms", "messages", "dropped", "retransmits", "msg_overhead"});
    std::uint64_t baseline_msgs = 0;
    for (unsigned loss : {0u, 1u, 5u}) {
      core::SystemOptions o;
      o.a = {4, 1};
      o.b = {4, 1};
      o.seed = 200;  // same seed across rows: deltas are attributable to loss alone
      core::System sys(std::move(o));
      if (loss > 0) {
        net::FaultPlan plan;
        plan.drop_percent = loss;
        sys.sim().set_fault_plan(plan);
      }
      core::TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(4242)));
      bool done = sys.run_to_completion();
      bool ok = done;
      for (core::ServerRank rank = 1; rank <= 4 && ok; ++rank) {
        auto res = sys.result(t, rank);
        ok = res && sys.oracle_decrypt_b(*res) == sys.plaintext_of(t);
      }
      std::uint64_t retransmits = 0;
      for (core::ServerRank rank = 1; rank <= 4; ++rank)
        retransmits += sys.a_server(rank).retransmits_sent() + sys.b_server(rank).retransmits_sent();
      const auto& st = sys.sim().stats();
      if (loss == 0) baseline_msgs = st.messages_sent;
      double overhead =
          baseline_msgs ? static_cast<double>(st.messages_sent) / static_cast<double>(baseline_msgs)
                        : 1.0;
      lt.row({std::to_string(loss) + "%", bench::fmt(st.end_time / 1000.0),
              bench::fmt_u(st.messages_sent), bench::fmt_u(st.messages_dropped),
              bench::fmt_u(retransmits), ok ? bench::fmt(overhead, 2) + "x" : "FAILED"});
    }
    lt.print();
  }

  std::puts("");
  std::puts("Message breakdown by protocol phase (honest run, n=7, f=2, received counts):");
  {
    core::SystemOptions o;
    o.a = {7, 2};
    o.b = {7, 2};
    o.seed = 90;
    core::System sys(std::move(o));
    sys.add_transfer(sys.config().params.encode_message(Bigint(8)));
    sys.run_to_completion();
    auto hist = sys.rx_histogram();
    auto name = [](core::MsgType t) -> const char* {
      switch (t) {
        case core::MsgType::kInit: return "init";
        case core::MsgType::kCommit: return "commit";
        case core::MsgType::kReveal: return "reveal";
        case core::MsgType::kContribute: return "contribute";
        case core::MsgType::kBlind: return "blind";
        case core::MsgType::kDone: return "done";
        case core::MsgType::kSignRequest: return "sign-request";
        case core::MsgType::kSignCommitReply: return "sign-commit-reply";
        case core::MsgType::kSignQuorum: return "sign-quorum";
        case core::MsgType::kSignRevealReply: return "sign-reveal-reply";
        case core::MsgType::kSignRevealSet: return "sign-reveal-set";
        case core::MsgType::kSignPartialReply: return "sign-partial-reply";
        case core::MsgType::kDecryptRequest: return "decrypt-request";
        case core::MsgType::kDecryptShareReply: return "decrypt-share-reply";
        case core::MsgType::kTransferRequest: return "transfer-request";
        case core::MsgType::kResultRequest: return "result-request";
        case core::MsgType::kResultReply: return "result-reply";
        case core::MsgType::kClientDecryptRequest: return "client-decrypt-request";
        case core::MsgType::kClientDecryptReply: return "client-decrypt-reply";
        case core::MsgType::kReconfigStart: return "reconfig-start";
        case core::MsgType::kReshareDeal: return "reshare-deal";
        case core::MsgType::kReshareSubshare: return "reshare-subshare";
        case core::MsgType::kReconfigApply: return "reconfig-apply";
        case core::MsgType::kReconfigEcho: return "reconfig-echo";
        case core::MsgType::kWrongEpoch: return "wrong-epoch";
        case core::MsgType::kReconfigPull: return "reconfig-pull";
        case core::MsgType::kReconfigState: return "reconfig-state";
        case core::MsgType::kSubsharePull: return "subshare-pull";
      }
      return "?";
    };
    bench::Table mt({"message type", "received"});
    for (const auto& [type, count] : hist) mt.row({name(type), bench::fmt_u(count)});
    mt.print();
  }

  std::puts("");
  std::puts("Verification fast path (PR 3) — blind-evidence validation, serial vs batched:");
  std::puts("(the Figure-4 verification-dominated column: on receipt of a blind request a");
  std::puts(" backup checks f+1 contribute signatures, the embedded reveal evidence — which");
  std::puts(" the serial path re-validates once per contribute — and f+1 VDE proofs;");
  std::puts(" mont-muls are deterministic, ms are wall-clock over 5 reps)");
  {
    using group::GroupParams;
    using group::ParamId;
    using mpz::Prng;

    bench::Table vt({"f", "serial_muls", "batch_muls", "mul_ratio", "serial_ms", "batch_ms",
                     "ms_ratio"});
    for (std::size_t f : {1u, 2u, 3u}) {
      GroupParams gp = GroupParams::named(ParamId::kSec512);
      Prng prng(300 + f);
      // Signature evidence: f+1 contribute sigs over distinct payloads, plus
      // the shared reveal evidence (1 coordinator sig + 2f+1 commit sigs).
      std::vector<zkp::SchnorrSigningKey> keys;
      std::vector<std::vector<std::uint8_t>> msgs;
      std::vector<zkp::SchnorrSignature> sigs;
      std::vector<zkp::SchnorrVerifyKey> vks;
      const std::size_t contribute_sigs = f + 1;
      const std::size_t reveal_sigs = 2 * f + 2;  // 1 reveal + 2f+1 commits
      for (std::size_t i = 0; i < contribute_sigs + reveal_sigs; ++i) {
        keys.push_back(zkp::SchnorrSigningKey::generate(gp, prng));
        vks.push_back(keys.back().verify_key());
        msgs.emplace_back(96, static_cast<std::uint8_t>(i));
        sigs.push_back(keys.back().sign(msgs.back(), prng));
      }
      // f+1 VDE proofs (one per contribution).
      elgamal::KeyPair ka = elgamal::KeyPair::generate(gp, prng);
      elgamal::KeyPair kb = elgamal::KeyPair::generate(gp, prng);
      std::vector<elgamal::Ciphertext> cas, cbs;
      std::vector<zkp::VdeProof> proofs;
      for (std::size_t i = 0; i < f + 1; ++i) {
        Bigint rho = gp.random_element(prng);
        Bigint r1 = gp.random_exponent(prng);
        Bigint r2 = gp.random_exponent(prng);
        cas.push_back(ka.public_key().encrypt_with_nonce(rho, r1));
        cbs.push_back(kb.public_key().encrypt_with_nonce(rho, r2));
        proofs.push_back(zkp::vde_prove(ka.public_key(), cas.back(), r1, kb.public_key(),
                                        cbs.back(), r2, "bench", prng));
      }
      std::vector<zkp::VdeBatchItem> vde_items;
      for (std::size_t i = 0; i < f + 1; ++i) {
        vde_items.push_back(
            {&ka.public_key(), &cas[i], &kb.public_key(), &cbs[i], &proofs[i], "bench"});
      }
      std::vector<zkp::BatchEntry> sig_batch;
      for (std::size_t i = 0; i < contribute_sigs + reveal_sigs; ++i) {
        sig_batch.push_back({&vks[i], msgs[i], &sigs[i]});
      }
      (void)gp.pow_g(Bigint(3));  // build the fixed-base table outside the timing

      auto serial_pass = [&] {
        bool ok = true;
        for (std::size_t i = 0; i < contribute_sigs; ++i) {
          ok = ok && vks[i].verify(msgs[i], sigs[i]);
          // The reveal evidence rides inside every contribute; the serial
          // verifier re-checks it each time (what the batch path dedups).
          for (std::size_t j = contribute_sigs; j < contribute_sigs + reveal_sigs; ++j) {
            ok = ok && vks[j].verify(msgs[j], sigs[j]);
          }
          ok = ok && zkp::vde_verify(ka.public_key(), cas[i], kb.public_key(), cbs[i],
                                     proofs[i], "bench");
        }
        return ok;
      };
      auto batch_pass = [&](Prng& vr) {
        return zkp::schnorr_batch_verify(gp, sig_batch) && zkp::vde_batch_verify(vde_items, vr);
      };

      constexpr int kReps = 5;
      if (!serial_pass()) std::puts("BUG: serial verification failed");
      std::uint64_t m0 = gp.mont_mul_count();
      auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < kReps; ++r) (void)serial_pass();
      auto t1 = std::chrono::steady_clock::now();
      std::uint64_t serial_muls = (gp.mont_mul_count() - m0) / kReps;
      double serial_ms = std::chrono::duration<double, std::milli>(t1 - t0).count() / kReps;

      Prng warm(777);
      if (!batch_pass(warm)) std::puts("BUG: batch verification failed");
      Prng vr(888 + f);
      m0 = gp.mont_mul_count();
      t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < kReps; ++r) (void)batch_pass(vr);
      t1 = std::chrono::steady_clock::now();
      std::uint64_t batch_muls = (gp.mont_mul_count() - m0) / kReps;
      double batch_ms = std::chrono::duration<double, std::milli>(t1 - t0).count() / kReps;

      double mul_ratio = static_cast<double>(serial_muls) / static_cast<double>(batch_muls);
      double ms_ratio = serial_ms / batch_ms;
      vt.row({std::to_string(f), bench::fmt_u(serial_muls), bench::fmt_u(batch_muls),
              bench::fmt(mul_ratio, 2) + "x", bench::fmt(serial_ms, 2), bench::fmt(batch_ms, 2),
              bench::fmt(ms_ratio, 2) + "x"});
      // Machine-readable line for tools/bench_check.py.
      std::printf(
          "BENCHJSON {\"section\": \"blind-verify\", \"f\": %zu, \"serial_mont_muls\": %llu, "
          "\"batch_mont_muls\": %llu, \"serial_ms\": %.4f, \"batch_ms\": %.4f}\n",
          f, static_cast<unsigned long long>(serial_muls),
          static_cast<unsigned long long>(batch_muls), serial_ms, batch_ms);
    }
    vt.print();
  }

  std::puts("");
  std::puts("End-to-end mont-muls, honest run, batch_verify off vs on (same seed):");
  {
    bench::Table et({"n", "f", "serial_muls", "batch_muls", "ratio"});
    for (std::size_t f : {1u, 2u}) {
      std::size_t n = 3 * f + 1;
      std::uint64_t muls[2] = {0, 0};
      for (int batch = 0; batch < 2; ++batch) {
        core::SystemOptions o;
        o.a = {n, f};
        o.b = {n, f};
        o.seed = 400 + f;
        o.protocol.batch_verify = batch == 1;
        core::System sys(std::move(o));
        sys.add_transfer(sys.config().params.encode_message(Bigint(55)));
        std::uint64_t before = sys.config().params.mont_mul_count();
        sys.run_to_completion();
        muls[batch] = sys.config().params.mont_mul_count() - before;
      }
      et.row({std::to_string(n), std::to_string(f), bench::fmt_u(muls[0]), bench::fmt_u(muls[1]),
              bench::fmt(static_cast<double>(muls[0]) / static_cast<double>(muls[1]), 2) + "x"});
      std::printf(
          "BENCHJSON {\"section\": \"e2e\", \"f\": %zu, \"serial_mont_muls\": %llu, "
          "\"batch_mont_muls\": %llu}\n",
          f, static_cast<unsigned long long>(muls[0]),
          static_cast<unsigned long long>(muls[1]));
    }
    et.print();
  }

  std::puts("");
  std::puts("Observability overhead (PR 4) — same honest fixed-seed run, plain vs fully");
  std::puts("instrumented (JSONL trace + metrics registry). The recorder hooks must be");
  std::puts("pure observers: identical mont-mul counts and message totals, or the");
  std::puts("instrumentation has perturbed the protocol.");
  {
    bench::Table ot({"mode", "mont_muls", "messages", "trace_events", "latency_ms"});
    std::uint64_t muls[2] = {0, 0};
    std::uint64_t msgs[2] = {0, 0};
    double lat[2] = {0, 0};
    obs::MetricsRegistry registry;
    std::ostringstream trace_out;
    for (int inst = 0; inst < 2; ++inst) {
      core::SystemOptions o;
      o.a = {4, 1};
      o.b = {4, 1};
      o.seed = 500;
      std::optional<obs::JsonlTraceRecorder> trace;
      if (inst == 1) {
        trace.emplace(trace_out);
        o.protocol.trace = &*trace;
        o.protocol.metrics = &registry;
      }
      core::System sys(std::move(o));
      sys.add_transfer(sys.config().params.encode_message(Bigint(7)));
      std::uint64_t before = sys.config().params.mont_mul_count();
      sys.run_to_completion();
      muls[inst] = sys.config().params.mont_mul_count() - before;
      msgs[inst] = sys.sim().stats().messages_sent;
      lat[inst] = sys.sim().stats().end_time / 1000.0;
    }
    std::uint64_t events = 0;
    for (char c : trace_out.str()) events += c == '\n' ? 1 : 0;
    ot.row({"plain", bench::fmt_u(muls[0]), bench::fmt_u(msgs[0]), "-", bench::fmt(lat[0])});
    ot.row({"instrumented", bench::fmt_u(muls[1]), bench::fmt_u(msgs[1]), bench::fmt_u(events),
            bench::fmt(lat[1])});
    ot.print();
    if (muls[0] != muls[1] || msgs[0] != msgs[1]) {
      std::puts("BUG: instrumentation changed the protocol's deterministic cost");
    }
    std::printf(
        "BENCHJSON {\"section\": \"obs-overhead\", \"plain_mont_muls\": %llu, "
        "\"instrumented_mont_muls\": %llu, \"plain_messages\": %llu, "
        "\"instrumented_messages\": %llu, \"trace_events\": %llu}\n",
        static_cast<unsigned long long>(muls[0]), static_cast<unsigned long long>(muls[1]),
        static_cast<unsigned long long>(msgs[0]), static_cast<unsigned long long>(msgs[1]),
        static_cast<unsigned long long>(events));

    // Per-phase latency breakdown, from the instrumented run's registry
    // (coordinator/responder phase histograms; virtual microseconds).
    bench::Table pt({"phase", "spans", "mean_ms"});
    for (const auto& h : registry.histogram_samples()) {
      constexpr const char* kPrefix = "dblind_phase_";
      if (h.name.rfind(kPrefix, 0) != 0 || h.count == 0) continue;
      std::string phase = h.name.substr(std::strlen(kPrefix));
      if (auto pos = phase.rfind("_us"); pos != std::string::npos) phase.resize(pos);
      double mean_ms = static_cast<double>(h.total) / static_cast<double>(h.count) / 1000.0;
      pt.row({phase, bench::fmt_u(h.count), bench::fmt(mean_ms, 2)});
      std::printf(
          "BENCHJSON {\"section\": \"phases\", \"phase\": \"%s\", \"spans\": %llu, "
          "\"total_us\": %llu}\n",
          phase.c_str(), static_cast<unsigned long long>(h.count),
          static_cast<unsigned long long>(h.total));
    }
    pt.print();

    if (dump_metrics) {
      std::puts("");
      std::puts("Metrics registry (instrumented run, Prometheus text format):");
      std::fputs(registry.prometheus_text().c_str(), stdout);
    }
  }

  std::puts("");
  std::puts("Offline/online split (PR 5) — contribution pool, cold vs warm (same seed):");
  std::puts("(online = mont-muls a contributor spends inside the init/reveal handlers,");
  std::puts(" the latency-critical path; the warm pool moves bundle construction — dual");
  std::puts(" encryption + VDE announcements — into the offline refill timer. Results");
  std::puts(" must be bit-identical across modes: the pool changes WHEN the work runs,");
  std::puts(" never WHAT randomness it consumes.)");
  {
    struct PoolRun {
      std::uint64_t online = 0;
      std::uint64_t offline = 0;
      std::uint64_t drains = 0;
      std::uint64_t fallbacks = 0;
      std::uint64_t refills = 0;
      double latency_ms = 0;
      std::vector<std::optional<elgamal::Ciphertext>> results;
    };
    constexpr int kPoolTransfers = 6;
    auto run_pool = [&](std::size_t cap, bool prefill) {
      obs::MetricsRegistry reg;
      core::SystemOptions o;
      o.a = {4, 1};
      o.b = {4, 1};
      o.seed = 600;
      o.protocol.contribution_pool = cap;
      o.protocol.pool_prefill = prefill;
      o.protocol.metrics = &reg;
      core::System sys(std::move(o));
      std::vector<core::TransferId> ts;
      for (int i = 0; i < kPoolTransfers; ++i) {
        ts.push_back(sys.add_transfer(sys.config().params.encode_message(Bigint(9000 + i))));
      }
      PoolRun r;
      if (!sys.run_to_completion()) std::puts("BUG: pool bench run did not complete");
      r.latency_ms = sys.sim().stats().end_time / 1000.0;
      for (core::TransferId t : ts) {
        for (core::ServerRank rank = 1; rank <= 4; ++rank) r.results.push_back(sys.result(t, rank));
      }
      for (core::ServerRank rank = 1; rank <= 4; ++rank) {
        const std::string node = std::to_string(sys.config().b.node_of(rank));
        r.online += reg.counter("dblind_contrib_mont_muls_total",
                                {{"node", node}, {"path", "online"}})
                        .value();
        r.offline += reg.counter("dblind_contrib_mont_muls_total",
                                 {{"node", node}, {"path", "offline"}})
                         .value();
        r.drains +=
            reg.counter("dblind_pool_events_total", {{"node", node}, {"event", "drain"}}).value();
        r.fallbacks +=
            reg.counter("dblind_pool_events_total", {{"node", node}, {"event", "fallback"}})
                .value();
        r.refills +=
            reg.counter("dblind_pool_events_total", {{"node", node}, {"event", "refill"}}).value();
      }
      return r;
    };
    PoolRun cold = run_pool(0, false);
    PoolRun warmed = run_pool(pool_size, true);
    const bool identical = cold.results == warmed.results;

    bench::Table pt({"mode", "online_muls", "offline_muls", "online/transfer", "drains",
                     "fallbacks", "identical"});
    auto per_transfer = [](std::uint64_t v) {
      return bench::fmt(static_cast<double>(v) / kPoolTransfers, 1);
    };
    pt.row({"cold (no pool)", bench::fmt_u(cold.online), bench::fmt_u(cold.offline),
            per_transfer(cold.online), "-", "-", "-"});
    pt.row({"warm (pool=" + std::to_string(pool_size) + ")", bench::fmt_u(warmed.online),
            bench::fmt_u(warmed.offline), per_transfer(warmed.online),
            bench::fmt_u(warmed.drains), bench::fmt_u(warmed.fallbacks),
            identical ? "yes" : "NO"});
    pt.print();
    if (!identical) std::puts("BUG: warm-pool run diverged from the cold run");
    std::printf(
        "BENCHJSON {\"section\": \"pool\", \"transfers\": %d, \"cold_online_mont_muls\": %llu, "
        "\"warm_online_mont_muls\": %llu, \"warm_offline_mont_muls\": %llu, "
        "\"warm_drains\": %llu, \"warm_fallbacks\": %llu, \"warm_refills\": %llu, "
        "\"identical_results\": %d}\n",
        kPoolTransfers, static_cast<unsigned long long>(cold.online),
        static_cast<unsigned long long>(warmed.online),
        static_cast<unsigned long long>(warmed.offline),
        static_cast<unsigned long long>(warmed.drains),
        static_cast<unsigned long long>(warmed.fallbacks),
        static_cast<unsigned long long>(warmed.refills), identical ? 1 : 0);
  }

  std::puts("");
  std::puts("Fixed-base comb tables (PR 5) — pinned protocol base vs generic pow:");
  std::puts("(one epoch-long table build per pinned base; each exponentiation then");
  std::puts(" costs <= ceil(|q|/w) mont-muls with zero squarings)");
  {
    using group::GroupParams;
    using group::ParamId;
    using mpz::Prng;
    GroupParams gp = GroupParams::named(ParamId::kSec512);
    Prng prng(911);
    const Bigint y = gp.pow_g(gp.random_exponent(prng));
    gp.pin_base(y);  // builds the comb table (outside the measured window)
    constexpr int kExps = 8;
    std::vector<Bigint> exps;
    for (int i = 0; i < kExps; ++i) exps.push_back(gp.random_exponent(prng));

    std::uint64_t m0 = gp.mont_mul_count();
    auto t0 = std::chrono::steady_clock::now();
    for (const Bigint& e : exps) (void)gp.pow_fixed(y, e);
    auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t comb_muls = (gp.mont_mul_count() - m0) / kExps;
    const double comb_ms = std::chrono::duration<double, std::milli>(t1 - t0).count() / kExps;

    m0 = gp.mont_mul_count();
    t0 = std::chrono::steady_clock::now();
    for (const Bigint& e : exps) (void)gp.pow(y, e);
    t1 = std::chrono::steady_clock::now();
    const std::uint64_t generic_muls = (gp.mont_mul_count() - m0) / kExps;
    const double generic_ms = std::chrono::duration<double, std::milli>(t1 - t0).count() / kExps;

    for (const Bigint& e : exps) {
      if (gp.pow_fixed(y, e) != gp.pow(y, e)) std::puts("BUG: comb result mismatch");
    }
    bench::Table ft({"path", "mont_muls/pow", "ms/pow", "ratio"});
    ft.row({"generic", bench::fmt_u(generic_muls), bench::fmt(generic_ms, 3), "1.00x"});
    ft.row({"comb (pinned)", bench::fmt_u(comb_muls), bench::fmt(comb_ms, 3),
            bench::fmt(static_cast<double>(generic_muls) / static_cast<double>(comb_muls), 2) +
                "x"});
    ft.print();
    std::printf(
        "BENCHJSON {\"section\": \"fixed-base\", \"comb_mont_muls\": %llu, "
        "\"generic_mont_muls\": %llu, \"comb_ms\": %.4f, \"generic_ms\": %.4f}\n",
        static_cast<unsigned long long>(comb_muls), static_cast<unsigned long long>(generic_muls),
        comb_ms, generic_ms);
  }

  std::puts("");
  std::printf("Pipelined throughput — 12 transfers in flight (pool=%zu, %s; override with"
              " --pool-size N --warm):\n",
              pool_size, warm ? "warm" : "cold");
  {
    core::SystemOptions o;
    o.a = {4, 1};
    o.b = {4, 1};
    o.seed = 700;
    o.protocol.contribution_pool = pool_size;
    o.protocol.pool_prefill = warm;
    core::System sys(std::move(o));
    constexpr int kN = 12;
    std::vector<core::TransferId> ts;
    for (int i = 0; i < kN; ++i) {
      ts.push_back(sys.add_transfer(sys.config().params.encode_message(Bigint(7000 + i))));
    }
    auto w0 = std::chrono::steady_clock::now();
    bool done = sys.run_to_completion();
    auto w1 = std::chrono::steady_clock::now();
    bool ok = done;
    for (core::TransferId t : ts) {
      for (core::ServerRank rank = 1; rank <= 4 && ok; ++rank) {
        auto res = sys.result(t, rank);
        ok = res && sys.oracle_decrypt_b(*res) == sys.plaintext_of(t);
      }
    }
    const double wall_ms = std::chrono::duration<double, std::milli>(w1 - w0).count();
    const double virt_ms = sys.sim().stats().end_time / 1000.0;
    const double tps = wall_ms > 0 ? kN / (wall_ms / 1000.0) : 0;
    bench::Table tt({"transfers", "virtual_ms", "wall_ms", "transfers/sec", "integrity"});
    tt.row({std::to_string(kN), bench::fmt(virt_ms), bench::fmt(wall_ms, 1), bench::fmt(tps, 1),
            ok ? "yes" : "NO"});
    tt.print();
    std::printf(
        "BENCHJSON {\"section\": \"throughput\", \"transfers\": %d, \"pool_size\": %zu, "
        "\"warm\": %d, \"wall_ms\": %.2f, \"virtual_ms\": %.2f, \"transfers_per_sec\": %.2f, "
        "\"integrity\": %d}\n",
        kN, pool_size, warm ? 1 : 0, wall_ms, virt_ms, tps, ok ? 1 : 0);
  }

  std::puts("");
  std::puts("Epochal reconfiguration (PR 7) — steady-state vs rotation-window cost:");
  std::puts("(two runs, same seed: a baseline with no rotation, and a run whose 4");
  std::puts(" transfers are caught mid-flight by a same-roster re-share of service B —");
  std::puts(" they abort at the install (I6) and re-run under epoch 1. The rotation");
  std::puts(" window prices the re-share round plus the discarded in-flight work; the");
  std::puts(" post-install window is the full protocol under the new configuration.");
  std::puts(" Gate: post-rotation steady-state mont-muls/transfer within 5% of the");
  std::puts(" baseline — the install's invalidation cascade (pinned comb tables,");
  std::puts(" contribution pool, offline prng) must re-arm fully, not leak cost into");
  std::puts(" the new epoch.)");
  {
    constexpr int kWave = 4;
    constexpr net::Time kRotateAt = 30'000;  // lands well inside the first round-trips
    auto make_sys = [&](bool rotate) {
      core::SystemOptions o;
      o.a = {4, 1};
      o.b = {4, 1};
      o.seed = 800;
      auto sys = std::make_unique<core::System>(std::move(o));
      std::vector<core::TransferId> ts;
      for (int i = 0; i < kWave; ++i) {
        ts.push_back(sys->add_transfer(sys->config().params.encode_message(Bigint(8100 + i))));
      }
      if (rotate) {
        std::vector<net::NodeId> roster;
        for (core::ServerRank r = 1; r <= 4; ++r) roster.push_back(sys->config().b.node_of(r));
        sys->schedule_reconfig_b(sys->make_b_spec(1, 1, roster), kRotateAt);
      }
      return std::make_pair(std::move(sys), std::move(ts));
    };
    auto integrity = [](core::System& sys, const std::vector<core::TransferId>& ts) {
      for (core::ServerRank r = 1; r <= 4; ++r) {
        for (core::TransferId t : ts) {
          auto res = sys.result(t, r);
          if (!res || sys.oracle_decrypt_b(*res) != sys.plaintext_of(t)) return false;
        }
      }
      return true;
    };

    auto [base_sys, base_ts] = make_sys(false);
    const std::uint64_t b0 = base_sys->config().params.mont_mul_count();
    bool ok = base_sys->run_to_completion();
    const std::uint64_t pre_muls = base_sys->config().params.mont_mul_count() - b0;
    const double t_base = base_sys->sim().stats().end_time / 1000.0;
    ok = ok && integrity(*base_sys, base_ts);

    auto [rot_sys, rot_ts] = make_sys(true);
    core::System& rs = *rot_sys;
    auto installed = [&rs] {
      for (core::ServerRank r = 1; r <= 4; ++r) {
        if (rs.b_server(r).config_epoch() != 1 || rs.b_server(r).share_pending()) return false;
      }
      return true;
    };
    const std::uint64_t r0 = rot_sys->config().params.mont_mul_count();
    ok = ok && rot_sys->sim().run_until(installed, 50'000'000);
    const std::uint64_t rotation_muls = rot_sys->config().params.mont_mul_count() - r0;
    const double t_install = rot_sys->sim().stats().end_time / 1000.0;
    ok = ok && rot_sys->run_to_completion();
    const std::uint64_t post_muls = rot_sys->config().params.mont_mul_count() - r0 - rotation_muls;
    const double t_rot = rot_sys->sim().stats().end_time / 1000.0;
    ok = ok && integrity(*rot_sys, rot_ts);

    auto per_transfer = [&](std::uint64_t muls) {
      return bench::fmt(static_cast<double>(muls) / kWave, 1);
    };
    const double delta = pre_muls != 0
                             ? (static_cast<double>(post_muls) - static_cast<double>(pre_muls)) /
                                   static_cast<double>(pre_muls) * 100.0
                             : 0.0;
    bench::Table rt({"window", "mont_muls", "muls/transfer", "virtual_ms"});
    rt.row({"baseline (no rotation)", bench::fmt_u(pre_muls), per_transfer(pre_muls),
            bench::fmt(t_base)});
    rt.row({"rotation (re-share + aborted work)", bench::fmt_u(rotation_muls), "-",
            bench::fmt(t_install)});
    rt.row({"post-install steady state", bench::fmt_u(post_muls),
            per_transfer(post_muls) + " (" + bench::fmt(delta, 2) + "% vs baseline)",
            bench::fmt(t_rot - t_install)});
    rt.print();
    if (!ok) std::puts("BUG: reconfiguration bench lost integrity");
    std::printf(
        "BENCHJSON {\"section\": \"reconfig\", \"wave_transfers\": %d, "
        "\"pre_wave_mont_muls\": %llu, \"rotation_mont_muls\": %llu, "
        "\"post_wave_mont_muls\": %llu, \"installed\": %d, \"integrity\": %d}\n",
        kWave, static_cast<unsigned long long>(pre_muls),
        static_cast<unsigned long long>(rotation_muls),
        static_cast<unsigned long long>(post_muls), installed() ? 1 : 0, ok ? 1 : 0);
  }

  std::puts("");
  std::puts("Group backend comparison (PR 10) — mod-p 2048-bit oracle vs ristretto255:");
  std::puts("(same honest run, same seed, swapping only the group backend. Costs are");
  std::puts(" normalized to 64x64-bit word multiplications: deterministic group-op");
  std::puts(" counts x op_cost_weight (mod-p: 2k^2 per Montgomery mul at k limbs;");
  std::puts(" ec255: 25 per field mul), so the gate cannot flake on a loaded box.");
  std::puts(" Wall-clock is recorded as context. Elements shrink 256 -> 32 bytes.)");
  {
    struct BackendRun {
      std::string name;
      std::uint64_t ops = 0;
      std::uint64_t weight = 0;
      std::uint64_t word_muls = 0;
      std::size_t elem_bytes = 0;
      double wall_ms = 0;
      double virt_ms = 0;
      double kbytes = 0;
      bool ok = false;
    };
    auto run_backend = [&](group::ParamId id) {
      core::SystemOptions o;
      o.a = {4, 1};
      o.b = {4, 1};
      o.seed = 900;
      o.params = group::GroupParams::named(id);
      core::System sys(std::move(o));
      core::TransferId t =
          sys.add_transfer(sys.config().params.encode_message(Bigint(123456)));
      BackendRun r;
      r.name = sys.config().params.backend_name();
      r.weight = sys.config().params.op_cost_weight();
      r.elem_bytes = sys.config().params.element_size();
      const std::uint64_t before = sys.config().params.group_op_count();
      auto w0 = std::chrono::steady_clock::now();
      bool done = sys.run_to_completion();
      auto w1 = std::chrono::steady_clock::now();
      r.ops = sys.config().params.group_op_count() - before;
      r.word_muls = r.ops * r.weight;
      r.wall_ms = std::chrono::duration<double, std::milli>(w1 - w0).count();
      r.virt_ms = sys.sim().stats().end_time / 1000.0;
      r.kbytes = sys.sim().stats().bytes_sent / 1024.0;
      r.ok = done;
      for (core::ServerRank rank = 1; rank <= 4 && r.ok; ++rank) {
        auto res = sys.result(t, rank);
        r.ok = res && sys.config().params.decode_message(sys.oracle_decrypt_b(*res)) ==
                          Bigint(123456);
      }
      return r;
    };
    BackendRun modp = run_backend(group::ParamId::kSec2048);
    BackendRun ecr = run_backend(group::ParamId::kEc255);
    const double cost_ratio =
        static_cast<double>(modp.word_muls) / static_cast<double>(ecr.word_muls);
    bench::Table bt({"backend", "group_ops", "weight", "word_muls", "elem_bytes", "wire_kbytes",
                     "wall_ms", "integrity"});
    bt.row({modp.name + " (sec2048)", bench::fmt_u(modp.ops), bench::fmt_u(modp.weight),
            bench::fmt_u(modp.word_muls), std::to_string(modp.elem_bytes),
            bench::fmt(modp.kbytes), bench::fmt(modp.wall_ms, 1), modp.ok ? "yes" : "NO"});
    bt.row({ecr.name, bench::fmt_u(ecr.ops), bench::fmt_u(ecr.weight),
            bench::fmt_u(ecr.word_muls), std::to_string(ecr.elem_bytes),
            bench::fmt(ecr.kbytes), bench::fmt(ecr.wall_ms, 1), ecr.ok ? "yes" : "NO"});
    bt.print();
    std::printf("word-mul cost ratio (mod-p 2048 / ec255): %.1fx\n", cost_ratio);
    std::printf(
        "BENCHJSON {\"section\": \"backend-compare\", \"modp_params\": \"sec2048\", "
        "\"modp_group_ops\": %llu, \"modp_weight\": %llu, \"modp_word_muls\": %llu, "
        "\"ec_group_ops\": %llu, \"ec_weight\": %llu, \"ec_word_muls\": %llu, "
        "\"cost_ratio\": %.3f, \"modp_element_bytes\": %zu, \"ec_element_bytes\": %zu, "
        "\"modp_wall_ms\": %.2f, \"ec_wall_ms\": %.2f, \"integrity\": %d}\n",
        static_cast<unsigned long long>(modp.ops), static_cast<unsigned long long>(modp.weight),
        static_cast<unsigned long long>(modp.word_muls),
        static_cast<unsigned long long>(ecr.ops), static_cast<unsigned long long>(ecr.weight),
        static_cast<unsigned long long>(ecr.word_muls), cost_ratio, modp.elem_bytes,
        ecr.elem_bytes, modp.wall_ms, ecr.wall_ms, (modp.ok && ecr.ok) ? 1 : 0);

    // Cross-backend equivalence panel: honest + Byzantine scenario per seed
    // on BOTH backends; every cell must complete with the original plaintext
    // at every honest server. Element values differ across backends by
    // construction; the observable protocol outcome must not.
    int cells = 0;
    int identical = 1;
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      for (int byz = 0; byz < 2; ++byz) {
        bool cell_ok[2] = {false, false};
        int b = 0;
        for (group::ParamId id : {group::ParamId::kToy64, group::ParamId::kEc255}) {
          core::SystemOptions o;
          o.a = {4, 1};
          o.b = {4, 1};
          o.seed = seed;
          o.params = group::GroupParams::named(id);
          if (byz == 1) {
            o.b_behaviors.assign(4, Behavior::kHonest);
            o.b_behaviors[2] = Behavior::kInconsistentContribution;
          }
          core::System sys(std::move(o));
          core::TransferId t = sys.add_transfer(
              sys.config().params.encode_message(Bigint(1000 + seed)));
          bool ok = sys.run_to_completion();
          for (core::ServerRank rank = 1; rank <= 4 && ok; ++rank) {
            if (!sys.is_honest_b(rank)) continue;
            auto res = sys.result(t, rank);
            ok = res && sys.config().params.decode_message(sys.oracle_decrypt_b(*res)) ==
                            Bigint(1000 + seed);
          }
          cell_ok[b++] = ok;
          ++cells;
        }
        if (!cell_ok[0] || !cell_ok[1] || cell_ok[0] != cell_ok[1]) identical = 0;
      }
    }
    std::printf("cross-backend equivalence: %d cells, identical_results=%d\n", cells,
                identical);
    std::printf(
        "BENCHJSON {\"section\": \"backend-equivalence\", \"cells\": %d, "
        "\"identical_results\": %d}\n",
        cells, identical);
  }

  std::puts("");
  std::puts("Expected shape: latency grows mildly with f (more round-trip participants),");
  std::puts("messages grow ~quadratically (n broadcasts of n-sized quorum evidence);");
  std::puts("every adversarial row completes with integrity=yes and attack_signed=0.");
  return 0;
}
