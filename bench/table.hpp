// Minimal fixed-width table printer shared by the protocol-level benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace dblind::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], r[i].size());
    }
    auto line = [&](const std::vector<std::string>& cells) {
      std::string out;
      for (std::size_t i = 0; i < width.size(); ++i) {
        std::string cell = i < cells.size() ? cells[i] : "";
        out += cell;
        out.append(width[i] - cell.size() + 2, ' ');
      }
      std::puts(out.c_str());
    };
    line(headers_);
    std::string sep;
    for (std::size_t w : width) sep += std::string(w, '-') + "  ";
    std::puts(sep.c_str());
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

}  // namespace dblind::bench
