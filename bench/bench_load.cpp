// Open-loop load harness for the concurrent multi-transfer engine (PR 8).
//
// A workload generator injects transfers as a Poisson arrival process (the
// open-loop discipline: arrivals never wait for completions, so queueing
// delay is visible instead of being absorbed by a closed feedback loop) from
// a configurable number of clients, and drives them through the full Fig. 4
// pipeline under the deterministic simulator. Three BENCHJSON sections feed
// tools/bench_check.py's BENCH_pr8.json gate:
//
//   load_latency     p50/p95/p99 per-transfer latency (virtual us, arrival ->
//                    first done_recorded) across an offered-load sweep against
//                    a capped engine — latency is flat below saturation and
//                    grows with queueing delay above it;
//   load_saturation  saturated throughput of the concurrent engine (unlimited
//                    admission + cross-transfer batch drain + verify workers)
//                    vs the strictly sequential baseline
//                    (max_inflight_transfers = 1, serial inline verification)
//                    on the SAME arrival schedule. The gate compares
//                    virtual-time throughput: virtual time is a pure function
//                    of the seed (machine-independent, like mont-mul counts),
//                    wall-clock is recorded as provenance;
//   load_equivalence identical_results: with per-transfer keyed contribution
//                    streams both schedules must produce byte-identical
//                    per-transfer ciphertexts (the concurrent engine changes
//                    WHEN work runs, never WHAT it computes).
//
// All load runs use a fixed network delay so the contributor quorum of each
// instance is schedule-independent — the precondition for the equivalence
// column (see tests/integration/concurrent_protocol_test.cpp).
//
// Usage: bench_load [--smoke] [--transfers N] [--clients N] [--seed S]
//   --smoke      kToy64 parameters and a smaller batch (tools/ci.sh `load`
//                job; DBLIND_SOAK_TRANSFERS=<n> widens it for the TSan soak)
//   default      kSec512 at (4,1)x(4,1), the gated configuration
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "table.hpp"

namespace {

using dblind::core::ServerRank;
using dblind::core::System;
using dblind::core::SystemOptions;
using dblind::core::TransferId;
using dblind::mpz::Bigint;

struct LoadConfig {
  dblind::group::ParamId params = dblind::group::ParamId::kSec512;
  std::uint64_t seed = 1;
  int transfers = 16;
  int clients = 4;             // distinct message sources (many-clients mix)
  std::size_t max_inflight = 0;  // admission cap (0 = unlimited)
  bool batch_verify = true;
  unsigned verify_workers = 2;
  dblind::net::Time mean_interarrival_us = 2'000;
  // When set, dump this run's JSONL span trace to `trace_out` and a
  // prometheus metrics snapshot (for trace_critpath.py's mont-mul join) to
  // `trace_out + ".prom"`.
  std::string trace_out;
};

// Poisson arrival schedule in virtual microseconds: exponential gaps from a
// dedicated deterministic stream (same seed -> same schedule for every arm).
std::vector<dblind::net::Time> poisson_arrivals(std::uint64_t seed, int n,
                                                dblind::net::Time mean_us) {
  dblind::mpz::Prng prng(9'000'000 + seed);
  dblind::mpz::Prng arr = prng.fork("open-loop-arrivals");
  std::vector<dblind::net::Time> at;
  double t = 1'000.0;
  for (int i = 0; i < n; ++i) {
    // Inverse-CDF sample; 53-bit uniform keeps the double exact.
    double u = static_cast<double>(arr.uniform_u64(1ull << 53)) /
               static_cast<double>(1ull << 53);
    t += -static_cast<double>(mean_us) * std::log1p(-u);
    at.push_back(static_cast<dblind::net::Time>(t));
  }
  return at;
}

struct LoadResult {
  bool completed = false;
  bool integrity = true;
  std::vector<double> latency_us;  // per completed transfer, virtual
  double makespan_virtual_ms = 0;  // first arrival -> simulator end
  double wall_ms = 0;
  std::uint64_t mont_muls = 0;
  std::uint64_t max_inflight_seen = 0;
  std::map<TransferId, dblind::elgamal::Ciphertext> results;  // B rank 1 view
};

LoadResult run_load(const LoadConfig& lc) {
  dblind::obs::MemoryTraceRecorder trace;
  dblind::obs::MetricsRegistry metrics;
  SystemOptions o;
  o.params = dblind::group::GroupParams::named(lc.params);
  o.a = {4, 1};
  o.b = {4, 1};
  o.seed = 9'000'000 + lc.seed;
  o.delay_min = 2'000;  // fixed delay: schedule-independent quorums
  o.delay_max = 2'000;
  o.protocol.per_transfer_rng = true;
  o.protocol.max_inflight_transfers = lc.max_inflight;
  o.protocol.batch_verify = lc.batch_verify;
  o.protocol.verify_workers = lc.verify_workers;
  o.protocol.trace = &trace;
  if (!lc.trace_out.empty()) o.protocol.metrics = &metrics;
  System sys(std::move(o));

  const std::vector<dblind::net::Time> arrivals =
      poisson_arrivals(lc.seed, lc.transfers, lc.mean_interarrival_us);
  std::map<TransferId, dblind::net::Time> arrived_at;
  std::vector<TransferId> transfers;
  for (int i = 0; i < lc.transfers; ++i) {
    const int client = i % lc.clients;
    Bigint m = sys.config().params.encode_message(
        Bigint(10'000 + 977 * static_cast<unsigned long>(client) + i));
    TransferId t = sys.add_transfer_arriving(m, arrivals[i]);
    arrived_at[t] = arrivals[i];
    transfers.push_back(t);
  }

  LoadResult r;
  auto w0 = std::chrono::steady_clock::now();
  r.completed = sys.run_to_completion();
  auto w1 = std::chrono::steady_clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(w1 - w0).count();
  r.mont_muls = sys.config().params.mont_mul_count();

  // Per-transfer latency: arrival -> FIRST done_recorded anywhere (the
  // earliest moment any B server could hand the result to a client).
  std::map<TransferId, std::uint64_t> first_done;
  for (const dblind::obs::TraceEvent& e : trace.events()) {
    if (e.kind == dblind::obs::EventKind::kDoneRecorded) {
      auto [it, fresh] = first_done.try_emplace(e.transfer, e.ts);
      if (!fresh && e.ts < it->second) it->second = e.ts;
    }
    if (e.kind == dblind::obs::EventKind::kEngineAdmit && e.count > r.max_inflight_seen)
      r.max_inflight_seen = e.count;
  }
  for (TransferId t : transfers) {
    auto it = first_done.find(t);
    if (it != first_done.end())
      r.latency_us.push_back(static_cast<double>(it->second - arrived_at[t]));
    auto res = sys.result(t, 1);
    if (res) {
      r.results.emplace(t, *res);
      if (sys.oracle_decrypt_b(*res) != sys.plaintext_of(t)) r.integrity = false;
    } else {
      r.integrity = false;
    }
  }
  r.makespan_virtual_ms =
      (static_cast<double>(sys.sim().stats().end_time) - static_cast<double>(arrivals.front())) /
      1'000.0;
  if (!lc.trace_out.empty()) {
    // Offline critical-path input (tools/trace_critpath.py): the span trace
    // plus a prometheus snapshot whose ScopedCounterDelta-fed mont-mul
    // counters carry the crypto attribution virtual time cannot.
    std::ofstream ts(lc.trace_out);
    ts << dblind::obs::to_jsonl(trace.meta()) << '\n';
    for (const dblind::obs::TraceEvent& e : trace.events())
      ts << dblind::obs::to_jsonl(e) << '\n';
    std::ofstream ms(lc.trace_out + ".prom");
    ms << metrics.prometheus_text();
  }
  return r;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      std::min(v.size() - 1.0, std::ceil(q * static_cast<double>(v.size())) - 1.0));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  LoadConfig base;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--transfers") == 0 && i + 1 < argc) {
      base.transfers = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      base.clients = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      base.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      base.trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_load [--smoke] [--transfers N] [--clients N] [--seed S] "
                   "[--trace-out trace.jsonl]\n");
      return 2;
    }
  }
  if (smoke) {
    base.params = dblind::group::ParamId::kToy64;
    base.transfers = std::min(base.transfers, 12);
    if (const char* soak = std::getenv("DBLIND_SOAK_TRANSFERS")) {
      int n = std::atoi(soak);
      if (n > 0) base.transfers = n;
    }
  }
  const char* param_name = smoke ? "toy64" : "sec512";

  std::printf("Open-loop load harness — %d transfers, %d clients, %s, (4,1)x(4,1)\n\n",
              base.transfers, base.clients, param_name);

  // --- latency under an offered-load sweep (capped engine, 4 slots) ----------
  // Open-loop property: below saturation the p50 tracks the bare pipeline
  // latency; past it, arrivals outpace the 4 coordinator slots and queueing
  // delay dominates the tail.
  std::puts("Latency vs offered load (engine capped at 4 in-flight transfers):");
  dblind::bench::Table lt(
      {"mean_gap_us", "completed", "p50_us", "p95_us", "p99_us", "max_inflight"});
  for (dblind::net::Time gap : {40'000, 10'000, 2'000}) {
    LoadConfig lc = base;
    lc.mean_interarrival_us = gap;
    lc.max_inflight = 4;
    // --trace-out captures the saturated capped point: the only sweep row
    // with queueing delay, so every budget category is represented.
    if (gap != 2'000) lc.trace_out.clear();
    LoadResult res = run_load(lc);
    const double p50 = percentile(res.latency_us, 0.50);
    const double p95 = percentile(res.latency_us, 0.95);
    const double p99 = percentile(res.latency_us, 0.99);
    lt.row({std::to_string(gap), std::to_string(res.latency_us.size()),
            dblind::bench::fmt(p50, 0), dblind::bench::fmt(p95, 0),
            dblind::bench::fmt(p99, 0), std::to_string(res.max_inflight_seen)});
    std::printf(
        "BENCHJSON {\"section\": \"load_latency\", \"params\": \"%s\", \"transfers\": %d, "
        "\"clients\": %d, \"mean_interarrival_us\": %llu, \"max_inflight\": 4, "
        "\"completed\": %zu, \"p50_us\": %.0f, \"p95_us\": %.0f, \"p99_us\": %.0f, "
        "\"integrity\": %d}\n",
        param_name, lc.transfers, lc.clients,
        static_cast<unsigned long long>(gap), res.latency_us.size(), p50, p95, p99,
        res.integrity && res.completed ? 1 : 0);
  }
  lt.print();
  std::puts("");

  // --- saturation: concurrent engine vs sequential baseline -----------------
  // Same seed, same Poisson schedule; only the engine differs. The speedup is
  // virtual-time throughput (N / makespan) — deterministic per seed.
  std::puts("Saturation throughput — concurrent engine vs sequential baseline:");
  LoadConfig conc = base;
  conc.trace_out.clear();
  conc.mean_interarrival_us = 2'000;
  conc.max_inflight = 0;  // unlimited + batch drain + workers
  LoadResult saturated = run_load(conc);

  LoadConfig seq = base;
  seq.trace_out.clear();
  seq.mean_interarrival_us = 2'000;
  seq.max_inflight = 1;  // strictly sequential
  seq.batch_verify = false;
  seq.verify_workers = 0;
  LoadResult baseline = run_load(seq);

  const double sat_tps =
      saturated.makespan_virtual_ms > 0 ? base.transfers / (saturated.makespan_virtual_ms / 1e3) : 0;
  const double base_tps =
      baseline.makespan_virtual_ms > 0 ? base.transfers / (baseline.makespan_virtual_ms / 1e3) : 0;
  const double speedup = base_tps > 0 ? sat_tps / base_tps : 0;
  const double sat_p50 = percentile(saturated.latency_us, 0.50);
  const double sat_p95 = percentile(saturated.latency_us, 0.95);
  const double sat_p99 = percentile(saturated.latency_us, 0.99);
  const bool integrity = saturated.completed && baseline.completed && saturated.integrity &&
                         baseline.integrity;

  dblind::bench::Table st({"arm", "virtual_ms", "tps_virtual", "wall_ms", "mont_muls"});
  st.row({"sequential", dblind::bench::fmt(baseline.makespan_virtual_ms),
          dblind::bench::fmt(base_tps, 1), dblind::bench::fmt(baseline.wall_ms, 1),
          dblind::bench::fmt_u(baseline.mont_muls)});
  st.row({"concurrent", dblind::bench::fmt(saturated.makespan_virtual_ms),
          dblind::bench::fmt(sat_tps, 1), dblind::bench::fmt(saturated.wall_ms, 1),
          dblind::bench::fmt_u(saturated.mont_muls)});
  st.print();
  std::printf("speedup: %.2fx virtual-time throughput, integrity=%d\n\n", speedup, integrity);
  std::printf(
      "BENCHJSON {\"section\": \"load_saturation\", \"params\": \"%s\", \"f\": 1, "
      "\"transfers\": %d, \"clients\": %d, \"baseline_virtual_ms\": %.2f, "
      "\"saturated_virtual_ms\": %.2f, \"baseline_tps\": %.2f, \"saturated_tps\": %.2f, "
      "\"speedup\": %.3f, \"p50_us\": %.0f, \"p95_us\": %.0f, \"p99_us\": %.0f, "
      "\"baseline_wall_ms\": %.2f, \"saturated_wall_ms\": %.2f, "
      "\"baseline_mont_muls\": %llu, \"saturated_mont_muls\": %llu, \"integrity\": %d}\n",
      param_name, base.transfers, base.clients, baseline.makespan_virtual_ms,
      saturated.makespan_virtual_ms, base_tps, sat_tps, speedup, sat_p50, sat_p95, sat_p99,
      baseline.wall_ms, saturated.wall_ms,
      static_cast<unsigned long long>(baseline.mont_muls),
      static_cast<unsigned long long>(saturated.mont_muls), integrity ? 1 : 0);

  // --- equivalence: both arms must hold byte-identical results --------------
  int identical = saturated.results.size() == baseline.results.size() ? 1 : 0;
  if (identical) {
    for (const auto& [t, c] : saturated.results) {
      auto it = baseline.results.find(t);
      if (it == baseline.results.end() || !(it->second == c)) {
        identical = 0;
        break;
      }
    }
  }
  std::printf("equivalence: identical_results=%d (%zu transfers compared)\n", identical,
              saturated.results.size());
  std::printf(
      "BENCHJSON {\"section\": \"load_equivalence\", \"params\": \"%s\", \"transfers\": %d, "
      "\"identical_results\": %d}\n",
      param_name, base.transfers, identical);

  return integrity && identical ? 0 : 1;
}
