// FIG1/2: re-encryption by blinding — the four-step algebra of the paper's
// Figures 1 and 2 on a single node, per key size, with a per-step breakdown.
//
// Step 1 (pick ρ, compute E_A(ρ), E_B(ρ)) is the pre-computable part; the
// table separates it from the post-ciphertext critical path (steps 2-4),
// quantifying the paper's step-flexibility argument at the algebra level.
#include <chrono>

#include "elgamal/elgamal.hpp"
#include "table.hpp"

namespace {

using namespace dblind;  // NOLINT
using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  std::puts("FIG1/2 — re-encryption using blinding (single-node algebra, ms per op)");
  std::puts("step1 = pick rho + E_A(rho) + E_B(rho)   (pre-computable, movable to B)");
  std::puts("step2 = E_A(m) x E_A(rho)   step3 = decrypt   step4 = unblind");
  std::puts("");

  bench::Table table({"bits", "step1_ms", "step2_ms", "step3_ms", "step4_ms", "critical_path_ms",
                      "total_ms", "roundtrip_ok"});

  for (ParamId id : {ParamId::kTest128, ParamId::kTest256, ParamId::kSec512, ParamId::kSec1024,
                     ParamId::kSec2048}) {
    GroupParams gp = GroupParams::named(id);
    Prng prng(42);
    elgamal::KeyPair ka = elgamal::KeyPair::generate(gp, prng);
    elgamal::KeyPair kb = elgamal::KeyPair::generate(gp, prng);

    const int iters = gp.bits() >= 2048 ? 5 : 20;
    double s1 = 0, s2 = 0, s3 = 0, s4 = 0;
    bool ok = true;
    for (int i = 0; i < iters; ++i) {
      Bigint m = gp.random_element(prng);
      elgamal::Ciphertext ea_m = ka.public_key().encrypt(m, prng);

      auto t0 = std::chrono::steady_clock::now();
      Bigint rho = gp.random_element(prng);
      elgamal::Ciphertext ea_rho = ka.public_key().encrypt(rho, prng);
      elgamal::Ciphertext eb_rho = kb.public_key().encrypt(rho, prng);
      s1 += ms_since(t0);

      t0 = std::chrono::steady_clock::now();
      auto blinded = ka.public_key().multiply(ea_m, ea_rho);
      s2 += ms_since(t0);
      if (!blinded) {
        ok = false;
        continue;
      }

      t0 = std::chrono::steady_clock::now();
      Bigint m_rho = ka.decrypt(*blinded);
      s3 += ms_since(t0);

      t0 = std::chrono::steady_clock::now();
      elgamal::Ciphertext eb_m =
          kb.public_key().juxtapose(m_rho, kb.public_key().inverse(eb_rho));
      s4 += ms_since(t0);

      ok = ok && kb.decrypt(eb_m) == m;
    }
    s1 /= iters;
    s2 /= iters;
    s3 /= iters;
    s4 /= iters;
    table.row({std::to_string(gp.bits()), bench::fmt(s1, 3), bench::fmt(s2, 3),
               bench::fmt(s3, 3), bench::fmt(s4, 3), bench::fmt(s2 + s3 + s4, 3),
               bench::fmt(s1 + s2 + s3 + s4, 3), ok ? "yes" : "NO"});
  }
  table.print();
  std::puts("");
  std::puts("Shape check: step1 dominates total; with step1 pre-computed the critical");
  std::puts("path is roughly one decryption (step3), matching the paper's claim that");
  std::puts("only one threshold decryption remains after E_A(m) becomes available.");
  return 0;
}
