// FIG5: cost of validating self-verifying messages, per message type.
//
// Validity checks run on every message receipt (§4.2.3: "if messages that
// are not valid are ignored then attacks involving bogus messages become
// indistinguishable from lost messages"), so their cost — which grows with f
// because reveal/contribute messages embed 2f+1 commit messages as evidence
// — is the protocol's main CPU overhead beyond raw crypto.
#include <benchmark/benchmark.h>

#include "core/validity.hpp"
#include "tests/core/test_util.hpp"
#include "zkp/vde.hpp"

namespace {

using namespace dblind;  // NOLINT
using core::testing::TestSystem;
using mpz::Bigint;
using mpz::Prng;

// Builds a full set of valid protocol messages for an (n, f) service pair.
struct Fixture {
  TestSystem ts;
  Prng prng{7};
  core::InstanceId id{1, 1, 0};
  std::vector<core::SignedMessage> commits;
  core::SignedMessage init_env;
  core::SignedMessage reveal_env;
  core::SignedMessage contribute_env;
  std::vector<std::uint8_t> blind_payload;
  std::vector<std::uint8_t> blind_evidence;

  explicit Fixture(std::size_t f)
      : ts(TestSystem::make(13, {3 * f + 1, f}, {3 * f + 1, f})) {
    const core::SystemConfig& cfg = ts.cfg;
    init_env = core::make_envelope(cfg, ts.b_secrets[0],
                                   core::encode_body(core::MsgType::kInit, core::InitMsg{id}),
                                   0, prng);

    struct Contrib {
      Bigint rho, r1, r2;
      core::Contribution c;
    };
    std::vector<Contrib> contribs;
    for (std::uint32_t r = 1; r <= 2 * f + 1; ++r) {
      Contrib c;
      c.rho = ts.params.random_element(prng);
      c.r1 = ts.params.random_exponent(prng);
      c.r2 = ts.params.random_exponent(prng);
      c.c.ea = cfg.a.encryption_key.encrypt_with_nonce(c.rho, c.r1);
      c.c.eb = cfg.b.encryption_key.encrypt_with_nonce(c.rho, c.r2);
      contribs.push_back(std::move(c));

      core::CommitMsg commit;
      commit.id = id;
      commit.server = r;
      commit.commitment = contribs.back().c.commitment_digest();
      commits.push_back(core::make_envelope(
          cfg, ts.b_secrets[r - 1], core::encode_body(core::MsgType::kCommit, commit), 0, prng));
    }

    core::RevealMsg reveal;
    reveal.id = id;
    reveal.commits = commits;
    reveal_env = core::make_envelope(cfg, ts.b_secrets[0],
                                     core::encode_body(core::MsgType::kReveal, reveal), 0, prng);

    core::BlindEvidence evidence;
    std::vector<elgamal::Ciphertext> eas, ebs;
    for (std::uint32_t r = 1; r <= f + 1; ++r) {
      core::ContributeMsg m;
      m.id = id;
      m.server = r;
      m.reveal = reveal_env;
      m.contribution = contribs[r - 1].c;
      m.vde = zkp::vde_prove(cfg.a.encryption_key, m.contribution.ea, contribs[r - 1].r1,
                             cfg.b.encryption_key, m.contribution.eb, contribs[r - 1].r2,
                             core::vde_context(id, r), prng);
      auto env = core::make_envelope(cfg, ts.b_secrets[r - 1],
                                     core::encode_body(core::MsgType::kContribute, m), 0, prng);
      if (r == 1) contribute_env = env;
      evidence.contributes.push_back(env);
      eas.push_back(m.contribution.ea);
      ebs.push_back(m.contribution.eb);
    }

    core::BlindPayload payload;
    payload.id = id;
    payload.blinded.ea = *cfg.a.encryption_key.product(eas);
    payload.blinded.eb = *cfg.b.encryption_key.product(ebs);
    blind_payload = core::encode_body(core::MsgType::kBlind, payload);
    core::Writer w;
    evidence.encode(w);
    blind_evidence = w.take();
  }
};

Fixture& fixture(std::size_t f) {
  static std::map<std::size_t, std::unique_ptr<Fixture>> cache;
  auto it = cache.find(f);
  if (it == cache.end()) it = cache.emplace(f, std::make_unique<Fixture>(f)).first;
  return *it->second;
}

void BM_CheckInit(benchmark::State& state) {
  Fixture& fx = fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(core::check_init(fx.ts.cfg, fx.init_env));
}
BENCHMARK(BM_CheckInit)->Arg(1)->Arg(2)->Arg(3);

void BM_CheckCommit(benchmark::State& state) {
  Fixture& fx = fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(core::check_commit(fx.ts.cfg, fx.commits[0]));
}
BENCHMARK(BM_CheckCommit)->Arg(1)->Arg(2)->Arg(3);

void BM_CheckReveal(benchmark::State& state) {
  // Validates 2f+1 embedded commit signatures.
  Fixture& fx = fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(core::check_reveal(fx.ts.cfg, fx.reveal_env));
}
BENCHMARK(BM_CheckReveal)->Arg(1)->Arg(2)->Arg(3);

void BM_CheckContribute(benchmark::State& state) {
  // Signature + embedded reveal (2f+1 commits) + VDE verification.
  Fixture& fx = fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::check_contribute(fx.ts.cfg, fx.contribute_env));
}
BENCHMARK(BM_CheckContribute)->Arg(1)->Arg(2)->Arg(3);

void BM_CheckBlindSignRequest(benchmark::State& state) {
  // The heaviest check: f+1 full contribute validations + product check.
  Fixture& fx = fixture(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::check_blind_sign_request(fx.ts.cfg, fx.blind_payload, fx.blind_evidence));
}
BENCHMARK(BM_CheckBlindSignRequest)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
