// CLAIM-COORD: the multi-coordinator trade-off of §4.1.
//
// "In the worst case, run-time costs are inflated by a factor of f, since as
// many as f of the coordinators are superfluous. This cost, however, can be
// reduced by delaying when f of the coordinators commence execution."
//
// Rows compare eager coordinators (all f+1 start at once) against delayed
// backups, with the designated coordinator healthy, crashed, or targeted by
// a delay-injection (DoS) adversary — the attack the asynchronous model is
// designed to survive.
#include "core/system.hpp"
#include "table.hpp"

namespace {

using namespace dblind;  // NOLINT
using mpz::Bigint;

struct Row {
  double latency_ms;
  std::uint64_t messages;
  bool ok;
};

Row run(net::Time backup_delay, bool crash_designated, bool slow_designated, std::uint64_t seed) {
  core::SystemOptions o;
  o.seed = seed;
  o.protocol.coordinator_backup_delay = backup_delay;
  if (slow_designated) {
    // DoS adversary: all traffic touching B's designated coordinator (node
    // index a.n + 0) is stretched 50x.
    o.delay_policy = std::make_unique<net::TargetedSlowdown>(
        500, 20'000, std::set<net::NodeId>{static_cast<net::NodeId>(o.a.n)}, 50);
  }
  core::System sys(std::move(o));
  core::TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(31337)));
  if (crash_designated) sys.sim().crash_at(sys.config().b.node_of(1), 0);
  bool done = sys.run_to_completion();
  bool ok = done;
  for (core::ServerRank r = 1; r <= sys.b_cfg().n && ok; ++r) {
    if (!sys.is_honest_b(r)) continue;
    auto res = sys.result(t, r);
    ok = res && sys.oracle_decrypt_b(*res) == sys.plaintext_of(t);
  }
  return {sys.sim().stats().end_time / 1000.0, sys.sim().stats().messages_sent, ok};
}

}  // namespace

int main() {
  std::puts("CLAIM-COORD — designated coordinator + delayed backups (n=4, f=1)");
  std::puts("(backup_delay = 0 means all f+1 coordinators run eagerly)");
  std::puts("");

  bench::Table table({"scenario", "backup_delay_ms", "latency_ms", "messages", "integrity"});
  for (net::Time delay : {net::Time{0}, net::Time{100'000}, net::Time{400'000},
                          net::Time{1'600'000}}) {
    Row healthy = run(delay, false, false, 1 + delay);
    table.row({"healthy", bench::fmt(delay / 1000.0, 0), bench::fmt(healthy.latency_ms),
               bench::fmt_u(healthy.messages), healthy.ok ? "yes" : "NO"});
  }
  for (net::Time delay : {net::Time{0}, net::Time{100'000}, net::Time{400'000},
                          net::Time{1'600'000}}) {
    Row crashed = run(delay, true, false, 2 + delay);
    table.row({"designated crashed", bench::fmt(delay / 1000.0, 0),
               bench::fmt(crashed.latency_ms), bench::fmt_u(crashed.messages),
               crashed.ok ? "yes" : "NO"});
  }
  for (net::Time delay : {net::Time{0}, net::Time{400'000}}) {
    Row slowed = run(delay, false, true, 3 + delay);
    table.row({"designated DoS-slowed 50x", bench::fmt(delay / 1000.0, 0),
               bench::fmt(slowed.latency_ms), bench::fmt_u(slowed.messages),
               slowed.ok ? "yes" : "NO"});
  }
  table.print();

  std::puts("");
  std::puts("Expected shape: when healthy, delayed backups cut messages ~(f+1)x vs eager");
  std::puts("with identical latency; when the designated coordinator fails or is slowed,");
  std::puts("latency pays ~backup_delay but the protocol still completes — timeouts only");
  std::puts("affect liveness/cost, never safety (asynchronous model).");
  return 0;
}
