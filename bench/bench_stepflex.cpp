// CLAIM-PRE + CLAIM-OFF: the paper's two step-flexibility optimizations (§1).
//
//  1. Pre-computation: "Computation that does not depend on the secret being
//     transferred can be performed beforehand and, therefore, moved out of
//     the critical path." We measure end-to-end latency from the moment
//     E_A(m) becomes available, with the blinding protocol either started
//     cold at that moment or already finished beforehand.
//
//  2. Offloading: "For a secret being sent from a single service to multiple
//     recipients, computation that does not rely on the sender's private key
//     can be relocated from the sender to the receivers." We measure CPU
//     seconds consumed by service A vs service B for R transfers, and
//     compare against Jakobsson's scheme where ALL computation runs on A.
#include "baselines/jakobsson.hpp"
#include "core/system.hpp"
#include "table.hpp"
#include "threshold/keygen.hpp"

namespace {

using namespace dblind;  // NOLINT
using mpz::Bigint;
using mpz::Prng;

}  // namespace

int main() {
  std::puts("CLAIM-PRE — pre-computation removes blinding from the critical path");
  std::puts("(latency measured from the instant E_A(m) becomes available; U[0.5ms,20ms] delays)");
  std::puts("");
  {
    bench::Table table({"mode", "latency_from_secret_ms", "speedup"});
    double cold_ms = 0;
    {
      core::SystemOptions o;
      o.seed = 1;
      core::System sys(std::move(o));
      sys.add_transfer(sys.config().params.encode_message(Bigint(1001)));
      sys.run_to_completion();
      cold_ms = sys.sim().stats().end_time / 1000.0;
      table.row({"cold (blinding starts with secret)", bench::fmt(cold_ms), "1.0x"});
    }
    {
      // The secret materializes at t=3s; blinding (steps 1-5) completed long
      // before, so only step 6 (one threshold decryption + signature) plus
      // delivery remains.
      const net::Time kSecretAt = 3'000'000;
      core::SystemOptions o;
      o.seed = 2;
      core::System sys(std::move(o));
      sys.add_transfer_at(sys.config().params.encode_message(Bigint(1002)), kSecretAt);
      sys.run_to_completion();
      double warm_ms = (sys.sim().stats().end_time - kSecretAt) / 1000.0;
      table.row({"pre-blinded (blinding ran beforehand)", bench::fmt(warm_ms),
                 bench::fmt(cold_ms / warm_ms, 1) + "x"});
    }
    table.print();
  }

  std::puts("");
  std::puts("CLAIM-OFF — offloading blinding to the receivers relieves the sender");
  std::puts("(R transfers; CPU seconds per service, 256-bit group)");
  std::puts("");
  {
    bench::Table table({"scheme", "R", "sender(A)_cpu_ms", "receiver(B)_cpu_ms",
                        "A share of work"});
    for (int transfers : {1, 4, 8}) {
      // Ours: blinding runs on B; A does one threshold decryption + one
      // threshold signature per transfer.
      core::SystemOptions o;
      o.params = group::GroupParams::named(group::ParamId::kTest256);
      o.seed = 10 + static_cast<std::uint64_t>(transfers);
      core::System sys(std::move(o));
      for (int i = 0; i < transfers; ++i)
        sys.add_transfer(sys.config().params.encode_message(Bigint(2000 + i)));
      sys.run_to_completion();
      double a_cpu = sys.service_cpu_seconds(core::ServiceRole::kServiceA) * 1000.0;
      double b_cpu = sys.service_cpu_seconds(core::ServiceRole::kServiceB) * 1000.0;
      table.row({"ours (blinding at B)", std::to_string(transfers), bench::fmt(a_cpu),
                 bench::fmt(b_cpu), bench::fmt(100.0 * a_cpu / (a_cpu + b_cpu), 0) + "%"});
    }

    for (int transfers : {1, 4, 8}) {
      // Jakobsson: everything happens at A (partials + verification +
      // combination); B only receives the result.
      group::GroupParams gp = group::GroupParams::named(group::ParamId::kTest256);
      Prng prng(77);
      auto a_km = threshold::ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
      elgamal::KeyPair kb = elgamal::KeyPair::generate(gp, prng);

      auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < transfers; ++i) {
        Bigint m = gp.random_element(prng);
        elgamal::Ciphertext c = a_km.public_key().encrypt(m, prng);
        std::vector<baselines::JakobssonPartial> partials;
        for (std::uint32_t s = 1; s <= 2; ++s) {
          partials.push_back(baselines::jakobsson_partial(gp, c, a_km.share_of(s),
                                                          kb.public_key().y(), "b", prng));
          if (!baselines::jakobsson_verify_partial(gp, a_km.commitments(), c,
                                                   kb.public_key().y(), partials.back(), "b"))
            return 1;
        }
        (void)baselines::jakobsson_combine(gp, c, partials);
      }
      double a_cpu = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                               t0)
                         .count();
      table.row({"jakobsson (all at A)", std::to_string(transfers), bench::fmt(a_cpu), "0.00",
                 "100%"});
    }
    table.print();
  }
  std::puts("");
  std::puts("Expected shape: ours keeps A's share of work small and flat as R grows;");
  std::puts("Jakobsson concentrates 100% of the (growing) work on the sender A.");
  return 0;
}
