#include "mpz/bigint.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace dblind::mpz {
namespace {

TEST(Bigint, DefaultIsZero) {
  Bigint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_dec(), "0");
  EXPECT_EQ(z.bit_length(), 0u);
}

TEST(Bigint, SmallConstruction) {
  EXPECT_EQ(Bigint(1).to_dec(), "1");
  EXPECT_EQ(Bigint(-1).to_dec(), "-1");
  EXPECT_EQ(Bigint(42).to_hex(), "2a");
  EXPECT_EQ(Bigint(std::int64_t{-255}).to_hex(), "-ff");
}

TEST(Bigint, Int64MinRoundTrips) {
  Bigint v(std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(v.to_dec(), "-9223372036854775808");
}

TEST(Bigint, U64MaxRoundTrips) {
  Bigint v(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(v.to_dec(), "18446744073709551615");
  EXPECT_EQ(v.to_hex(), "ffffffffffffffff");
  EXPECT_EQ(v.to_u64(), std::numeric_limits<std::uint64_t>::max());
}

TEST(Bigint, HexRoundTrip) {
  const char* cases[] = {"0", "1", "f", "10", "deadbeef", "ffffffffffffffff",
                         "10000000000000000", "123456789abcdef0123456789abcdef"};
  for (const char* c : cases) {
    EXPECT_EQ(Bigint::from_hex(c).to_hex(), c) << c;
  }
  EXPECT_EQ(Bigint::from_hex("-deadbeef").to_hex(), "-deadbeef");
  EXPECT_EQ(Bigint::from_hex("0xAB").to_hex(), "ab");
  EXPECT_EQ(Bigint::from_hex("000123").to_hex(), "123");
}

TEST(Bigint, DecRoundTrip) {
  const char* cases[] = {"0", "7", "10", "123456789012345678901234567890",
                         "99999999999999999999999999999999999999999999"};
  for (const char* c : cases) {
    EXPECT_EQ(Bigint::from_dec(c).to_dec(), c) << c;
  }
  EXPECT_EQ(Bigint::from_dec("-12345678901234567890123").to_dec(), "-12345678901234567890123");
}

TEST(Bigint, ParseErrors) {
  EXPECT_THROW((void)Bigint::from_hex(""), std::invalid_argument);
  EXPECT_THROW((void)Bigint::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW((void)Bigint::from_dec(""), std::invalid_argument);
  EXPECT_THROW((void)Bigint::from_dec("12a"), std::invalid_argument);
  EXPECT_THROW((void)Bigint::from_dec("-"), std::invalid_argument);
}

TEST(Bigint, BytesRoundTrip) {
  std::vector<std::uint8_t> in = {0x01, 0x02, 0x03, 0xff, 0x00, 0x80};
  Bigint v = Bigint::from_bytes_be(in);
  EXPECT_EQ(v.to_hex(), "10203ff0080");
  auto out = v.to_bytes_be(6);
  EXPECT_EQ(out, in);
}

TEST(Bigint, BytesPadding) {
  Bigint v(0x1234);
  auto out = v.to_bytes_be(8);
  std::vector<std::uint8_t> expect = {0, 0, 0, 0, 0, 0, 0x12, 0x34};
  EXPECT_EQ(out, expect);
  EXPECT_THROW((void)Bigint::from_hex("112233445566778899").to_bytes_be(8), std::length_error);
}

TEST(Bigint, ZeroToBytes) {
  auto out = Bigint(0).to_bytes_be();
  EXPECT_EQ(out, std::vector<std::uint8_t>{0});
}

TEST(Bigint, AdditionBasic) {
  EXPECT_EQ((Bigint(2) + Bigint(3)).to_dec(), "5");
  EXPECT_EQ((Bigint(-2) + Bigint(3)).to_dec(), "1");
  EXPECT_EQ((Bigint(2) + Bigint(-3)).to_dec(), "-1");
  EXPECT_EQ((Bigint(-2) + Bigint(-3)).to_dec(), "-5");
  EXPECT_EQ((Bigint(5) + Bigint(-5)).to_dec(), "0");
}

TEST(Bigint, AdditionCarryChain) {
  Bigint a = Bigint::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((a + Bigint(1)).to_hex(), "100000000000000000000000000000000");
}

TEST(Bigint, SubtractionBorrowChain) {
  Bigint a = Bigint::from_hex("100000000000000000000000000000000");
  EXPECT_EQ((a - Bigint(1)).to_hex(), "ffffffffffffffffffffffffffffffff");
}

TEST(Bigint, MultiplicationBasic) {
  EXPECT_EQ((Bigint(7) * Bigint(6)).to_dec(), "42");
  EXPECT_EQ((Bigint(-7) * Bigint(6)).to_dec(), "-42");
  EXPECT_EQ((Bigint(-7) * Bigint(-6)).to_dec(), "42");
  EXPECT_EQ((Bigint(0) * Bigint(123456)).to_dec(), "0");
}

TEST(Bigint, MultiplicationWide) {
  Bigint a = Bigint::from_hex("ffffffffffffffff");
  EXPECT_EQ((a * a).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(Bigint, KaratsubaAgreesWithSchoolbook) {
  // Operands large enough to trigger the Karatsuba path (>= 32 limbs).
  Bigint a(1), b(1);
  for (int i = 0; i < 40; ++i) {
    a = a * Bigint::from_hex("fedcba9876543210") + Bigint(i);
    b = b * Bigint::from_hex("123456789abcdef1") + Bigint(2 * i + 1);
  }
  Bigint prod = a * b;
  // Verify with a divide: prod / a == b and prod % a == 0.
  EXPECT_EQ((prod / a), b);
  EXPECT_TRUE((prod % a).is_zero());
  EXPECT_EQ((prod / b), a);
}

TEST(Bigint, DivisionBasic) {
  EXPECT_EQ((Bigint(42) / Bigint(6)).to_dec(), "7");
  EXPECT_EQ((Bigint(43) / Bigint(6)).to_dec(), "7");
  EXPECT_EQ((Bigint(43) % Bigint(6)).to_dec(), "1");
}

TEST(Bigint, DivisionTruncatedSemantics) {
  // C++ semantics: quotient toward zero, remainder sign follows dividend.
  EXPECT_EQ((Bigint(-7) / Bigint(2)).to_dec(), "-3");
  EXPECT_EQ((Bigint(-7) % Bigint(2)).to_dec(), "-1");
  EXPECT_EQ((Bigint(7) / Bigint(-2)).to_dec(), "-3");
  EXPECT_EQ((Bigint(7) % Bigint(-2)).to_dec(), "1");
  EXPECT_EQ((Bigint(-7) / Bigint(-2)).to_dec(), "3");
  EXPECT_EQ((Bigint(-7) % Bigint(-2)).to_dec(), "-1");
}

TEST(Bigint, DivisionByZeroThrows) {
  EXPECT_THROW((void)(Bigint(1) / Bigint(0)), std::domain_error);
  EXPECT_THROW((void)(Bigint(1) % Bigint(0)), std::domain_error);
}

TEST(Bigint, DivisionIdentityHolds) {
  Bigint a = Bigint::from_hex("123456789abcdef0fedcba9876543210aaaabbbbccccdddd");
  Bigint b = Bigint::from_hex("fedcba987654321101");
  Bigint q, r;
  Bigint::divmod(a, b, q, r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_TRUE(r < b);
  EXPECT_FALSE(r.is_negative());
}

TEST(Bigint, KnuthDAddBackCase) {
  // Crafted case exercising the rare "add back" branch of Algorithm D:
  // divisor with top limb 0x8000... and dividend chosen adversarially.
  Bigint b = Bigint::from_hex("80000000000000000000000000000001");
  Bigint a = Bigint::from_hex("7fffffffffffffffffffffffffffffff00000000000000000000000000000000");
  Bigint q, r;
  Bigint::divmod(a, b, q, r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_TRUE(r < b);
}

TEST(Bigint, ShiftLeft) {
  EXPECT_EQ(Bigint(1).shl(0).to_hex(), "1");
  EXPECT_EQ(Bigint(1).shl(4).to_hex(), "10");
  EXPECT_EQ(Bigint(1).shl(64).to_hex(), "10000000000000000");
  EXPECT_EQ(Bigint(1).shl(65).to_hex(), "20000000000000000");
  EXPECT_EQ(Bigint(0).shl(100).to_hex(), "0");
}

TEST(Bigint, ShiftRight) {
  EXPECT_EQ(Bigint::from_hex("10000000000000000").shr(64).to_hex(), "1");
  EXPECT_EQ(Bigint::from_hex("20000000000000000").shr(65).to_hex(), "1");
  EXPECT_EQ(Bigint(0xff).shr(4).to_hex(), "f");
  EXPECT_EQ(Bigint(1).shr(1).to_hex(), "0");
  EXPECT_EQ(Bigint(1).shr(1000).to_hex(), "0");
}

TEST(Bigint, ShiftRoundTrip) {
  Bigint a = Bigint::from_hex("123456789abcdef0f0debc9a78563412");
  for (std::size_t s : {1u, 7u, 63u, 64u, 65u, 127u, 200u}) {
    EXPECT_EQ(a.shl(s).shr(s), a) << s;
  }
}

TEST(Bigint, Comparison) {
  EXPECT_LT(Bigint(-5), Bigint(3));
  EXPECT_LT(Bigint(-5), Bigint(-3));
  EXPECT_LT(Bigint(3), Bigint(5));
  EXPECT_GT(Bigint::from_hex("10000000000000000"), Bigint::from_hex("ffffffffffffffff"));
  EXPECT_EQ(Bigint(7), Bigint(7));
  EXPECT_LT(Bigint::from_hex("-10000000000000000"), Bigint::from_hex("-ffffffffffffffff"));
}

TEST(Bigint, BitAccess) {
  Bigint v = Bigint::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 64u);
}

TEST(Bigint, AbsNegate) {
  EXPECT_EQ(Bigint(-5).abs().to_dec(), "5");
  EXPECT_EQ(Bigint(5).abs().to_dec(), "5");
  EXPECT_EQ(Bigint(5).negated().to_dec(), "-5");
  EXPECT_EQ(Bigint(0).negated().to_dec(), "0");
}

TEST(Bigint, ToU64Errors) {
  EXPECT_THROW((void)Bigint(-1).to_u64(), std::overflow_error);
  EXPECT_THROW((void)Bigint::from_hex("10000000000000000").to_u64(), std::overflow_error);
  EXPECT_EQ(Bigint(0).to_u64(), 0u);
}

TEST(Bigint, CompoundOps) {
  Bigint v(10);
  v += Bigint(5);
  EXPECT_EQ(v.to_dec(), "15");
  v -= Bigint(20);
  EXPECT_EQ(v.to_dec(), "-5");
  v *= Bigint(-3);
  EXPECT_EQ(v.to_dec(), "15");
  v /= Bigint(4);
  EXPECT_EQ(v.to_dec(), "3");
  v %= Bigint(2);
  EXPECT_EQ(v.to_dec(), "1");
}

TEST(Bigint, DecimalHexAgreeOnRandomValues) {
  // to_dec/from_dec round-trips agree with the hex path on wide values.
  std::uint64_t seed = 0x9e3779b9;
  auto next = [&seed]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  for (int limbs = 1; limbs <= 40; limbs += 3) {
    Bigint v;
    for (int i = 0; i < limbs; ++i) v = v.shl(64) + Bigint(next());
    std::string dec = v.to_dec();
    std::string hex = v.to_hex();
    EXPECT_EQ(Bigint::from_dec(dec), v) << limbs;
    EXPECT_EQ(Bigint::from_hex(hex), v) << limbs;
    EXPECT_EQ(Bigint::from_dec(dec).to_hex(), hex) << limbs;
    Bigint neg = v.negated();
    EXPECT_EQ(Bigint::from_dec(neg.to_dec()), neg) << limbs;
  }
}

TEST(Bigint, ShiftsAgreeWithMulDivByPowersOfTwo) {
  Bigint v = Bigint::from_hex("fedcba9876543210123456789abcdef55aa55aa5");
  for (std::size_t s : {1u, 13u, 64u, 100u, 129u}) {
    Bigint two_s = Bigint(1).shl(s);
    EXPECT_EQ(v.shl(s), v * two_s) << s;
    EXPECT_EQ(v.shr(s), v / two_s) << s;
  }
}

// Pseudo-random structural property sweep: (a+b)-b == a, (a*b)/b == a, etc.
class BigintPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigintPropertyTest, RingAxiomsHold) {
  std::uint64_t seed = GetParam();
  // Simple xorshift for operand generation (independent of our Prng, which is
  // itself under test elsewhere).
  auto next = [&seed]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  auto make = [&](int limbs) {
    Bigint v;
    for (int i = 0; i < limbs; ++i) v = v.shl(64) + Bigint(next());
    if (next() & 1) v = v.negated();
    return v;
  };
  for (int iter = 0; iter < 25; ++iter) {
    Bigint a = make(1 + static_cast<int>(next() % 8));
    Bigint b = make(1 + static_cast<int>(next() % 8));
    Bigint c = make(1 + static_cast<int>(next() % 4));
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    if (!b.is_zero()) {
      Bigint q, r;
      Bigint::divmod(a, b, q, r);
      EXPECT_EQ(q * b + r, a);
      EXPECT_LT(r.abs(), b.abs());
      // Remainder sign matches dividend (or zero).
      if (!r.is_zero()) {
        EXPECT_EQ(r.sign(), a.sign());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigintPropertyTest,
                         ::testing::Values(0x1111u, 0x2222u, 0x3333u, 0x4444u, 0x5555u, 0xdeadbeefu,
                                           0xcafebabeu, 0x12345678u));

}  // namespace
}  // namespace dblind::mpz
