#include "mpz/prime.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"

namespace dblind::mpz {
namespace {

TEST(Prime, SmallKnownPrimes) {
  Prng prng(1);
  for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 97ull, 7919ull, 65537ull}) {
    EXPECT_TRUE(is_probable_prime(Bigint(p), prng)) << p;
  }
}

TEST(Prime, SmallKnownComposites) {
  Prng prng(2);
  for (std::uint64_t n : {0ull, 1ull, 4ull, 6ull, 9ull, 91ull, 561ull /*Carmichael*/,
                          6601ull /*Carmichael*/, 65536ull}) {
    EXPECT_FALSE(is_probable_prime(Bigint(n), prng)) << n;
  }
}

TEST(Prime, LargeKnownPrime) {
  // 2^127 - 1 is a Mersenne prime.
  Prng prng(3);
  Bigint m127 = Bigint(1).shl(127) - Bigint(1);
  EXPECT_TRUE(is_probable_prime(m127, prng));
  // 2^128 - 1 is composite.
  EXPECT_FALSE(is_probable_prime(Bigint(1).shl(128) - Bigint(1), prng));
}

TEST(Prime, EmbeddedParameterPrimesVerify) {
  Prng prng(4);
  // The named parameter sets used throughout the library (64..512 bits here;
  // the 1024/2048-bit sets are verified in the slower group params test).
  const char* ps[] = {"f60100fb3362b19f", "fe223d80ef19da04fef96e1894377f43",
                      "fc7fb60b74845770ea35c5cacef5191b0634d65fb8cfbb233eb4908e654edd8f"};
  for (const char* p_hex : ps) {
    Bigint p = Bigint::from_hex(p_hex);
    Bigint q = (p - Bigint(1)).shr(1);
    EXPECT_TRUE(is_probable_prime(p, prng, 20)) << p_hex;
    EXPECT_TRUE(is_probable_prime(q, prng, 20)) << p_hex;
  }
}

TEST(Prime, GeneratePrimeHasRequestedSize) {
  Prng prng(5);
  for (std::size_t bits : {16u, 32u, 64u, 128u}) {
    Bigint p = generate_prime(bits, prng, 20);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, prng, 20));
  }
}

TEST(Prime, GenerateSafePrime) {
  Prng prng(6);
  SafePrime sp = generate_safe_prime(64, prng, 20);
  EXPECT_EQ(sp.p.bit_length(), 64u);
  EXPECT_EQ(sp.p, sp.q.shl(1) + Bigint(1));
  EXPECT_TRUE(is_probable_prime(sp.p, prng, 20));
  EXPECT_TRUE(is_probable_prime(sp.q, prng, 20));
}

TEST(Prime, GeneratedPrimesDiffer) {
  Prng prng(7);
  Bigint a = generate_prime(48, prng, 15);
  Bigint b = generate_prime(48, prng, 15);
  EXPECT_NE(a, b);
}

TEST(Prime, RejectsTinyRequests) {
  Prng prng(8);
  EXPECT_THROW((void)generate_prime(1, prng), std::invalid_argument);
  EXPECT_THROW((void)generate_safe_prime(3, prng), std::invalid_argument);
}

}  // namespace
}  // namespace dblind::mpz
