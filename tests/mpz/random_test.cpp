#include "mpz/random.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>

namespace dblind::mpz {
namespace {

TEST(Prng, DeterministicFromSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Prng, FillCoversRequestedLength) {
  Prng p(7);
  for (std::size_t len : {0u, 1u, 63u, 64u, 65u, 200u}) {
    std::vector<std::uint8_t> buf(len, 0xAA);
    p.fill(buf);
    EXPECT_EQ(buf.size(), len);
  }
}

TEST(Prng, FillStreamsConsistently) {
  // Reading 64 bytes at once equals reading them in odd-sized chunks.
  Prng a(9), b(9);
  std::vector<std::uint8_t> whole(64);
  a.fill(whole);
  std::vector<std::uint8_t> parts(64);
  b.fill(std::span(parts).subspan(0, 5));
  b.fill(std::span(parts).subspan(5, 30));
  b.fill(std::span(parts).subspan(35, 29));
  EXPECT_EQ(whole, parts);
}

TEST(Prng, UniformBelowInRange) {
  Prng p(11);
  Bigint bound = Bigint::from_hex("ffffffffffffffffffffffff");
  for (int i = 0; i < 50; ++i) {
    Bigint v = p.uniform_below(bound);
    EXPECT_FALSE(v.is_negative());
    EXPECT_LT(v, bound);
  }
}

TEST(Prng, UniformBelowSmallBoundsHitAllValues) {
  Prng p(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(p.uniform_below(Bigint(4)).to_u64());
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Prng, UniformNonzeroNeverZero) {
  Prng p(17);
  for (int i = 0; i < 300; ++i) {
    Bigint v = p.uniform_nonzero_below(Bigint(2));
    EXPECT_EQ(v, Bigint(1));
  }
}

TEST(Prng, UniformU64RoughlyUniform) {
  Prng p(19);
  std::map<std::uint64_t, int> counts;
  constexpr int kDraws = 6000;
  for (int i = 0; i < kDraws; ++i) ++counts[p.uniform_u64(6)];
  EXPECT_EQ(counts.size(), 6u);
  for (auto& [v, c] : counts) {
    EXPECT_GT(c, kDraws / 6 - 300) << v;
    EXPECT_LT(c, kDraws / 6 + 300) << v;
  }
}

TEST(Prng, RandomBitsHasExactLength) {
  Prng p(23);
  for (std::size_t bits : {1u, 2u, 8u, 9u, 64u, 65u, 256u, 1000u}) {
    Bigint v = p.random_bits(bits);
    EXPECT_EQ(v.bit_length(), bits) << bits;
  }
  EXPECT_TRUE(p.random_bits(0).is_zero());
}

TEST(Prng, ForkIsDeterministicAndIndependent) {
  Prng a(31), b(31);
  Prng fa = a.fork("child");
  Prng fb = b.fork("child");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());

  Prng c(31);
  Prng other = c.fork("other-label");
  Prng childAgain = Prng(31).fork("child");
  EXPECT_NE(other.next_u64(), childAgain.next_u64());
}

TEST(Prng, RejectsBadBounds) {
  Prng p(1);
  EXPECT_THROW((void)p.uniform_below(Bigint(0)), std::domain_error);
  EXPECT_THROW((void)p.uniform_below(Bigint(-5)), std::domain_error);
  EXPECT_THROW((void)p.uniform_nonzero_below(Bigint(1)), std::domain_error);
  EXPECT_THROW((void)p.uniform_u64(0), std::domain_error);
}

TEST(Prng, OsEntropyProducesDistinctStreams) {
  Prng a = Prng::from_os_entropy();
  Prng b = Prng::from_os_entropy();
  // Astronomically unlikely to collide.
  EXPECT_NE(a.next_u64(), b.next_u64());
}

}  // namespace
}  // namespace dblind::mpz
