#include "mpz/modmath.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mpz/random.hpp"

namespace dblind::mpz {
namespace {

TEST(Mod, NormalizesNegatives) {
  EXPECT_EQ(mod(Bigint(-1), Bigint(7)).to_dec(), "6");
  EXPECT_EQ(mod(Bigint(-8), Bigint(7)).to_dec(), "6");
  EXPECT_EQ(mod(Bigint(14), Bigint(7)).to_dec(), "0");
  EXPECT_THROW((void)mod(Bigint(1), Bigint(0)), std::domain_error);
  EXPECT_THROW((void)mod(Bigint(1), Bigint(-3)), std::domain_error);
}

TEST(ModArith, AddSubMul) {
  Bigint m(101);
  EXPECT_EQ(addmod(Bigint(100), Bigint(5), m).to_dec(), "4");
  EXPECT_EQ(submod(Bigint(3), Bigint(5), m).to_dec(), "99");
  EXPECT_EQ(mulmod(Bigint(50), Bigint(51), m).to_dec(), "25");
}

TEST(Powmod, SmallKnownValues) {
  EXPECT_EQ(powmod(Bigint(2), Bigint(10), Bigint(1000)).to_dec(), "24");
  EXPECT_EQ(powmod(Bigint(3), Bigint(0), Bigint(7)).to_dec(), "1");
  EXPECT_EQ(powmod(Bigint(0), Bigint(5), Bigint(7)).to_dec(), "0");
  EXPECT_EQ(powmod(Bigint(5), Bigint(1), Bigint(7)).to_dec(), "5");
}

TEST(Powmod, FermatLittleTheorem) {
  // a^(p-1) == 1 mod p for prime p and gcd(a,p)=1.
  Bigint p = Bigint::from_hex("f60100fb3362b19f");  // 64-bit safe prime
  for (std::uint64_t a : {2ull, 3ull, 65537ull, 123456789ull}) {
    EXPECT_EQ(powmod(Bigint(a), p - Bigint(1), p), Bigint(1)) << a;
  }
}

TEST(Powmod, NegativeExponentMeansInverse) {
  Bigint p(101);
  Bigint inv = powmod(Bigint(7), Bigint(-1), p);
  EXPECT_EQ(mulmod(inv, Bigint(7), p), Bigint(1));
}

TEST(Powmod, EvenModulusFallback) {
  EXPECT_EQ(powmod(Bigint(3), Bigint(4), Bigint(100)).to_dec(), "81");
  EXPECT_EQ(powmod(Bigint(7), Bigint(13), Bigint(64)).to_dec(),
            powmod(Bigint(7), Bigint(13), Bigint(64)).to_dec());
}

TEST(Powmod, ModulusOne) { EXPECT_EQ(powmod(Bigint(5), Bigint(5), Bigint(1)).to_dec(), "0"); }

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd(Bigint(12), Bigint(18)).to_dec(), "6");
  EXPECT_EQ(gcd(Bigint(-12), Bigint(18)).to_dec(), "6");
  EXPECT_EQ(gcd(Bigint(0), Bigint(5)).to_dec(), "5");
  EXPECT_EQ(gcd(Bigint(5), Bigint(0)).to_dec(), "5");
  EXPECT_EQ(gcd(Bigint(17), Bigint(13)).to_dec(), "1");
}

TEST(Egcd, BezoutIdentity) {
  Bigint a = Bigint::from_dec("123456789012345678901234567");
  Bigint b = Bigint::from_dec("987654321098765432109");
  EgcdResult e = egcd(a, b);
  EXPECT_EQ(a * e.x + b * e.y, e.g);
  EXPECT_EQ(e.g, gcd(a, b));
}

TEST(Invmod, RoundTrip) {
  Bigint m = Bigint::from_hex("7b00807d99b158cf");  // 64-bit prime q
  Prng prng(7);
  for (int i = 0; i < 20; ++i) {
    Bigint a = prng.uniform_nonzero_below(m);
    Bigint inv = invmod(a, m);
    EXPECT_EQ(mulmod(a, inv, m), Bigint(1));
    EXPECT_TRUE(inv < m && !inv.is_negative());
  }
}

TEST(Invmod, NotInvertibleThrows) {
  EXPECT_THROW((void)invmod(Bigint(6), Bigint(9)), std::domain_error);
  EXPECT_THROW((void)invmod(Bigint(0), Bigint(7)), std::domain_error);
}

TEST(Jacobi, KnownValues) {
  // (a/7): QRs mod 7 are {1,2,4}.
  EXPECT_EQ(jacobi(Bigint(1), Bigint(7)), 1);
  EXPECT_EQ(jacobi(Bigint(2), Bigint(7)), 1);
  EXPECT_EQ(jacobi(Bigint(3), Bigint(7)), -1);
  EXPECT_EQ(jacobi(Bigint(4), Bigint(7)), 1);
  EXPECT_EQ(jacobi(Bigint(5), Bigint(7)), -1);
  EXPECT_EQ(jacobi(Bigint(6), Bigint(7)), -1);
  EXPECT_EQ(jacobi(Bigint(7), Bigint(7)), 0);
  EXPECT_EQ(jacobi(Bigint(0), Bigint(9)), 0);
  EXPECT_EQ(jacobi(Bigint(2), Bigint(15)), 1);  // composite n: Jacobi, not Legendre
}

TEST(Jacobi, MatchesEulerCriterionOnPrime) {
  Bigint p = Bigint::from_hex("f60100fb3362b19f");
  Bigint e = (p - Bigint(1)).shr(1);
  Prng prng(11);
  for (int i = 0; i < 20; ++i) {
    Bigint a = prng.uniform_nonzero_below(p);
    Bigint euler = powmod(a, e, p);
    int expect = euler == Bigint(1) ? 1 : -1;
    EXPECT_EQ(jacobi(a, p), expect);
  }
}

TEST(Jacobi, RejectsBadModulus) {
  EXPECT_THROW((void)jacobi(Bigint(3), Bigint(8)), std::domain_error);
  EXPECT_THROW((void)jacobi(Bigint(3), Bigint(-7)), std::domain_error);
}

TEST(Montgomery, MulMatchesPlain) {
  Bigint m = Bigint::from_hex("fc7fb60b74845770ea35c5cacef5191b0634d65fb8cfbb233eb4908e654edd8f");
  MontgomeryCtx ctx(m);
  Prng prng(13);
  for (int i = 0; i < 20; ++i) {
    Bigint a = prng.uniform_below(m);
    Bigint b = prng.uniform_below(m);
    EXPECT_EQ(ctx.mul(a, b), mulmod(a, b, m));
  }
}

TEST(Montgomery, PowMatchesSquareAndMultiply) {
  Bigint m = Bigint::from_hex("8c1776c575241cbbd7faeab6bbc168fa67a22e08ffb74a1d4d136e0a17d38fce"
                              "69679bea9e59b2516d1a79a83d3ae604357dd72d91fc58738907e0e74c5d8d9b");
  MontgomeryCtx ctx(m);
  Prng prng(17);
  for (int i = 0; i < 8; ++i) {
    Bigint b = prng.uniform_below(m);
    Bigint e = prng.uniform_below(m);
    // Reference: naive square-and-multiply with mulmod.
    Bigint acc(1);
    for (std::size_t bit = e.bit_length(); bit-- > 0;) {
      acc = mulmod(acc, acc, m);
      if (e.bit(bit)) acc = mulmod(acc, b, m);
    }
    EXPECT_EQ(ctx.pow(b, e), acc);
  }
}

TEST(Montgomery, EdgeExponents) {
  Bigint m(101);
  MontgomeryCtx ctx(m);
  EXPECT_EQ(ctx.pow(Bigint(5), Bigint(0)), Bigint(1));
  EXPECT_EQ(ctx.pow(Bigint(5), Bigint(1)), Bigint(5));
  EXPECT_EQ(ctx.pow(Bigint(0), Bigint(5)), Bigint(0));
  EXPECT_EQ(ctx.pow(Bigint(100), Bigint(2)), Bigint(1));  // (-1)^2
}

TEST(Montgomery, RejectsBadModulus) {
  EXPECT_THROW(MontgomeryCtx(Bigint(8)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(Bigint(1)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(Bigint(0)), std::invalid_argument);
  EXPECT_THROW(MontgomeryCtx(Bigint(-7)), std::invalid_argument);
}

TEST(Pow2, MatchesTwoSeparateExponentiations) {
  Bigint m = Bigint::from_hex("fc7fb60b74845770ea35c5cacef5191b0634d65fb8cfbb233eb4908e654edd8f");
  MontgomeryCtx ctx(m);
  Prng prng(31);
  for (int i = 0; i < 15; ++i) {
    Bigint a = prng.uniform_below(m);
    Bigint b = prng.uniform_below(m);
    Bigint ea = prng.random_bits(1 + prng.uniform_u64(256));
    Bigint eb = prng.random_bits(1 + prng.uniform_u64(256));
    EXPECT_EQ(ctx.pow2(a, ea, b, eb), mulmod(ctx.pow(a, ea), ctx.pow(b, eb), m));
  }
}

TEST(Pow2, EdgeCases) {
  MontgomeryCtx ctx(Bigint(101));
  EXPECT_EQ(ctx.pow2(Bigint(5), Bigint(0), Bigint(7), Bigint(0)), Bigint(1));
  EXPECT_EQ(ctx.pow2(Bigint(5), Bigint(1), Bigint(7), Bigint(0)), Bigint(5));
  EXPECT_EQ(ctx.pow2(Bigint(5), Bigint(0), Bigint(7), Bigint(1)), Bigint(7));
  EXPECT_EQ(ctx.pow2(Bigint(5), Bigint(2), Bigint(7), Bigint(2)), Bigint(25 * 49 % 101));
  EXPECT_THROW((void)ctx.pow2(Bigint(101), Bigint(1), Bigint(2), Bigint(1)),
               std::invalid_argument);
  EXPECT_THROW((void)ctx.pow2(Bigint(5), Bigint(-1), Bigint(2), Bigint(1)),
               std::invalid_argument);
}

TEST(Pow2, MismatchedExponentWidths) {
  Bigint m = Bigint::from_hex("f60100fb3362b19f");
  MontgomeryCtx ctx(m);
  Prng prng(33);
  Bigint a = prng.uniform_below(m);
  Bigint b = prng.uniform_below(m);
  // One tiny, one wide exponent.
  Bigint ea(3);
  Bigint eb = prng.random_bits(63);
  EXPECT_EQ(ctx.pow2(a, ea, b, eb), mulmod(ctx.pow(a, ea), ctx.pow(b, eb), m));
}

TEST(MultiPow, MatchesProductOfPows) {
  Bigint m = Bigint::from_hex("fc7fb60b74845770ea35c5cacef5191b0634d65fb8cfbb233eb4908e654edd8f");
  MontgomeryCtx ctx(m);
  Prng prng(41);
  for (int k : {1, 2, 5, 9}) {
    std::vector<Bigint> bases, exps;
    Bigint expect(1);
    for (int i = 0; i < k; ++i) {
      bases.push_back(prng.uniform_below(m));
      exps.push_back(prng.random_bits(1 + prng.uniform_u64(200)));
      expect = mulmod(expect, ctx.pow(bases.back(), exps.back()), m);
    }
    EXPECT_EQ(ctx.multi_pow(bases, exps), expect) << k;
  }
}

TEST(MultiPow, EdgeCases) {
  MontgomeryCtx ctx(Bigint(101));
  EXPECT_EQ(ctx.multi_pow({}, {}), Bigint(1));
  std::vector<Bigint> b = {Bigint(5)};
  std::vector<Bigint> z = {Bigint(0)};
  EXPECT_EQ(ctx.multi_pow(b, z), Bigint(1));
  std::vector<Bigint> e = {Bigint(2)};
  EXPECT_EQ(ctx.multi_pow(b, e), Bigint(25));
  std::vector<Bigint> two_b = {Bigint(5), Bigint(7)};
  EXPECT_THROW((void)ctx.multi_pow(two_b, e), std::invalid_argument);
  std::vector<Bigint> neg = {Bigint(-1)};
  EXPECT_THROW((void)ctx.multi_pow(b, neg), std::invalid_argument);
}

TEST(FixedBasePow, MatchesGenericPow) {
  Bigint m = Bigint::from_hex("fc7fb60b74845770ea35c5cacef5191b0634d65fb8cfbb233eb4908e654edd8f");
  MontgomeryCtx ctx(m);
  Prng prng(21);
  Bigint base = prng.uniform_below(m);
  FixedBasePow fixed(ctx, base, 256);
  for (int i = 0; i < 20; ++i) {
    Bigint e = prng.random_bits(1 + prng.uniform_u64(256));
    EXPECT_EQ(fixed.pow(e), ctx.pow(base, e));
  }
  EXPECT_EQ(fixed.pow(Bigint(0)), Bigint(1));
  EXPECT_EQ(fixed.pow(Bigint(1)), base);
}

TEST(FixedBasePow, EdgeExponentWidths) {
  Bigint m(101);
  MontgomeryCtx ctx(m);
  // Capacity rounds up to whole 4-bit windows: 7 requested -> 8 usable bits.
  FixedBasePow fixed(ctx, Bigint(5), 7);
  for (std::uint64_t e = 0; e < 256; ++e) {
    EXPECT_EQ(fixed.pow(Bigint(e)), ctx.pow(Bigint(5), Bigint(e))) << e;
  }
  EXPECT_THROW((void)fixed.pow(Bigint(256)), std::invalid_argument);  // 9 bits
  EXPECT_THROW((void)fixed.pow(Bigint(-1)), std::invalid_argument);
}

TEST(FixedBasePow, RejectsBadBase) {
  MontgomeryCtx ctx(Bigint(101));
  EXPECT_THROW(FixedBasePow(ctx, Bigint(101), 8), std::invalid_argument);
  EXPECT_THROW(FixedBasePow(ctx, Bigint(-1), 8), std::invalid_argument);
  FixedBasePow zero_ok(ctx, Bigint(0), 8);
  EXPECT_EQ(zero_ok.pow(Bigint(3)), Bigint(0));
  EXPECT_EQ(zero_ok.pow(Bigint(0)), Bigint(1));
}

TEST(Montgomery, RejectsOutOfRangeOperands) {
  MontgomeryCtx ctx(Bigint(101));
  EXPECT_THROW((void)ctx.pow(Bigint(101), Bigint(2)), std::invalid_argument);
  EXPECT_THROW((void)ctx.pow(Bigint(5), Bigint(-2)), std::invalid_argument);
}

}  // namespace
}  // namespace dblind::mpz
