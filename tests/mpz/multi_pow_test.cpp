// Property tests for the multi-exponentiation fast path (PR 3 tentpole).
//
// The only spec for MontgomeryCtx::multi_pow is "Π bases[i]^exps[i] mod n",
// so every test here cross-checks against a product of independent powmod()
// calls. Base-count sweeps deliberately straddle the internal dispatch
// boundaries: 1 (falls through to pow), 2–4 (interleaved Shamir), 5+
// (Pippenger buckets), including 64 bases to exercise wide bucket windows.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "group/params.hpp"
#include "mpz/bigint.hpp"
#include "mpz/modmath.hpp"
#include "mpz/montgomery.hpp"
#include "mpz/random.hpp"

namespace dblind::mpz {
namespace {

// Uniform in [0, 2^bits) — variable-length, unlike Prng::random_bits.
Bigint rand_bits(Prng& prng, std::size_t bits) {
  return prng.uniform_below(Bigint(1).shl(bits));
}

// Reference implementation: independent square-and-multiply per base.
Bigint naive_multi_pow(const Bigint& n, const std::vector<Bigint>& bases,
                       const std::vector<Bigint>& exps) {
  Bigint acc(1);
  for (std::size_t i = 0; i < bases.size(); ++i) {
    acc = mulmod(acc, powmod(bases[i], exps[i], n), n);
  }
  return acc;
}

Bigint odd_modulus(Prng& prng, std::size_t bits) {
  Bigint n = rand_bits(prng, bits);
  if (!n.bit(0)) n = n + Bigint(1);
  if (n <= Bigint(1)) n = Bigint(3);
  return n;
}

class MultiPowProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiPowProperty, AgreesWithProductOfPowmods) {
  Prng prng(GetParam());
  for (std::size_t mod_bits : {64u, 192u, 320u}) {
    Bigint n = odd_modulus(prng, mod_bits);
    MontgomeryCtx ctx(n);
    // Straddle every dispatch boundary: pow / Shamir / Pippenger.
    for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 8u, 17u, 64u}) {
      std::vector<Bigint> bases, exps;
      for (std::size_t i = 0; i < count; ++i) {
        bases.push_back(mod(rand_bits(prng, mod_bits + 7), n));
        exps.push_back(rand_bits(prng, 1 + (i * 37) % (mod_bits + 16)));
      }
      EXPECT_EQ(ctx.multi_pow(bases, exps), naive_multi_pow(n, bases, exps))
          << "seed=" << GetParam() << " bits=" << mod_bits << " count=" << count;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiPowProperty, ::testing::Range<std::uint64_t>(1, 13));

TEST(MultiPow, EdgeCases) {
  Bigint n = Bigint::from_hex("f60100fb3362b19f");  // odd 64-bit
  MontgomeryCtx ctx(n);
  Prng prng(7);

  // Empty product is 1.
  EXPECT_EQ(ctx.multi_pow({}, {}), Bigint(1));

  // exp == 0 contributes a factor of 1, in every dispatch regime.
  for (std::size_t count : {1u, 3u, 9u}) {
    std::vector<Bigint> bases, exps;
    for (std::size_t i = 0; i < count; ++i) {
      bases.push_back(mod(rand_bits(prng, 64), n));
      exps.push_back(Bigint(0));
    }
    EXPECT_EQ(ctx.multi_pow(bases, exps), Bigint(1)) << count;
  }

  // base == 1 contributes a factor of 1 regardless of exponent.
  std::vector<Bigint> bases = {Bigint(1), mod(rand_bits(prng, 64), n), Bigint(1)};
  std::vector<Bigint> exps = {rand_bits(prng, 64), rand_bits(prng, 64), Bigint(0)};
  EXPECT_EQ(ctx.multi_pow(bases, exps), powmod(bases[1], exps[1], n));

  // base == 0 with positive exponent zeroes the product.
  EXPECT_EQ(ctx.multi_pow({{Bigint(0), Bigint(5)}}, {{Bigint(3), Bigint(2)}}), Bigint(0));

  // Single base is exactly pow().
  Bigint b = mod(rand_bits(prng, 64), n);
  Bigint e = rand_bits(prng, 64);
  EXPECT_EQ(ctx.multi_pow({{b}}, {{e}}), ctx.pow(b, e));

  // Repeated bases multiply exponents in the group sense: b^e1 * b^e2.
  EXPECT_EQ(ctx.multi_pow({{b, b}}, {{e, Bigint(17)}}),
            mulmod(powmod(b, e, n), powmod(b, Bigint(17), n), n));
}

TEST(MultiPow, RejectsBadInput) {
  Bigint n(101);
  MontgomeryCtx ctx(n);
  // Length mismatch.
  EXPECT_THROW((void)ctx.multi_pow({{Bigint(2), Bigint(3)}}, {{Bigint(1)}}),
               std::invalid_argument);
  // Base out of range.
  EXPECT_THROW((void)ctx.multi_pow({{Bigint(101)}}, {{Bigint(1)}}), std::invalid_argument);
  EXPECT_THROW((void)ctx.multi_pow({{Bigint(-1)}}, {{Bigint(1)}}), std::invalid_argument);
  // Negative exponent.
  EXPECT_THROW((void)ctx.multi_pow({{Bigint(2)}}, {{Bigint(-1)}}), std::invalid_argument);
}

TEST(MultiPow, MulCountIsMonotoneAndCounts) {
  Bigint n = Bigint::from_hex("f60100fb3362b19f");
  MontgomeryCtx ctx(n);
  std::uint64_t before = ctx.mul_count();
  (void)ctx.pow(Bigint(4), Bigint(123456789));
  std::uint64_t mid = ctx.mul_count();
  EXPECT_GT(mid, before);
  std::vector<Bigint> bases = {Bigint(2), Bigint(3), Bigint(5)};
  std::vector<Bigint> exps = {Bigint(99), Bigint(98), Bigint(97)};
  (void)ctx.multi_pow(bases, exps);
  EXPECT_GT(ctx.mul_count(), mid);
}

// multi_pow over a batch should beat per-base exponentiation on the metric
// the bench gate uses — Montgomery multiplications — once the batch is wide
// enough to amortize the shared squaring chain.
TEST(MultiPow, FewerMulsThanSerialForWideBatches) {
  Prng prng(42);
  Bigint n = odd_modulus(prng, 512);
  std::vector<Bigint> bases, exps;
  for (std::size_t i = 0; i < 16; ++i) {
    bases.push_back(mod(rand_bits(prng, 512), n));
    exps.push_back(rand_bits(prng, 256));
  }
  MontgomeryCtx batch_ctx(n);
  std::uint64_t b0 = batch_ctx.mul_count();
  Bigint batched = batch_ctx.multi_pow(bases, exps);
  std::uint64_t batch_muls = batch_ctx.mul_count() - b0;

  MontgomeryCtx serial_ctx(n);
  std::uint64_t s0 = serial_ctx.mul_count();
  Bigint serial(1);
  for (std::size_t i = 0; i < bases.size(); ++i) {
    serial = serial_ctx.mul(serial, serial_ctx.pow(bases[i], exps[i]));
  }
  std::uint64_t serial_muls = serial_ctx.mul_count() - s0;

  EXPECT_EQ(batched, serial);
  EXPECT_LT(batch_muls * 2, serial_muls)
      << "batched=" << batch_muls << " serial=" << serial_muls;
}

}  // namespace
}  // namespace dblind::mpz

namespace dblind::group {
namespace {

using mpz::Bigint;
using mpz::Prng;

TEST(GroupMultiPow, ReducesBasesAndMatchesPow) {
  GroupParams params = GroupParams::named(ParamId::kTest128);
  Prng prng(5);
  std::vector<Bigint> bases, exps;
  Bigint expect(1);
  for (std::size_t i = 0; i < 6; ++i) {
    Bigint b = params.random_element(prng);
    Bigint e = params.random_exponent(prng);
    // Feed the base unreduced (b + p) to exercise the documented reduction.
    bases.push_back(b + params.p());
    exps.push_back(e);
    expect = params.mul(expect, params.pow(b, e));
  }
  EXPECT_EQ(params.multi_pow(bases, exps), expect);
}

TEST(PowCached, HotPathMatchesColdPath) {
  GroupParams params = GroupParams::named(ParamId::kTest128);
  Prng prng(6);
  Bigint base = params.random_element(prng);
  for (int i = 0; i < 5; ++i) {
    Bigint e = params.random_exponent(prng);
    // First call builds the table (cold), the rest hit it (hot); all must
    // equal the plain exponentiation.
    EXPECT_EQ(params.pow_cached(base, e), params.pow(base, e)) << i;
  }
  // Unreduced exponent and base: pow_cached reduces e mod q and base mod p.
  Bigint e = params.random_exponent(prng);
  EXPECT_EQ(params.pow_cached(base + params.p(), e + params.q()), params.pow(base, e));
}

TEST(PowCached, SharedAcrossCopiesAndOverflowFallsBack) {
  GroupParams params = GroupParams::named(ParamId::kToy64);
  GroupParams copy = params;  // shares the cache
  Prng prng(8);
  // Blow well past kMaxEntries (64) distinct bases; every answer must still
  // be correct, cached or not.
  for (int i = 0; i < 80; ++i) {
    Bigint b = params.random_element(prng);
    Bigint e = params.random_exponent(prng);
    EXPECT_EQ(params.pow_cached(b, e), copy.pow(b, e)) << i;
    EXPECT_EQ(copy.pow_cached(b, e), params.pow(b, e)) << i;
  }
}

TEST(GroupMontMulCount, SharedAcrossCopies) {
  GroupParams params = GroupParams::named(ParamId::kToy64);
  GroupParams copy = params;
  std::uint64_t before = params.mont_mul_count();
  Prng prng(9);
  (void)copy.pow(copy.random_element(prng), copy.random_exponent(prng));
  // The copy's work shows up in the original's counter (one shared context).
  EXPECT_GT(params.mont_mul_count(), before);
}

}  // namespace
}  // namespace dblind::group
