// Differential tests: our Bigint arithmetic vs OpenSSL BIGNUM.
//
// OpenSSL is NOT used anywhere in the product code; it is linked only here to
// cross-check the from-scratch implementation on randomized operands.
#include <openssl/bn.h>

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mpz/bigint.hpp"
#include "mpz/modmath.hpp"
#include "mpz/montgomery.hpp"
#include "mpz/prime.hpp"
#include "mpz/random.hpp"

namespace dblind::mpz {
namespace {

struct BnDeleter {
  void operator()(BIGNUM* b) const { BN_free(b); }
};
using BnPtr = std::unique_ptr<BIGNUM, BnDeleter>;

BnPtr to_bn(const Bigint& v) {
  BIGNUM* b = nullptr;
  std::string hex = v.abs().to_hex();
  BN_hex2bn(&b, hex.c_str());
  if (v.is_negative()) BN_set_negative(b, 1);
  return BnPtr(b);
}

Bigint from_bn(const BIGNUM* b) {
  char* hex = BN_bn2hex(b);
  Bigint out = Bigint::from_hex(hex);
  OPENSSL_free(hex);
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  BN_CTX* ctx_ = BN_CTX_new();
  ~DifferentialTest() override { BN_CTX_free(ctx_); }
};

TEST_P(DifferentialTest, AddSubMulDivAgree) {
  Prng prng(GetParam());
  for (int iter = 0; iter < 30; ++iter) {
    std::size_t abits = 1 + prng.uniform_u64(700);
    std::size_t bbits = 1 + prng.uniform_u64(700);
    // Every few iterations, jump to Karatsuba-sized operands (>= 2048 bits =
    // 32 limbs) so the recursive multiply and wide division paths are
    // cross-checked too.
    if (iter % 5 == 0) {
      abits += 2048 + prng.uniform_u64(2048);
      bbits += 1024 + prng.uniform_u64(3072);
    }
    Bigint a = prng.random_bits(abits);
    Bigint b = prng.random_bits(bbits);
    if (prng.uniform_u64(2)) a = a.negated();
    if (prng.uniform_u64(2)) b = b.negated();

    BnPtr ba = to_bn(a), bb = to_bn(b);
    BnPtr r(BN_new());

    BN_add(r.get(), ba.get(), bb.get());
    EXPECT_EQ(from_bn(r.get()), a + b);

    BN_sub(r.get(), ba.get(), bb.get());
    EXPECT_EQ(from_bn(r.get()), a - b);

    BN_mul(r.get(), ba.get(), bb.get(), ctx_);
    EXPECT_EQ(from_bn(r.get()), a * b);

    if (!b.is_zero()) {
      BnPtr q(BN_new()), rem(BN_new());
      BN_div(q.get(), rem.get(), ba.get(), bb.get(), ctx_);
      // OpenSSL BN_div truncates toward zero with remainder sign of dividend,
      // matching our semantics.
      EXPECT_EQ(from_bn(q.get()), a / b);
      EXPECT_EQ(from_bn(rem.get()), a % b);
    }
  }
}

TEST_P(DifferentialTest, ModExpAgrees) {
  Prng prng(GetParam() ^ 0x9e3779b97f4a7c15ull);
  for (int iter = 0; iter < 6; ++iter) {
    Bigint m = prng.random_bits(256 + prng.uniform_u64(256));
    if (m.is_even()) m += Bigint(1);  // our fast path needs odd modulus
    if (m == Bigint(1)) continue;
    Bigint base = prng.uniform_below(m);
    Bigint exp = prng.random_bits(200);

    BnPtr bm = to_bn(m), bb = to_bn(base), be = to_bn(exp);
    BnPtr r(BN_new());
    BN_mod_exp(r.get(), bb.get(), be.get(), bm.get(), ctx_);
    EXPECT_EQ(from_bn(r.get()), powmod(base, exp, m));
  }
}

TEST_P(DifferentialTest, MultiPowAgrees) {
  Prng prng(GetParam() ^ 0xa5a5a5a5a5a5a5a5ull);
  for (int iter = 0; iter < 4; ++iter) {
    Bigint m = prng.random_bits(192 + prng.uniform_u64(192));
    if (m.is_even()) m += Bigint(1);
    if (m == Bigint(1)) continue;
    MontgomeryCtx mctx(m);
    // Cover both the Shamir (<= 4 bases) and Pippenger (> 4) code paths.
    std::size_t count = 2 + prng.uniform_u64(15);
    std::vector<Bigint> bases, exps;
    BnPtr expect(BN_new());
    BN_one(expect.get());
    BnPtr bm = to_bn(m);
    for (std::size_t i = 0; i < count; ++i) {
      Bigint base = prng.uniform_below(m);
      Bigint exp = prng.random_bits(1 + prng.uniform_u64(200));
      bases.push_back(base);
      exps.push_back(exp);
      BnPtr bb = to_bn(base), be = to_bn(exp), term(BN_new());
      BN_mod_exp(term.get(), bb.get(), be.get(), bm.get(), ctx_);
      BN_mod_mul(expect.get(), expect.get(), term.get(), bm.get(), ctx_);
    }
    EXPECT_EQ(from_bn(expect.get()), mctx.multi_pow(bases, exps))
        << "m=" << m.to_hex() << " count=" << count;
  }
}

TEST_P(DifferentialTest, ModInverseAgrees) {
  Prng prng(GetParam() + 99);
  for (int iter = 0; iter < 20; ++iter) {
    Bigint m = prng.random_bits(128);
    Bigint a = prng.uniform_below(m);
    if (gcd(a, m) != Bigint(1)) continue;

    BnPtr bm = to_bn(m), ba = to_bn(a);
    BnPtr r(BN_new());
    ASSERT_NE(BN_mod_inverse(r.get(), ba.get(), bm.get(), ctx_), nullptr);
    EXPECT_EQ(from_bn(r.get()), invmod(a, m));
  }
}

TEST_P(DifferentialTest, GcdAgrees) {
  Prng prng(GetParam() + 12345);
  for (int iter = 0; iter < 20; ++iter) {
    Bigint a = prng.random_bits(1 + prng.uniform_u64(400));
    Bigint b = prng.random_bits(1 + prng.uniform_u64(400));
    BnPtr ba = to_bn(a), bb = to_bn(b);
    BnPtr r(BN_new());
    BN_gcd(r.get(), ba.get(), bb.get(), ctx_);
    EXPECT_EQ(from_bn(r.get()), gcd(a, b));
  }
}

// Fixed-base comb tables (the PR 5 fast path for protocol bases) vs
// BN_mod_exp, over every window width and the edge exponents the comb
// indexing must get right: 0, 1, order-1, all-ones and single-bit patterns.
TEST_P(DifferentialTest, FixedBaseCombAgrees) {
  Prng prng(GetParam() ^ 0xc0bb1e5ull);
  for (int iter = 0; iter < 3; ++iter) {
    Bigint m = prng.random_bits(192 + prng.uniform_u64(128));
    if (m.is_even()) m += Bigint(1);
    if (m == Bigint(1)) continue;
    MontgomeryCtx mctx(m);
    Bigint base = prng.uniform_below(m);
    const std::size_t max_bits = 200;

    std::vector<Bigint> exps = {Bigint(0), Bigint(1), Bigint(2),
                                (Bigint(1) << max_bits) - Bigint(1),
                                Bigint(1) << (max_bits - 1)};
    for (int i = 0; i < 4; ++i) exps.push_back(prng.random_bits(1 + prng.uniform_u64(max_bits)));

    BnPtr bm = to_bn(m), bb = to_bn(base);
    for (std::size_t window = 1; window <= 8; ++window) {
      FixedBasePow table(mctx, base, max_bits, window);
      for (const Bigint& exp : exps) {
        BnPtr be = to_bn(exp), r(BN_new());
        BN_mod_exp(r.get(), bb.get(), be.get(), bm.get(), ctx_);
        EXPECT_EQ(from_bn(r.get()), table.pow(exp))
            << "m=" << m.to_hex() << " w=" << window << " e=" << exp.to_hex();
      }
    }
  }
}

TEST_P(DifferentialTest, PrimalityAgrees) {
  Prng prng(GetParam() + 777);
  for (int iter = 0; iter < 10; ++iter) {
    Bigint n = prng.random_bits(96);
    if (n.is_even()) n += Bigint(1);
    BnPtr bn = to_bn(n);
    int ossl = BN_check_prime(bn.get(), ctx_, nullptr);
    ASSERT_GE(ossl, 0);
    EXPECT_EQ(ossl == 1, is_probable_prime(n, prng, 40)) << n.to_hex();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace dblind::mpz
