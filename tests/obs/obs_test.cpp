// Unit tests for the observability layer (PR 4): metrics registry
// semantics, Prometheus text format, JSONL trace serialization, and the
// determinism guarantee (same seed => byte-identical trace).
//
// The concurrency tests double as the TSan coverage for lock-free metric
// updates: run under the tsan preset they hammer one Counter/Histogram cell
// from many threads, which is exactly what verify-pool workers do in a
// ThreadedBus deployment.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dblind::obs {
namespace {

TEST(Metrics, CounterGaugeHistogramSemantics) {
  MetricsRegistry reg;
  Counter c = reg.counter("c_total");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g = reg.gauge("g");
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3u);

  Histogram h = reg.histogram("h_us", {}, {10, 100});
  h.observe(5);
  h.observe(50);
  h.observe(500);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.total(), 555u);
  auto samples = reg.histogram_samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].buckets, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(Metrics, SameNameAndLabelsShareOneCell) {
  MetricsRegistry reg;
  // Label order must not matter: the registry canonicalizes by sorting.
  Counter a = reg.counter("x_total", {{"node", "3"}, {"type", "commit"}});
  Counter b = reg.counter("x_total", {{"type", "commit"}, {"node", "3"}});
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(reg.scalar_samples().size(), 1u);

  Counter other = reg.counter("x_total", {{"node", "4"}, {"type", "commit"}});
  other.inc(10);
  EXPECT_EQ(other.value(), 10u);
  EXPECT_EQ(reg.scalar_samples().size(), 2u);
}

TEST(Metrics, DefaultHandlesDiscardWithoutARegistry) {
  // The branch-free hot path: handles not resolved against a registry write
  // into the process-wide discard cells. No crash, no registry required.
  Counter c;
  Gauge g;
  Histogram h;
  c.inc(5);
  g.set(9);
  h.observe(123);
  EXPECT_GE(h.count(), 1u);  // shared discard cell: only monotonicity holds
}

TEST(Metrics, AttachCounterExposesExternalCell) {
  std::atomic<std::uint64_t> cell{17};
  MetricsRegistry reg;
  reg.attach_counter("ext_total", {{"node", "1"}}, &cell);
  cell.fetch_add(3);
  auto samples = reg.scalar_samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "ext_total");
  EXPECT_EQ(samples[0].value, 20u);
  // A writable handle for an attached series must not scribble on the
  // externally owned cell — it degrades to the discard cell.
  Counter c = reg.counter("ext_total", {{"node", "1"}});
  c.inc(1000);
  EXPECT_EQ(cell.load(), 20u);
}

TEST(Metrics, LabelTextCanonicalForm) {
  EXPECT_EQ(label_text({}), "");
  EXPECT_EQ(label_text({{"node", "3"}, {"type", "commit"}}),
            "{node=\"3\",type=\"commit\"}");
  EXPECT_EQ(label_text({{"k", "a\"b\\c"}}), "{k=\"a\\\"b\\\\c\"}");
}

TEST(Metrics, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("a_total", {{"node", "1"}}).inc(2);
  reg.counter("a_total", {{"node", "2"}}).inc(5);
  reg.gauge("depth").set(4);
  Histogram h = reg.histogram("lat_us", {{"node", "1"}}, {10, 100});
  h.observe(7);
  h.observe(70);
  h.observe(700);

  std::string text = reg.prometheus_text();
  EXPECT_EQ(text,
            "# TYPE a_total counter\n"
            "a_total{node=\"1\"} 2\n"
            "a_total{node=\"2\"} 5\n"
            "# TYPE depth gauge\n"
            "depth 4\n"
            "# TYPE lat_us histogram\n"
            "lat_us_bucket{node=\"1\",le=\"10\"} 1\n"
            "lat_us_bucket{node=\"1\",le=\"100\"} 2\n"
            "lat_us_bucket{node=\"1\",le=\"+Inf\"} 3\n"
            "lat_us_sum{node=\"1\"} 777\n"
            "lat_us_count{node=\"1\"} 3\n");
}

TEST(Metrics, ScopedCounterDeltaAttributesTheDelta) {
  MetricsRegistry reg;
  Counter dst = reg.counter("phase_muls_total");
  std::atomic<std::uint64_t> src{100};
  {
    ScopedCounterDelta d(&src, dst);
    src.fetch_add(25);
  }
  EXPECT_EQ(dst.value(), 25u);
  {
    ScopedCounterDelta d(nullptr, dst);  // null source: no-op, no crash
  }
  EXPECT_EQ(dst.value(), 25u);
}

TEST(Metrics, ConcurrentUpdatesFromManyThreads) {
  MetricsRegistry reg;
  Counter c = reg.counter("hammer_total");
  Histogram h = reg.histogram("hammer_us", {}, {8, 64});
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>((t * kIters + i) % 100));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Trace, JsonlFieldOrderPerKind) {
  TraceEvent e;
  e.ts = 120;
  e.node = 5;
  e.kind = EventKind::kMsgSend;
  e.peer = 2;
  e.count = 96;
  EXPECT_EQ(to_jsonl(e), "{\"ts\":120,\"node\":5,\"kind\":\"msg_send\","
                         "\"peer\":2,\"bytes\":96}");

  TraceEvent ep;
  ep.ts = 7;
  ep.node = 4;
  ep.kind = EventKind::kEpochStart;
  ep.has_instance = true;
  ep.transfer = 1;
  ep.coordinator = 2;
  ep.epoch = 3;
  EXPECT_EQ(to_jsonl(ep), "{\"ts\":7,\"node\":4,\"kind\":\"epoch_start\","
                          "\"transfer\":1,\"coord\":2,\"epoch\":3}");

  TraceEvent v;
  v.ts = 9;
  v.node = 6;
  v.kind = EventKind::kVerifyFail;
  v.has_instance = true;
  v.transfer = 1;
  v.coordinator = 1;
  v.epoch = 1;
  v.subject = 4;
  v.peer = 3;
  EXPECT_EQ(to_jsonl(v), "{\"ts\":9,\"node\":6,\"kind\":\"verify_fail\","
                         "\"transfer\":1,\"coord\":1,\"epoch\":1,"
                         "\"subject\":4,\"peer\":3}");

  TraceEvent r;
  r.ts = 80;
  r.node = 4;
  r.kind = EventKind::kRetransmit;
  r.transfer = 1;  // bare transfer without an instance
  r.peer = 3;
  r.count = 4;
  r.attempt = 1;
  r.cap = 12;
  EXPECT_EQ(to_jsonl(r), "{\"ts\":80,\"node\":4,\"kind\":\"retransmit\","
                         "\"transfer\":1,\"key\":3,\"frames\":4,"
                         "\"attempt\":1,\"cap\":12}");

  RunMeta m{42, 4, 1, 4, 1, 12};
  EXPECT_EQ(to_jsonl(m), "{\"kind\":\"meta\",\"run_seed\":42,\"a_n\":4,"
                         "\"a_f\":1,\"b_n\":4,\"b_f\":1,"
                         "\"retransmit_cap\":12}");
}

TEST(Trace, MemoryRecorderCountsAndMeta) {
  MemoryTraceRecorder rec;
  rec.run_meta(RunMeta{9, 4, 1, 4, 1, 12});
  TraceEvent e;
  e.kind = EventKind::kVerifyPass;
  rec.record(e);
  rec.record(e);
  e.kind = EventKind::kVerifyFail;
  rec.record(e);
  EXPECT_EQ(rec.meta().run_seed, 9u);
  EXPECT_EQ(rec.count_of(EventKind::kVerifyPass), 2u);
  EXPECT_EQ(rec.count_of(EventKind::kVerifyFail), 1u);
  EXPECT_EQ(rec.events().size(), 3u);
}

// The determinism guarantee the trace layer documents: two runs with the
// same seed produce byte-identical JSONL (timestamps are virtual, and the
// recorder hooks draw no randomness of their own).
TEST(Trace, SameSeedProducesByteIdenticalJsonl) {
  auto run_once = [] {
    std::ostringstream out;
    JsonlTraceRecorder rec(out);
    core::SystemOptions o;
    o.a = {4, 1};
    o.b = {4, 1};
    o.seed = 31337;
    o.protocol.trace = &rec;
    core::System sys(std::move(o));
    sys.add_transfer(sys.config().params.encode_message(mpz::Bigint(77)));
    EXPECT_TRUE(sys.run_to_completion());
    return out.str();
  };
  std::string first = run_once();
  std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The meta header is the first line, before any event.
  EXPECT_EQ(first.rfind("{\"kind\":\"meta\"", 0), 0u);
  // A completed honest run records done at every B server.
  std::size_t dones = 0;
  for (std::size_t pos = first.find("\"done_recorded\"");
       pos != std::string::npos; pos = first.find("\"done_recorded\"", pos + 1)) {
    ++dones;
  }
  EXPECT_EQ(dones, 4u);
}

// Malformed-line rejection lives in tools/trace_check.py (covered by ctest
// entry obs.trace_check_selftest); what the C++ side owns is that every
// emitted line is one well-formed JSON object — spot-check the invariant
// the parser relies on: one '{' prefix, one '}' suffix, no embedded newline.
TEST(Trace, EveryJsonlLineIsOneObject) {
  std::ostringstream out;
  JsonlTraceRecorder rec(out);
  core::SystemOptions o;
  o.a = {4, 1};
  o.b = {4, 1};
  o.seed = 5;
  o.protocol.trace = &rec;
  core::System sys(std::move(o));
  sys.add_transfer(sys.config().params.encode_message(mpz::Bigint(8)));
  EXPECT_TRUE(sys.run_to_completion());

  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << "line " << n;
    EXPECT_EQ(line.back(), '}') << "line " << n;
  }
  EXPECT_GT(n, 1u);
}

// Registration racing scrapes (PR 6): the registry mutex (a dblind::Mutex,
// checked by the static_analysis.thread_safety gate) guards the name->cell
// maps; updates through returned handles are lock-free atomics. Hammering
// registration of colliding names against prometheus_text/scalar_samples
// readers is the TSan proof for that split.
TEST(Metrics, ConcurrentRegistrationAndScrape) {
  MetricsRegistry reg;
  constexpr int kThreads = 6;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 2);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Colliding and distinct names: same-name registration must converge
        // on one cell while new names grow the map under the lock.
        Counter c = reg.counter("race_total", {{"lane", std::to_string(i % 4)}});
        c.inc();
        Gauge g = reg.gauge("race_gauge_" + std::to_string(t));
        g.set(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        (void)reg.prometheus_text();
        (void)reg.scalar_samples();
      }
    });
  }
  for (auto& th : threads) th.join();
  std::uint64_t total = 0;
  for (const auto& s : reg.scalar_samples()) {
    if (s.name.rfind("race_total", 0) == 0) total += s.value;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIters);
}

// MemoryTraceRecorder is shared by every node thread in a ThreadedBus run;
// concurrent record() against meta()/events() snapshots must never tear
// (its mutex is part of the annotated-capability rollout).
TEST(Trace, ConcurrentRecordAndSnapshot) {
  MemoryTraceRecorder rec;
  RunMeta meta;
  meta.run_seed = 42;
  rec.run_meta(meta);
  constexpr int kThreads = 4;
  constexpr int kEvents = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kEvents; ++i) {
        TraceEvent e;
        e.ts = static_cast<std::uint64_t>(i);
        e.node = static_cast<std::uint32_t>(t);
        e.kind = EventKind::kMsgSend;
        rec.record(e);
      }
    });
  }
  std::thread reader([&] {
    for (int i = 0; i < 200; ++i) {
      auto snap = rec.events();
      EXPECT_LE(snap.size(), static_cast<std::size_t>(kThreads) * kEvents);
      (void)rec.meta();
    }
  });
  for (auto& th : writers) th.join();
  reader.join();
  EXPECT_EQ(rec.events().size(), static_cast<std::size_t>(kThreads) * kEvents);
}

}  // namespace
}  // namespace dblind::obs
