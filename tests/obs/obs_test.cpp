// Unit tests for the observability layer (PR 4): metrics registry
// semantics, Prometheus text format, JSONL trace serialization, and the
// determinism guarantee (same seed => byte-identical trace).
//
// The concurrency tests double as the TSan coverage for lock-free metric
// updates: run under the tsan preset they hammer one Counter/Histogram cell
// from many threads, which is exactly what verify-pool workers do in a
// ThreadedBus deployment.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"

namespace dblind::obs {
namespace {

TEST(Metrics, CounterGaugeHistogramSemantics) {
  MetricsRegistry reg;
  Counter c = reg.counter("c_total");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g = reg.gauge("g");
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3u);

  Histogram h = reg.histogram("h_us", {}, {10, 100});
  h.observe(5);
  h.observe(50);
  h.observe(500);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.total(), 555u);
  auto samples = reg.histogram_samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].buckets, (std::vector<std::uint64_t>{1, 1, 1}));
}

TEST(Metrics, SameNameAndLabelsShareOneCell) {
  MetricsRegistry reg;
  // Label order must not matter: the registry canonicalizes by sorting.
  Counter a = reg.counter("x_total", {{"node", "3"}, {"type", "commit"}});
  Counter b = reg.counter("x_total", {{"type", "commit"}, {"node", "3"}});
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(reg.scalar_samples().size(), 1u);

  Counter other = reg.counter("x_total", {{"node", "4"}, {"type", "commit"}});
  other.inc(10);
  EXPECT_EQ(other.value(), 10u);
  EXPECT_EQ(reg.scalar_samples().size(), 2u);
}

TEST(Metrics, DefaultHandlesDiscardWithoutARegistry) {
  // The branch-free hot path: handles not resolved against a registry write
  // into the process-wide discard cells. No crash, no registry required.
  Counter c;
  Gauge g;
  Histogram h;
  c.inc(5);
  g.set(9);
  h.observe(123);
  EXPECT_GE(h.count(), 1u);  // shared discard cell: only monotonicity holds
}

TEST(Metrics, AttachCounterExposesExternalCell) {
  std::atomic<std::uint64_t> cell{17};
  MetricsRegistry reg;
  reg.attach_counter("ext_total", {{"node", "1"}}, &cell);
  cell.fetch_add(3);
  auto samples = reg.scalar_samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "ext_total");
  EXPECT_EQ(samples[0].value, 20u);
  // A writable handle for an attached series must not scribble on the
  // externally owned cell — it degrades to the discard cell.
  Counter c = reg.counter("ext_total", {{"node", "1"}});
  c.inc(1000);
  EXPECT_EQ(cell.load(), 20u);
}

TEST(Metrics, LabelTextCanonicalForm) {
  EXPECT_EQ(label_text({}), "");
  EXPECT_EQ(label_text({{"node", "3"}, {"type", "commit"}}),
            "{node=\"3\",type=\"commit\"}");
  EXPECT_EQ(label_text({{"k", "a\"b\\c"}}), "{k=\"a\\\"b\\\\c\"}");
}

TEST(Metrics, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("a_total", {{"node", "1"}}).inc(2);
  reg.counter("a_total", {{"node", "2"}}).inc(5);
  reg.gauge("depth").set(4);
  Histogram h = reg.histogram("lat_us", {{"node", "1"}}, {10, 100});
  h.observe(7);
  h.observe(70);
  h.observe(700);

  std::string text = reg.prometheus_text();
  EXPECT_EQ(text,
            "# TYPE a_total counter\n"
            "a_total{node=\"1\"} 2\n"
            "a_total{node=\"2\"} 5\n"
            "# TYPE depth gauge\n"
            "depth 4\n"
            "# TYPE lat_us histogram\n"
            "lat_us_bucket{node=\"1\",le=\"10\"} 1\n"
            "lat_us_bucket{node=\"1\",le=\"100\"} 2\n"
            "lat_us_bucket{node=\"1\",le=\"+Inf\"} 3\n"
            "lat_us_sum{node=\"1\"} 777\n"
            "lat_us_count{node=\"1\"} 3\n");
}

TEST(Metrics, ScopedCounterDeltaAttributesTheDelta) {
  MetricsRegistry reg;
  Counter dst = reg.counter("phase_muls_total");
  std::atomic<std::uint64_t> src{100};
  {
    ScopedCounterDelta d(&src, dst);
    src.fetch_add(25);
  }
  EXPECT_EQ(dst.value(), 25u);
  {
    ScopedCounterDelta d(nullptr, dst);  // null source: no-op, no crash
  }
  EXPECT_EQ(dst.value(), 25u);
}

TEST(Metrics, ConcurrentUpdatesFromManyThreads) {
  MetricsRegistry reg;
  Counter c = reg.counter("hammer_total");
  Histogram h = reg.histogram("hammer_us", {}, {8, 64});
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>((t * kIters + i) % 100));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Trace, JsonlFieldOrderPerKind) {
  TraceEvent e;
  e.ts = 120;
  e.node = 5;
  e.kind = EventKind::kMsgSend;
  e.peer = 2;
  e.count = 96;
  EXPECT_EQ(to_jsonl(e), "{\"ts\":120,\"node\":5,\"kind\":\"msg_send\","
                         "\"peer\":2,\"bytes\":96}");

  TraceEvent ep;
  ep.ts = 7;
  ep.node = 4;
  ep.kind = EventKind::kEpochStart;
  ep.has_instance = true;
  ep.transfer = 1;
  ep.coordinator = 2;
  ep.epoch = 3;
  EXPECT_EQ(to_jsonl(ep), "{\"ts\":7,\"node\":4,\"kind\":\"epoch_start\","
                          "\"transfer\":1,\"coord\":2,\"epoch\":3}");

  TraceEvent v;
  v.ts = 9;
  v.node = 6;
  v.kind = EventKind::kVerifyFail;
  v.has_instance = true;
  v.transfer = 1;
  v.coordinator = 1;
  v.epoch = 1;
  v.subject = 4;
  v.peer = 3;
  EXPECT_EQ(to_jsonl(v), "{\"ts\":9,\"node\":6,\"kind\":\"verify_fail\","
                         "\"transfer\":1,\"coord\":1,\"epoch\":1,"
                         "\"subject\":4,\"peer\":3}");

  TraceEvent r;
  r.ts = 80;
  r.node = 4;
  r.kind = EventKind::kRetransmit;
  r.transfer = 1;  // bare transfer without an instance
  r.peer = 3;
  r.count = 4;
  r.attempt = 1;
  r.cap = 12;
  EXPECT_EQ(to_jsonl(r), "{\"ts\":80,\"node\":4,\"kind\":\"retransmit\","
                         "\"transfer\":1,\"key\":3,\"frames\":4,"
                         "\"attempt\":1,\"cap\":12}");

  // Schema v2 (PR 9): the meta header leads with the version so offline
  // tools can reject mismatched traces before reading a single event.
  RunMeta m{42, 4, 1, 4, 1, 12};
  EXPECT_EQ(to_jsonl(m), "{\"kind\":\"meta\",\"v\":2,\"run_seed\":42,\"a_n\":4,"
                         "\"a_f\":1,\"b_n\":4,\"b_f\":1,"
                         "\"retransmit_cap\":12}");
  EXPECT_EQ(m.version, kTraceSchemaVersion);
}

// Schema v2 span fields: serialized right after "kind", and ONLY when
// nonzero — unit-style events built without a transport keep their exact v1
// rendering (the pinned strings above), while transport-minted events carry
// the causal link.
TEST(Trace, SpanAndParentSerializeOnlyWhenNonzero) {
  TraceEvent e;
  e.ts = 120;
  e.node = 5;
  e.kind = EventKind::kMsgSend;
  e.peer = 2;
  e.count = 96;
  e.span = 17;
  e.parent = 9;
  EXPECT_EQ(to_jsonl(e), "{\"ts\":120,\"node\":5,\"kind\":\"msg_send\","
                         "\"span\":17,\"parent\":9,\"peer\":2,\"bytes\":96}");
  e.parent = 0;  // root span: parent omitted
  EXPECT_EQ(to_jsonl(e), "{\"ts\":120,\"node\":5,\"kind\":\"msg_send\","
                         "\"span\":17,\"peer\":2,\"bytes\":96}");
}

// Watchdog events: kStall carries the one-shot state dump (engine queue
// depth, pending verifies, outstanding resends) plus the stalled transfer's
// latest span as `parent`; kStallResolved carries the stalled duration.
TEST(Trace, StallEventSerialization) {
  TraceEvent s;
  s.ts = 400000;
  s.node = 6;
  s.kind = EventKind::kStall;
  s.transfer = 3;
  s.count = 2;    // engine queue depth
  s.peer = 1;     // pending verifies
  s.attempt = 4;  // outstanding resend entries
  s.span = 91;
  s.parent = 88;  // the transfer's latest span
  EXPECT_EQ(to_jsonl(s), "{\"ts\":400000,\"node\":6,\"kind\":\"stall\","
                         "\"span\":91,\"parent\":88,\"transfer\":3,"
                         "\"queue\":2,\"verifies\":1,\"resends\":4}");

  TraceEvent r;
  r.ts = 650000;
  r.node = 6;
  r.kind = EventKind::kStallResolved;
  r.transfer = 3;
  r.count = 250000;  // time spent stalled
  r.span = 120;
  r.parent = 119;
  EXPECT_EQ(to_jsonl(r), "{\"ts\":650000,\"node\":6,\"kind\":\"stall_resolved\","
                         "\"span\":120,\"parent\":119,\"transfer\":3,"
                         "\"stalled_us\":250000}");
}

TEST(Trace, MemoryRecorderCountsAndMeta) {
  MemoryTraceRecorder rec;
  rec.run_meta(RunMeta{9, 4, 1, 4, 1, 12});
  TraceEvent e;
  e.kind = EventKind::kVerifyPass;
  rec.record(e);
  rec.record(e);
  e.kind = EventKind::kVerifyFail;
  rec.record(e);
  EXPECT_EQ(rec.meta().run_seed, 9u);
  EXPECT_EQ(rec.count_of(EventKind::kVerifyPass), 2u);
  EXPECT_EQ(rec.count_of(EventKind::kVerifyFail), 1u);
  EXPECT_EQ(rec.events().size(), 3u);
}

// The determinism guarantee the trace layer documents: two runs with the
// same seed produce byte-identical JSONL (timestamps are virtual, and the
// recorder hooks draw no randomness of their own).
TEST(Trace, SameSeedProducesByteIdenticalJsonl) {
  auto run_once = [] {
    std::ostringstream out;
    JsonlTraceRecorder rec(out);
    core::SystemOptions o;
    o.a = {4, 1};
    o.b = {4, 1};
    o.seed = 31337;
    o.protocol.trace = &rec;
    core::System sys(std::move(o));
    sys.add_transfer(sys.config().params.encode_message(mpz::Bigint(77)));
    EXPECT_TRUE(sys.run_to_completion());
    return out.str();
  };
  std::string first = run_once();
  std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The meta header is the first line, before any event.
  EXPECT_EQ(first.rfind("{\"kind\":\"meta\"", 0), 0u);
  // A completed honest run records done at every B server.
  std::size_t dones = 0;
  for (std::size_t pos = first.find("\"done_recorded\"");
       pos != std::string::npos; pos = first.find("\"done_recorded\"", pos + 1)) {
    ++dones;
  }
  EXPECT_EQ(dones, 4u);
}

// Malformed-line rejection lives in tools/trace_check.py (covered by ctest
// entry obs.trace_check_selftest); what the C++ side owns is that every
// emitted line is one well-formed JSON object — spot-check the invariant
// the parser relies on: one '{' prefix, one '}' suffix, no embedded newline.
TEST(Trace, EveryJsonlLineIsOneObject) {
  std::ostringstream out;
  JsonlTraceRecorder rec(out);
  core::SystemOptions o;
  o.a = {4, 1};
  o.b = {4, 1};
  o.seed = 5;
  o.protocol.trace = &rec;
  core::System sys(std::move(o));
  sys.add_transfer(sys.config().params.encode_message(mpz::Bigint(8)));
  EXPECT_TRUE(sys.run_to_completion());

  std::istringstream lines(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << "line " << n;
    EXPECT_EQ(line.back(), '}') << "line " << n;
  }
  EXPECT_GT(n, 1u);
}

// Registration racing scrapes (PR 6): the registry mutex (a dblind::Mutex,
// checked by the static_analysis.thread_safety gate) guards the name->cell
// maps; updates through returned handles are lock-free atomics. Hammering
// registration of colliding names against prometheus_text/scalar_samples
// readers is the TSan proof for that split.
TEST(Metrics, ConcurrentRegistrationAndScrape) {
  MetricsRegistry reg;
  constexpr int kThreads = 6;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 2);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Colliding and distinct names: same-name registration must converge
        // on one cell while new names grow the map under the lock.
        Counter c = reg.counter("race_total", {{"lane", std::to_string(i % 4)}});
        c.inc();
        Gauge g = reg.gauge("race_gauge_" + std::to_string(t));
        g.set(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        (void)reg.prometheus_text();
        (void)reg.scalar_samples();
      }
    });
  }
  for (auto& th : threads) th.join();
  std::uint64_t total = 0;
  for (const auto& s : reg.scalar_samples()) {
    if (s.name.rfind("race_total", 0) == 0) total += s.value;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIters);
}

// MemoryTraceRecorder is shared by every node thread in a ThreadedBus run;
// concurrent record() against meta()/events() snapshots must never tear
// (its mutex is part of the annotated-capability rollout).
TEST(Trace, ConcurrentRecordAndSnapshot) {
  MemoryTraceRecorder rec;
  RunMeta meta;
  meta.run_seed = 42;
  rec.run_meta(meta);
  constexpr int kThreads = 4;
  constexpr int kEvents = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kEvents; ++i) {
        TraceEvent e;
        e.ts = static_cast<std::uint64_t>(i);
        e.node = static_cast<std::uint32_t>(t);
        e.kind = EventKind::kMsgSend;
        rec.record(e);
      }
    });
  }
  std::thread reader([&] {
    for (int i = 0; i < 200; ++i) {
      auto snap = rec.events();
      EXPECT_LE(snap.size(), static_cast<std::size_t>(kThreads) * kEvents);
      (void)rec.meta();
    }
  });
  for (auto& th : writers) th.join();
  reader.join();
  EXPECT_EQ(rec.events().size(), static_cast<std::size_t>(kThreads) * kEvents);
}

// --- stall watchdog (obs/watchdog.hpp) --------------------------------------

TEST(Watchdog, DisabledWatchdogIsInert) {
  Watchdog w(0);
  EXPECT_FALSE(w.enabled());
  w.arm(1, 0);
  EXPECT_FALSE(w.progress(1, 10, 5).has_value());
  EXPECT_TRUE(w.expired(1'000'000).empty());
  EXPECT_FALSE(w.needs_sweep());
}

TEST(Watchdog, StallFlipsOncePerEpisodeAndResolvesOnProgress) {
  Watchdog w(100);
  w.arm(7, 0);
  EXPECT_TRUE(w.needs_sweep());
  EXPECT_TRUE(w.expired(99).empty());  // not idle long enough

  auto stalls = w.expired(100);
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].transfer, 7u);
  EXPECT_EQ(stalls[0].last_span, 0u);  // no activity recorded yet
  EXPECT_EQ(w.stalled_count(), 1u);
  // Second sweep: the same episode is never re-reported.
  EXPECT_TRUE(w.expired(500).empty());
  EXPECT_FALSE(w.needs_sweep());  // everything stalled: sweeps are pointless

  // Progress resolves the stall and reports how long it lasted.
  auto res = w.progress(7, 260, /*span=*/42);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->transfer, 7u);
  EXPECT_EQ(res->stalled_us, 160u);
  EXPECT_EQ(w.stalled_count(), 0u);

  // A fresh episode can then start, carrying the latest span.
  auto again = w.expired(360);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0].last_span, 42u);
}

TEST(Watchdog, ProgressImplicitlyArmsAndKeepsLastNonzeroSpan) {
  Watchdog w(100);
  EXPECT_FALSE(w.progress(3, 10, 5).has_value());  // implicit arm, no stall
  EXPECT_FALSE(w.progress(3, 20, 0).has_value());  // span 0 keeps span 5
  auto stalls = w.expired(120);
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0].last_span, 5u);
}

TEST(Watchdog, CompleteStopsTrackingAndResolvesAPendingStall) {
  Watchdog w(100);
  w.arm(1, 0);
  w.arm(2, 0);
  // Completing a never-stalled transfer reports nothing.
  EXPECT_FALSE(w.complete(1, 50).has_value());
  ASSERT_EQ(w.expired(100).size(), 1u);  // only transfer 2 remains
  // Completing a stalled transfer resolves it (the crash-recovery path:
  // a kDoneRecorded is the resolution when no kStallResolved was possible).
  auto res = w.complete(2, 130);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->stalled_us, 30u);
  EXPECT_FALSE(w.needs_sweep());
  EXPECT_TRUE(w.expired(10'000).empty());
}

// --- label-cardinality guard ------------------------------------------------

TEST(Metrics, CardinalityGuardDropsPastTheCapAndCountsDrops) {
  MetricsRegistry reg;
  reg.set_max_series_per_family(2);
  Counter a = reg.counter("fam_total", {{"k", "a"}});
  Counter b = reg.counter("fam_total", {{"k", "b"}});
  // Third label set: refused — the handle discards, the drop is counted and
  // the drop counter self-registers as a visible series.
  Counter c = reg.counter("fam_total", {{"k", "c"}});
  a.inc();
  b.inc();
  c.inc(100);
  EXPECT_EQ(reg.dropped_labels(), 1u);
  std::uint64_t fam_sum = 0;
  bool saw_drop_series = false;
  for (const auto& s : reg.scalar_samples()) {
    if (s.name == "fam_total") fam_sum += s.value;
    if (s.name == MetricsRegistry::kDroppedLabelsMetric) {
      saw_drop_series = true;
      EXPECT_EQ(s.value, 1u);
    }
  }
  EXPECT_EQ(fam_sum, 2u);  // the refused series never lands in the family
  EXPECT_TRUE(saw_drop_series);

  // Re-registering a KNOWN label set is not a new series: never refused.
  Counter a2 = reg.counter("fam_total", {{"k", "a"}});
  a2.inc();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(reg.dropped_labels(), 1u);

  // Other families have their own budget; histograms share the guard.
  (void)reg.counter("other_total", {{"k", "x"}});
  EXPECT_EQ(reg.dropped_labels(), 1u);
  (void)reg.histogram("h_us", {{"k", "1"}}, {10});
  (void)reg.histogram("h_us", {{"k", "2"}}, {10});
  Histogram dropped = reg.histogram("h_us", {{"k", "3"}}, {10});
  dropped.observe(5);  // discard histogram: no crash, not exposed
  EXPECT_EQ(reg.dropped_labels(), 2u);
  EXPECT_EQ(reg.histogram_samples().size(), 2u);
}

TEST(Metrics, CardinalityGuardDefaultAdmitsProtocolScaleFanout) {
  MetricsRegistry reg;
  // The per-node × per-message-type fan-out the servers register is well
  // under the default cap; nothing may be dropped at protocol scale.
  for (int node = 0; node < 16; ++node) {
    for (int type = 0; type < 32; ++type) {
      reg.counter("rx_total", {{"node", std::to_string(node)},
                               {"type", std::to_string(type)}});
    }
  }
  EXPECT_EQ(reg.dropped_labels(), 0u);
}

// --- exact exposition under concurrent observation (PR 9 satellite) ---------
// Prometheus histogram exposition must be internally consistent even while
// writers hammer the cell: cumulative buckets monotone, +Inf bucket == the
// _count line of the SAME scrape, and _sum at least the value implied by
// completed observations. Run under the tsan preset this is the data-race
// proof for scrape-vs-observe; the structural checks below catch torn
// exposition logic on any preset.
TEST(Metrics, HistogramExpositionConsistentMidUpdate) {
  MetricsRegistry reg;
  Histogram h = reg.histogram("mid_us", {}, {10, 100, 1000});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      std::uint64_t v = static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        h.observe(v % 2000);
        v += 7;
      }
    });
  }
  for (int scrape = 0; scrape < 200; ++scrape) {
    auto samples = reg.histogram_samples();
    ASSERT_EQ(samples.size(), 1u);
    const auto& s = samples[0];
    // Cumulative form must be monotone; the raw per-bucket counts are
    // non-negative so this reduces to checking the running sum fits count's
    // eventual value. Mid-update, bucket increments may be ahead of or
    // behind the count cell by in-flight observations — bound, don't pin.
    std::uint64_t cumulative = 0;
    for (std::uint64_t b : s.buckets) cumulative += b;
    // Every completed observation put exactly one increment in exactly one
    // bucket; in-flight ones may have bumped a bucket but not count yet
    // (or vice versa: count is bumped last, so count <= sum(buckets) + 4).
    EXPECT_LE(s.count, cumulative + writers.size());
    EXPECT_LE(cumulative, s.count + writers.size());
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : writers) th.join();
  // Quiescent: the invariants become exact, including in the text dump.
  auto samples = reg.histogram_samples();
  std::uint64_t cumulative = 0;
  for (std::uint64_t b : samples[0].buckets) cumulative += b;
  EXPECT_EQ(cumulative, samples[0].count);
  std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("mid_us_bucket{le=\"+Inf\"} " +
                      std::to_string(samples[0].count)),
            std::string::npos);
  EXPECT_NE(text.find("mid_us_count " + std::to_string(samples[0].count)),
            std::string::npos);
}

// --- span DAG on a live run (PR 9 tentpole) ---------------------------------
// Every traced protocol run must yield a causal forest: each nonzero parent
// id names a span that was emitted earlier in the stream (spans are minted
// at record time, so causes always precede effects).
TEST(Trace, SpansFormACausalForest) {
  std::ostringstream out;
  JsonlTraceRecorder rec(out);
  core::SystemOptions o;
  o.a = {4, 1};
  o.b = {4, 1};
  o.seed = 1234;
  o.protocol.trace = &rec;
  core::System sys(std::move(o));
  sys.add_transfer(sys.config().params.encode_message(mpz::Bigint(5)));
  sys.add_transfer(sys.config().params.encode_message(mpz::Bigint(6)));
  EXPECT_TRUE(sys.run_to_completion());

  auto parse_u64 = [](const std::string& line, const std::string& key) {
    std::uint64_t v = 0;
    std::size_t pos = line.find("\"" + key + "\":");
    if (pos == std::string::npos) return v;
    pos += key.size() + 3;
    while (pos < line.size() && line[pos] >= '0' && line[pos] <= '9') {
      v = v * 10 + static_cast<std::uint64_t>(line[pos++] - '0');
    }
    return v;
  };
  std::istringstream lines(out.str());
  std::string line;
  std::set<std::uint64_t> seen;
  std::size_t linked = 0;
  while (std::getline(lines, line)) {
    std::uint64_t parent = parse_u64(line, "parent");
    if (parent != 0) {
      ++linked;
      EXPECT_TRUE(seen.contains(parent)) << "orphan parent in: " << line;
    }
    std::uint64_t span = parse_u64(line, "span");
    if (span != 0) {
      EXPECT_TRUE(seen.insert(span).second) << "duplicate span in: " << line;
    }
  }
  EXPECT_GT(seen.size(), 0u);
  EXPECT_GT(linked, 0u);  // the DAG is actually linked, not all roots
}

}  // namespace
}  // namespace dblind::obs
