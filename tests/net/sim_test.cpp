#include "net/sim.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <string>

namespace dblind::net {
namespace {

// Test node: echoes every message back to its sender with a '+' appended,
// and records everything it receives.
class Echo final : public Node {
 public:
  void on_message(Context& ctx, NodeId from, std::span<const std::uint8_t> bytes) override {
    received.emplace_back(bytes.begin(), bytes.end());
    if (bytes.size() < 8) {
      std::vector<std::uint8_t> reply(bytes.begin(), bytes.end());
      reply.push_back('+');
      ctx.send(from, std::move(reply));
    }
  }
  std::vector<std::vector<std::uint8_t>> received;
};

// Sends one initial message to a peer.
class Starter final : public Node {
 public:
  explicit Starter(NodeId peer) : peer_(peer) {}
  void on_start(Context& ctx) override { ctx.send(peer_, {'h', 'i'}); }
  void on_message(Context&, NodeId, std::span<const std::uint8_t> bytes) override {
    received.emplace_back(bytes.begin(), bytes.end());
  }
  std::vector<std::vector<std::uint8_t>> received;

 private:
  NodeId peer_;
};

TEST(Simulator, DeliversMessages) {
  Simulator sim(1, std::make_unique<UniformDelay>(10, 100));
  auto echo = std::make_unique<Echo>();
  Echo* echo_ptr = echo.get();
  NodeId echo_id = sim.add_node(std::move(echo));
  auto starter = std::make_unique<Starter>(echo_id);
  Starter* starter_ptr = starter.get();
  sim.add_node(std::move(starter));

  NetStats stats = sim.run();
  ASSERT_EQ(echo_ptr->received.size(), 1u);
  EXPECT_EQ(echo_ptr->received[0], (std::vector<std::uint8_t>{'h', 'i'}));
  ASSERT_EQ(starter_ptr->received.size(), 1u);
  EXPECT_EQ(starter_ptr->received[0], (std::vector<std::uint8_t>{'h', 'i', '+'}));
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.messages_delivered, 2u);
  EXPECT_EQ(stats.bytes_sent, 5u);
  EXPECT_GT(stats.end_time, 0u);
}

TEST(Simulator, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed, std::make_unique<UniformDelay>(1, 1000));
    NodeId echo_id = sim.add_node(std::make_unique<Echo>());
    sim.add_node(std::make_unique<Starter>(echo_id));
    return sim.run().end_time;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // overwhelmingly likely with 1..1000us delays
}

TEST(Simulator, CrashedNodeReceivesNothingAndSendsNothing) {
  Simulator sim(3, std::make_unique<UniformDelay>(10, 10));
  auto echo = std::make_unique<Echo>();
  Echo* echo_ptr = echo.get();
  NodeId echo_id = sim.add_node(std::move(echo));
  auto starter = std::make_unique<Starter>(echo_id);
  Starter* starter_ptr = starter.get();
  sim.add_node(std::move(starter));
  sim.crash_at(echo_id, 0);

  sim.run();
  EXPECT_TRUE(echo_ptr->received.empty());
  EXPECT_TRUE(starter_ptr->received.empty());
  EXPECT_TRUE(sim.crashed(echo_id));
}

TEST(Simulator, CrashAtLaterTimeTakesEffectThen) {
  // Echo responds to the first message (sent at t=0, delivered t=10) but is
  // crashed before the second (sent at t=1000).
  class TwoShot final : public Node {
   public:
    explicit TwoShot(NodeId peer) : peer_(peer) {}
    void on_start(Context& ctx) override {
      ctx.send(peer_, {'1'});
      ctx.set_timer(1000, 7);
    }
    void on_timer(Context& ctx, std::uint64_t) override { ctx.send(peer_, {'2'}); }
    void on_message(Context&, NodeId, std::span<const std::uint8_t> bytes) override {
      replies.emplace_back(bytes.begin(), bytes.end());
    }
    std::vector<std::vector<std::uint8_t>> replies;

   private:
    NodeId peer_;
  };

  Simulator sim(4, std::make_unique<UniformDelay>(10, 10));
  NodeId echo_id = sim.add_node(std::make_unique<Echo>());
  auto two = std::make_unique<TwoShot>(echo_id);
  TwoShot* two_ptr = two.get();
  sim.add_node(std::move(two));
  sim.crash_at(echo_id, 500);

  sim.run();
  ASSERT_EQ(two_ptr->replies.size(), 1u);
  EXPECT_EQ(two_ptr->replies[0], (std::vector<std::uint8_t>{'1', '+'}));
}

TEST(Simulator, TimersFireInOrder) {
  class TimerNode final : public Node {
   public:
    void on_start(Context& ctx) override {
      ctx.set_timer(300, 3);
      ctx.set_timer(100, 1);
      ctx.set_timer(200, 2);
    }
    void on_message(Context&, NodeId, std::span<const std::uint8_t>) override {}
    void on_timer(Context& ctx, std::uint64_t token) override {
      fired.push_back(token);
      times.push_back(ctx.now());
    }
    std::vector<std::uint64_t> fired;
    std::vector<Time> times;
  };
  Simulator sim(5, std::make_unique<UniformDelay>(1, 1));
  auto node = std::make_unique<TimerNode>();
  TimerNode* ptr = node.get();
  sim.add_node(std::move(node));
  sim.run();
  EXPECT_EQ(ptr->fired, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(ptr->times, (std::vector<Time>{100, 200, 300}));
}

TEST(Simulator, RunUntilStopsEarly) {
  class Chatter final : public Node {
   public:
    void on_start(Context& ctx) override { ctx.set_timer(1, 0); }
    void on_message(Context&, NodeId, std::span<const std::uint8_t>) override {}
    void on_timer(Context& ctx, std::uint64_t) override {
      ++count;
      ctx.set_timer(1, 0);  // unbounded chatter
    }
    int count = 0;
  };
  Simulator sim(6, std::make_unique<UniformDelay>(1, 1));
  auto node = std::make_unique<Chatter>();
  Chatter* ptr = node.get();
  sim.add_node(std::move(node));
  bool hit = sim.run_until([&] { return ptr->count >= 10; }, 100000);
  EXPECT_TRUE(hit);
  EXPECT_EQ(ptr->count, 10);
}

TEST(Simulator, TargetedSlowdownDelaysVictim) {
  // Two starters message the same echo; the victim's traffic is 100x slower.
  Simulator fast(7, std::make_unique<UniformDelay>(100, 100));
  Simulator slow(7, std::make_unique<TargetedSlowdown>(100, 100, std::set<NodeId>{0}, 100));
  for (Simulator* sim : {&fast, &slow}) {
    NodeId echo_id = sim->add_node(std::make_unique<Echo>());
    ASSERT_EQ(echo_id, 0u);
    sim->add_node(std::make_unique<Starter>(echo_id));
  }
  EXPECT_EQ(fast.run().end_time, 200u);
  EXPECT_EQ(slow.run().end_time, 20000u);
}

TEST(Simulator, PerNodeRngIsDeterministicAndDistinct) {
  class RngNode final : public Node {
   public:
    void on_start(Context& ctx) override { value = ctx.rng().next_u64(); }
    void on_message(Context&, NodeId, std::span<const std::uint8_t>) override {}
    std::uint64_t value = 0;
  };
  auto sample = [](std::uint64_t seed) {
    Simulator sim(seed, std::make_unique<UniformDelay>(1, 1));
    auto n1 = std::make_unique<RngNode>();
    auto n2 = std::make_unique<RngNode>();
    RngNode* p1 = n1.get();
    RngNode* p2 = n2.get();
    sim.add_node(std::move(n1));
    sim.add_node(std::move(n2));
    sim.run();
    return std::pair{p1->value, p2->value};
  };
  auto [a1, a2] = sample(11);
  auto [b1, b2] = sample(11);
  EXPECT_EQ(a1, b1);
  EXPECT_EQ(a2, b2);
  EXPECT_NE(a1, a2);
}

TEST(Simulator, DuplicationDeliversExtraCopies) {
  // At 100% duplication every message arrives exactly twice.
  Simulator sim(8, std::make_unique<UniformDelay>(10, 100));
  sim.set_duplication_percent(100);
  auto echo = std::make_unique<Echo>();
  Echo* echo_ptr = echo.get();
  NodeId echo_id = sim.add_node(std::move(echo));
  sim.add_node(std::make_unique<Starter>(echo_id));
  sim.run();
  // 'hi' delivered twice; each delivery triggers an echo reply, each reply
  // duplicated again.
  EXPECT_EQ(echo_ptr->received.size(), 2u);
  EXPECT_EQ(sim.stats().messages_delivered, 6u);
}

TEST(Simulator, DuplicationZeroIsExact) {
  Simulator sim(9, std::make_unique<UniformDelay>(10, 100));
  sim.set_duplication_percent(0);
  NodeId echo_id = sim.add_node(std::make_unique<Echo>());
  sim.add_node(std::make_unique<Starter>(echo_id));
  sim.run();
  EXPECT_EQ(sim.stats().messages_delivered, 2u);
}

TEST(Simulator, RejectsBadUsage) {
  EXPECT_THROW(Simulator(1, nullptr), std::invalid_argument);
  Simulator sim(1, std::make_unique<UniformDelay>(1, 1));
  EXPECT_THROW(sim.add_node(nullptr), std::invalid_argument);
}

// --- crash/restart semantics ---------------------------------------------------

TEST(Simulator, CrashAtTimeZeroPreventsOnStart) {
  // Regression: a crash scheduled at T must win over every other event at T.
  // In particular crash_at(id, 0) races the node's kStart event — the crash
  // must sort first, so the node never runs on_start (and never sends).
  Simulator sim(10, std::make_unique<UniformDelay>(10, 10));
  auto echo = std::make_unique<Echo>();
  Echo* echo_ptr = echo.get();
  NodeId echo_id = sim.add_node(std::move(echo));
  NodeId starter_id = sim.add_node(std::make_unique<Starter>(echo_id));
  sim.crash_at(starter_id, 0);

  NetStats stats = sim.run();
  EXPECT_TRUE(echo_ptr->received.empty());
  EXPECT_EQ(stats.messages_sent, 0u);
  EXPECT_TRUE(sim.crashed(starter_id));
}

TEST(Simulator, DuplicatesAreDeliveredAfterSenderCrashed) {
  // Asynchronous-model semantics to pin down: copies already in flight
  // (including duplicated ones) survive the SENDER's crash — a crash stops a
  // node from acting, it does not recall packets from the network.
  Simulator sim(11, std::make_unique<UniformDelay>(50, 100));
  sim.set_duplication_percent(100);
  auto echo = std::make_unique<Echo>();
  Echo* echo_ptr = echo.get();
  NodeId echo_id = sim.add_node(std::move(echo));
  NodeId starter_id = sim.add_node(std::make_unique<Starter>(echo_id));
  sim.crash_at(starter_id, 1);  // after on_start's send, before any delivery

  sim.run();
  EXPECT_EQ(echo_ptr->received.size(), 2u);  // original + duplicate
  // 'hi' duplicated once; the echo replies to both copies and each reply is
  // duplicated too (the reply copies are then dropped at delivery because the
  // starter is crashed — but duplication is counted at send time).
  EXPECT_EQ(sim.stats().messages_duplicated, 3u);
}

// Node with explicitly durable and volatile halves, for restart tests.
class DurableNode final : public Node {
 public:
  void on_start(Context& ctx) override {
    ++starts;
    ctx.set_timer(1000, static_cast<std::uint64_t>(starts));
  }
  void on_message(Context&, NodeId, std::span<const std::uint8_t> bytes) override {
    if (!bytes.empty()) durable_value = bytes[0];
    volatile_value = 77;
  }
  void on_timer(Context&, std::uint64_t token) override { fired.push_back(token); }
  [[nodiscard]] std::vector<std::uint8_t> snapshot() const override {
    return {durable_value};
  }
  void restore(std::span<const std::uint8_t> snap) override {
    durable_value = 0;
    volatile_value = 0;
    if (snap.size() == 1) durable_value = snap[0];
  }

  int starts = 0;
  std::uint8_t durable_value = 0;
  int volatile_value = 0;
  std::vector<std::uint64_t> fired;
};

TEST(Simulator, RestartRestoresDurableStateAndDropsVolatile) {
  class Poke final : public Node {
   public:
    explicit Poke(NodeId peer) : peer_(peer) {}
    void on_start(Context& ctx) override { ctx.send(peer_, {42}); }
    void on_message(Context&, NodeId, std::span<const std::uint8_t>) override {}

   private:
    NodeId peer_;
  };
  Simulator sim(12, std::make_unique<UniformDelay>(10, 10));
  auto node = std::make_unique<DurableNode>();
  DurableNode* ptr = node.get();
  NodeId id = sim.add_node(std::move(node));
  sim.add_node(std::make_unique<Poke>(id));
  sim.crash_at(id, 100);    // after the poke (delivered at t=10)
  sim.restart_at(id, 200);

  sim.run();
  EXPECT_EQ(ptr->starts, 2);              // on_start ran again after restart
  EXPECT_EQ(ptr->durable_value, 42);      // snapshot taken at crash, restored
  EXPECT_EQ(ptr->volatile_value, 0);      // volatile state lost
  EXPECT_FALSE(sim.crashed(id));
}

TEST(Simulator, TimersDoNotSurviveRestart) {
  Simulator sim(13, std::make_unique<UniformDelay>(10, 10));
  auto node = std::make_unique<DurableNode>();
  DurableNode* ptr = node.get();
  NodeId id = sim.add_node(std::move(node));
  // First on_start sets a timer due at t=1000; the crash at 500 must
  // invalidate it. The post-restart on_start (t=600) sets one due at 1600.
  sim.crash_at(id, 500);
  sim.restart_at(id, 600);

  sim.run();
  EXPECT_EQ(ptr->fired, (std::vector<std::uint64_t>{2}));
}

TEST(Simulator, RestartWithoutCrashIsNoOp) {
  Simulator sim(14, std::make_unique<UniformDelay>(10, 10));
  auto node = std::make_unique<DurableNode>();
  DurableNode* ptr = node.get();
  NodeId id = sim.add_node(std::move(node));
  sim.restart_at(id, 100);
  sim.run();
  EXPECT_EQ(ptr->starts, 1);
}

// --- fault injection ------------------------------------------------------------

TEST(Simulator, FaultPlanDropsEverythingAtFullLoss) {
  Simulator sim(15, std::make_unique<UniformDelay>(10, 100));
  FaultPlan plan;
  plan.drop_percent = 100;
  sim.set_fault_plan(plan);
  auto echo = std::make_unique<Echo>();
  Echo* echo_ptr = echo.get();
  NodeId echo_id = sim.add_node(std::move(echo));
  sim.add_node(std::make_unique<Starter>(echo_id));

  NetStats stats = sim.run();
  EXPECT_TRUE(echo_ptr->received.empty());
  EXPECT_EQ(stats.messages_sent, 1u);
  EXPECT_EQ(stats.messages_dropped, 1u);
  EXPECT_EQ(stats.messages_delivered, 0u);
}

TEST(Simulator, LinkDropTargetsOneDirectionOnly) {
  // Drop only starter->echo; the echo's reply direction would be clean (but
  // is never exercised since the request is lost).
  Simulator sim(16, std::make_unique<UniformDelay>(10, 100));
  auto echo = std::make_unique<Echo>();
  Echo* echo_ptr = echo.get();
  NodeId echo_id = sim.add_node(std::move(echo));

  auto starter = std::make_unique<Starter>(echo_id);
  Starter* starter_ptr = starter.get();
  NodeId starter_id = sim.add_node(std::move(starter));

  FaultPlan plan;
  plan.link_drop_percent[{starter_id, echo_id}] = 100;
  sim.set_fault_plan(plan);

  sim.run();
  EXPECT_TRUE(echo_ptr->received.empty());
  EXPECT_TRUE(starter_ptr->received.empty());
  EXPECT_EQ(sim.stats().messages_dropped, 1u);

  // Same topology, reversed link: traffic flows.
  Simulator sim2(16, std::make_unique<UniformDelay>(10, 100));
  auto echo2 = std::make_unique<Echo>();
  Echo* echo2_ptr = echo2.get();
  NodeId echo2_id = sim2.add_node(std::move(echo2));
  NodeId starter2_id = sim2.add_node(std::make_unique<Starter>(echo2_id));
  FaultPlan plan2;
  plan2.link_drop_percent[{echo2_id, starter2_id}] = 100;
  sim2.set_fault_plan(plan2);
  sim2.run();
  EXPECT_EQ(echo2_ptr->received.size(), 1u);
  EXPECT_EQ(sim2.stats().messages_dropped, 1u);  // only the reply
}

TEST(Simulator, PartitionBlocksCrossIslandTrafficUntilHeal) {
  class RetryStarter final : public Node {
   public:
    explicit RetryStarter(NodeId peer) : peer_(peer) {}
    void on_start(Context& ctx) override {
      ctx.send(peer_, {'a'});       // inside the partition window: dropped
      ctx.set_timer(2000, 1);
    }
    void on_timer(Context& ctx, std::uint64_t) override {
      ctx.send(peer_, {'b'});       // after heal: delivered
    }
    void on_message(Context&, NodeId, std::span<const std::uint8_t>) override {}

   private:
    NodeId peer_;
  };

  Simulator sim(17, std::make_unique<UniformDelay>(10, 10));
  auto echo = std::make_unique<Echo>();
  Echo* echo_ptr = echo.get();
  NodeId echo_id = sim.add_node(std::move(echo));
  NodeId starter_id = sim.add_node(std::make_unique<RetryStarter>(echo_id));

  FaultPlan plan;
  FaultPlan::Partition part;
  part.start = 0;
  part.heal = 1000;
  part.island = {starter_id};
  plan.partitions.push_back(part);
  sim.set_fault_plan(plan);

  sim.run();
  ASSERT_EQ(echo_ptr->received.size(), 1u);
  EXPECT_EQ(echo_ptr->received[0], (std::vector<std::uint8_t>{'b'}));
  EXPECT_EQ(sim.stats().messages_dropped, 1u);
}

TEST(Simulator, PartitionDoesNotBlockIntraIslandTraffic) {
  Simulator sim(18, std::make_unique<UniformDelay>(10, 10));
  auto echo = std::make_unique<Echo>();
  Echo* echo_ptr = echo.get();
  NodeId echo_id = sim.add_node(std::move(echo));
  NodeId starter_id = sim.add_node(std::make_unique<Starter>(echo_id));

  FaultPlan plan;
  FaultPlan::Partition part;
  part.start = 0;
  part.heal = 100000;
  part.island = {echo_id, starter_id};  // both on the same side
  plan.partitions.push_back(part);
  sim.set_fault_plan(plan);

  sim.run();
  EXPECT_EQ(echo_ptr->received.size(), 1u);
  EXPECT_EQ(sim.stats().messages_dropped, 0u);
}

TEST(Simulator, CorruptionFlipsExactlyOneBitAndStillDelivers) {
  Simulator sim(19, std::make_unique<UniformDelay>(10, 100));
  FaultPlan plan;
  plan.corrupt_percent = 100;
  sim.set_fault_plan(plan);
  auto echo = std::make_unique<Echo>();
  Echo* echo_ptr = echo.get();
  NodeId echo_id = sim.add_node(std::move(echo));
  sim.add_node(std::make_unique<Starter>(echo_id));

  sim.run_until([&] { return !echo_ptr->received.empty(); });
  ASSERT_FALSE(echo_ptr->received.empty());
  const std::vector<std::uint8_t> original{'h', 'i'};
  const std::vector<std::uint8_t>& got = echo_ptr->received[0];
  ASSERT_EQ(got.size(), original.size());  // corruption never changes length
  int bit_diff = 0;
  for (std::size_t i = 0; i < got.size(); ++i)
    bit_diff += std::popcount(static_cast<unsigned>(got[i] ^ original[i]));
  EXPECT_EQ(bit_diff, 1);
  EXPECT_GE(sim.stats().messages_corrupted, 1u);
}

TEST(Simulator, EmptyFaultPlanDoesNotPerturbDelays) {
  // Installing an empty plan must leave the run byte-for-byte identical (the
  // fault RNG is a separate stream, and empty plans skip it entirely).
  auto run = [](bool with_plan) {
    Simulator sim(20, std::make_unique<UniformDelay>(1, 1000));
    if (with_plan) sim.set_fault_plan(FaultPlan{});
    NodeId echo_id = sim.add_node(std::make_unique<Echo>());
    sim.add_node(std::make_unique<Starter>(echo_id));
    return sim.run().end_time;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace dblind::net
