// ThreadedBus shutdown/teardown ordering — the lifecycle paths TSan watches
// most closely: destruction while traffic is still in flight, stop() racing
// pending timers, and the no-delivery-after-join guarantee.
#include "net/threaded_bus.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

namespace dblind::net {
namespace {

// Saturates the bus: every delivery immediately sends two more messages, so
// traffic never quiesces on its own and teardown always races live sends.
class Flooder final : public Node {
 public:
  void on_start(Context& ctx) override {
    ctx.send(peer, {0x01});
    ctx.set_timer(100, 1);  // 100us: keeps the timer queue hot too
  }
  void on_message(Context& ctx, NodeId, std::span<const std::uint8_t>) override {
    received.fetch_add(1, std::memory_order_relaxed);
    ctx.send(peer, {0x01});
    ctx.send(peer, {0x02});
  }
  void on_timer(Context& ctx, std::uint64_t token) override {
    ctx.send(peer, {0x03});
    ctx.set_timer(100, token);
  }
  NodeId peer = 0;
  std::atomic<std::uint64_t> received{0};
};

// Destroying the bus (without an explicit stop) while the flooders keep the
// queues full must join every thread and drop in-flight messages cleanly.
// Under ASan this also proves no in-flight buffer leaks at teardown.
TEST(ThreadedBusShutdown, DestructorWhileMessagesInFlight) {
  auto a = std::make_unique<Flooder>();
  auto b = std::make_unique<Flooder>();
  Flooder* ap = a.get();
  Flooder* bp = b.get();
  {
    ThreadedBus bus(7);
    NodeId aid = bus.add_node(std::move(a));
    NodeId bid = bus.add_node(std::move(b));
    // Nodes are owned by the bus; keep raw handles only inside this scope.
    dynamic_cast<Flooder&>(bus.node(aid)).peer = bid;
    dynamic_cast<Flooder&>(bus.node(bid)).peer = aid;
    bus.start();
    // Let the flood build up real cross-thread traffic before tearing down.
    bool saw_traffic = bus.run_until(
        [&] {
          return ap->received.load(std::memory_order_relaxed) > 100 &&
                 bp->received.load(std::memory_order_relaxed) > 100;
        },
        std::chrono::milliseconds(5000));
    EXPECT_TRUE(saw_traffic);
    // Scope exit: ~ThreadedBus runs with inboxes non-empty and sends racing.
  }
  SUCCEED();
}

TEST(ThreadedBusShutdown, StopIsIdempotentAndFinal) {
  auto a = std::make_unique<Flooder>();
  auto b = std::make_unique<Flooder>();
  Flooder* ap = a.get();
  Flooder* bp = b.get();
  ThreadedBus bus(8);
  NodeId aid = bus.add_node(std::move(a));
  NodeId bid = bus.add_node(std::move(b));
  ap->peer = bid;
  bp->peer = aid;
  bus.start();
  bus.run_until([&] { return ap->received.load(std::memory_order_relaxed) > 10; },
                std::chrono::milliseconds(5000));
  bus.stop();
  // After stop() returns all threads are joined: no handler may run again.
  std::uint64_t frozen_a = ap->received.load(std::memory_order_relaxed);
  std::uint64_t frozen_b = bp->received.load(std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ap->received.load(std::memory_order_relaxed), frozen_a);
  EXPECT_EQ(bp->received.load(std::memory_order_relaxed), frozen_b);
  bus.stop();  // second stop: no-op, no crash
}

TEST(ThreadedBusShutdown, StopWithPendingTimersDoesNotFireThem) {
  class LateTimer final : public Node {
   public:
    void on_start(Context& ctx) override {
      ctx.set_timer(60'000'000, 1);  // 60s — must never come due
    }
    void on_message(Context&, NodeId, std::span<const std::uint8_t>) override {}
    void on_timer(Context&, std::uint64_t) override {
      fired.store(true, std::memory_order_relaxed);
    }
    std::atomic<bool> fired{false};
  };
  auto node = std::make_unique<LateTimer>();
  LateTimer* ptr = node.get();
  ThreadedBus bus(9);
  bus.add_node(std::move(node));
  bus.start();
  // stop() must wake the worker out of its timed wait promptly instead of
  // sleeping toward the 60s deadline.
  auto t0 = std::chrono::steady_clock::now();
  bus.stop();
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_FALSE(ptr->fired.load(std::memory_order_relaxed));
}

TEST(ThreadedBusShutdown, DestructorWithoutStart) {
  ThreadedBus bus(10);
  bus.add_node(std::make_unique<Flooder>());
  // Never started: destructor must not try to join unstarted threads.
}

TEST(ThreadedBusShutdown, StartStopWithNoNodes) {
  ThreadedBus bus(11);
  bus.start();
  bus.stop();
}

// Restarting a stopped bus would re-deliver on_start to every node (the
// once-only contract Node implementations rely on) and spawn workers whose
// stopping flags are still set; the bus rejects it instead.
TEST(ThreadedBusShutdown, RestartAfterStopRejected) {
  ThreadedBus bus(13);
  bus.add_node(std::make_unique<Flooder>());
  bus.start();
  bus.stop();
  EXPECT_THROW(bus.start(), std::logic_error);
}

// Sends targeting a slot that is already stopping are dropped (async model
// permits loss); repeated short-lived ping-pong rounds make stop() land at
// many different points of the exchange, exercising the post_message
// fast-exit path while the destination's worker is being joined.
TEST(ThreadedBusShutdown, SendToStoppingPeerIsDropped) {
  class Echo final : public Node {
   public:
    void on_start(Context& ctx) override {
      if (ctx.self() == 0) ctx.send(1, {0x05});
    }
    void on_message(Context& ctx, NodeId from, std::span<const std::uint8_t>) override {
      count.fetch_add(1, std::memory_order_relaxed);
      ctx.send(from, {0x05});
    }
    std::atomic<std::uint64_t> count{0};
  };
  for (int round = 0; round < 20; ++round) {
    ThreadedBus bus(100 + static_cast<std::uint64_t>(round));
    bus.add_node(std::make_unique<Echo>());
    bus.add_node(std::make_unique<Echo>());
    bus.start();
    if (round % 2 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    }
    bus.stop();
    // No assertion beyond "no crash/race": drops are legal, delivery is not
    // guaranteed once stopping.
  }
  SUCCEED();
}

// Regression (PR 6): stop() used to be unserialized — two threads calling it
// concurrently could both see running_ and double-join the workers. The
// lifecycle mutex makes concurrent stop() calls safe: one joins, the rest
// observe running_ == false and return.
TEST(ThreadedBusShutdown, ConcurrentStopCallsAreSerialized) {
  for (int round = 0; round < 10; ++round) {
    auto a = std::make_unique<Flooder>();
    auto b = std::make_unique<Flooder>();
    Flooder* ap = a.get();
    ThreadedBus bus(40 + static_cast<std::uint64_t>(round));
    NodeId aid = bus.add_node(std::move(a));
    NodeId bid = bus.add_node(std::move(b));
    dynamic_cast<Flooder&>(bus.node(aid)).peer = bid;
    dynamic_cast<Flooder&>(bus.node(bid)).peer = aid;
    bus.start();
    bus.run_until([&] { return ap->received.load(std::memory_order_relaxed) > 5; },
                  std::chrono::milliseconds(5000));
    std::vector<std::thread> stoppers;
    stoppers.reserve(4);
    for (int i = 0; i < 4; ++i) {
      stoppers.emplace_back([&bus] { bus.stop(); });
    }
    for (auto& th : stoppers) th.join();
    bus.stop();  // and once more from this thread: still idempotent
  }
  SUCCEED();
}

// Regression (PR 6): set_fault_plan() wrote the fault-layer state without
// taking the fault mutex. The contract keeps it pre-start() (enforced with
// std::logic_error), but the write is now guarded so the fault layer's
// lock discipline is uniform — and stats() scrapes, which genuinely race
// the node threads' fault-RNG rolls and counter updates on every
// post_message, must be clean under TSan while lossy traffic flows.
TEST(ThreadedBusShutdown, StatsScrapeRacesFaultyTraffic) {
  auto a = std::make_unique<Flooder>();
  auto b = std::make_unique<Flooder>();
  Flooder* ap = a.get();
  ThreadedBus bus(55);
  NodeId aid = bus.add_node(std::move(a));
  NodeId bid = bus.add_node(std::move(b));
  dynamic_cast<Flooder&>(bus.node(aid)).peer = bid;
  dynamic_cast<Flooder&>(bus.node(bid)).peer = aid;
  FaultPlan plan;
  plan.drop_percent = 30;  // fault path active: every send rolls the RNG
  bus.set_fault_plan(plan);
  bus.start();
  std::thread reader([&] {
    for (int i = 0; i < 500; ++i) {
      NetStats s = bus.stats();
      // Monotone totals snapshotted under the fault mutex: a torn read
      // could show drops exceeding sends.
      EXPECT_LE(s.messages_dropped, s.messages_sent);
    }
  });
  bus.run_until([&] { return ap->received.load(std::memory_order_relaxed) > 200; },
                std::chrono::milliseconds(5000));
  reader.join();
  bus.stop();
  // The plan was live: with 30% drop some messages must have been lost.
  NetStats final_stats = bus.stats();
  EXPECT_GT(final_stats.messages_sent, 0u);
  EXPECT_GT(final_stats.messages_dropped, 0u);
}

// The pre-start-only contract itself: mutating the fault plan once node
// threads exist is rejected, not raced.
TEST(ThreadedBusShutdown, SetFaultPlanAfterStartRejected) {
  ThreadedBus bus(56);
  bus.add_node(std::make_unique<Flooder>());
  bus.start();
  FaultPlan plan;
  plan.drop_percent = 10;
  EXPECT_THROW(bus.set_fault_plan(plan), std::logic_error);
  bus.stop();
}

}  // namespace
}  // namespace dblind::net
