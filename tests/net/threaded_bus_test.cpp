// ThreadedBus: the same Node code under real threads and real time.
#include "net/threaded_bus.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "core/server.hpp"
#include "tests/core/test_util.hpp"

namespace dblind::net {
namespace {

class Counter final : public Node {
 public:
  void on_start(Context& ctx) override { ctx.set_timer(1000, 1); }
  void on_message(Context& ctx, NodeId from, std::span<const std::uint8_t>) override {
    received.fetch_add(1, std::memory_order_relaxed);
    if (received.load() < 5) ctx.send(from, {0x01});
  }
  void on_timer(Context& ctx, std::uint64_t) override {
    timer_fired.store(true, std::memory_order_relaxed);
    ctx.send(peer, {0x02});
  }
  NodeId peer = 0;
  std::atomic<int> received{0};
  std::atomic<bool> timer_fired{false};
};

TEST(ThreadedBus, PingPongAcrossThreads) {
  ThreadedBus bus(1);
  auto a = std::make_unique<Counter>();
  auto b = std::make_unique<Counter>();
  Counter* ap = a.get();
  Counter* bp = b.get();
  NodeId aid = bus.add_node(std::move(a));
  NodeId bid = bus.add_node(std::move(b));
  ap->peer = bid;
  bp->peer = aid;
  bus.start();
  bool done = bus.run_until(
      [&] { return ap->received.load() >= 5 && bp->received.load() >= 5; },
      std::chrono::milliseconds(5000));
  bus.stop();
  EXPECT_TRUE(done);
  EXPECT_TRUE(ap->timer_fired.load());
  EXPECT_TRUE(bp->timer_fired.load());
}

TEST(ThreadedBus, TimersFire) {
  class TimerOnly final : public Node {
   public:
    void on_start(Context& ctx) override {
      ctx.set_timer(1000, 7);
      ctx.set_timer(2000, 8);
    }
    void on_message(Context&, NodeId, std::span<const std::uint8_t>) override {}
    void on_timer(Context&, std::uint64_t token) override {
      fired.fetch_add(token == 7 ? 1 : 100, std::memory_order_relaxed);
    }
    std::atomic<int> fired{0};
  };
  ThreadedBus bus(2);
  auto node = std::make_unique<TimerOnly>();
  TimerOnly* ptr = node.get();
  bus.add_node(std::move(node));
  bus.start();
  bool done =
      bus.run_until([&] { return ptr->fired.load() == 101; }, std::chrono::milliseconds(5000));
  bus.stop();
  EXPECT_TRUE(done);
}

TEST(ThreadedBus, AddAfterStartRejected) {
  ThreadedBus bus(3);
  bus.add_node(std::make_unique<Counter>());
  bus.start();
  EXPECT_THROW((void)bus.add_node(std::make_unique<Counter>()), std::logic_error);
  bus.stop();
}

// The headline test: the COMPLETE re-encryption protocol, byte-for-byte the
// same ProtocolServer code, on 8 real threads with real-time delays.
TEST(ThreadedBus, FullProtocolRunsOnRealThreads) {
  auto ts = core::testing::TestSystem::make(0xbeef);
  mpz::Prng setup(42);
  mpz::Bigint m = ts.params.encode_message(mpz::Bigint(271828));
  elgamal::Ciphertext ea_m = ts.cfg.a.encryption_key.encrypt(m, setup);

  core::ProtocolOptions opts;
  // Real-time timers: keep backup delays short so retries are fast if the
  // scheduler hiccups, but long enough not to trigger spurious backups.
  opts.coordinator_backup_delay = 300'000;   // 300 ms
  opts.responder_backup_delay = 300'000;
  opts.signing_retry_delay = 500'000;

  ThreadedBus bus(0xfeed);
  std::vector<core::ProtocolServer*> b_servers;
  for (core::ServerRank r = 1; r <= 4; ++r) {
    auto node = std::make_unique<core::ProtocolServer>(ts.cfg, ts.a_secrets[r - 1], opts);
    node->store_secret(1, ea_m);
    bus.add_node(std::move(node));
  }
  for (core::ServerRank r = 1; r <= 4; ++r) {
    auto node = std::make_unique<core::ProtocolServer>(ts.cfg, ts.b_secrets[r - 1], opts);
    node->register_transfer(1);
    b_servers.push_back(node.get());
    bus.add_node(std::move(node));
  }

  bus.start();
  bool done = bus.run_until(
      [&] {
        for (core::ProtocolServer* s : b_servers) {
          if (s->results_count() == 0) return false;
        }
        return true;
      },
      std::chrono::milliseconds(30000));
  bus.stop();
  ASSERT_TRUE(done) << "protocol did not complete on real threads";

  elgamal::KeyPair kb = elgamal::KeyPair::from_private(ts.params, ts.b_key);
  for (core::ProtocolServer* s : b_servers) {
    auto res = s->result(1);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(kb.decrypt(*res), m);
  }
}

}  // namespace
}  // namespace dblind::net
