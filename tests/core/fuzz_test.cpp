// Robustness fuzzing: random and mutated byte strings fed into every decoder
// and into live protocol nodes must never crash — at worst they raise
// CodecError (and protocol handlers swallow that, treating garbage as loss).
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/messages.hpp"
#include "core/server.hpp"
#include "core/system.hpp"
#include "core/validity.hpp"
#include "mpz/random.hpp"
#include "tests/core/test_util.hpp"

namespace dblind::core {
namespace {

using mpz::Prng;

template <typename Fn>
void expect_no_crash(Fn&& fn) {
  try {
    fn();
  } catch (const CodecError&) {
    // expected for malformed input
  } catch (const std::invalid_argument&) {
    // some decoders surface domain validation errors
  }
}

std::vector<std::uint8_t> random_bytes(Prng& prng, std::size_t max_len) {
  std::vector<std::uint8_t> out(prng.uniform_u64(max_len + 1));
  prng.fill(out);
  return out;
}

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, RandomBytesNeverCrashDecoders) {
  Prng prng(GetParam());
  for (int iter = 0; iter < 300; ++iter) {
    auto bytes = random_bytes(prng, 160);
    expect_no_crash([&] { (void)decode_as<InitMsg>(MsgType::kInit, bytes); });
    expect_no_crash([&] { (void)decode_as<CommitMsg>(MsgType::kCommit, bytes); });
    expect_no_crash([&] { (void)decode_as<RevealMsg>(MsgType::kReveal, bytes); });
    expect_no_crash([&] { (void)decode_as<ContributeMsg>(MsgType::kContribute, bytes); });
    expect_no_crash([&] { (void)decode_as<BlindPayload>(MsgType::kBlind, bytes); });
    expect_no_crash([&] { (void)decode_as<DonePayload>(MsgType::kDone, bytes); });
    expect_no_crash([&] { (void)decode_as<SignRequestMsg>(MsgType::kSignRequest, bytes); });
    expect_no_crash([&] { (void)decode_as<SignQuorumMsg>(MsgType::kSignQuorum, bytes); });
    expect_no_crash([&] { (void)decode_as<DecryptRequestMsg>(MsgType::kDecryptRequest, bytes); });
    expect_no_crash([&] { (void)decode_as<ResultRequestMsg>(MsgType::kResultRequest, bytes); });
    expect_no_crash([&] { (void)decode_as<ResultReplyMsg>(MsgType::kResultReply, bytes); });
    expect_no_crash(
        [&] { (void)decode_as<ClientDecryptRequestMsg>(MsgType::kClientDecryptRequest, bytes); });
    expect_no_crash(
        [&] { (void)decode_as<ClientDecryptReplyMsg>(MsgType::kClientDecryptReply, bytes); });
    expect_no_crash([&] {
      Reader r(bytes);
      (void)SignedMessage::decode(r);
    });
    expect_no_crash([&] {
      Reader r(bytes);
      (void)ServiceSignedMsg::decode(r);
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(1u, 2u, 3u, 4u));

TEST(ValidityFuzz, MutatedValidMessagesNeverValidateOrCrash) {
  // Take a fully valid contribute message, flip bytes everywhere, and make
  // sure validation either rejects or (for mutations outside signed regions)
  // still behaves sanely — and never crashes.
  auto ts = testing::TestSystem::make(77);
  Prng prng(5);
  InstanceId id{1, 1, 0};

  // Build a valid contribute chain (commit -> reveal -> contribute).
  struct C {
    mpz::Bigint rho, r1, r2;
    Contribution contribution;
  };
  std::vector<C> contribs;
  std::vector<SignedMessage> commits;
  for (ServerRank r = 1; r <= 3; ++r) {
    C c;
    c.rho = ts.params.random_element(prng);
    c.r1 = ts.params.random_exponent(prng);
    c.r2 = ts.params.random_exponent(prng);
    c.contribution.ea = ts.cfg.a.encryption_key.encrypt_with_nonce(c.rho, c.r1);
    c.contribution.eb = ts.cfg.b.encryption_key.encrypt_with_nonce(c.rho, c.r2);
    contribs.push_back(c);
    CommitMsg m;
    m.id = id;
    m.server = r;
    m.commitment = c.contribution.commitment_digest();
    commits.push_back(
        make_envelope(ts.cfg, ts.b_secrets[r - 1], encode_body(MsgType::kCommit, m), 0, prng));
  }
  RevealMsg reveal;
  reveal.id = id;
  reveal.commits = commits;
  SignedMessage reveal_env = make_envelope(ts.cfg, ts.b_secrets[0],
                                           encode_body(MsgType::kReveal, reveal), 0, prng);
  ContributeMsg cm;
  cm.id = id;
  cm.server = 2;
  cm.reveal = reveal_env;
  cm.contribution = contribs[1].contribution;
  cm.vde = zkp::vde_prove(ts.cfg.a.encryption_key, cm.contribution.ea, contribs[1].r1,
                          ts.cfg.b.encryption_key, cm.contribution.eb, contribs[1].r2,
                          vde_context(id, 2), prng);
  SignedMessage env = make_envelope(ts.cfg, ts.b_secrets[1],
                                    encode_body(MsgType::kContribute, cm), 0, prng);
  ASSERT_TRUE(check_contribute(ts.cfg, env).has_value());

  // Serialize the envelope, mutate one byte at a stride, re-parse, validate.
  Writer w;
  env.encode(w);
  std::vector<std::uint8_t> wire = w.take();
  int accepted = 0;
  for (std::size_t pos = 0; pos < wire.size(); pos += 7) {
    std::vector<std::uint8_t> mutated = wire;
    mutated[pos] ^= 0x5A;
    expect_no_crash([&] {
      Reader r(mutated);
      SignedMessage m2 = SignedMessage::decode(r);
      r.expect_done();
      if (check_contribute(ts.cfg, m2).has_value()) ++accepted;
    });
  }
  // A mutation that still validates must be a mutation that decodes to the
  // identical message (e.g. inside ignored padding — our codec has none), so
  // none should be accepted.
  EXPECT_EQ(accepted, 0);
}

TEST(NodeFuzz, GarbageTrafficDoesNotDisturbProtocol) {
  // Blast random bytes at every node while a real transfer runs: all of it
  // must be ignored, and the transfer must still complete correctly.
  class GarbageBlaster final : public net::Node {
   public:
    explicit GarbageBlaster(std::size_t targets) : targets_(targets) {}
    void on_start(net::Context& ctx) override {
      for (int burst = 0; burst < 10; ++burst) ctx.set_timer(1000 * (burst + 1), 1);
    }
    void on_timer(net::Context& ctx, std::uint64_t) override {
      for (net::NodeId t = 0; t < targets_; ++t) {
        std::vector<std::uint8_t> junk(ctx.rng().uniform_u64(200));
        ctx.rng().fill(junk);
        ctx.send(t, std::move(junk));
      }
    }
    void on_message(net::Context&, net::NodeId, std::span<const std::uint8_t>) override {}

   private:
    std::size_t targets_;
  };

  SystemOptions o;
  o.seed = 31337;
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(mpz::Bigint(9999)));
  sys.sim().add_node(std::make_unique<GarbageBlaster>(8));  // 8 protocol nodes
  ASSERT_TRUE(sys.run_to_completion());
  auto res = sys.result(t);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
}

// Minimal Context for driving node handlers outside any transport: sends and
// timers vanish, randomness is deterministic.
class NullContext final : public net::Context {
 public:
  explicit NullContext(std::uint64_t seed) : prng_(seed) {}
  void send(net::NodeId, std::vector<std::uint8_t>) override {}
  void set_timer(net::Time, std::uint64_t) override {}
  [[nodiscard]] net::Time now() const override { return 0; }
  [[nodiscard]] net::NodeId self() const override { return 99; }
  [[nodiscard]] mpz::Prng& rng() override { return prng_; }

 private:
  mpz::Prng prng_;
};

TEST(ClientFuzz, MutatedRepliesNeverCrashClient) {
  // ClientNode::on_message must survive random bytes AND structurally valid
  // client frames whose payloads are mutated/fabricated. None of it may make
  // the client accept a result (check_done / share verification gate that).
  auto ts = testing::TestSystem::make(42);
  Prng prng(6);
  ClientNode client(ts.cfg, /*transfer=*/9, ts.params.encode_message(mpz::Bigint(1234)));
  NullContext ctx(7);
  client.on_start(ctx);

  for (int iter = 0; iter < 300; ++iter) {
    expect_no_crash([&] { client.on_message(ctx, 0, random_bytes(prng, 200)); });
  }

  // A well-framed ResultReply whose service signature is fabricated garbage:
  // decodes cleanly, must be rejected by check_done, never crash — and the
  // same for every single-byte mutation of the frame.
  ResultReplyMsg reply;
  reply.transfer = 9;
  reply.done.service = static_cast<std::uint8_t>(ServiceRole::kServiceB);
  reply.done.body = random_bytes(prng, 64);
  reply.done.sig = zkp::SchnorrSignature{ts.params.random_exponent(prng),
                                         ts.params.random_exponent(prng)};
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kClient));
  w.bytes(encode_body(MsgType::kResultReply, reply));
  std::vector<std::uint8_t> frame = w.take();
  expect_no_crash([&] { client.on_message(ctx, 4, frame); });
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    std::vector<std::uint8_t> mutated = frame;
    mutated[pos] ^= 0xA5;
    expect_no_crash([&] { client.on_message(ctx, 4, mutated); });
  }
  EXPECT_FALSE(client.have_result());
  EXPECT_FALSE(client.plaintext().has_value());
}

TEST(RestoreFuzz, GarbageSnapshotsNeverCrashAndYieldEmptyState) {
  // ProtocolServer::restore is the crash-recovery decoder: any byte string —
  // random garbage, truncations, or bit-flips of a valid snapshot — must be
  // absorbed without throwing, leaving at worst an empty (amnesiac) server.
  auto ts = testing::TestSystem::make(43);
  Prng prng(11);
  ProtocolOptions opts;

  ProtocolServer server(ts.cfg, ts.b_secrets[0], opts);
  server.register_transfer(5);
  server.register_transfer(6);
  std::vector<std::uint8_t> snap = server.snapshot();
  ASSERT_FALSE(snap.empty());

  // Round-trip: restoring a snapshot and snapshotting again is the identity
  // on durable state.
  ProtocolServer twin(ts.cfg, ts.b_secrets[0], opts);
  twin.restore(snap);
  EXPECT_EQ(twin.snapshot(), snap);

  for (int iter = 0; iter < 300; ++iter) {
    ProtocolServer victim(ts.cfg, ts.b_secrets[0], opts);
    victim.restore(random_bytes(prng, 200));  // must not throw
    EXPECT_EQ(victim.results_count(), 0u);
  }
  for (std::size_t len = 0; len < snap.size(); ++len) {
    ProtocolServer victim(ts.cfg, ts.b_secrets[0], opts);
    victim.restore(std::span<const std::uint8_t>(snap).first(len));
  }
  for (std::size_t pos = 0; pos < snap.size(); ++pos) {
    std::vector<std::uint8_t> mutated = snap;
    mutated[pos] ^= 0x42;
    ProtocolServer victim(ts.cfg, ts.b_secrets[0], opts);
    victim.restore(mutated);
  }
}

TEST(RestoreFuzz, ASideSnapshotRoundTripsStoredSecrets) {
  auto ts = testing::TestSystem::make(44);
  Prng prng(12);
  ProtocolOptions opts;
  ProtocolServer a(ts.cfg, ts.a_secrets[0], opts);
  a.store_secret(3, ts.cfg.a.encryption_key.encrypt(ts.params.encode_message(mpz::Bigint(77)), prng));
  a.store_secret_at(4, ts.cfg.a.encryption_key.encrypt(ts.params.encode_message(mpz::Bigint(78)), prng),
                    25'000);
  std::vector<std::uint8_t> snap = a.snapshot();
  ProtocolServer twin(ts.cfg, ts.a_secrets[0], opts);
  twin.restore(snap);
  EXPECT_EQ(twin.snapshot(), snap);
}

}  // namespace
}  // namespace dblind::core
