// Shared test fixture: builds a SystemConfig plus all server secrets outside
// the simulator, so validity checks and message construction can be unit
// tested without running a network.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "threshold/keygen.hpp"
#include "threshold/shamir.hpp"

namespace dblind::core::testing {

struct TestService {
  ServicePublic pub;
  std::vector<ServerSecrets> secrets;
  mpz::Bigint private_key;  // reconstructed, for oracle decryption
};

inline TestService make_test_service(const group::GroupParams& params,
                                     const threshold::ServiceConfig& cfg, ServiceRole role,
                                     mpz::Prng& prng) {
  threshold::ServiceKeyMaterial enc = threshold::ServiceKeyMaterial::dealer_keygen(params, cfg, prng);
  threshold::ServiceKeyMaterial sig = threshold::ServiceKeyMaterial::dealer_keygen(params, cfg, prng);
  TestService out{
      ServicePublic{cfg, enc.public_key(), enc.commitments(),
                    zkp::SchnorrVerifyKey(params, sig.public_key().y()), sig.commitments(),
                    {}, 0, {}},
      {},
      {}};
  for (ServerRank r = 1; r <= cfg.n; ++r) {
    zkp::SchnorrSigningKey key = zkp::SchnorrSigningKey::generate(params, prng);
    out.pub.server_sign_keys.push_back(key.verify_key());
    out.secrets.push_back(ServerSecrets{role, r, enc.share_of(r), sig.share_of(r), key.secret()});
  }
  std::vector<threshold::Share> quorum;
  for (ServerRank r = 1; r <= cfg.quorum(); ++r) quorum.push_back(enc.share_of(r));
  out.private_key = threshold::shamir_reconstruct(quorum, params.q());
  return out;
}

struct TestSystem {
  group::GroupParams params;
  SystemConfig cfg;
  std::vector<ServerSecrets> a_secrets;
  std::vector<ServerSecrets> b_secrets;
  mpz::Bigint a_key, b_key;

  static TestSystem make(std::uint64_t seed, threshold::ServiceConfig a_cfg = {4, 1},
                         threshold::ServiceConfig b_cfg = {4, 1},
                         group::ParamId id = group::ParamId::kToy64) {
    group::GroupParams params = group::GroupParams::named(id);
    mpz::Prng prng(seed);
    TestService a = make_test_service(params, a_cfg, ServiceRole::kServiceA, prng);
    TestService b = make_test_service(params, b_cfg, ServiceRole::kServiceB, prng);
    b.pub.first_node = static_cast<net::NodeId>(a_cfg.n);
    return TestSystem{params,
                      SystemConfig{params, a.pub, b.pub},
                      std::move(a.secrets),
                      std::move(b.secrets),
                      std::move(a.private_key),
                      std::move(b.private_key)};
  }
};

}  // namespace dblind::core::testing
