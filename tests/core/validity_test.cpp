// Unit tests for the Figure-5 validity rules on hand-crafted messages.
#include "core/validity.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_util.hpp"
#include "zkp/vde.hpp"

namespace dblind::core {
namespace {

using testing::TestSystem;
using mpz::Bigint;
using mpz::Prng;

struct Fixture {
  TestSystem ts = TestSystem::make(7);
  Prng prng{99};
  InstanceId id{1, 1, 0};

  const SystemConfig& cfg() { return ts.cfg; }
  const ServerSecrets& b(ServerRank r) { return ts.b_secrets[r - 1]; }
  const ServerSecrets& a(ServerRank r) { return ts.a_secrets[r - 1]; }

  SignedMessage signed_init(ServerRank coordinator) {
    InstanceId iid{1, coordinator, 0};
    return make_envelope(cfg(), b(coordinator), encode_body(MsgType::kInit, InitMsg{iid}), 0, prng);
  }

  // A contributor's full honest state for one instance.
  struct Contrib {
    Bigint rho, r1, r2;
    Contribution contribution;
  };
  Contrib make_contrib() {
    Contrib c;
    c.rho = ts.params.random_element(prng);
    c.r1 = ts.params.random_exponent(prng);
    c.r2 = ts.params.random_exponent(prng);
    c.contribution.ea = cfg().a.encryption_key.encrypt_with_nonce(c.rho, c.r1);
    c.contribution.eb = cfg().b.encryption_key.encrypt_with_nonce(c.rho, c.r2);
    return c;
  }

  SignedMessage signed_commit(ServerRank server, const Contribution& contribution) {
    CommitMsg m;
    m.id = id;
    m.server = server;
    m.commitment = contribution.commitment_digest();
    return make_envelope(cfg(), b(server), encode_body(MsgType::kCommit, m), 0, prng);
  }

  SignedMessage signed_reveal(const std::vector<SignedMessage>& commits) {
    RevealMsg m;
    m.id = id;
    m.commits = commits;
    return make_envelope(cfg(), b(id.coordinator), encode_body(MsgType::kReveal, m), 0, prng);
  }

  SignedMessage signed_contribute(ServerRank server, const Contrib& c,
                                  const SignedMessage& reveal) {
    ContributeMsg m;
    m.id = id;
    m.server = server;
    m.reveal = reveal;
    m.contribution = c.contribution;
    m.vde = zkp::vde_prove(cfg().a.encryption_key, c.contribution.ea, c.r1,
                           cfg().b.encryption_key, c.contribution.eb, c.r2,
                           vde_context(id, server), prng);
    return make_envelope(cfg(), b(server), encode_body(MsgType::kContribute, m), 0, prng);
  }
};

TEST(Validity, InitAcceptsCoordinatorSignature) {
  Fixture fx;
  auto env = fx.signed_init(1);
  EXPECT_TRUE(check_init(fx.cfg(), env).has_value());
}

TEST(Validity, InitRejectsWrongSigner) {
  // Signed by server 2 but id names coordinator 1 — someone impersonating.
  Fixture fx;
  auto env = make_envelope(fx.cfg(), fx.b(2),
                           encode_body(MsgType::kInit, InitMsg{InstanceId{1, 1, 0}}), 0, fx.prng);
  EXPECT_FALSE(check_init(fx.cfg(), env).has_value());
}

TEST(Validity, InitRejectsTamperedBody) {
  Fixture fx;
  auto env = fx.signed_init(1);
  env.body.back() ^= 1;
  EXPECT_FALSE(check_init(fx.cfg(), env).has_value());
}

TEST(Validity, InitRejectsServiceASigner) {
  Fixture fx;
  auto env = make_envelope(fx.cfg(), fx.a(1),
                           encode_body(MsgType::kInit, InitMsg{InstanceId{1, 1, 0}}), 0, fx.prng);
  EXPECT_FALSE(check_init(fx.cfg(), env).has_value());
}

TEST(Validity, CommitAcceptsAndBindsSigner) {
  Fixture fx;
  auto c = fx.make_contrib();
  auto env = fx.signed_commit(2, c.contribution);
  auto parsed = check_commit(fx.cfg(), env);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->server, 2u);

  // Claiming another server's rank fails.
  CommitMsg spoof;
  spoof.id = fx.id;
  spoof.server = 3;  // signed by 2 below
  spoof.commitment = c.contribution.commitment_digest();
  auto bad = make_envelope(fx.cfg(), fx.b(2), encode_body(MsgType::kCommit, spoof), 0, fx.prng);
  EXPECT_FALSE(check_commit(fx.cfg(), bad).has_value());
}

TEST(Validity, RevealRequiresExactly2fPlus1DistinctCommits) {
  Fixture fx;
  std::vector<SignedMessage> commits;
  std::vector<Fixture::Contrib> contribs;
  for (ServerRank r = 1; r <= 3; ++r) {
    contribs.push_back(fx.make_contrib());
    commits.push_back(fx.signed_commit(r, contribs.back().contribution));
  }
  // 3 = 2f+1 for f=1: valid.
  EXPECT_TRUE(check_reveal(fx.cfg(), fx.signed_reveal(commits)).has_value());
  // Too few.
  std::vector<SignedMessage> two(commits.begin(), commits.begin() + 2);
  EXPECT_FALSE(check_reveal(fx.cfg(), fx.signed_reveal(two)).has_value());
  // Duplicate server.
  std::vector<SignedMessage> dup = {commits[0], commits[1], commits[1]};
  EXPECT_FALSE(check_reveal(fx.cfg(), fx.signed_reveal(dup)).has_value());
}

TEST(Validity, RevealRejectsCommitsFromOtherInstance) {
  Fixture fx;
  std::vector<SignedMessage> commits;
  for (ServerRank r = 1; r <= 2; ++r) {
    commits.push_back(fx.signed_commit(r, fx.make_contrib().contribution));
  }
  // Third commit from a different instance id.
  CommitMsg other;
  other.id = InstanceId{2, 1, 0};
  other.server = 3;
  other.commitment = fx.make_contrib().contribution.commitment_digest();
  commits.push_back(make_envelope(fx.cfg(), fx.b(3), encode_body(MsgType::kCommit, other),
                                  0, fx.prng));
  EXPECT_FALSE(check_reveal(fx.cfg(), fx.signed_reveal(commits)).has_value());
}

TEST(Validity, RevealMustBeSignedByCoordinator) {
  Fixture fx;
  std::vector<SignedMessage> commits;
  for (ServerRank r = 1; r <= 3; ++r)
    commits.push_back(fx.signed_commit(r, fx.make_contrib().contribution));
  RevealMsg m;
  m.id = fx.id;  // coordinator = 1
  m.commits = commits;
  auto env = make_envelope(fx.cfg(), fx.b(2), encode_body(MsgType::kReveal, m), 0, fx.prng);
  EXPECT_FALSE(check_reveal(fx.cfg(), env).has_value());
}

TEST(Validity, ContributeFullyValid) {
  Fixture fx;
  std::vector<Fixture::Contrib> contribs;
  std::vector<SignedMessage> commits;
  for (ServerRank r = 1; r <= 3; ++r) {
    contribs.push_back(fx.make_contrib());
    commits.push_back(fx.signed_commit(r, contribs.back().contribution));
  }
  auto reveal = fx.signed_reveal(commits);
  auto env = fx.signed_contribute(2, contribs[1], reveal);
  EXPECT_TRUE(check_contribute(fx.cfg(), env).has_value());
}

TEST(Validity, ContributeRejectsCommitmentMismatch) {
  // Contribution differs from what was committed.
  Fixture fx;
  std::vector<Fixture::Contrib> contribs;
  std::vector<SignedMessage> commits;
  for (ServerRank r = 1; r <= 3; ++r) {
    contribs.push_back(fx.make_contrib());
    commits.push_back(fx.signed_commit(r, contribs.back().contribution));
  }
  auto reveal = fx.signed_reveal(commits);
  auto different = fx.make_contrib();  // never committed
  auto env = fx.signed_contribute(2, different, reveal);
  EXPECT_FALSE(check_contribute(fx.cfg(), env).has_value());
}

TEST(Validity, ContributeRejectsServerNotInReveal) {
  Fixture fx;
  std::vector<Fixture::Contrib> contribs;
  std::vector<SignedMessage> commits;
  for (ServerRank r = 1; r <= 3; ++r) {
    contribs.push_back(fx.make_contrib());
    commits.push_back(fx.signed_commit(r, contribs.back().contribution));
  }
  auto reveal = fx.signed_reveal(commits);
  auto outsider = fx.make_contrib();
  auto env = fx.signed_contribute(4, outsider, reveal);  // server 4 not in M
  EXPECT_FALSE(check_contribute(fx.cfg(), env).has_value());
}

TEST(Validity, ContributeRejectsInconsistentVde) {
  // E_A and E_B encrypt different values; prover attaches a proof for a
  // consistent shadow pair (§4.2.2 attack).
  Fixture fx;
  auto honest = fx.make_contrib();
  Fixture::Contrib bad = honest;
  Bigint rho2 = fx.ts.params.mul(honest.rho, fx.ts.params.g());
  bad.contribution.eb = fx.cfg().b.encryption_key.encrypt_with_nonce(rho2, honest.r2);

  std::vector<SignedMessage> commits = {fx.signed_commit(1, bad.contribution),
                                        fx.signed_commit(2, fx.make_contrib().contribution),
                                        fx.signed_commit(3, fx.make_contrib().contribution)};
  auto reveal = fx.signed_reveal(commits);

  ContributeMsg m;
  m.id = fx.id;
  m.server = 1;
  m.reveal = reveal;
  m.contribution = bad.contribution;
  // VDE proof for the consistent pair, attached to the inconsistent one.
  m.vde = zkp::vde_prove(fx.cfg().a.encryption_key, honest.contribution.ea, honest.r1,
                         fx.cfg().b.encryption_key, honest.contribution.eb, honest.r2,
                         vde_context(fx.id, 1), fx.prng);
  auto env = make_envelope(fx.cfg(), fx.b(1), encode_body(MsgType::kContribute, m), 0, fx.prng);
  EXPECT_FALSE(check_contribute(fx.cfg(), env).has_value());
}

TEST(Validity, BlindSignRequestAcceptsHonestEvidence) {
  Fixture fx;
  std::vector<Fixture::Contrib> contribs;
  std::vector<SignedMessage> commits;
  for (ServerRank r = 1; r <= 3; ++r) {
    contribs.push_back(fx.make_contrib());
    commits.push_back(fx.signed_commit(r, contribs.back().contribution));
  }
  auto reveal = fx.signed_reveal(commits);
  BlindEvidence ev;
  std::vector<elgamal::Ciphertext> eas, ebs;
  for (ServerRank r = 1; r <= 2; ++r) {  // f+1 = 2
    ev.contributes.push_back(fx.signed_contribute(r, contribs[r - 1], reveal));
    eas.push_back(contribs[r - 1].contribution.ea);
    ebs.push_back(contribs[r - 1].contribution.eb);
  }
  BlindPayload payload;
  payload.id = fx.id;
  payload.blinded.ea = *fx.cfg().a.encryption_key.product(eas);
  payload.blinded.eb = *fx.cfg().b.encryption_key.product(ebs);

  Writer w;
  ev.encode(w);
  EXPECT_TRUE(check_blind_sign_request(fx.cfg(), encode_body(MsgType::kBlind, payload), w.view()));

  // A payload that is NOT the product of the evidence is rejected.
  BlindPayload wrong = payload;
  wrong.blinded.ea.b = fx.ts.params.mul(wrong.blinded.ea.b, fx.ts.params.g());
  EXPECT_FALSE(
      check_blind_sign_request(fx.cfg(), encode_body(MsgType::kBlind, wrong), w.view()));
}

TEST(Validity, BlindSignRequestRejectsMixedReveals) {
  // The §4.2.1 splice: two contributions embedding different (individually
  // valid) reveal messages must not combine into evidence.
  Fixture fx;
  std::vector<Fixture::Contrib> contribs;
  std::vector<SignedMessage> commits;
  for (ServerRank r = 1; r <= 3; ++r) {
    contribs.push_back(fx.make_contrib());
    commits.push_back(fx.signed_commit(r, contribs.back().contribution));
  }
  auto reveal1 = fx.signed_reveal(commits);
  // A second, distinct-but-valid reveal (commits in different order).
  std::vector<SignedMessage> commits2 = {commits[2], commits[0], commits[1]};
  auto reveal2 = fx.signed_reveal(commits2);

  BlindEvidence ev;
  ev.contributes.push_back(fx.signed_contribute(1, contribs[0], reveal1));
  ev.contributes.push_back(fx.signed_contribute(2, contribs[1], reveal2));
  BlindPayload payload;
  payload.id = fx.id;
  payload.blinded.ea = *fx.cfg().a.encryption_key.product(
      std::vector<elgamal::Ciphertext>{contribs[0].contribution.ea, contribs[1].contribution.ea});
  payload.blinded.eb = *fx.cfg().b.encryption_key.product(
      std::vector<elgamal::Ciphertext>{contribs[0].contribution.eb, contribs[1].contribution.eb});
  Writer w;
  ev.encode(w);
  EXPECT_FALSE(
      check_blind_sign_request(fx.cfg(), encode_body(MsgType::kBlind, payload), w.view()));
}

TEST(Validity, BlindSignRequestRejectsDuplicateServers) {
  Fixture fx;
  std::vector<Fixture::Contrib> contribs;
  std::vector<SignedMessage> commits;
  for (ServerRank r = 1; r <= 3; ++r) {
    contribs.push_back(fx.make_contrib());
    commits.push_back(fx.signed_commit(r, contribs.back().contribution));
  }
  auto reveal = fx.signed_reveal(commits);
  BlindEvidence ev;
  auto c1 = fx.signed_contribute(1, contribs[0], reveal);
  ev.contributes = {c1, c1};
  BlindPayload payload;
  payload.id = fx.id;
  auto sq = fx.cfg().a.encryption_key.multiply(contribs[0].contribution.ea,
                                               contribs[0].contribution.ea);
  auto sq2 = fx.cfg().b.encryption_key.multiply(contribs[0].contribution.eb,
                                                contribs[0].contribution.eb);
  ASSERT_TRUE(sq && sq2);
  payload.blinded.ea = *sq;
  payload.blinded.eb = *sq2;
  Writer w;
  ev.encode(w);
  EXPECT_FALSE(
      check_blind_sign_request(fx.cfg(), encode_body(MsgType::kBlind, payload), w.view()));
}

TEST(Validity, ServiceSignedBlindRoundTrip) {
  // Threshold-sign a blind payload with B's (reconstructed) signing key and
  // check the Fig. 5 "blind" rule. Reconstructing the key here stands in for
  // the full signing sub-protocol, which is tested in thresh_sign_test.
  Fixture fx;
  Prng prng(55);
  // Reconstruct B's signing key from shares.
  std::vector<threshold::Share> shares = {fx.ts.b_secrets[0].sign_share,
                                          fx.ts.b_secrets[1].sign_share};
  Bigint sign_key = threshold::shamir_reconstruct(shares, fx.ts.params.q());
  zkp::SchnorrSigningKey sk = zkp::SchnorrSigningKey::from_private(fx.ts.params, sign_key);

  BlindPayload payload;
  payload.id = fx.id;
  auto c = fx.make_contrib();
  payload.blinded = c.contribution;
  ServiceSignedMsg msg;
  msg.service = static_cast<std::uint8_t>(ServiceRole::kServiceB);
  msg.body = encode_body(MsgType::kBlind, payload);
  msg.sig = sk.sign(msg.body, prng);

  EXPECT_TRUE(check_blind(fx.cfg(), msg).has_value());

  ServiceSignedMsg tampered = msg;
  tampered.body.back() ^= 1;
  EXPECT_FALSE(check_blind(fx.cfg(), tampered).has_value());

  ServiceSignedMsg wrong_service = msg;
  wrong_service.service = static_cast<std::uint8_t>(ServiceRole::kServiceA);
  EXPECT_FALSE(check_blind(fx.cfg(), wrong_service).has_value());
}

}  // namespace
}  // namespace dblind::core
