// End-to-end through the client API: publish at A, re-encrypt to B, retrieve
// and threshold-decrypt at B — no test oracle anywhere.
#include "core/client.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"

namespace dblind::core {
namespace {

using mpz::Bigint;
using Behavior = ProtocolServer::Behavior;

struct ClientFixture {
  System sys;
  ClientNode* client = nullptr;
  Bigint m;

  explicit ClientFixture(SystemOptions opts, std::uint64_t value = 987654321,
                         TransferId transfer = 1000)
      : sys(std::move(opts)), m(sys.config().params.encode_message(Bigint(value))) {
    auto node = std::make_unique<ClientNode>(sys.config(), transfer, m);
    client = node.get();
    sys.sim().add_node(std::move(node));
  }

  bool run() {
    return sys.sim().run_until([&] { return client->plaintext().has_value(); }, 20'000'000);
  }
};

SystemOptions base(std::uint64_t seed) {
  SystemOptions o;
  o.seed = seed;
  return o;
}

TEST(Client, FullPipelineWithoutOracle) {
  ClientFixture fx(base(1));
  ASSERT_TRUE(fx.run());
  EXPECT_EQ(*fx.client->plaintext(), fx.m);
}

TEST(Client, WorksWithByzantineCoordinator) {
  SystemOptions o = base(2);
  o.b_behaviors = {Behavior::kAdaptiveCancelCoordinator, Behavior::kHonest, Behavior::kHonest,
                   Behavior::kHonest};
  ClientFixture fx(std::move(o), 1234);
  ASSERT_TRUE(fx.run());
  EXPECT_EQ(*fx.client->plaintext(), fx.m);
}

TEST(Client, WorksWithCrashedServers) {
  ClientFixture fx(base(3), 777);
  fx.sys.sim().crash_at(fx.sys.config().a.node_of(2), 0);
  fx.sys.sim().crash_at(fx.sys.config().b.node_of(4), 0);
  ASSERT_TRUE(fx.run());
  EXPECT_EQ(*fx.client->plaintext(), fx.m);
}

TEST(Client, WorksUnderDuplication) {
  ClientFixture fx(base(4), 31415);
  fx.sys.sim().set_duplication_percent(30);
  ASSERT_TRUE(fx.run());
  EXPECT_EQ(*fx.client->plaintext(), fx.m);
}

TEST(Client, TwoClientsTwoTransfers) {
  System sys(base(5));
  Bigint m1 = sys.config().params.encode_message(Bigint(11));
  Bigint m2 = sys.config().params.encode_message(Bigint(22));
  auto c1 = std::make_unique<ClientNode>(sys.config(), 2000, m1);
  auto c2 = std::make_unique<ClientNode>(sys.config(), 2001, m2);
  ClientNode* p1 = c1.get();
  ClientNode* p2 = c2.get();
  sys.sim().add_node(std::move(c1));
  sys.sim().add_node(std::move(c2));
  ASSERT_TRUE(sys.sim().run_until(
      [&] { return p1->plaintext().has_value() && p2->plaintext().has_value(); }, 40'000'000));
  EXPECT_EQ(*p1->plaintext(), m1);
  EXPECT_EQ(*p2->plaintext(), m2);
}

TEST(Client, ServersRefuseUnauthorizedDecryption) {
  // A malicious "client" asks B to decrypt a ciphertext that is NOT a
  // re-encryption result: servers must stay silent.
  class Thief final : public net::Node {
   public:
    Thief(SystemConfig cfg, elgamal::Ciphertext target) : cfg_(std::move(cfg)), target_(std::move(target)) {}
    void on_start(net::Context& ctx) override {
      ClientDecryptRequestMsg req;
      req.transfer = 1000;
      req.ciphertext = target_;
      Writer w;
      w.u8(static_cast<std::uint8_t>(WireKind::kClient));
      w.bytes(encode_body(MsgType::kClientDecryptRequest, req));
      for (ServerRank r = 1; r <= cfg_.b.cfg.n; ++r) ctx.send(cfg_.b.node_of(r), w.take());
      // resend a few times to be sure
      ctx.set_timer(100'000, 1);
    }
    void on_timer(net::Context&, std::uint64_t) override {}
    void on_message(net::Context&, net::NodeId, std::span<const std::uint8_t>) override {
      ++replies;
    }
    SystemConfig cfg_;
    elgamal::Ciphertext target_;
    int replies = 0;
  };

  ClientFixture fx(base(6), 5555);
  // The thief targets an arbitrary ciphertext under K_B (a secret someone
  // else encrypted directly to B, never re-encrypted).
  mpz::Prng prng(9);
  Bigint victim = fx.sys.config().params.encode_message(Bigint(666));
  elgamal::Ciphertext target = fx.sys.config().b.encryption_key.encrypt(victim, prng);
  auto thief = std::make_unique<Thief>(fx.sys.config(), target);
  Thief* thief_ptr = thief.get();
  fx.sys.sim().add_node(std::move(thief));

  ASSERT_TRUE(fx.run());
  EXPECT_EQ(*fx.client->plaintext(), fx.m);  // honest client unaffected
  EXPECT_EQ(thief_ptr->replies, 0);          // thief got nothing
}

}  // namespace
}  // namespace dblind::core
