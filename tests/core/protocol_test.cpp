// End-to-end integration tests of the complete re-encryption protocol
// (paper Figure 4) in the asynchronous simulator, under honest, crash, and
// Byzantine conditions.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace dblind::core {
namespace {

using mpz::Bigint;
using Behavior = ProtocolServer::Behavior;

SystemOptions base_options(std::uint64_t seed) {
  SystemOptions o;
  o.seed = seed;
  return o;
}

// Asserts: the protocol completed, every honest B server holds a result, and
// every result decrypts (under B's key) to the original plaintext — the
// paper's Progress + Integrity criteria.
void expect_success(System& sys, TransferId t) {
  ASSERT_TRUE(sys.run_to_completion());
  const Bigint& m = sys.plaintext_of(t);
  for (ServerRank r = 1; r <= sys.b_cfg().n; ++r) {
    if (!sys.is_honest_b(r)) continue;
    auto res = sys.result(t, r);
    ASSERT_TRUE(res.has_value()) << "B server " << r;
    EXPECT_EQ(sys.oracle_decrypt_b(*res), m) << "B server " << r;
    // The result is a *fresh* ciphertext under K_B, not the original one
    // under K_A re-labelled.
    EXPECT_TRUE(sys.config().params.in_zp_star(res->a));
  }
}

TEST(Protocol, HonestRunCompletes) {
  System sys(base_options(1));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(424242)));
  expect_success(sys, t);
}

TEST(Protocol, ResultIsCiphertextNotPlaintext) {
  System sys(base_options(2));
  Bigint m = sys.config().params.encode_message(Bigint(77));
  TransferId t = sys.add_transfer(m);
  ASSERT_TRUE(sys.run_to_completion());
  auto res = sys.result(t);
  ASSERT_TRUE(res.has_value());
  // Neither component equals the plaintext.
  EXPECT_NE(res->a, m);
  EXPECT_NE(res->b, m);
  // And it does not decrypt under A's key to m (it is bound to B).
  EXPECT_NE(sys.oracle_decrypt_a(*res), m);
}

TEST(Protocol, MultipleTransfersComplete) {
  System sys(base_options(3));
  std::vector<TransferId> ids;
  for (int i = 1; i <= 3; ++i)
    ids.push_back(sys.add_transfer(sys.config().params.encode_message(Bigint(100 + i))));
  ASSERT_TRUE(sys.run_to_completion());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto res = sys.result(ids[i]);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(ids[i]));
  }
}

TEST(Protocol, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    System sys(base_options(seed));
    sys.add_transfer(sys.config().params.encode_message(Bigint(5)));
    EXPECT_TRUE(sys.run_to_completion());
    return sys.sim().stats().end_time;
  };
  EXPECT_EQ(run(10), run(10));
}

TEST(Protocol, SurvivesCrashedBServer) {
  // A non-coordinator B server crashes before start.
  SystemOptions o = base_options(4);
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(9)));
  sys.sim().crash_at(sys.config().b.node_of(4), 0);
  ASSERT_TRUE(sys.run_to_completion());
  auto res = sys.result(t, 1);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
}

TEST(Protocol, SurvivesCrashedDesignatedCoordinator) {
  // Rank 1 (the designated coordinator) is dead from the start; the rank-2
  // backup fires after its delay and completes the protocol (§4.1).
  System sys(base_options(5));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(11)));
  sys.sim().crash_at(sys.config().b.node_of(1), 0);
  ASSERT_TRUE(sys.run_to_completion());
  for (ServerRank r = 2; r <= 4; ++r) {
    auto res = sys.result(t, r);
    ASSERT_TRUE(res.has_value()) << r;
    EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
  }
  // Completion necessarily waited for the backup delay.
  EXPECT_GT(sys.sim().stats().end_time, 400'000u);
}

TEST(Protocol, SurvivesCrashedAServer) {
  // One A server (a decryption-share provider and the designated responder)
  // crashes; backups at A take over.
  System sys(base_options(6));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(13)));
  sys.sim().crash_at(sys.config().a.node_of(1), 0);
  expect_success(sys, t);
}

TEST(Protocol, SurvivesMidProtocolCoordinatorCrash) {
  // The designated coordinator dies mid-run (after ~one round-trip).
  System sys(base_options(7));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(17)));
  sys.sim().crash_at(sys.config().b.node_of(1), 30'000);
  ASSERT_TRUE(sys.run_to_completion());
  for (ServerRank r = 2; r <= 4; ++r) {
    auto res = sys.result(t, r);
    ASSERT_TRUE(res.has_value()) << r;
    EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
  }
}

TEST(Protocol, ToleratesInconsistentContribution) {
  // A Byzantine B server sends (E_A(ρ), E_B(ρ')) with ρ != ρ'; VDE
  // verification discards it (§4.2.2) and the protocol still completes
  // correctly.
  SystemOptions o = base_options(8);
  o.b_behaviors = {Behavior::kHonest, Behavior::kHonest, Behavior::kInconsistentContribution,
                   Behavior::kHonest};
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(19)));
  ASSERT_TRUE(sys.run_to_completion());
  for (ServerRank r : {1u, 2u, 4u}) {
    auto res = sys.result(t, r);
    ASSERT_TRUE(res.has_value()) << r;
    EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t)) << r;
  }
}

TEST(Protocol, ToleratesWithheldContribution) {
  // A Byzantine server commits but never contributes — exactly why the
  // coordinator solicits 2f+1 commitments (§4.2.1).
  SystemOptions o = base_options(9);
  o.b_behaviors = {Behavior::kHonest, Behavior::kWithholdContribution, Behavior::kHonest,
                   Behavior::kHonest};
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(23)));
  ASSERT_TRUE(sys.run_to_completion());
  auto res = sys.result(t, 1);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
}

TEST(Protocol, ToleratesWithheldPartialSignature) {
  // A signing member goes silent at the partial-signature stage; the signing
  // coordinator's retry excludes it and completes with a different quorum.
  SystemOptions o = base_options(10);
  o.b_behaviors = {Behavior::kHonest, Behavior::kWithholdPartial, Behavior::kHonest,
                   Behavior::kHonest};
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(29)));
  ASSERT_TRUE(sys.run_to_completion());
  auto res = sys.result(t, 1);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
}

TEST(Protocol, BogusBlindCoordinatorGainsNothing) {
  // The designated coordinator is compromised and tries to get B to
  // threshold-sign a fabricated blinding pair (it would then know ρ̂).
  // Honest members reject the evidence-free signing request; the honest
  // backup coordinator completes the transfer.
  SystemOptions o = base_options(11);
  o.b_behaviors = {Behavior::kBogusBlindCoordinator, Behavior::kHonest, Behavior::kHonest,
                   Behavior::kHonest};
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(31)));
  ASSERT_TRUE(sys.run_to_completion());
  EXPECT_EQ(sys.b_server(1).attack_successes(), 0);
  for (ServerRank r = 2; r <= 4; ++r) {
    auto res = sys.result(t, r);
    ASSERT_TRUE(res.has_value()) << r;
    EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t)) << r;
  }
}

TEST(Protocol, AdaptiveCancelAttackDefeated) {
  // The §4.2.1 adaptive-contribution attack, mounted by a compromised
  // designated coordinator against the full protocol: collect honest
  // contributions, craft a canceling one, splice reveal rounds. Every
  // honest signing member rejects the spliced evidence (same-reveal rule +
  // VDE), so the adversary never obtains a service signature; honest
  // backups preserve liveness and integrity.
  SystemOptions o = base_options(12);
  o.b_behaviors = {Behavior::kAdaptiveCancelCoordinator, Behavior::kHonest, Behavior::kHonest,
                   Behavior::kHonest};
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(37)));
  ASSERT_TRUE(sys.run_to_completion());
  EXPECT_EQ(sys.b_server(1).attack_successes(), 0);
  for (ServerRank r = 2; r <= 4; ++r) {
    auto res = sys.result(t, r);
    ASSERT_TRUE(res.has_value()) << r;
    EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t)) << r;
  }
}

TEST(Protocol, LargerServiceCompletes) {
  // n = 7, f = 2: two backup coordinators, 5-commit reveals, 3-share
  // decryption and signing quorums.
  SystemOptions o = base_options(13);
  o.a = {7, 2};
  o.b = {7, 2};
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(41)));
  expect_success(sys, t);
}

TEST(Protocol, AsymmetricServicesComplete) {
  SystemOptions o = base_options(14);
  o.a = {4, 1};
  o.b = {7, 2};
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(43)));
  expect_success(sys, t);
}

TEST(Protocol, DkgSetupWorks) {
  SystemOptions o = base_options(15);
  o.use_dkg = true;
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(47)));
  expect_success(sys, t);
}

TEST(Protocol, PrecomputedContributionsComplete) {
  SystemOptions o = base_options(16);
  o.protocol.precompute_contributions = true;
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(53)));
  expect_success(sys, t);
}

TEST(Protocol, BlindingRunsBeforeSecretExists) {
  // Step flexibility (§1/§3): the whole distributed blinding protocol and
  // the blind message precede the existence of E_A(m). A parks the blind
  // message and resumes when the secret arrives.
  SystemOptions o = base_options(17);
  System sys(std::move(o));
  // Secret only materializes at t = 2s — far after blinding completes.
  TransferId t = sys.add_transfer_at(sys.config().params.encode_message(Bigint(59)), 2'000'000);
  ASSERT_TRUE(sys.run_to_completion());
  auto res = sys.result(t, 1);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
  EXPECT_GE(sys.sim().stats().end_time, 2'000'000u);
}

TEST(Protocol, AllCoordinatorsEagerOptionWorks) {
  SystemOptions o = base_options(18);
  o.protocol.coordinator_backup_delay = 0;  // all f+1 start immediately
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(61)));
  expect_success(sys, t);
}

TEST(Protocol, ResultConsistencyAcrossServers) {
  // All honest B servers converge on *some* valid ciphertext of m (they may
  // differ between servers when several coordinators finish).
  System sys(base_options(19));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(67)));
  ASSERT_TRUE(sys.run_to_completion());
  for (ServerRank r = 1; r <= 4; ++r) {
    auto res = sys.result(t, r);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
  }
}

TEST(Protocol, IdempotentUnderMessageDuplication) {
  // The asynchronous model permits duplicated delivery; every handler must
  // be idempotent. 40% of messages are delivered twice.
  System sys(base_options(21));
  sys.sim().set_duplication_percent(40);
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(73)));
  expect_success(sys, t);
}

TEST(Protocol, DuplicationPlusByzantineCoordinator) {
  SystemOptions o = base_options(22);
  o.b_behaviors = {Behavior::kAdaptiveCancelCoordinator, Behavior::kHonest, Behavior::kHonest,
                   Behavior::kHonest};
  System sys(std::move(o));
  sys.sim().set_duplication_percent(30);
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(79)));
  ASSERT_TRUE(sys.run_to_completion());
  EXPECT_EQ(sys.b_server(1).attack_successes(), 0);
  for (ServerRank r = 2; r <= 4; ++r) {
    auto res = sys.result(t, r);
    ASSERT_TRUE(res.has_value()) << r;
    EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t)) << r;
  }
}

// Liveness + integrity across many schedules: the protocol is a pure
// function of the seed, and every seed must succeed.
class ProtocolSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolSeedSweep, CompletesCorrectly) {
  System sys(base_options(GetParam()));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(101)));
  ASSERT_TRUE(sys.run_to_completion());
  auto res = sys.result(t);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolSeedSweep,
                         ::testing::Values(1001u, 1002u, 1003u, 1004u, 1005u, 1006u, 1007u,
                                           1008u, 1009u, 1010u));

TEST(Protocol, ExtendedConfigurationNGreaterThan3fPlus1) {
  // Footnote 3: "The protocols are easily extended to cases where
  // 3f + 1 < n holds." Quorum sizes depend only on f.
  SystemOptions o = base_options(23);
  o.a = {6, 1};
  o.b = {9, 2};
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(83)));
  expect_success(sys, t);
}

TEST(Protocol, SurvivesDosSlowedCoordinator) {
  // A delay-injection adversary stretches all traffic touching B's
  // designated coordinator 40x; the protocol completes anyway (the central
  // asynchronous-model claim: timing attacks cost latency, never safety).
  SystemOptions o = base_options(26);
  o.delay_policy = std::make_unique<net::TargetedSlowdown>(
      500, 20'000, std::set<net::NodeId>{static_cast<net::NodeId>(o.a.n)}, 40);
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(89)));
  expect_success(sys, t);
}

TEST(Protocol, SingleCoordinatorNoBackupsHonestRun) {
  SystemOptions o = base_options(27);
  o.protocol.max_coordinators = 1;
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(97)));
  expect_success(sys, t);
}

TEST(Protocol, AddTransferValidatesPlaintext) {
  System sys(base_options(24));
  // Not a group element: p-1 is a non-residue.
  EXPECT_THROW((void)sys.add_transfer(sys.config().params.p() - Bigint(1)),
               std::invalid_argument);
  EXPECT_THROW((void)sys.add_transfer(Bigint(0)), std::invalid_argument);
}

TEST(Protocol, ResultBeforeRunIsEmpty) {
  System sys(base_options(25));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(3)));
  EXPECT_FALSE(sys.result(t).has_value());
}

TEST(Protocol, StatsAreAccountedFor) {
  System sys(base_options(20));
  sys.add_transfer(sys.config().params.encode_message(Bigint(71)));
  ASSERT_TRUE(sys.run_to_completion());
  const net::NetStats& stats = sys.sim().stats();
  EXPECT_GT(stats.messages_sent, 0u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_GT(stats.end_time, 0u);
  EXPECT_GT(sys.service_cpu_seconds(ServiceRole::kServiceA), 0.0);
  EXPECT_GT(sys.service_cpu_seconds(ServiceRole::kServiceB), 0.0);
}

}  // namespace
}  // namespace dblind::core
