// Focused unit tests of check_done_sign_request — the deepest evidence
// chain in the protocol (blind message ⊃ service signature; decryption
// shares ⊃ Chaum-Pedersen proofs; payload consistency with the stored
// ciphertext).
#include <gtest/gtest.h>

#include "core/validity.hpp"
#include "mpz/modmath.hpp"
#include "tests/core/test_util.hpp"
#include "threshold/shamir.hpp"
#include "threshold/thresh_decrypt.hpp"

namespace dblind::core {
namespace {

using testing::TestSystem;
using mpz::Bigint;
using mpz::Prng;

struct DoneFixture {
  TestSystem ts = TestSystem::make(42);
  Prng prng{17};
  InstanceId id{1, 1, 0};
  Bigint m;
  elgamal::Ciphertext stored;        // E_A(m)
  ServiceSignedMsg blind_env;        // valid ⟨blind⟩_B
  BlindPayload blind;
  elgamal::Ciphertext ea_m_rho;
  Bigint m_rho;
  std::vector<threshold::DecryptionShare> shares;
  DonePayload done;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> evidence;

  DoneFixture() {
    const SystemConfig& cfg = ts.cfg;
    m = ts.params.random_element(prng);
    stored = cfg.a.encryption_key.encrypt(m, prng);

    // A blinding pair, "service-signed" with B's reconstructed signing key
    // (standing in for the threshold-signing sub-protocol).
    Bigint rho = ts.params.random_element(prng);
    blind.id = id;
    blind.blinded.ea = cfg.a.encryption_key.encrypt(rho, prng);
    blind.blinded.eb = cfg.b.encryption_key.encrypt(rho, prng);
    std::vector<threshold::Share> sks = {ts.b_secrets[0].sign_share, ts.b_secrets[1].sign_share};
    zkp::SchnorrSigningKey b_sign = zkp::SchnorrSigningKey::from_private(
        ts.params, threshold::shamir_reconstruct(sks, ts.params.q()));
    blind_env.service = static_cast<std::uint8_t>(ServiceRole::kServiceB);
    blind_env.body = encode_body(MsgType::kBlind, blind);
    blind_env.sig = b_sign.sign(blind_env.body, prng);

    ea_m_rho = *cfg.a.encryption_key.multiply(stored, blind.blinded.ea);
    for (std::uint32_t i : {1u, 2u}) {
      shares.push_back(threshold::make_decryption_share(
          ts.params, ea_m_rho, ts.a_secrets[i - 1].enc_share, decrypt_context(id), prng));
    }
    m_rho = threshold::combine_decryption(ts.params, ea_m_rho, shares);

    done.id = id;
    done.ea_m = stored;
    done.eb_m = cfg.b.encryption_key.juxtapose(
        m_rho, cfg.b.encryption_key.inverse(blind.blinded.eb));
    payload = encode_body(MsgType::kDone, done);

    DoneEvidence ev{blind_env, m_rho, shares};
    Writer w;
    ev.encode(w);
    evidence = w.take();
  }

  [[nodiscard]] std::vector<std::uint8_t> encode_evidence(const DoneEvidence& ev) const {
    Writer w;
    ev.encode(w);
    return w.take();
  }
};

TEST(DoneEvidenceCheck, HonestEvidenceAccepted) {
  DoneFixture fx;
  EXPECT_TRUE(check_done_sign_request(fx.ts.cfg, fx.payload, fx.evidence, fx.stored));
}

TEST(DoneEvidenceCheck, WrongStoredCiphertextRejected) {
  DoneFixture fx;
  elgamal::Ciphertext other = fx.ts.cfg.a.encryption_key.encrypt(fx.m, fx.prng);
  EXPECT_FALSE(check_done_sign_request(fx.ts.cfg, fx.payload, fx.evidence, other));
}

TEST(DoneEvidenceCheck, TamperedMRhoRejected) {
  DoneFixture fx;
  DoneEvidence ev{fx.blind_env, fx.ts.params.mul(fx.m_rho, fx.ts.params.g()), fx.shares};
  EXPECT_FALSE(check_done_sign_request(fx.ts.cfg, fx.payload, fx.encode_evidence(ev), fx.stored));
}

TEST(DoneEvidenceCheck, ForgedBlindSignatureRejected) {
  DoneFixture fx;
  ServiceSignedMsg forged = fx.blind_env;
  forged.body.back() ^= 1;
  DoneEvidence ev{forged, fx.m_rho, fx.shares};
  EXPECT_FALSE(check_done_sign_request(fx.ts.cfg, fx.payload, fx.encode_evidence(ev), fx.stored));
}

TEST(DoneEvidenceCheck, BadDecryptionShareRejected) {
  DoneFixture fx;
  auto bad_shares = fx.shares;
  bad_shares[0].d = fx.ts.params.mul(bad_shares[0].d, fx.ts.params.g());
  DoneEvidence ev{fx.blind_env, fx.m_rho, bad_shares};
  EXPECT_FALSE(check_done_sign_request(fx.ts.cfg, fx.payload, fx.encode_evidence(ev), fx.stored));
}

TEST(DoneEvidenceCheck, DuplicateShareIndicesRejected) {
  DoneFixture fx;
  std::vector<threshold::DecryptionShare> dup = {fx.shares[0], fx.shares[0]};
  DoneEvidence ev{fx.blind_env, fx.m_rho, dup};
  EXPECT_FALSE(check_done_sign_request(fx.ts.cfg, fx.payload, fx.encode_evidence(ev), fx.stored));
}

TEST(DoneEvidenceCheck, WrongShareCountRejected) {
  DoneFixture fx;
  std::vector<threshold::DecryptionShare> extra = fx.shares;
  extra.push_back(threshold::make_decryption_share(fx.ts.params, fx.ea_m_rho,
                                                   fx.ts.a_secrets[2].enc_share,
                                                   decrypt_context(fx.id), fx.prng));
  DoneEvidence ev{fx.blind_env, fx.m_rho, extra};  // f+2 shares: not exactly a quorum
  EXPECT_FALSE(check_done_sign_request(fx.ts.cfg, fx.payload, fx.encode_evidence(ev), fx.stored));
}

TEST(DoneEvidenceCheck, TamperedPayloadRejected) {
  DoneFixture fx;
  // E_B(m) swapped for a ciphertext of something else.
  DonePayload wrong = fx.done;
  wrong.eb_m = fx.ts.cfg.b.encryption_key.encrypt(fx.ts.params.random_element(fx.prng), fx.prng);
  EXPECT_FALSE(check_done_sign_request(fx.ts.cfg, encode_body(MsgType::kDone, wrong),
                                       fx.evidence, fx.stored));
  // Instance id mismatch between payload and blind message.
  DonePayload other_id = fx.done;
  other_id.id.transfer = 999;
  EXPECT_FALSE(check_done_sign_request(fx.ts.cfg, encode_body(MsgType::kDone, other_id),
                                       fx.evidence, fx.stored));
}

TEST(DoneEvidenceCheck, SharesForWrongContextRejected) {
  // Shares made for another instance's decrypt context do not validate here.
  DoneFixture fx;
  std::vector<threshold::DecryptionShare> wrong_ctx;
  for (std::uint32_t i : {1u, 2u}) {
    wrong_ctx.push_back(threshold::make_decryption_share(
        fx.ts.params, fx.ea_m_rho, fx.ts.a_secrets[i - 1].enc_share,
        decrypt_context(InstanceId{2, 1, 0}), fx.prng));
  }
  DoneEvidence ev{fx.blind_env, fx.m_rho, wrong_ctx};
  EXPECT_FALSE(check_done_sign_request(fx.ts.cfg, fx.payload, fx.encode_evidence(ev), fx.stored));
}

}  // namespace
}  // namespace dblind::core
