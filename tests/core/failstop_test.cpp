#include "core/failstop.hpp"

#include <gtest/gtest.h>

namespace dblind::core {
namespace {

TEST(Failstop, HonestRunProducesConsistentBlinding) {
  FailstopBlindingSystem sys({});
  ASSERT_TRUE(sys.run());
  auto out = sys.outcome(1);
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->by_attacker);
  // Consistency: E_A(ρ) and E_B(ρ) decrypt to the same ρ ∈ G_p.
  EXPECT_TRUE(sys.consistent(*out));
  mpz::Bigint rho = sys.decrypt_a(out->blinded.ea);
  EXPECT_TRUE(group::GroupParams::named(group::ParamId::kToy64).in_group(rho));
}

TEST(Failstop, DifferentCoordinatorsDifferentFactors) {
  FailstopOptions o;
  o.backup_delay = 0;  // both coordinators run at once
  o.seed = 2;
  FailstopBlindingSystem sys(std::move(o));
  // Run until both coordinators finish.
  ASSERT_TRUE(sys.sim().run_until([&] { return sys.outcome(1) && sys.outcome(2); }, 1'000'000));
  auto o1 = sys.outcome(1);
  auto o2 = sys.outcome(2);
  ASSERT_TRUE(o1 && o2);
  EXPECT_TRUE(sys.consistent(*o1));
  EXPECT_TRUE(sys.consistent(*o2));
  // "Multiple blinding factors will be produced, which causes no difficulty."
  EXPECT_NE(sys.decrypt_a(o1->blinded.ea), sys.decrypt_a(o2->blinded.ea));
}

TEST(Failstop, SurvivesCrashedCoordinator) {
  FailstopOptions o;
  o.seed = 3;
  o.crashed = {1};  // designated coordinator dead
  FailstopBlindingSystem sys(std::move(o));
  ASSERT_TRUE(sys.run());
  auto out = sys.outcome(2);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(sys.consistent(*out));
}

TEST(Failstop, SurvivesCrashedContributors) {
  FailstopOptions o;
  o.n = 7;
  o.f = 2;
  o.seed = 4;
  o.crashed = {6, 7};  // f crashed contributors
  FailstopBlindingSystem sys(std::move(o));
  ASSERT_TRUE(sys.run());
  EXPECT_TRUE(sys.outcome(1).has_value());
}

TEST(Failstop, AdaptiveAttackSucceedsAgainstFigure3) {
  // THE point of §4.2.1: against the fail-stop protocol, a Byzantine
  // coordinator chooses the "random" blinding factor. Randomness-
  // Confidentiality is broken: the output decrypts to the attacker's ρ̂.
  FailstopOptions o;
  o.seed = 5;
  o.adaptive_attack = true;
  FailstopBlindingSystem sys(std::move(o));
  ASSERT_TRUE(sys.run());
  auto out = sys.outcome(1);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->by_attacker);
  EXPECT_TRUE(sys.consistent(*out));
  EXPECT_EQ(sys.decrypt_a(out->blinded.ea), sys.attacker_rho());
  EXPECT_EQ(sys.decrypt_b(out->blinded.eb), sys.attacker_rho());
}

TEST(Failstop, AttackInvisibleToOutputChecks) {
  // The attacked output passes every syntactic/consistency check a verifier
  // could run without extra evidence — which is exactly why Figure 4 needs
  // commitments, VDE proofs, and self-verifying messages.
  FailstopOptions o;
  o.seed = 6;
  o.adaptive_attack = true;
  FailstopBlindingSystem sys(std::move(o));
  ASSERT_TRUE(sys.run());
  auto attacked = sys.outcome(1);
  ASSERT_TRUE(attacked.has_value());
  EXPECT_TRUE(sys.consistent(*attacked));  // both halves encrypt the same ρ̂!
}

TEST(Failstop, ScalesToLargerGroups) {
  for (std::size_t f : {1u, 2u, 3u}) {
    FailstopOptions o;
    o.n = 3 * f + 1;
    o.f = f;
    o.seed = 100 + f;
    FailstopBlindingSystem sys(std::move(o));
    ASSERT_TRUE(sys.run()) << f;
    EXPECT_TRUE(sys.consistent(*sys.outcome(1))) << f;
  }
}

}  // namespace
}  // namespace dblind::core
