// Semantics of the annotated synchronization primitives (core/sync.hpp).
//
// The Clang thread-safety *analysis* is exercised by the
// static_analysis.thread_safety gate (tools/run_thread_safety.sh); these
// tests pin the runtime behavior the annotations describe: Mutex mutual
// exclusion, MutexLock RAII pairing, try_lock contention semantics, and
// CondVar wakeups/timeouts. Run under the tsan preset they are the stress
// coverage for the wrappers themselves. Shared state lives in small
// annotated structs (GUARDED_BY applies to members, not locals).
#include "core/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <vector>

namespace dblind {
namespace {

TEST(Sync, MutexProvidesMutualExclusion) {
  struct Shared {
    Mutex mu;
    std::uint64_t counter GUARDED_BY(mu) = 0;
  } s;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(s.mu);
        ++s.counter;  // non-atomic on purpose: lost updates would show here
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(s.mu);
  EXPECT_EQ(s.counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Sync, MutexLockReleasesOnScopeExit) {
  Mutex mu;
  {
    MutexLock lock(mu);
    // Held: a second acquisition attempt must fail.
    std::thread probe([&] { EXPECT_FALSE(mu.try_lock()); });
    probe.join();
  }
  // Released: now it must succeed.
  std::thread probe([&] {
    ASSERT_TRUE(mu.try_lock());
    mu.unlock();
  });
  probe.join();
}

TEST(Sync, TryLockDoesNotBlock) {
  Mutex mu;
  mu.lock();
  auto t0 = std::chrono::steady_clock::now();
  std::thread probe([&] { EXPECT_FALSE(mu.try_lock()); });
  probe.join();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
  mu.unlock();
}

TEST(Sync, CondVarWakesWaiter) {
  struct Shared {
    Mutex mu;
    CondVar cv;
    bool ready GUARDED_BY(mu) = false;
  } s;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(s.mu);
    while (!s.ready) s.cv.wait(s.mu);
    observed = s.ready;
  });
  {
    MutexLock lock(s.mu);
    s.ready = true;
  }
  s.cv.notify_one();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(Sync, CondVarWaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  auto status =
      cv.wait_until(mu, std::chrono::steady_clock::now() + std::chrono::milliseconds(10));
  EXPECT_EQ(status, std::cv_status::timeout);
}

TEST(Sync, CondVarWaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_EQ(cv.wait_for(mu, std::chrono::milliseconds(10)), std::cv_status::timeout);
}

// Producer/consumer handshake over an annotated queue: the exact shape
// VerifyPool and ThreadedBus slots use (explicit while-loop waits, no
// predicate lambdas — those defeat the Clang analysis).
TEST(Sync, ProducerConsumerQueue) {
  struct Shared {
    Mutex mu;
    CondVar cv;
    std::deque<int> queue GUARDED_BY(mu);
    bool done GUARDED_BY(mu) = false;
  } s;
  constexpr int kItems = 10000;
  std::uint64_t consumed = 0;

  std::thread consumer([&] {
    for (;;) {
      MutexLock lock(s.mu);
      while (s.queue.empty() && !s.done) s.cv.wait(s.mu);
      if (s.queue.empty() && s.done) return;
      s.queue.pop_front();
      ++consumed;
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      {
        MutexLock lock(s.mu);
        s.queue.push_back(i);
      }
      s.cv.notify_one();
    }
    {
      MutexLock lock(s.mu);
      s.done = true;
    }
    s.cv.notify_all();
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(consumed, static_cast<std::uint64_t>(kItems));
}

// notify_all wakes every waiter exactly once through a state transition.
TEST(Sync, NotifyAllWakesAllWaiters) {
  struct Shared {
    Mutex mu;
    CondVar cv;
    bool go GUARDED_BY(mu) = false;
  } s;
  std::atomic<int> awake{0};
  constexpr int kWaiters = 6;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(s.mu);
      while (!s.go) s.cv.wait(s.mu);
      awake.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    MutexLock lock(s.mu);
    s.go = true;
  }
  s.cv.notify_all();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(awake.load(std::memory_order_relaxed), kWaiters);
}

}  // namespace
}  // namespace dblind
