#include "core/refresh_protocol.hpp"

#include <gtest/gtest.h>

#include "threshold/shamir.hpp"
#include "threshold/thresh_decrypt.hpp"

namespace dblind::core {
namespace {

using mpz::Bigint;
using mpz::Prng;

// Collects post-epoch shares of the given ranks.
std::vector<threshold::Share> shares_of(RefreshSystem& sys,
                                        const std::vector<std::uint32_t>& ranks) {
  std::vector<threshold::Share> out;
  for (std::uint32_t r : ranks) {
    auto s = sys.new_share(r);
    EXPECT_TRUE(s.has_value()) << r;
    if (s) out.push_back(*s);
  }
  return out;
}

TEST(RefreshProtocol, HonestEpochPreservesKeyAndChangesShares) {
  RefreshSystemOptions o;
  o.seed = 1;
  RefreshSystem sys(std::move(o));
  ASSERT_TRUE(sys.run());

  const group::GroupParams& gp = sys.old_material().params();
  auto q = shares_of(sys, {1, 3});
  Bigint key = threshold::shamir_reconstruct(q, gp.q());
  EXPECT_EQ(gp.pow_g(key), sys.old_material().public_key().y());
  for (std::uint32_t r = 1; r <= 4; ++r) {
    EXPECT_NE(sys.new_share(r)->value, sys.old_material().share_of(r).value) << r;
  }
}

TEST(RefreshProtocol, NewCommitmentsVerifyNewShares) {
  RefreshSystemOptions o;
  o.seed = 2;
  RefreshSystem sys(std::move(o));
  ASSERT_TRUE(sys.run());
  const group::GroupParams& gp = sys.old_material().params();
  for (std::uint32_t r = 1; r <= 4; ++r) {
    auto share = sys.new_share(r);
    auto comm = sys.new_commitments(r);
    ASSERT_TRUE(share && comm);
    EXPECT_TRUE(threshold::feldman_verify(gp, *comm, *share)) << r;
    // All servers agree on the new commitments.
    EXPECT_EQ(*comm, *sys.new_commitments(1)) << r;
  }
}

TEST(RefreshProtocol, ThresholdDecryptionWorksAfterOnlineRefresh) {
  RefreshSystemOptions o;
  o.seed = 3;
  RefreshSystem sys(std::move(o));
  Prng prng(9);
  const group::GroupParams& gp = sys.old_material().params();
  Bigint m = gp.random_element(prng);
  elgamal::Ciphertext c = sys.old_material().public_key().encrypt(m, prng);
  ASSERT_TRUE(sys.run());

  std::vector<threshold::DecryptionShare> shares;
  for (std::uint32_t r : {2u, 4u}) {
    auto ds = threshold::make_decryption_share(gp, c, *sys.new_share(r), "ctx", prng);
    EXPECT_TRUE(threshold::verify_decryption_share(gp, *sys.new_commitments(r), c, ds, "ctx"));
    shares.push_back(std::move(ds));
  }
  EXPECT_EQ(threshold::combine_decryption(gp, c, shares), m);
}

TEST(RefreshProtocol, MixedEpochSharesUseless) {
  RefreshSystemOptions o;
  o.seed = 4;
  RefreshSystem sys(std::move(o));
  ASSERT_TRUE(sys.run());
  const group::GroupParams& gp = sys.old_material().params();
  std::vector<threshold::Share> mixed = {sys.old_material().share_of(1), *sys.new_share(2)};
  EXPECT_NE(gp.pow_g(threshold::shamir_reconstruct(mixed, gp.q())),
            sys.old_material().public_key().y());
}

TEST(RefreshProtocol, SurvivesCrashedCoordinator) {
  RefreshSystemOptions o;
  o.seed = 5;
  o.crashed = {1};
  RefreshSystem sys(std::move(o));
  ASSERT_TRUE(sys.run());
  const group::GroupParams& gp = sys.old_material().params();
  auto q = shares_of(sys, {2, 4});
  EXPECT_EQ(gp.pow_g(threshold::shamir_reconstruct(q, gp.q())),
            sys.old_material().public_key().y());
  EXPECT_GT(sys.sim().stats().end_time, 400'000u);  // paid the backup delay
}

TEST(RefreshProtocol, BadDealerExcluded) {
  RefreshSystemOptions o;
  o.seed = 6;
  o.cfg = {7, 2};
  o.bad_dealers = {3, 5};
  RefreshSystem sys(std::move(o));
  ASSERT_TRUE(sys.run());
  const group::GroupParams& gp = sys.old_material().params();
  auto q = shares_of(sys, {1, 2, 7});
  EXPECT_EQ(gp.pow_g(threshold::shamir_reconstruct(q, gp.q())),
            sys.old_material().public_key().y());
}

TEST(RefreshProtocol, EquivocatingCoordinatorCannotSplitState) {
  // The central agreement property: a Byzantine coordinator sending
  // different apply-sets to different servers cannot leave correct servers
  // with incompatible shares. Either one set reaches the echo quorum (and
  // the fetch round delivers it everywhere), or none does and a backup
  // instance completes — in both cases all servers end identical.
  RefreshSystemOptions o;
  o.seed = 7;
  o.equivocating_coordinator = true;
  RefreshSystem sys(std::move(o));
  ASSERT_TRUE(sys.run());
  const group::GroupParams& gp = sys.old_material().params();

  // All live servers hold mutually consistent shares: any quorum
  // reconstructs the original key.
  for (auto ranks : std::vector<std::vector<std::uint32_t>>{{1, 2}, {2, 3}, {3, 4}, {1, 4}}) {
    auto q = shares_of(sys, ranks);
    EXPECT_EQ(gp.pow_g(threshold::shamir_reconstruct(q, gp.q())),
              sys.old_material().public_key().y())
        << ranks[0] << "," << ranks[1];
  }
}

TEST(RefreshProtocol, LargerServiceWorks) {
  RefreshSystemOptions o;
  o.seed = 8;
  o.cfg = {10, 3};
  RefreshSystem sys(std::move(o));
  ASSERT_TRUE(sys.run());
  const group::GroupParams& gp = sys.old_material().params();
  auto q = shares_of(sys, {2, 5, 8, 10});
  EXPECT_EQ(gp.pow_g(threshold::shamir_reconstruct(q, gp.q())),
            sys.old_material().public_key().y());
}

}  // namespace
}  // namespace dblind::core
