// End-to-end epochal reconfiguration (core/reconfig + ProtocolServer):
// join/leave/re-share rotations of service B under the deterministic
// simulator, including the crash-then-restore-across-install regression
// (a server that misses an install must discard its stale share and rejoin
// through the certificate-chain + sub-share recovery path).
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace dblind::core {
namespace {

SystemOptions base_opts(std::uint64_t seed) {
  SystemOptions o;
  o.seed = seed;
  return o;
}

void expect_results_correct(System& sys, const std::vector<TransferId>& ts, ServerRank rank) {
  for (TransferId t : ts) {
    auto r = sys.result(t, rank);
    ASSERT_TRUE(r.has_value()) << "transfer " << t << " rank " << rank;
    EXPECT_EQ(sys.oracle_decrypt_b(*r), sys.plaintext_of(t)) << "transfer " << t;
  }
}

// Join: (4,1) -> (5,1) by adopting one standby. The standby must end up an
// active rank-5 member holding correct results, and the re-shared key must
// still decrypt (the service public key never changes).
TEST(Reconfig, JoinStandby) {
  SystemOptions o = base_opts(41);
  o.b_standby = 1;
  System sys(std::move(o));
  std::vector<TransferId> ts = {sys.add_transfer(sys.config().params.g()),
                                sys.add_transfer(sys.config().params.g())};
  std::vector<net::NodeId> roster = {sys.b_node(1), sys.b_node(2), sys.b_node(3), sys.b_node(4),
                                     sys.b_standby_node(0)};
  sys.schedule_reconfig_b(sys.make_b_spec(1, 1, roster), 50'000);
  ASSERT_TRUE(sys.run_to_completion());

  for (ServerRank r = 1; r <= 4; ++r) {
    EXPECT_EQ(sys.b_server(r).config_epoch(), 1u);
    EXPECT_EQ(sys.b_server(r).rank(), r);
    EXPECT_FALSE(sys.b_server(r).share_pending());
    expect_results_correct(sys, ts, r);
  }
  ProtocolServer& joiner = sys.b_standby_server(0);
  EXPECT_EQ(joiner.config_epoch(), 1u);
  EXPECT_EQ(joiner.rank(), 5u);
  EXPECT_FALSE(joiner.share_pending());
  for (TransferId t : ts) EXPECT_TRUE(joiner.result(t).has_value());
  EXPECT_EQ(joiner.config().b.cfg.n, 5u);
}

// Leave: (5,1) -> (4,1). The departing server retires (rank 0, share
// zeroed); the survivors re-share and keep serving.
TEST(Reconfig, LeaveShrinksRoster) {
  SystemOptions o = base_opts(42);
  o.b = {5, 1};
  System sys(std::move(o));
  std::vector<TransferId> ts = {sys.add_transfer(sys.config().params.g())};
  std::vector<net::NodeId> roster = {sys.b_node(1), sys.b_node(2), sys.b_node(3), sys.b_node(4)};
  sys.schedule_reconfig_b(sys.make_b_spec(1, 1, roster), 50'000);
  ASSERT_TRUE(sys.run_to_completion());

  for (ServerRank r = 1; r <= 4; ++r) {
    EXPECT_EQ(sys.b_server(r).config_epoch(), 1u);
    EXPECT_FALSE(sys.b_server(r).share_pending());
    expect_results_correct(sys, ts, r);
    EXPECT_EQ(sys.b_server(r).config().b.cfg.n, 4u);
  }
  // The retired server still learned the install (it echoed it) and dropped
  // out of the roster.
  EXPECT_EQ(sys.b_server(5).config_epoch(), 1u);
  EXPECT_EQ(sys.b_server(5).rank(), 0u);
}

// Rotation with transfers in flight: the spec lands mid-protocol, so some
// transfers abort at the boundary and re-run under epoch 1 — results must
// still be correct and unique per transfer (I6 is about never mixing
// epochs; correctness of the decryption is the end-to-end witness).
TEST(Reconfig, MidTransferRotation) {
  SystemOptions o = base_opts(43);
  o.b_standby = 1;
  System sys(std::move(o));
  std::vector<TransferId> ts;
  for (int i = 0; i < 3; ++i) ts.push_back(sys.add_transfer(sys.config().params.g()));
  // A late transfer keeps the run alive past the install even if the first
  // wave happens to finish before the rotation window closes.
  ts.push_back(sys.add_transfer_at(sys.config().params.g(), 600'000));
  std::vector<net::NodeId> roster = {sys.b_node(1), sys.b_node(2), sys.b_node(3), sys.b_node(4),
                                     sys.b_standby_node(0)};
  // Mid-flight: transfers start at t=0 and need ~100ms+ of virtual time per
  // protocol run; the rotation lands inside that window.
  sys.schedule_reconfig_b(sys.make_b_spec(1, 1, roster), 40'000);
  ASSERT_TRUE(sys.run_to_completion());
  for (ServerRank r = 1; r <= 4; ++r) {
    EXPECT_EQ(sys.b_server(r).config_epoch(), 1u);
    expect_results_correct(sys, ts, r);
  }
  EXPECT_EQ(sys.b_standby_server(0).config_epoch(), 1u);
}

// Pure re-share (same roster, fresh shares): the proactive-refresh shape of
// the protocol. Old shares become useless, new ones decrypt the same key.
TEST(Reconfig, SameRosterReshare) {
  System sys(base_opts(44));
  std::vector<TransferId> ts = {sys.add_transfer(sys.config().params.g())};
  std::vector<net::NodeId> roster = {sys.b_node(1), sys.b_node(2), sys.b_node(3), sys.b_node(4)};
  sys.schedule_reconfig_b(sys.make_b_spec(1, 1, roster), 50'000);
  ASSERT_TRUE(sys.run_to_completion());
  for (ServerRank r = 1; r <= 4; ++r) {
    EXPECT_EQ(sys.b_server(r).config_epoch(), 1u);
    EXPECT_EQ(sys.b_server(r).rank(), r);
    expect_results_correct(sys, ts, r);
  }
}

// A dealer/proposer crash during the re-sharing round: the staggered backup
// proposer completes the install with the surviving quorum.
TEST(Reconfig, CrashDuringReshare) {
  System sys(base_opts(45));
  std::vector<TransferId> ts = {sys.add_transfer(sys.config().params.g())};
  std::vector<net::NodeId> roster = {sys.b_node(1), sys.b_node(2), sys.b_node(3), sys.b_node(4)};
  sys.schedule_reconfig_b(sys.make_b_spec(1, 1, roster), 50'000);
  // Rank 1 is the primary proposer; kill it just as the round starts. With
  // n=4, f=1 the survivors still hold quorums for deals (f+1=2) and echoes
  // (2f+1=3).
  sys.sim().crash_at(sys.b_node(1), 55'000);
  ASSERT_TRUE(sys.run_to_completion());
  for (ServerRank r = 2; r <= 4; ++r) {
    EXPECT_EQ(sys.b_server(r).config_epoch(), 1u);
    EXPECT_FALSE(sys.b_server(r).share_pending());
    expect_results_correct(sys, ts, r);
  }
}

// Satellite 2 regression: a server crashes in epoch 0, the install of epoch
// 1 happens without it, and it restarts AFTER the install. Its restored
// epoch-0 share is stale; it must rejoin via the wrong-epoch/pull recovery
// path, install the epoch-1 record, and complete a fresh sub-share set
// before serving again.
TEST(Reconfig, RestartAcrossInstallRejoins) {
  System sys(base_opts(46));
  std::vector<TransferId> ts = {sys.add_transfer(sys.config().params.g())};
  // A second wave of work arrives after the restart, so the laggard sees
  // epoch-1 traffic and is forced through catch-up.
  ts.push_back(sys.add_transfer_at(sys.config().params.g(), 2'500'000));
  std::vector<net::NodeId> roster = {sys.b_node(1), sys.b_node(2), sys.b_node(3), sys.b_node(4)};
  sys.schedule_reconfig_b(sys.make_b_spec(1, 1, roster), 100'000);
  sys.sim().crash_at(sys.b_node(4), 10'000);
  sys.sim().restart_at(sys.b_node(4), 2'000'000);
  ASSERT_TRUE(sys.run_to_completion());

  ProtocolServer& lazarus = sys.b_server(4);
  EXPECT_EQ(lazarus.config_epoch(), 1u);
  EXPECT_EQ(lazarus.rank(), 4u);
  EXPECT_FALSE(lazarus.share_pending());
  for (ServerRank r = 1; r <= 4; ++r) expect_results_correct(sys, ts, r);
}

// Stale-epoch rejection is typed and idempotent: metrics record at least
// one stale rejection when a laggard pushes epoch-0 traffic into epoch 1
// (covered by the restart scenario), and epochs only ever move forward.
TEST(Reconfig, EpochIsMonotonic) {
  System sys(base_opts(47));
  std::vector<TransferId> ts = {sys.add_transfer(sys.config().params.g())};
  std::vector<net::NodeId> roster = {sys.b_node(1), sys.b_node(2), sys.b_node(3), sys.b_node(4)};
  sys.schedule_reconfig_b(sys.make_b_spec(1, 1, roster), 50'000);
  ASSERT_TRUE(sys.run_to_completion());
  // Re-running the same epoch-1 spec is a no-op: the scheduled round checks
  // cfg_epoch_ < spec.epoch before proposing.
  for (ServerRank r = 1; r <= 4; ++r) {
    EXPECT_EQ(sys.b_server(r).config_epoch(), 1u);
  }
  expect_results_correct(sys, ts, 1);
}

}  // namespace
}  // namespace dblind::core
