#include "core/codec.hpp"

#include <gtest/gtest.h>

#include "core/messages.hpp"
#include "core/types.hpp"

namespace dblind::core {
namespace {

using mpz::Bigint;

TEST(Codec, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.str("hello");
  w.bigint(Bigint::from_hex("123456789abcdef0123"));
  w.bigint(Bigint::from_hex("-ff"));
  w.bigint(Bigint(0));
  std::array<std::uint8_t, 32> d{};
  d[0] = 1;
  d[31] = 2;
  w.digest(d);
  auto bytes = w.take();

  Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.bigint(), Bigint::from_hex("123456789abcdef0123"));
  EXPECT_EQ(r.bigint(), Bigint::from_hex("-ff"));
  EXPECT_EQ(r.bigint(), Bigint(0));
  EXPECT_EQ(r.digest(), d);
  EXPECT_TRUE(r.done());
}

TEST(Codec, ReaderBoundsChecked) {
  // Size goes through a volatile so GCC can't constant-fold it: with a
  // statically-known 2-byte buffer, GCC 12 emits a false -Warray-bounds on
  // digest()'s copy, which the bounds check makes unreachable (GCC PR105679).
  volatile std::size_t tiny_len = 2;
  std::vector<std::uint8_t> tiny(tiny_len, 1);
  Reader r(tiny);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_THROW((void)r.u32(), CodecError);
  Reader r2(tiny);
  EXPECT_THROW((void)r2.u64(), CodecError);
  Reader r3(tiny);
  EXPECT_THROW((void)r3.digest(), CodecError);
}

TEST(Codec, TruncatedBytesRejected) {
  Writer w;
  w.bytes(std::vector<std::uint8_t>(100, 7));
  auto buf = w.take();
  buf.resize(50);
  Reader r(buf);
  EXPECT_THROW((void)r.bytes(), CodecError);
}

TEST(Codec, BadBigintSignRejected) {
  std::vector<std::uint8_t> buf = {2 /*bad sign*/, 1, 0, 0, 0, 42};
  Reader r(buf);
  EXPECT_THROW((void)r.bigint(), CodecError);
}

TEST(Codec, ExpectDoneCatchesTrailing) {
  std::vector<std::uint8_t> buf = {1, 2, 3};
  Reader r(buf);
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), CodecError);
  (void)r.u8();
  (void)r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Codec, InstanceIdRoundTrip) {
  InstanceId id{7, 3, 2};
  Writer w;
  id.encode(w);
  auto bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(InstanceId::decode(r), id);
  EXPECT_EQ(id.str(), "t7/c3/e2");
}

TEST(Codec, MessageBodiesRoundTrip) {
  InstanceId id{1, 2, 0};

  CommitMsg commit;
  commit.id = id;
  commit.server = 5;
  commit.commitment.fill(0x42);
  auto body = encode_body(MsgType::kCommit, commit);
  EXPECT_EQ(peek_type(body), MsgType::kCommit);
  CommitMsg back = decode_as<CommitMsg>(MsgType::kCommit, body);
  EXPECT_EQ(back.id, id);
  EXPECT_EQ(back.server, 5u);
  EXPECT_EQ(back.commitment, commit.commitment);
}

TEST(Codec, DecodeAsRejectsWrongTag) {
  InitMsg init{{1, 1, 0}};
  auto body = encode_body(MsgType::kInit, init);
  EXPECT_THROW((void)decode_as<CommitMsg>(MsgType::kCommit, body), CodecError);
}

TEST(Codec, DecodeAsRejectsTrailingGarbage) {
  InitMsg init{{1, 1, 0}};
  auto body = encode_body(MsgType::kInit, init);
  body.push_back(0x00);
  EXPECT_THROW((void)decode_as<InitMsg>(MsgType::kInit, body), CodecError);
}

TEST(Codec, ContributionDigestIsCanonical) {
  group::GroupParams gp = group::GroupParams::named(group::ParamId::kToy64);
  mpz::Prng prng(1);
  elgamal::KeyPair ka = elgamal::KeyPair::generate(gp, prng);
  Contribution c;
  c.ea = ka.public_key().encrypt(gp.random_element(prng), prng);
  c.eb = ka.public_key().encrypt(gp.random_element(prng), prng);
  EXPECT_EQ(c.commitment_digest(), c.commitment_digest());
  Contribution c2 = c;
  c2.eb.b = gp.mul(c2.eb.b, gp.g());
  EXPECT_NE(c.commitment_digest(), c2.commitment_digest());
}

TEST(Codec, SignedMessageRoundTrip) {
  SignedMessage env;
  env.service = 1;
  env.signer = 3;
  env.body = {9, 8, 7};
  env.sig = {Bigint(123), Bigint(456)};
  Writer w;
  env.encode(w);
  auto bytes = w.take();
  Reader r(bytes);
  SignedMessage back = SignedMessage::decode(r);
  r.expect_done();
  EXPECT_EQ(back, env);
}

TEST(Codec, NestedEvidenceRoundTrip) {
  // Reveal containing commits containing digests: three levels of nesting.
  InstanceId id{9, 1, 0};
  RevealMsg reveal;
  reveal.id = id;
  for (std::uint32_t i = 1; i <= 3; ++i) {
    CommitMsg c;
    c.id = id;
    c.server = i;
    c.commitment.fill(static_cast<std::uint8_t>(i));
    SignedMessage env;
    env.service = 1;
    env.signer = i;
    env.body = encode_body(MsgType::kCommit, c);
    env.sig = {Bigint(std::uint64_t{i}), Bigint(std::uint64_t{i} + 1)};
    reveal.commits.push_back(env);
  }
  auto body = encode_body(MsgType::kReveal, reveal);
  RevealMsg back = decode_as<RevealMsg>(MsgType::kReveal, body);
  ASSERT_EQ(back.commits.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    CommitMsg c = decode_as<CommitMsg>(MsgType::kCommit, back.commits[i].body);
    EXPECT_EQ(c.server, i + 1);
  }
}

TEST(Codec, EmptyInputPeekThrows) {
  EXPECT_THROW((void)peek_type({}), CodecError);
}

TEST(Codec, ReconfigMessagesRoundTrip) {
  ReconfigSpec spec;
  spec.service = 1;
  spec.epoch = 3;
  spec.n = 5;
  spec.f = 1;
  for (std::uint32_t j = 1; j <= 5; ++j) {
    spec.roster.push_back({10 + j, Bigint(std::uint64_t{j} * 111)});
  }

  {
    ReconfigStartMsg start{spec};
    auto body = encode_body(MsgType::kReconfigStart, start);
    EXPECT_EQ(peek_type(body), MsgType::kReconfigStart);
    auto back = decode_as<ReconfigStartMsg>(MsgType::kReconfigStart, body);
    EXPECT_EQ(back.spec, spec);
  }
  {
    ReshareDealMsg deal;
    deal.service = 1;
    deal.epoch = 3;
    deal.dealer = 2;
    deal.enc.coefficients = {Bigint(11), Bigint(22)};
    deal.sign.coefficients = {Bigint(33), Bigint(44)};
    auto body = encode_body(MsgType::kReshareDeal, deal);
    auto back = decode_as<ReshareDealMsg>(MsgType::kReshareDeal, body);
    EXPECT_EQ(back.dealer, 2u);
    EXPECT_EQ(back.enc, deal.enc);
    EXPECT_EQ(back.sign, deal.sign);
  }
  {
    ReshareSubshareMsg sub;
    sub.service = 1;
    sub.epoch = 3;
    sub.dealer = 2;
    sub.target_rank = 4;
    sub.enc_sub = Bigint::from_hex("deadbeef");
    sub.sign_sub = Bigint::from_hex("-cafe");
    auto body = encode_body(MsgType::kReshareSubshare, sub);
    auto back = decode_as<ReshareSubshareMsg>(MsgType::kReshareSubshare, body);
    EXPECT_EQ(back.target_rank, 4u);
    EXPECT_EQ(back.enc_sub, sub.enc_sub);
    EXPECT_EQ(back.sign_sub, sub.sign_sub);
  }
  {
    ReconfigApplyMsg apply;
    apply.spec = spec;
    SignedMessage deal_env;
    deal_env.service = 1;
    deal_env.signer = 2;
    deal_env.body = {1, 2, 3};
    deal_env.sig = {Bigint(5), Bigint(6)};
    apply.deals.push_back(deal_env);
    apply.transfers = {7, 9};
    auto body = encode_body(MsgType::kReconfigApply, apply);
    auto back = decode_as<ReconfigApplyMsg>(MsgType::kReconfigApply, body);
    EXPECT_EQ(back.spec, spec);
    ASSERT_EQ(back.deals.size(), 1u);
    EXPECT_EQ(back.deals[0], deal_env);
    EXPECT_EQ(back.transfers, apply.transfers);
  }
  {
    ReconfigEchoMsg echo;
    echo.service = 1;
    echo.epoch = 3;
    echo.digest.fill(0x5A);
    auto body = encode_body(MsgType::kReconfigEcho, echo);
    auto back = decode_as<ReconfigEchoMsg>(MsgType::kReconfigEcho, body);
    EXPECT_EQ(back.epoch, 3u);
    EXPECT_EQ(back.digest, echo.digest);
  }
  {
    WrongEpochMsg we;
    we.service = 0;
    we.epoch = 9;
    auto body = encode_body(MsgType::kWrongEpoch, we);
    auto back = decode_as<WrongEpochMsg>(MsgType::kWrongEpoch, body);
    EXPECT_EQ(back.epoch, 9u);
  }
  {
    ReconfigPullMsg pull;
    pull.epoch = 2;
    auto body = encode_body(MsgType::kReconfigPull, pull);
    auto back = decode_as<ReconfigPullMsg>(MsgType::kReconfigPull, body);
    EXPECT_EQ(back.epoch, 2u);
  }
  {
    ReconfigStateMsg state;
    state.apply.service = 1;
    state.apply.signer = 0;
    state.apply.body = {4, 5};
    state.apply.sig = {Bigint(1), Bigint(2)};
    for (std::uint32_t i = 0; i < 3; ++i) {
      SignedMessage e;
      e.service = 1;
      e.signer = i;
      e.body = {static_cast<std::uint8_t>(i)};
      e.sig = {Bigint(std::uint64_t{i}), Bigint(std::uint64_t{i} + 1)};
      state.echoes.push_back(e);
    }
    auto body = encode_body(MsgType::kReconfigState, state);
    auto back = decode_as<ReconfigStateMsg>(MsgType::kReconfigState, body);
    EXPECT_EQ(back.apply, state.apply);
    EXPECT_EQ(back.echoes, state.echoes);
  }
  {
    SubsharePullMsg pull;
    pull.service = 1;
    pull.epoch = 3;
    pull.my_new_rank = 5;
    auto body = encode_body(MsgType::kSubsharePull, pull);
    auto back = decode_as<SubsharePullMsg>(MsgType::kSubsharePull, body);
    EXPECT_EQ(back.my_new_rank, 5u);
  }
}

}  // namespace
}  // namespace dblind::core
