// ContributionPool concurrency semantics (PR 6): the pool is internally
// synchronized in preparation for the concurrent multi-transfer engine
// (background refill thread racing per-transfer drains). These tests pin
// the two properties the VDE witness-secrecy argument rests on, under real
// thread interleavings (run them under the tsan preset for the data-race
// proof):
//   * single-use: a pushed bundle is observed by at most one take(), ever;
//   * bounded: concurrent pushes never overshoot capacity (the
//     check-and-insert is one critical section, not a full() pre-check).
//
// Bundles here are synthetic (id-only): make_contribution_bundle's crypto
// is covered by pool_protocol_test; this file targets the container.
#include "core/contribution_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace dblind::core {
namespace {

ContributionBundle bundle_with_id(std::uint64_t id) {
  ContributionBundle b;
  b.id = id;
  return b;
}

TEST(ContributionPool, SingleUseUnderConcurrentTake) {
  constexpr std::size_t kBundles = 64;
  ContributionPool pool(kBundles);
  for (std::uint64_t i = 0; i < kBundles; ++i) pool.push(bundle_with_id(i));
  ASSERT_TRUE(pool.full());

  constexpr int kThreads = 8;
  std::mutex taken_mu;
  std::vector<std::uint64_t> taken;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        auto b = pool.take();
        if (!b) return;  // drained
        std::lock_guard<std::mutex> lock(taken_mu);
        taken.push_back(b->id);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every bundle came out exactly once: no duplicates, no losses.
  std::set<std::uint64_t> unique(taken.begin(), taken.end());
  EXPECT_EQ(taken.size(), kBundles);
  EXPECT_EQ(unique.size(), kBundles);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.take().has_value());
}

TEST(ContributionPool, CapacityHoldsUnderConcurrentPush) {
  constexpr std::size_t kCapacity = 32;
  ContributionPool pool(kCapacity);
  constexpr int kThreads = 8;
  constexpr int kPushesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPushesPerThread; ++i) {
        pool.push(bundle_with_id(static_cast<std::uint64_t>(t) * kPushesPerThread + i));
        // The bound must hold at every instant, not just at the end.
        EXPECT_LE(pool.size(), kCapacity);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(pool.size(), kCapacity);
  EXPECT_TRUE(pool.full());
}

TEST(ContributionPool, ConcurrentPushTakeClearStaysConsistent) {
  constexpr std::size_t kCapacity = 16;
  ContributionPool pool(kCapacity);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> next_id{0};

  std::thread producer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      pool.push(bundle_with_id(next_id.fetch_add(1, std::memory_order_relaxed)));
    }
  });
  std::thread consumer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)pool.take();
    }
  });
  std::thread clearer([&] {
    for (int i = 0; i < 100; ++i) {
      pool.clear();  // crash/restore path racing live traffic
      EXPECT_LE(pool.size(), kCapacity);
    }
    stop.store(true, std::memory_order_relaxed);
  });
  producer.join();
  consumer.join();
  clearer.join();
  EXPECT_LE(pool.size(), kCapacity);
  pool.clear();
  EXPECT_EQ(pool.size(), 0u);
}

// Epoch-boundary invalidation (PR 7): the install cascade calls clear() so
// bundles precomputed under the dying configuration are unreachable in the
// new epoch — a pooled (ρ, nonce) pair from epoch e must never surface as a
// contribution under epoch e+1. The pool itself stays usable: the new
// epoch's refills start from an empty deque at full capacity.
TEST(ContributionPool, ClearMakesOldEpochBundlesUnreachable) {
  ContributionPool pool(4);
  for (std::uint64_t i = 0; i < 4; ++i) pool.push(bundle_with_id(i));
  ASSERT_TRUE(pool.full());

  pool.clear();  // the epoch boundary
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_FALSE(pool.take().has_value()) << "a stale bundle survived the epoch boundary";

  // The new epoch refills with fresh (higher-id) bundles; only those come
  // back out, in FIFO order, and capacity still binds.
  for (std::uint64_t i = 100; i < 106; ++i) pool.push(bundle_with_id(i));
  EXPECT_EQ(pool.size(), 4u);
  for (std::uint64_t i = 100; i < 104; ++i) {
    auto b = pool.take();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->id, i);
  }
  EXPECT_FALSE(pool.take().has_value());
}

TEST(ContributionPool, TakeMovesBundleOut) {
  ContributionPool pool(4);
  pool.push(bundle_with_id(7));
  auto b = pool.take();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->id, 7u);
  // Moved out, not copied: the slot is gone from the pool.
  EXPECT_EQ(pool.size(), 0u);
}

}  // namespace
}  // namespace dblind::core
