// TransferEngine scheduler semantics: FIFO admission under a finite cap, the
// no-starvation property under adversarial arrival orders, epoch-abort
// priority preservation, and thread-safety of the sharded records (the
// concurrent sections are the TSan targets).
#include "core/transfer_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

namespace dblind::core {
namespace {

using Admission = TransferEngine::Admission;

TEST(TransferEngine, UnlimitedCapAdmitsImmediately) {
  TransferEngine eng({.max_inflight = 0, .shards = 4});
  for (TransferId t = 1; t <= 32; ++t) {
    auto r = eng.request_start(t);
    EXPECT_EQ(r.decision, Admission::kAdmitted);
    ASSERT_EQ(r.admitted.size(), 1u);
    EXPECT_EQ(r.admitted[0], t);
  }
  EXPECT_EQ(eng.inflight(), 32u);
  EXPECT_EQ(eng.queued(), 0u);
}

TEST(TransferEngine, CapQueuesAndAdmitsFifo) {
  TransferEngine eng({.max_inflight = 2, .shards = 4});
  EXPECT_EQ(eng.request_start(1).decision, Admission::kAdmitted);
  EXPECT_EQ(eng.request_start(2).decision, Admission::kAdmitted);
  EXPECT_EQ(eng.request_start(3).decision, Admission::kQueued);
  EXPECT_EQ(eng.request_start(4).decision, Admission::kQueued);
  EXPECT_EQ(eng.inflight(), 2u);
  EXPECT_EQ(eng.queued(), 2u);
  EXPECT_EQ(eng.phase(3), TransferPhase::kQueued);

  // Completions admit strictly in queue order.
  auto a = eng.complete(1);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 3u);
  a = eng.complete(2);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 4u);
  EXPECT_EQ(eng.phase(1), TransferPhase::kDone);
  EXPECT_EQ(eng.phase(4), TransferPhase::kActive);
}

TEST(TransferEngine, DuplicateAndDoneDecisions) {
  TransferEngine eng({.max_inflight = 1, .shards = 1});
  EXPECT_EQ(eng.request_start(7).decision, Admission::kAdmitted);
  // A backup-coordinator timer re-fires: duplicate request, no double slot.
  EXPECT_EQ(eng.request_start(7).decision, Admission::kAlreadyActive);
  EXPECT_EQ(eng.inflight(), 1u);
  auto a = eng.complete(7);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(eng.request_start(7).decision, Admission::kDone);
  EXPECT_EQ(eng.inflight(), 0u);
}

TEST(TransferEngine, CompleteOnQueuedRemovesFromQueue) {
  TransferEngine eng({.max_inflight = 1, .shards = 2});
  (void)eng.request_start(1);
  (void)eng.request_start(2);  // queued
  EXPECT_EQ(eng.queued(), 1u);
  // A result learned via a pull completes the queued transfer: it must not
  // be admitted later.
  auto a = eng.complete(2);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(eng.queued(), 0u);
  EXPECT_EQ(eng.phase(2), TransferPhase::kDone);
  a = eng.complete(1);
  EXPECT_TRUE(a.empty());
}

TEST(TransferEngine, CompleteUnknownTransferIsSafe) {
  TransferEngine eng({.max_inflight = 2, .shards = 2});
  // Results can arrive for transfers the engine never admitted (result pulls
  // on a restarted server).
  auto a = eng.complete(99);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(eng.phase(99), TransferPhase::kDone);
  EXPECT_EQ(eng.request_start(99).decision, Admission::kDone);
}

TEST(TransferEngine, AbortInflightDemotesToQueueHead) {
  TransferEngine eng({.max_inflight = 2, .shards = 4});
  (void)eng.request_start(10);
  (void)eng.request_start(11);
  (void)eng.request_start(12);  // queued
  (void)eng.request_start(13);  // queued

  auto aborted = eng.abort_inflight();
  std::sort(aborted.begin(), aborted.end());
  EXPECT_EQ(aborted, (std::vector<TransferId>{10, 11}));
  EXPECT_EQ(eng.inflight(), 0u);
  // Demoted actives keep their priority: they re-admit BEFORE the transfers
  // that were still queued at the abort.
  EXPECT_EQ(eng.queued(), 4u);
  auto readmitted = eng.fill_slots();
  std::sort(readmitted.begin(), readmitted.end());
  EXPECT_EQ(readmitted, (std::vector<TransferId>{10, 11}));
  EXPECT_EQ(eng.phase(12), TransferPhase::kQueued);
}

TEST(TransferEngine, AbortLeavesQueuedAndDoneUntouched) {
  TransferEngine eng({.max_inflight = 1, .shards = 2});
  (void)eng.request_start(1);
  (void)eng.request_start(2);  // queued
  (void)eng.complete(3);       // done (learned via pull)
  auto aborted = eng.abort_inflight();
  EXPECT_EQ(aborted, (std::vector<TransferId>{1}));
  EXPECT_EQ(eng.phase(2), TransferPhase::kQueued);
  EXPECT_EQ(eng.phase(3), TransferPhase::kDone);
}

TEST(TransferEngine, ResetClearsSchedulingState) {
  TransferEngine eng({.max_inflight = 1, .shards = 2});
  (void)eng.request_start(1);
  (void)eng.request_start(2);
  eng.reset();
  EXPECT_EQ(eng.inflight(), 0u);
  EXPECT_EQ(eng.queued(), 0u);
  EXPECT_EQ(eng.phase(1), TransferPhase::kRegistered);
  // Re-fed after a crash: everything admits again from scratch.
  EXPECT_EQ(eng.request_start(2).decision, Admission::kAdmitted);
}

// No-starvation property: under ANY arrival order and ANY interleaving of
// completions, the sub-sequence of admissions that came from the queue equals
// the queue-entry order, and every transfer is eventually admitted exactly
// once. FIFO admission is the guarantee the scheduler documents; this drives
// it with adversarial (seeded-random) schedules.
TEST(TransferEngine, NoStarvationUnderAdversarialArrivalOrders) {
  for (std::uint64_t seed : {1ull, 7ull, 1337ull, 99991ull}) {
    std::mt19937_64 rng(seed);
    const std::size_t cap = 1 + rng() % 3;  // 1..3 slots
    const std::size_t n = 40;
    TransferEngine eng({.max_inflight = cap, .shards = 4});

    std::vector<TransferId> arrivals(n);
    for (std::size_t i = 0; i < n; ++i) arrivals[i] = i + 1;
    std::shuffle(arrivals.begin(), arrivals.end(), rng);

    std::vector<TransferId> queue_order;   // order transfers entered the queue
    std::vector<TransferId> queue_admits;  // admissions that came FROM the queue
    std::vector<TransferId> active;        // currently admitted, not completed
    std::size_t next_arrival = 0;
    std::size_t admitted_count = 0;

    while (admitted_count < n || !active.empty()) {
      const bool can_arrive = next_arrival < arrivals.size();
      const bool do_arrive = can_arrive && (active.empty() || rng() % 2 == 0);
      if (do_arrive) {
        TransferId t = arrivals[next_arrival++];
        auto r = eng.request_start(t);
        if (r.decision == TransferEngine::Admission::kQueued) queue_order.push_back(t);
        for (TransferId a : r.admitted) {
          if (a != t) queue_admits.push_back(a);  // admitted via a freed slot
          active.push_back(a);
          ++admitted_count;
        }
      } else {
        // Complete a random active transfer (adversarial completion order).
        std::size_t i = rng() % active.size();
        TransferId done = active[i];
        active.erase(active.begin() + i);
        for (TransferId a : eng.complete(done)) {
          queue_admits.push_back(a);
          active.push_back(a);
          ++admitted_count;
        }
      }
    }

    EXPECT_EQ(admitted_count, n) << "seed " << seed;
    EXPECT_EQ(eng.inflight(), 0u);
    EXPECT_EQ(eng.queued(), 0u);
    // Every transfer that ever waited was admitted in exactly its wait order.
    EXPECT_EQ(queue_admits, queue_order) << "seed " << seed;
    EXPECT_EQ(eng.admitted_total(), n) << "seed " << seed;
  }
}

// Concurrent hammering from several threads: decisions stay consistent (no
// transfer admitted twice, slot accounting balanced). Run under TSan by the
// tsan CI job.
TEST(TransferEngine, ConcurrentRequestsAreConsistent) {
  TransferEngine eng({.max_inflight = 4, .shards = 8});
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 64;
  std::vector<std::vector<TransferId>> admitted(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&eng, &admitted, w] {
      std::vector<TransferId> todo;
      for (std::size_t i = 0; i < kPerThread; ++i)
        todo.push_back(static_cast<TransferId>(w * kPerThread + i + 1));
      std::size_t next = 0;
      std::vector<TransferId> mine;
      while (next < todo.size() || !mine.empty()) {
        if (next < todo.size()) {
          for (TransferId a : eng.request_start(todo[next++]).admitted) {
            admitted[w].push_back(a);
            mine.push_back(a);
          }
        }
        if (!mine.empty()) {
          TransferId done = mine.back();
          mine.pop_back();
          for (TransferId a : eng.complete(done)) {
            admitted[w].push_back(a);
            mine.push_back(a);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Drain anything still queued (a slot freed by thread X may have admitted
  // work that thread X then completed; stragglers stay queued).
  for (TransferId a : eng.fill_slots()) admitted[0].push_back(a);
  std::vector<TransferId> all;
  for (auto& v : admitted) all.insert(all.end(), v.begin(), v.end());
  while (eng.inflight() > 0) {
    // Complete whatever is active so queued transfers drain.
    bool progressed = false;
    for (TransferId t : all) {
      if (eng.phase(t) == TransferPhase::kActive) {
        for (TransferId a : eng.complete(t)) all.push_back(a);
        progressed = true;
      }
    }
    ASSERT_TRUE(progressed);
  }
  std::sort(all.begin(), all.end());
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end())
      << "a transfer was admitted twice";
  EXPECT_EQ(all.size(), kThreads * kPerThread);
  EXPECT_EQ(eng.admitted_total(), kThreads * kPerThread);
}

}  // namespace
}  // namespace dblind::core
