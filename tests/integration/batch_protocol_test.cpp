// Batch-on vs batch-off protocol equivalence (PR 3 acceptance criterion).
//
// The verification fast path (ProtocolOptions::batch_verify, verify_workers)
// must be *observationally* equivalent to serial verification: across a seed
// sweep and a panel of Byzantine behaviors, the same runs complete, the same
// (transfer, rank) pairs end up holding results, every held result decrypts
// to the published plaintext, and no attack succeeds in either mode. Result
// ciphertexts themselves may differ bit-for-bit (batch verification draws
// randomizers from the server Prng, shifting later nonce values) — what must
// match is every accept/reject decision.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace dblind::core {
namespace {

using mpz::Bigint;
using Behavior = ProtocolServer::Behavior;

struct RunOutcome {
  bool completed = false;
  // has-result flag per transfer (outer) per B rank 1..4 (inner).
  std::vector<std::vector<bool>> holds;
  int attack_successes = 0;
};

struct Scenario {
  const char* name;
  Behavior b1 = Behavior::kHonest;  // behavior of B rank 1 (coordinator)
  Behavior b3 = Behavior::kHonest;  // behavior of a B backup / contributor
};

constexpr Scenario kScenarios[] = {
    {.name = "honest"},
    {.name = "inconsistent_contribution", .b3 = Behavior::kInconsistentContribution},
    {.name = "withhold_contribution", .b3 = Behavior::kWithholdContribution},
    {.name = "bogus_blind_coordinator", .b1 = Behavior::kBogusBlindCoordinator},
    {.name = "adaptive_cancel", .b1 = Behavior::kAdaptiveCancelCoordinator},
};

RunOutcome run_once(const Scenario& sc, std::uint64_t seed, bool batch,
                    std::size_t workers) {
  SystemOptions o;
  o.seed = 31000 + seed;
  o.a = {4, 1};
  o.b = {4, 1};
  o.protocol.batch_verify = batch;
  o.protocol.verify_workers = workers;
  o.b_behaviors.assign(4, Behavior::kHonest);
  o.b_behaviors[0] = sc.b1;
  o.b_behaviors[2] = sc.b3;
  System sys(std::move(o));

  std::vector<TransferId> transfers;
  transfers.push_back(sys.add_transfer(sys.config().params.encode_message(Bigint(500 + seed))));
  transfers.push_back(sys.add_transfer(sys.config().params.encode_message(Bigint(900 + seed))));

  RunOutcome out;
  out.completed = sys.run_to_completion();
  for (TransferId t : transfers) {
    std::vector<bool> row;
    for (ServerRank r = 1; r <= 4; ++r) {
      auto res = sys.result(t, r);
      row.push_back(res.has_value());
      if (res) {
        // Anything accepted must still be the right plaintext.
        EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t))
            << sc.name << " seed=" << seed << " batch=" << batch << " rank=" << r;
      }
    }
    out.holds.push_back(std::move(row));
  }
  for (ServerRank r = 1; r <= 4; ++r) {
    out.attack_successes += sys.a_server(r).attack_successes();
    out.attack_successes += sys.b_server(r).attack_successes();
  }
  return out;
}

class BatchEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BatchEquivalence, SameAcceptRejectDecisionsAsSerial) {
  const auto [scenario_index, seed] = GetParam();
  const Scenario& sc = kScenarios[scenario_index];

  RunOutcome serial = run_once(sc, seed, /*batch=*/false, /*workers=*/0);
  RunOutcome batched = run_once(sc, seed, /*batch=*/true, /*workers=*/0);
  RunOutcome pooled = run_once(sc, seed, /*batch=*/true, /*workers=*/2);

  EXPECT_EQ(serial.attack_successes, 0) << sc.name;
  EXPECT_EQ(batched.attack_successes, 0) << sc.name;
  EXPECT_EQ(pooled.attack_successes, 0) << sc.name;

  EXPECT_EQ(batched.completed, serial.completed) << sc.name << " seed=" << seed;
  EXPECT_EQ(batched.holds, serial.holds) << sc.name << " seed=" << seed;
  EXPECT_EQ(pooled.completed, serial.completed) << sc.name << " seed=" << seed;
  EXPECT_EQ(pooled.holds, serial.holds) << sc.name << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchEquivalence,
    ::testing::Combine(::testing::Range(0, static_cast<int>(std::size(kScenarios))),
                       ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kScenarios[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dblind::core
