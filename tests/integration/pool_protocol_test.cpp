// Pool-on vs pool-off protocol equivalence (PR 5 acceptance criterion).
//
// The offline/online contribution pool (ProtocolOptions::contribution_pool)
// must be *byte-identical* to the on-demand path: contribution randomness
// comes from the same dedicated offline prng fork in both modes and bundles
// are consumed in FIFO order, so the same seed must produce the same wire
// messages, the same accept/reject decisions, and bit-for-bit the same
// result ciphertexts — with or without a pool, warm or cold. On top of the
// equivalence panel (reusing the PR 3 Byzantine scenarios), this suite pins
// the exhaustion fallback under burst load and crash/restore semantics (a
// restored server drops its pooled secrets and regenerates; no bundle id is
// ever consumed twice).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dblind::core {
namespace {

using mpz::Bigint;
using Behavior = ProtocolServer::Behavior;

struct RunOutcome {
  bool completed = false;
  // Result (or nullopt) per transfer (outer) per B rank 1..4 (inner).
  std::vector<std::vector<std::optional<elgamal::Ciphertext>>> results;
  int attack_successes = 0;
};

struct Scenario {
  const char* name;
  Behavior b1 = Behavior::kHonest;  // behavior of B rank 1 (coordinator)
  Behavior b3 = Behavior::kHonest;  // behavior of a B backup / contributor
};

constexpr Scenario kScenarios[] = {
    {.name = "honest"},
    {.name = "inconsistent_contribution", .b3 = Behavior::kInconsistentContribution},
    {.name = "withhold_contribution", .b3 = Behavior::kWithholdContribution},
    {.name = "bogus_blind_coordinator", .b1 = Behavior::kBogusBlindCoordinator},
    {.name = "adaptive_cancel", .b1 = Behavior::kAdaptiveCancelCoordinator},
};

struct PoolMode {
  std::size_t capacity = 0;
  bool prefill = false;
};

RunOutcome run_once(const Scenario& sc, std::uint64_t seed, const PoolMode& pool,
                    obs::MetricsRegistry* metrics = nullptr,
                    obs::TraceRecorder* trace = nullptr) {
  SystemOptions o;
  o.seed = 52000 + seed;
  o.a = {4, 1};
  o.b = {4, 1};
  o.protocol.contribution_pool = pool.capacity;
  o.protocol.pool_prefill = pool.prefill;
  o.protocol.metrics = metrics;
  o.protocol.trace = trace;
  o.b_behaviors.assign(4, Behavior::kHonest);
  o.b_behaviors[0] = sc.b1;
  o.b_behaviors[2] = sc.b3;
  System sys(std::move(o));

  std::vector<TransferId> transfers;
  transfers.push_back(sys.add_transfer(sys.config().params.encode_message(Bigint(600 + seed))));
  transfers.push_back(sys.add_transfer(sys.config().params.encode_message(Bigint(800 + seed))));

  RunOutcome out;
  out.completed = sys.run_to_completion();
  for (TransferId t : transfers) {
    std::vector<std::optional<elgamal::Ciphertext>> row;
    for (ServerRank r = 1; r <= 4; ++r) {
      auto res = sys.result(t, r);
      if (res) {
        // Anything accepted must still be the right plaintext.
        EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t))
            << sc.name << " seed=" << seed << " pool=" << pool.capacity << " rank=" << r;
      }
      row.push_back(std::move(res));
    }
    out.results.push_back(std::move(row));
  }
  for (ServerRank r = 1; r <= 4; ++r) {
    out.attack_successes += sys.a_server(r).attack_successes();
    out.attack_successes += sys.b_server(r).attack_successes();
  }
  return out;
}

class PoolEquivalence : public ::testing::TestWithParam<std::tuple<int, int>> {};

// The core acceptance check: same seed, three pool configurations, and the
// result ciphertexts (not just the accept/reject decisions) must match
// bit-for-bit. This is strictly stronger than the PR 3 batch panel — the
// pool reorders WHEN work happens, never WHAT randomness it consumes.
TEST_P(PoolEquivalence, ByteIdenticalResultsWithAndWithoutPool) {
  const auto [scenario_index, seed] = GetParam();
  const Scenario& sc = kScenarios[scenario_index];

  RunOutcome off = run_once(sc, seed, {.capacity = 0});
  RunOutcome cold = run_once(sc, seed, {.capacity = 4, .prefill = false});
  RunOutcome warm = run_once(sc, seed, {.capacity = 4, .prefill = true});

  EXPECT_EQ(off.attack_successes, 0) << sc.name;
  EXPECT_EQ(cold.attack_successes, 0) << sc.name;
  EXPECT_EQ(warm.attack_successes, 0) << sc.name;

  EXPECT_EQ(cold.completed, off.completed) << sc.name << " seed=" << seed;
  EXPECT_EQ(warm.completed, off.completed) << sc.name << " seed=" << seed;
  EXPECT_EQ(cold.results, off.results) << sc.name << " seed=" << seed;
  EXPECT_EQ(warm.results, off.results) << sc.name << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PoolEquivalence,
    ::testing::Combine(::testing::Range(0, static_cast<int>(std::size(kScenarios))),
                       ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kScenarios[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// A capacity-1 pool against a burst of transfers: the refill timer cannot
// keep up, so the transparent fallback path must serve the overflow — and
// every request is still served (the pool is a cache, never a limiter).
TEST(PoolProtocol, ExhaustionFallsBackUnderBurst) {
  obs::MetricsRegistry reg;
  SystemOptions o;
  o.seed = 52777;
  o.a = {4, 1};
  o.b = {4, 1};
  o.protocol.contribution_pool = 1;
  o.protocol.pool_prefill = true;
  o.protocol.metrics = &reg;
  System sys(std::move(o));

  std::vector<TransferId> transfers;
  for (int i = 0; i < 4; ++i) {
    transfers.push_back(sys.add_transfer(sys.config().params.encode_message(Bigint(3000 + i))));
  }
  ASSERT_TRUE(sys.run_to_completion());
  for (TransferId t : transfers) {
    for (ServerRank r = 1; r <= 4; ++r) {
      auto res = sys.result(t, r);
      ASSERT_TRUE(res.has_value()) << "t=" << t << " rank=" << r;
      EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
    }
  }

  std::uint64_t drains = 0, fallbacks = 0, refills = 0;
  for (ServerRank r = 1; r <= 4; ++r) {
    const std::string node = std::to_string(sys.config().b.node_of(r));
    drains += reg.counter("dblind_pool_events_total", {{"node", node}, {"event", "drain"}})
                  .value();
    fallbacks +=
        reg.counter("dblind_pool_events_total", {{"node", node}, {"event", "fallback"}})
            .value();
    refills += reg.counter("dblind_pool_events_total", {{"node", node}, {"event", "refill"}})
                   .value();
  }
  EXPECT_GT(drains, 0u) << "prefilled bundles never drained";
  EXPECT_GT(fallbacks, 0u) << "burst never exhausted a capacity-1 pool";
  EXPECT_GT(refills, 0u) << "refill timer never fired";
}

// Crash/restore semantics: pooled bundles hold secrets and must die with the
// incarnation. After a B contributor restarts mid-run, the pool regenerates
// (fresh refills post-restart), the protocol still completes with correct
// results, and no bundle id is ever drained twice on any node.
TEST(PoolProtocol, CrashRestoreDropsAndRegeneratesPool) {
  obs::MemoryTraceRecorder trace;
  obs::MetricsRegistry reg;
  SystemOptions o;
  o.seed = 52911;
  o.a = {4, 1};
  o.b = {4, 1};
  o.protocol.contribution_pool = 2;
  o.protocol.pool_prefill = true;
  o.protocol.metrics = &reg;
  o.protocol.trace = &trace;
  System sys(std::move(o));

  const net::NodeId b2 = sys.config().b.node_of(2);
  sys.sim().crash_at(b2, 150'000);
  sys.sim().restart_at(b2, 600'000);

  TransferId t1 = sys.add_transfer(sys.config().params.encode_message(Bigint(4100)));
  TransferId t2 = sys.add_transfer(sys.config().params.encode_message(Bigint(4200)));
  ASSERT_TRUE(sys.run_to_completion());
  // run_to_completion may satisfy its predicate among the live servers before
  // the 600ms restart fires. Keep driving the simulator: b2 restarts (with a
  // regenerated pool), and — as a backup coordinator — re-runs the transfers
  // it missed, so every rank eventually holds both results.
  ASSERT_TRUE(sys.sim().run_until([&] {
    for (ServerRank r = 1; r <= 4; ++r) {
      for (TransferId t : {t1, t2}) {
        if (!sys.result(t, r)) return false;
      }
    }
    return true;
  }));
  for (TransferId t : {t1, t2}) {
    for (ServerRank r = 1; r <= 4; ++r) {
      auto res = sys.result(t, r);
      ASSERT_TRUE(res.has_value()) << "t=" << t << " rank=" << r;
      EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
    }
  }

  // Single-use across incarnations, and refill activity from the restarted
  // node after it came back (the regenerated pool).
  std::map<std::uint64_t, std::set<std::uint64_t>> drained;
  std::uint64_t restart_ts = 0;
  bool refill_after_restart = false;
  for (const obs::TraceEvent& e : trace.events()) {
    if (e.kind == obs::EventKind::kRestart && e.node == b2) restart_ts = e.ts;
    if (e.kind == obs::EventKind::kPoolDrain) {
      EXPECT_TRUE(drained[e.node].insert(e.peer).second)
          << "node " << e.node << " consumed bundle " << e.peer << " twice";
    }
    if (e.kind == obs::EventKind::kPoolRefill && e.node == b2 && restart_ts != 0 &&
        e.ts >= restart_ts) {
      refill_after_restart = true;
    }
  }
  EXPECT_GT(restart_ts, 0u) << "restart event missing from trace";
  EXPECT_TRUE(refill_after_restart) << "restarted node never regenerated its pool";
}

// The pool depth gauge ends the run consistent with the counter ledger:
// depth == prefill + refills - drains (fallback draws never touch the pool).
TEST(PoolProtocol, DepthGaugeMatchesEventLedger) {
  obs::MetricsRegistry reg;
  SystemOptions o;
  o.seed = 52333;
  o.a = {4, 1};
  o.b = {4, 1};
  o.protocol.contribution_pool = 3;
  o.protocol.pool_prefill = false;  // cold start: depth grows by refill only
  o.protocol.metrics = &reg;
  System sys(std::move(o));
  sys.add_transfer(sys.config().params.encode_message(Bigint(5100)));
  ASSERT_TRUE(sys.run_to_completion());

  for (ServerRank r = 1; r <= 4; ++r) {
    const std::string node = std::to_string(sys.config().b.node_of(r));
    const std::uint64_t depth = reg.gauge("dblind_pool_depth", {{"node", node}}).value();
    const std::uint64_t refills =
        reg.counter("dblind_pool_events_total", {{"node", node}, {"event", "refill"}}).value();
    const std::uint64_t drains =
        reg.counter("dblind_pool_events_total", {{"node", node}, {"event", "drain"}}).value();
    EXPECT_EQ(depth, refills - drains) << "rank " << r;
    EXPECT_LE(depth, 3u) << "rank " << r << ": gauge above capacity";
  }
}

// Pool equivalence must hold ACROSS an epochal rotation (PR 7): the install
// cascade clears the pool and re-forks the offline prng at the same point in
// every mode, so pool-on and pool-off runs of one seed stay byte-identical
// even when a reconfiguration lands mid-run and a second transfer executes
// entirely under the new configuration.
TEST(PoolProtocol, ByteIdenticalAcrossEpochRotation) {
  auto run = [](const PoolMode& pool) {
    SystemOptions o;
    o.seed = 53000;
    o.a = {4, 1};
    o.b = {4, 1};
    o.protocol.contribution_pool = pool.capacity;
    o.protocol.pool_prefill = pool.prefill;
    System sys(std::move(o));
    std::vector<TransferId> transfers;
    transfers.push_back(sys.add_transfer(sys.config().params.encode_message(Bigint(901))));
    transfers.push_back(
        sys.add_transfer_at(sys.config().params.encode_message(Bigint(902)), 400'000));
    std::vector<net::NodeId> roster = {sys.b_node(1), sys.b_node(2), sys.b_node(3),
                                       sys.b_node(4)};
    sys.schedule_reconfig_b(sys.make_b_spec(1, 1, roster), 60'000);

    RunOutcome out;
    out.completed = sys.run_to_completion();
    EXPECT_EQ(sys.b_server(1).config_epoch(), 1u)
        << "rotation never landed (pool=" << pool.capacity << ")";
    for (TransferId t : transfers) {
      std::vector<std::optional<elgamal::Ciphertext>> row;
      for (ServerRank r = 1; r <= 4; ++r) {
        auto res = sys.result(t, r);
        if (res) {
          EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t))
              << "pool=" << pool.capacity << " rank=" << r;
        }
        row.push_back(std::move(res));
      }
      out.results.push_back(std::move(row));
    }
    return out;
  };

  RunOutcome off = run({.capacity = 0});
  RunOutcome cold = run({.capacity = 4, .prefill = false});
  RunOutcome warm = run({.capacity = 4, .prefill = true});
  EXPECT_TRUE(off.completed);
  EXPECT_EQ(cold.completed, off.completed);
  EXPECT_EQ(warm.completed, off.completed);
  EXPECT_EQ(cold.results, off.results);
  EXPECT_EQ(warm.results, off.results);
}

}  // namespace
}  // namespace dblind::core
