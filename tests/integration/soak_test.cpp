// Soak tests: the full system under combined stress — many transfers,
// message duplication, mid-run crashes, and Byzantine servers at once.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace dblind::core {
namespace {

using mpz::Bigint;
using Behavior = ProtocolServer::Behavior;

TEST(Soak, ManyTransfersWithDuplicationAndCrash) {
  SystemOptions o;
  o.seed = 8001;
  o.a = {4, 1};
  o.b = {4, 1};
  System sys(std::move(o));
  sys.sim().set_duplication_percent(25);

  std::vector<TransferId> transfers;
  for (int i = 0; i < 8; ++i)
    transfers.push_back(sys.add_transfer(sys.config().params.encode_message(Bigint(7000 + i))));

  // One A server dies mid-run; one B server (a backup coordinator) too.
  sys.sim().crash_at(sys.config().a.node_of(4), 150'000);
  sys.sim().crash_at(sys.config().b.node_of(3), 250'000);

  ASSERT_TRUE(sys.run_to_completion());
  for (TransferId t : transfers) {
    for (ServerRank r : {1u, 2u, 4u}) {
      auto res = sys.result(t, r);
      ASSERT_TRUE(res.has_value()) << "t=" << t << " r=" << r;
      EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t)) << "t=" << t << " r=" << r;
    }
  }
}

TEST(Soak, ByzantinePlusCrashAtFullFaultBudget) {
  // f=2 per service: one Byzantine B server AND one crashed B server (2 = f
  // faults total at B); one crashed A server.
  SystemOptions o;
  o.seed = 8002;
  o.a = {7, 2};
  o.b = {7, 2};
  o.b_behaviors.assign(7, Behavior::kHonest);
  o.b_behaviors[0] = Behavior::kAdaptiveCancelCoordinator;  // designated coordinator hostile
  System sys(std::move(o));
  sys.sim().crash_at(sys.config().b.node_of(5), 0);
  sys.sim().crash_at(sys.config().a.node_of(2), 100'000);

  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(12321)));
  ASSERT_TRUE(sys.run_to_completion());
  EXPECT_EQ(sys.b_server(1).attack_successes(), 0);
  for (ServerRank r : {2u, 3u, 4u, 6u, 7u}) {
    auto res = sys.result(t, r);
    ASSERT_TRUE(res.has_value()) << r;
    EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t)) << r;
  }
}

TEST(Soak, TwoDifferentByzantineBehaviorsTogether) {
  SystemOptions o;
  o.seed = 8003;
  o.a = {7, 2};
  o.b = {7, 2};
  o.b_behaviors.assign(7, Behavior::kHonest);
  o.b_behaviors[2] = Behavior::kInconsistentContribution;
  o.b_behaviors[5] = Behavior::kWithholdPartial;
  System sys(std::move(o));
  sys.sim().set_duplication_percent(15);
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(555)));
  ASSERT_TRUE(sys.run_to_completion());
  auto res = sys.result(t, 1);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t));
}

TEST(Soak, StaggeredSecretsAndPrecompute) {
  // Transfers whose ciphertexts materialize at different times, with
  // contribution precomputation on and duplication enabled.
  SystemOptions o;
  o.seed = 8004;
  o.protocol.precompute_contributions = true;
  System sys(std::move(o));
  sys.sim().set_duplication_percent(20);
  std::vector<TransferId> transfers;
  for (int i = 0; i < 4; ++i) {
    transfers.push_back(sys.add_transfer_at(
        sys.config().params.encode_message(Bigint(100 + i)),
        static_cast<net::Time>(500'000) * static_cast<net::Time>(i + 1)));
  }
  ASSERT_TRUE(sys.run_to_completion());
  for (TransferId t : transfers) {
    auto res = sys.result(t);
    ASSERT_TRUE(res.has_value()) << t;
    EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t)) << t;
  }
}

TEST(Soak, MessageHistogramShapeIsSane) {
  SystemOptions o;
  o.seed = 8005;
  System sys(std::move(o));
  // 2, not 1: encode_message(1) is the mod-p identity, which add_transfer now
  // rejects as a degenerate plaintext on every backend.
  TransferId t = sys.add_transfer(sys.config().params.encode_message(Bigint(2)));
  ASSERT_TRUE(sys.run_to_completion());
  (void)t;
  auto hist = sys.rx_histogram();
  // Every protocol phase left a trace.
  for (MsgType type : {MsgType::kInit, MsgType::kCommit, MsgType::kReveal, MsgType::kContribute,
                       MsgType::kBlind, MsgType::kDone, MsgType::kSignRequest,
                       MsgType::kDecryptRequest, MsgType::kDecryptShareReply}) {
    EXPECT_GT(hist[type], 0u) << static_cast<int>(type);
  }
  // Commit messages outnumber contribute messages (2f+1 vs f+1 per round).
  EXPECT_GT(hist[MsgType::kCommit], hist[MsgType::kContribute]);
}

}  // namespace
}  // namespace dblind::core
