// The COMPLETE pipeline — publisher client, both services, subscriber
// retrieval — on real threads (one per node, plus the client).
#include <gtest/gtest.h>

#include "core/client.hpp"
#include "core/server.hpp"
#include "net/threaded_bus.hpp"
#include "tests/core/test_util.hpp"

namespace dblind::core {
namespace {

TEST(ThreadedClient, FullPipelineOnRealThreads) {
  auto ts = testing::TestSystem::make(0xabcd);
  mpz::Bigint m = ts.params.encode_message(mpz::Bigint(1618033988));

  ProtocolOptions opts;
  opts.coordinator_backup_delay = 300'000;
  opts.responder_backup_delay = 300'000;
  opts.signing_retry_delay = 500'000;

  net::ThreadedBus bus(0x1234);
  for (ServerRank r = 1; r <= 4; ++r)
    bus.add_node(std::make_unique<ProtocolServer>(ts.cfg, ts.a_secrets[r - 1], opts));
  for (ServerRank r = 1; r <= 4; ++r)
    bus.add_node(std::make_unique<ProtocolServer>(ts.cfg, ts.b_secrets[r - 1], opts));
  auto client = std::make_unique<ClientNode>(ts.cfg, 9000, m, /*poll_interval=*/20'000);
  ClientNode* handle = client.get();
  bus.add_node(std::move(client));

  bus.start();
  bool done = bus.run_until([&] { return handle->finished(); }, std::chrono::milliseconds(30000));
  bus.stop();
  ASSERT_TRUE(done) << "client pipeline did not finish on real threads";
  ASSERT_TRUE(handle->plaintext().has_value());
  EXPECT_EQ(*handle->plaintext(), m);
}

TEST(ThreadedClient, FullPipelineSurvivesLossyBus) {
  // Same pipeline, but the transport drops 12% of messages: only the
  // retransmission layer — server resend timers, idempotent cached replies,
  // client polling — can carry it to completion.
  // Wall-clock timers here are µs of real time, so retransmits fire fast.
  auto ts = testing::TestSystem::make(0xbeef);
  mpz::Bigint m = ts.params.encode_message(mpz::Bigint(2718281828));

  ProtocolOptions opts;
  opts.coordinator_backup_delay = 300'000;
  opts.responder_backup_delay = 300'000;
  opts.signing_retry_delay = 500'000;

  net::ThreadedBus bus(0x5678);
  net::FaultPlan plan;
  plan.drop_percent = 12;
  bus.set_fault_plan(plan);
  for (ServerRank r = 1; r <= 4; ++r)
    bus.add_node(std::make_unique<ProtocolServer>(ts.cfg, ts.a_secrets[r - 1], opts));
  for (ServerRank r = 1; r <= 4; ++r)
    bus.add_node(std::make_unique<ProtocolServer>(ts.cfg, ts.b_secrets[r - 1], opts));
  auto client = std::make_unique<ClientNode>(ts.cfg, 9001, m, /*poll_interval=*/20'000);
  ClientNode* handle = client.get();
  bus.add_node(std::move(client));

  bus.start();
  bool done = bus.run_until([&] { return handle->finished(); }, std::chrono::milliseconds(60000));
  bus.stop();
  ASSERT_TRUE(done) << "client pipeline did not finish on a lossy threaded bus";
  ASSERT_TRUE(handle->plaintext().has_value());
  EXPECT_EQ(*handle->plaintext(), m);
  EXPECT_GT(bus.stats().messages_dropped, 0u);
}

}  // namespace
}  // namespace dblind::core
