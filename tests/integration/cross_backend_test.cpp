// Cross-backend equivalence panel: the full Figure-4 protocol (honest and
// Byzantine) runs on the mod-p oracle AND the ristretto255 backend with the
// same seeds, and must produce identical *observable* results — success
// flags, decoded plaintexts, attack outcomes. Element values differ between
// backends by construction; everything the protocol promises must not.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/system.hpp"

namespace dblind::core {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using Behavior = ProtocolServer::Behavior;

struct PanelOutcome {
  bool completed = false;
  // Decoded plaintext per honest B rank (nullopt = no result for that rank).
  std::vector<std::optional<Bigint>> decoded;
  std::uint64_t attack_successes = 0;
};

// One scenario cell: run the protocol on `backend` with the given Byzantine
// cast and return what an external observer sees.
PanelOutcome run_cell(ParamId backend, std::uint64_t seed, const Bigint& message,
                      std::vector<Behavior> b_behaviors) {
  SystemOptions o;
  o.params = GroupParams::named(backend);
  o.seed = seed;
  if (!b_behaviors.empty()) o.b_behaviors = std::move(b_behaviors);
  System sys(std::move(o));
  TransferId t = sys.add_transfer(sys.config().params.encode_message(message));
  PanelOutcome out;
  out.completed = sys.run_to_completion();
  for (ServerRank r = 1; r <= sys.b_cfg().n; ++r) {
    if (!sys.is_honest_b(r)) {
      out.attack_successes += sys.b_server(r).attack_successes();
      continue;
    }
    auto res = sys.result(t, r);
    if (!res.has_value()) {
      out.decoded.emplace_back(std::nullopt);
      continue;
    }
    // Decrypt with the dealer oracle and strip the message embedding — this
    // is the backend-independent observable.
    out.decoded.emplace_back(
        sys.config().params.decode_message(sys.oracle_decrypt_b(*res)));
  }
  return out;
}

void expect_identical(const PanelOutcome& modp, const PanelOutcome& ec255,
                      const Bigint& message, const char* scenario) {
  EXPECT_EQ(modp.completed, ec255.completed) << scenario;
  EXPECT_EQ(modp.attack_successes, ec255.attack_successes) << scenario;
  ASSERT_EQ(modp.decoded.size(), ec255.decoded.size()) << scenario;
  for (std::size_t i = 0; i < modp.decoded.size(); ++i) {
    ASSERT_TRUE(modp.decoded[i].has_value()) << scenario << " modp rank " << i + 1;
    ASSERT_TRUE(ec255.decoded[i].has_value()) << scenario << " ec255 rank " << i + 1;
    EXPECT_EQ(*modp.decoded[i], message) << scenario << " modp rank " << i + 1;
    EXPECT_EQ(*ec255.decoded[i], message) << scenario << " ec255 rank " << i + 1;
  }
}

class CrossBackendPanel : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CrossBackendPanel, ::testing::Values(1u, 2u, 3u));

TEST_P(CrossBackendPanel, HonestRunsAgree) {
  const std::uint64_t seed = GetParam();
  Bigint m(424200 + seed);
  PanelOutcome modp = run_cell(ParamId::kToy64, seed, m, {});
  PanelOutcome ec255 = run_cell(ParamId::kEc255, seed, m, {});
  expect_identical(modp, ec255, m, "honest");
}

TEST_P(CrossBackendPanel, ByzantineContributionRunsAgree) {
  const std::uint64_t seed = GetParam();
  Bigint m(7700 + seed);
  std::vector<Behavior> cast{Behavior::kHonest, Behavior::kHonest,
                             Behavior::kInconsistentContribution, Behavior::kHonest};
  PanelOutcome modp = run_cell(ParamId::kToy64, seed, m, cast);
  PanelOutcome ec255 = run_cell(ParamId::kEc255, seed, m, cast);
  expect_identical(modp, ec255, m, "inconsistent-contribution");
  EXPECT_EQ(ec255.attack_successes, 0u);
}

TEST_P(CrossBackendPanel, ByzantineCoordinatorRunsAgree) {
  const std::uint64_t seed = GetParam();
  Bigint m(3100 + seed);
  std::vector<Behavior> cast{Behavior::kBogusBlindCoordinator, Behavior::kHonest,
                             Behavior::kHonest, Behavior::kHonest};
  PanelOutcome modp = run_cell(ParamId::kToy64, seed, m, cast);
  PanelOutcome ec255 = run_cell(ParamId::kEc255, seed, m, cast);
  expect_identical(modp, ec255, m, "bogus-blind-coordinator");
  EXPECT_EQ(ec255.attack_successes, 0u);
}

TEST(CrossBackend, DkgSetupCompletesOnEc) {
  // The joint-Feldman DKG exercises commitment products and identity checks
  // that previously assumed the mod-p identity literal.
  SystemOptions o;
  o.params = GroupParams::named(ParamId::kEc255);
  o.seed = 4;
  o.use_dkg = true;
  System sys(std::move(o));
  Bigint m(5150);
  TransferId t = sys.add_transfer(sys.config().params.encode_message(m));
  ASSERT_TRUE(sys.run_to_completion());
  auto res = sys.result(t, 1);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(sys.config().params.decode_message(sys.oracle_decrypt_b(*res)), m);
}

TEST(CrossBackend, ResultIsFreshCiphertextOnEc) {
  SystemOptions o;
  o.params = GroupParams::named(ParamId::kEc255);
  o.seed = 5;
  System sys(std::move(o));
  Bigint m(8086);
  Bigint elem = sys.config().params.encode_message(m);
  TransferId t = sys.add_transfer(elem);
  ASSERT_TRUE(sys.run_to_completion());
  auto res = sys.result(t, 1);
  ASSERT_TRUE(res.has_value());
  EXPECT_NE(res->a, elem);
  EXPECT_NE(res->b, elem);
  EXPECT_TRUE(sys.config().params.in_group(res->a));
  EXPECT_TRUE(sys.config().params.in_group(res->b));
  EXPECT_NE(sys.oracle_decrypt_a(*res), elem);  // bound to B, not A
}

}  // namespace
}  // namespace dblind::core
