// Concurrent multi-transfer equivalence panel (PR 8 acceptance criterion).
//
// With per-transfer keyed contribution streams (per_transfer_rng) and a
// fixed-delay network, the bytes of every transfer's result are a pure
// function of (seed, transfer id, contributor quorum): they must not depend
// on HOW MANY transfers were in flight around it, nor on which verification
// mode checked the proofs. The panel runs N open-loop transfers through the
// concurrent engine (unlimited slots, cross-transfer batch drain) and through
// a strictly sequential baseline (max_inflight_transfers = 1, serial inline
// verification) and demands byte-identical per-transfer ciphertexts on every
// honest B server — across >= 4 seeds and with a Byzantine contributor whose
// inconsistent contribution must be rejected identically in both schedules.
//
// The VerifyPool arrival-order regression rides along: tagged multi-transfer
// jobs that finish out of order must still be *applied* in submission order
// (the determinism contract the cross-transfer drain builds on), with the
// per-tag inflight accounting balanced. Run under TSan by the tsan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "core/system.hpp"
#include "core/verify_pool.hpp"
#include "obs/trace.hpp"

namespace dblind::core {
namespace {

using mpz::Bigint;
using Behavior = ProtocolServer::Behavior;

constexpr std::size_t kTransfers = 6;

struct RunOutcome {
  bool completed = false;
  // Per transfer: the result ciphertext held by each honest B rank.
  std::map<TransferId, std::vector<elgamal::Ciphertext>> results;
  int attack_successes = 0;
  std::uint64_t max_inflight_seen = 0;  // from engine_admit trace events
};

RunOutcome run_once(std::uint64_t seed, bool byzantine, std::size_t max_inflight,
                    bool batch, std::size_t workers) {
  obs::MemoryTraceRecorder trace;
  SystemOptions o;
  o.seed = 47000 + seed;
  o.a = {4, 1};
  o.b = {4, 1};
  // Fixed delay: message latencies carry no randomness, so the contributor
  // quorum of each instance is interleaving-independent (FIFO simulator).
  o.delay_min = 2'000;
  o.delay_max = 2'000;
  o.protocol.per_transfer_rng = true;
  o.protocol.max_inflight_transfers = max_inflight;
  o.protocol.batch_verify = batch;
  o.protocol.verify_workers = workers;
  o.protocol.trace = &trace;
  if (byzantine) {
    o.b_behaviors.assign(4, Behavior::kHonest);
    o.b_behaviors[2] = Behavior::kInconsistentContribution;
  }
  System sys(std::move(o));

  std::vector<TransferId> transfers;
  for (std::size_t i = 0; i < kTransfers; ++i) {
    Bigint m = sys.config().params.encode_message(Bigint(1000 + 17 * seed + i));
    // Arrivals 3ms apart with ~2ms per hop: every transfer overlaps several
    // neighbours unless the engine serializes them.
    transfers.push_back(sys.add_transfer_arriving(m, 1'000 + 3'000 * i));
  }

  RunOutcome out;
  out.completed = sys.run_to_completion();
  for (TransferId t : transfers) {
    std::vector<elgamal::Ciphertext> row;
    for (ServerRank r = 1; r <= 4; ++r) {
      if (byzantine && r == 3) continue;  // the Byzantine rank's view is unconstrained
      auto res = sys.result(t, r);
      if (res) {
        EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t))
            << "seed=" << seed << " transfer=" << t << " rank=" << r;
        row.push_back(*res);
      }
    }
    // Completion requires every honest roster member to hold the transfer.
    EXPECT_EQ(row.size(), byzantine ? 3u : 4u) << "seed=" << seed << " t=" << t;
    out.results.emplace(t, std::move(row));
  }
  for (ServerRank r = 1; r <= 4; ++r) {
    out.attack_successes += sys.a_server(r).attack_successes();
    out.attack_successes += sys.b_server(r).attack_successes();
  }
  for (const obs::TraceEvent& e : trace.events()) {
    if (e.kind == obs::EventKind::kEngineAdmit && e.count > out.max_inflight_seen)
      out.max_inflight_seen = e.count;
  }
  return out;
}

class ConcurrentEquivalence : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(ConcurrentEquivalence, InterleavedMatchesSequentialByteForByte) {
  const auto [seed, byzantine] = GetParam();

  // Concurrent: unlimited admission, worker pool + cross-transfer batch drain.
  RunOutcome conc = run_once(seed, byzantine, /*max_inflight=*/0, /*batch=*/true,
                             /*workers=*/2);
  // Sequential baseline: one transfer at a time, serial inline verification.
  RunOutcome seq = run_once(seed, byzantine, /*max_inflight=*/1, /*batch=*/false,
                            /*workers=*/0);

  ASSERT_TRUE(conc.completed) << "seed=" << seed;
  ASSERT_TRUE(seq.completed) << "seed=" << seed;
  EXPECT_EQ(conc.attack_successes, 0);
  EXPECT_EQ(seq.attack_successes, 0);

  // The runs must have actually differed in schedule: several transfers in
  // flight concurrently vs. never more than one.
  EXPECT_GE(conc.max_inflight_seen, 2u) << "seed=" << seed;
  EXPECT_LE(seq.max_inflight_seen, 1u) << "seed=" << seed;

  // Byte-for-byte identical per-transfer results, transfer by transfer.
  ASSERT_EQ(conc.results.size(), seq.results.size());
  for (const auto& [t, row] : conc.results) {
    auto it = seq.results.find(t);
    ASSERT_NE(it, seq.results.end()) << "transfer " << t;
    EXPECT_EQ(row, it->second) << "seed=" << seed << " transfer=" << t
                               << " byzantine=" << byzantine;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConcurrentEquivalence,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      return std::string(std::get<1>(info.param) ? "byzantine" : "honest") + "_seed" +
             std::to_string(std::get<0>(info.param));
    });

// Intermediate concurrency levels agree too: a capped engine (2 slots) with
// inline batch verification lands on the same bytes as both extremes.
TEST(ConcurrentEquivalence, CappedEngineAgreesWithExtremes) {
  RunOutcome capped = run_once(11, /*byzantine=*/false, /*max_inflight=*/2,
                               /*batch=*/true, /*workers=*/0);
  RunOutcome seq = run_once(11, /*byzantine=*/false, /*max_inflight=*/1,
                            /*batch=*/false, /*workers=*/0);
  ASSERT_TRUE(capped.completed);
  ASSERT_TRUE(seq.completed);
  EXPECT_EQ(capped.max_inflight_seen, 2u);
  EXPECT_EQ(capped.results, seq.results);
}

// --- VerifyPool arrival-order regression -------------------------------------------

// Multi-transfer jobs drain concurrently and finish out of order; the caller
// contract (wait per-job futures in submission order) must still apply
// results in strict arrival order, and the per-tag accounting must balance.
TEST(VerifyPoolConcurrent, ArrivalOrderApplicationAcrossTags) {
  constexpr std::size_t kJobs = 24;
  VerifyPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);

  std::vector<std::future<void>> done;
  std::vector<int> applied;
  std::atomic<std::uint32_t> completion_stamp{0};
  std::vector<std::uint32_t> completed_at(kJobs);

  for (std::size_t i = 0; i < kJobs; ++i) {
    auto task = std::make_shared<std::packaged_task<void()>>([i, &completed_at,
                                                              &completion_stamp] {
      // Within each 3-worker window the earlier-submitted job sleeps longer,
      // so completions invert submission order — the worst case for ordered
      // application.
      std::this_thread::sleep_for(std::chrono::microseconds(100 * (3 - i % 3)));
      completed_at[i] = completion_stamp.fetch_add(1) + 1;
    });
    done.push_back(task->get_future());
    const std::uint64_t transfer_tag = 1 + i % 4;  // 4 interleaved transfers
    pool.submit([task] { (*task)(); }, transfer_tag);
  }
  // Apply strictly in submission order, exactly like the server's drain.
  for (std::size_t i = 0; i < kJobs; ++i) {
    done[i].wait();
    applied.push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(applied[i], static_cast<int>(i));
  // Sanity: completion really was out of order somewhere (an inversion
  // exists), or the ordered-application property was tested vacuously.
  bool inverted = false;
  for (std::size_t i = 0; i + 1 < kJobs; ++i)
    inverted = inverted || completed_at[i] > completed_at[i + 1];
  EXPECT_TRUE(inverted);
  // All tags drain: accounting balances even though completion raced. The
  // future is satisfied inside the job, just before the worker's bookkeeping
  // step, so give the counters a bounded moment to settle.
  for (int spin = 0; pool.pending() != 0 && spin < 10'000; ++spin)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  for (std::uint64_t tag = 1; tag <= 4; ++tag) EXPECT_EQ(pool.inflight(tag), 0u);
  EXPECT_EQ(pool.pending(), 0u);
}

// inflight(tag) tracks submitted-but-unfinished jobs per tag while a slow job
// blocks its transfer; other tags drain independently.
TEST(VerifyPoolConcurrent, PerTagInflightAccounting) {
  VerifyPool pool(1);  // single worker: deterministic start order
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  pool.submit([gate] { gate.wait(); }, /*tag=*/7);
  pool.submit([] {}, /*tag=*/9);
  // The tag-7 job is running (or queued); tag 9 waits behind it.
  EXPECT_EQ(pool.inflight(7), 1u);
  EXPECT_EQ(pool.inflight(9), 1u);
  EXPECT_EQ(pool.pending(), 2u);
  release.set_value();
  // Destructor drains: both tags reach zero before the pool dies; reaching
  // here without deadlock is the assertion.
}

}  // namespace
}  // namespace dblind::core
