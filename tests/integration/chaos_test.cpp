// Chaos harness: seed-sweep invariant testing of the full Figure-4 protocol
// under lossy/partitioned channels, payload corruption, crash-recovery, and
// Byzantine servers.
//
// Safety invariants are asserted UNCONDITIONALLY — on every seed and every
// fault mix, whether or not the run completed:
//   S1 every result any B server holds decrypts to the published plaintext
//      (correctness + agreement across servers in one check, via the dealer
//      oracle);
//   S2 no Byzantine server ever obtained a service signature on an
//      adversarial payload (attack_successes == 0 everywhere);
//   S3 no handler crashed or threw on corrupted/duplicated/replayed input
//      (the run returning at all certifies this — on_message is required to
//      swallow malformed bytes).
//
// Liveness (every honest B server eventually holds a result) is asserted only
// for mixes that stay within the fault bound the protocol promises to
// tolerate: f crashed/Byzantine servers per service, finite loss, partitions
// that heal. The retransmission layer is what turns "finite loss" into
// progress; ChaosRegression.DeadlocksWithoutRetransmission pins that claim by
// running the same seed with the layer disabled.
//
// The tier-1 sweep (registered with ctest under the `chaos` label) covers a
// fixed grid of seeds × mixes. The larger CI sweep reuses this binary with
// DBLIND_CHAOS_SEEDS=<n> (see ChaosSweep.EnvConfiguredSweep and tools/ci.sh).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>

#include "core/system.hpp"
#include "obs/trace.hpp"

namespace dblind::core {
namespace {

using mpz::Bigint;
using Behavior = ProtocolServer::Behavior;

struct Mix {
  const char* name;
  unsigned drop_percent = 0;
  unsigned corrupt_percent = 0;
  unsigned duplication_percent = 0;
  bool partition_b_backup = false;  // isolate one B backup for a window
  bool crash_restart_b1 = false;    // crash the designated coordinator, restart later
  bool crash_a4 = false;            // permanently crash one A server (within f)
  bool byzantine_b1 = false;        // adaptive-cancel coordinator at B rank 1
  bool batch_verify = false;        // RLC batch verification (PR 3 fast path)
  unsigned verify_workers = 0;      // off-handler verification pool size
  unsigned contribution_pool = 0;   // precomputed-bundle pool capacity (PR 5)
  bool pool_prefill = false;        // fill the pool during on_start
  bool liveness_expected = true;    // mix stays within the f-bound
  // --- epochal churn (PR 7) -------------------------------------------------
  // kJoin: (4,1)->(5,1) adopting a standby. kLeave: (5,1)->(4,1) retiring
  // rank 5. kReshare: same roster, fresh shares (the proactive-refresh
  // shape). churn_at is the virtual time the rotation round starts.
  enum class Churn { kNone, kJoin, kLeave, kReshare };
  Churn churn = Churn::kNone;
  net::Time churn_at = 0;
  // Crash one non-proposer roster member exactly as the round starts (it
  // never deals; quorums come from the survivors) and restart it after the
  // install — the laggard must rejoin via the certificate-chain pull.
  bool churn_crash_member = false;
  // --- concurrent multi-transfer engine (PR 8) -----------------------------
  // Extra open-loop transfers arriving 3ms apart (on top of the two baseline
  // transfers), so many instances are in flight when faults strike.
  unsigned concurrent_transfers = 0;
  std::size_t max_inflight = 0;   // admission cap (0 = unlimited)
  bool per_transfer_rng = false;  // per-instance keyed contribution streams
};

constexpr Mix kMixes[] = {
    // Plain loss + duplication: the bread-and-butter retransmission case.
    {.name = "lossy", .drop_percent = 10, .duplication_percent = 20},
    // Corruption (signature/codec rejection paths) + a healing partition.
    {.name = "corrupt-partition",
     .drop_percent = 5,
     .corrupt_percent = 5,
     .partition_b_backup = true},
    // Everything at once, including crash-recovery of the designated
    // coordinator (exercises snapshot/restore + result pull).
    {.name = "heavy",
     .drop_percent = 20,
     .corrupt_percent = 3,
     .duplication_percent = 25,
     .partition_b_backup = true,
     .crash_restart_b1 = true,
     .crash_a4 = true},
    // A Byzantine coordinator under loss: retransmission must not help the
    // attacker (it only ever re-sends already-validated bytes).
    {.name = "byzantine-lossy", .drop_percent = 10, .byzantine_b1 = true},
    // The verification fast path under fire: batch verification plus the
    // worker pool, with loss, corruption, a healing partition AND a Byzantine
    // coordinator. Batched verification must reject exactly what serial
    // verification rejects, and deferred application must not reorder the
    // state machine — same S1–S3 invariants, same liveness bound.
    {.name = "batch-workers",
     .drop_percent = 10,
     .corrupt_percent = 3,
     .duplication_percent = 15,
     .partition_b_backup = true,
     .byzantine_b1 = true,
     .batch_verify = true,
     .verify_workers = 2},
    // The offline/online contribution pool under crash-recovery and loss:
    // restores must drop the pooled secrets and regenerate (a bundle id must
    // never be consumed twice, T5), fallback must cover pool exhaustion, and
    // the Byzantine coordinator gains nothing from precomputation.
    {.name = "pool-chaos",
     .drop_percent = 10,
     .duplication_percent = 15,
     .crash_restart_b1 = true,
     .byzantine_b1 = true,
     .contribution_pool = 2,
     .pool_prefill = true},
    // Membership churn under loss: a standby joins mid-run ((4,1)->(5,1)).
    // Transfers never mix contributions across config epochs (I6/T6) and the
    // joiner converges on results for work it never participated in.
    {.name = "churn-join",
     .drop_percent = 5,
     .duplication_percent = 10,
     .churn = Mix::Churn::kJoin,
     .churn_at = 150'000},
    // Roster shrink ((5,1)->(4,1)): the retired server stops serving, the
    // survivors' re-shared shares keep decrypting the unchanged service key.
    {.name = "churn-leave",
     .drop_percent = 5,
     .churn = Mix::Churn::kLeave,
     .churn_at = 150'000},
    // A roster member crashes exactly as the re-sharing round starts and
    // restarts after the install: deal/echo quorums must come from the
    // survivors and the laggard rejoins through the install-chain pull plus
    // a fresh sub-share quorum.
    {.name = "churn-crash-during-reshare",
     .churn = Mix::Churn::kReshare,
     .churn_at = 250'000,
     .churn_crash_member = true},
    // Rotation with transfers mid-flight under loss + duplication: instances
    // alive at the boundary abort and re-run under the new configuration.
    {.name = "churn-mid-transfer",
     .drop_percent = 10,
     .duplication_percent = 15,
     .churn = Mix::Churn::kJoin,
     .churn_at = 250'000},
    // The concurrent engine under fire: >= 8 transfers in flight (asserted
    // from engine_admit events) while messages drop/duplicate and the
    // designated coordinator crash-restarts mid-storm. Cross-transfer batch
    // drains must attribute failures to the right (transfer, rank) and no
    // done record may cite another transfer's contribution (T8).
    {.name = "concurrent-load",
     .drop_percent = 10,
     .duplication_percent = 15,
     .crash_restart_b1 = true,
     .batch_verify = true,
     .verify_workers = 2,
     .concurrent_transfers = 10,
     .per_transfer_rng = true},
    // Concurrency composed with epochal churn (PR 7 x PR 8): a capped engine
    // holds a queue across the install boundary — actives abort, re-admit at
    // queue head under the new epoch, and everything still completes with
    // single-epoch evidence (T6) and transfer isolation (T8).
    {.name = "concurrent-churn",
     .drop_percent = 5,
     .duplication_percent = 10,
     .churn = Mix::Churn::kJoin,
     .churn_at = 250'000,
     .concurrent_transfers = 8,
     .max_inflight = 4,
     .per_transfer_rng = true},
};

constexpr int kMixCount = static_cast<int>(std::size(kMixes));

// Trace-invariant mirror of tools/trace_check.py, asserted on every chaos
// run: the event stream every mix produces must satisfy the same Fig. 4
// causality rules the offline checker enforces on JSONL —
//   T1 done_recorded is preceded by >= f+1 verify_pass(contribute) from
//      distinct provers for the same (transfer, coordinator, epoch);
//   T2 reveal_sent is preceded by >= 2f+1 commit_accepted from distinct
//      servers at the same coordinator for the same instance;
//   T3 epochs opened per (node, transfer) are strictly increasing;
//   T4 retransmit attempts stay below their cap, increase per (node, timer
//      key), and no cap exceeds the configured maximum;
//   T5 pool_drain bundle ids are single-use per node — even across a crash
//      and restore, no precomputed contribution bundle (whose VDE
//      announcement fixes the proof nonce) is ever consumed twice;
//   T6 (invariant I6) a done's evidence never mixes config epochs: all
//      verify_pass(contribute) events for one instance carry ONE cfg_epoch —
//      an instance aborted by an install re-runs as a fresh instance;
//   T7 config epochs installed per node are strictly increasing (a node
//      restored to the seed epoch re-walks the chain but each install event
//      it emits still moves forward from the previous one it emitted alive);
//   T8 (invariant I8) transfer isolation: every contribute_cited event backing
//      a done-recorded instance cites that instance's OWN transfer id — with
//      many transfers in flight, evidence never leaks across transfers;
//   T9 (PR 9) spans form a causal forest: span ids are unique and every
//      nonzero parent names a span recorded EARLIER in the stream (spans are
//      minted at record time, so causes precede effects — across nodes,
//      through message hops, timers and crash/restart cycles);
//   T10 (PR 9, gated on `expect_stalls_resolved`) every stall the watchdog
//      reports is eventually resolved on the same (node, transfer): by a
//      kStallResolved, by the transfer's kDoneRecorded, or — because the
//      watchdog is volatile — mooted by the node crash-restarting or
//      retiring (rank 0 after an install).
void check_trace_invariants(const obs::MemoryTraceRecorder& trace, const char* mix_name,
                            std::uint64_t seed, bool expect_stalls_resolved) {
  const obs::RunMeta meta = trace.meta();
  ASSERT_GT(meta.b_f, 0u) << "run_meta not recorded";
  using Instance = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>;
  std::map<Instance, std::set<std::uint64_t>> contribute_ok;
  std::map<std::pair<std::uint64_t, Instance>, std::set<std::uint64_t>> commits;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> last_epoch;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> last_attempt;
  std::map<std::uint64_t, std::set<std::uint64_t>> drained_bundles;
  std::map<Instance, std::set<std::uint32_t>> contribute_cfg_epochs;
  std::map<std::uint64_t, std::uint32_t> installed_epoch;
  std::map<Instance, std::set<std::uint64_t>> foreign_cites;
  std::set<std::uint64_t> spans_seen;
  std::set<std::pair<std::uint64_t, std::uint64_t>> open_stalls;  // (node, transfer)
  const std::string at = std::string(mix_name) + " seed=" + std::to_string(seed);
  for (const obs::TraceEvent& e : trace.events()) {
    const Instance id{e.transfer, e.coordinator, e.epoch};
    // T9: unique span ids; parents only ever reference already-seen spans.
    // (kStall's parent is the stalled transfer's LATEST span, which by
    // construction was recorded before the sweep noticed the silence.)
    if (e.parent != 0) {
      EXPECT_TRUE(spans_seen.contains(e.parent))
          << "T9 " << at << ": orphan parent " << e.parent << " on kind "
          << obs::kind_name(e.kind) << " at node " << e.node;
    }
    if (e.span != 0) {
      EXPECT_TRUE(spans_seen.insert(e.span).second)
          << "T9 " << at << ": duplicate span " << e.span;
    }
    switch (e.kind) {
      case obs::EventKind::kStall:
        open_stalls.insert({e.node, e.transfer});
        break;
      case obs::EventKind::kStallResolved:
        open_stalls.erase({e.node, e.transfer});
        break;
      case obs::EventKind::kVerifyPass:
        if (e.has_instance && e.subject == static_cast<std::uint32_t>(MsgType::kContribute)) {
          contribute_ok[id].insert(e.peer);
          contribute_cfg_epochs[id].insert(e.cfg_epoch);
        }
        break;
      case obs::EventKind::kCommitAccepted:
        commits[{e.node, id}].insert(e.peer);
        break;
      case obs::EventKind::kRevealSent:
        EXPECT_GE((commits[{e.node, id}].size()), 2 * meta.b_f + 1) << "T2 " << at;
        break;
      case obs::EventKind::kDoneRecorded:
        open_stalls.erase({e.node, e.transfer});  // T10: done resolves a stall
        EXPECT_GE(contribute_ok[id].size(), meta.b_f + 1) << "T1 " << at;
        // T6/I6: all contribute evidence for this instance came from exactly
        // one config epoch. (The recording node's own epoch may lag — done
        // messages are service-signed and epoch-blind by design.)
        EXPECT_LE(contribute_cfg_epochs[id].size(), 1u) << "T6 " << at;
        // T8/I8: no evidence cite crossed transfer ids for this instance.
        EXPECT_TRUE(foreign_cites[id].empty())
            << "T8 " << at << ": instance cited transfers "
            << (foreign_cites[id].empty() ? 0 : *foreign_cites[id].begin());
        break;
      case obs::EventKind::kContributeCited:
        if (e.count != e.transfer) foreign_cites[id].insert(e.count);
        break;
      case obs::EventKind::kEpochInstall: {
        // T10: an install that RETIRES the node (new rank 0, carried in the
        // event's rank field) releases it from every deadline — done
        // messages stop reaching it by design.
        if (e.peer == 0) {
          std::erase_if(open_stalls, [&](const auto& s) { return s.first == e.node; });
        }
        auto [it, fresh] = installed_epoch.try_emplace(e.node, e.cfg_epoch);
        if (!fresh) {
          EXPECT_GT(e.cfg_epoch, it->second) << "T7 " << at;
          it->second = e.cfg_epoch;
        }
        break;
      }
      case obs::EventKind::kRestart:
        // A restored node restarts at the seed epoch and legitimately
        // re-installs the chain — reset its monotonicity baseline.
        installed_epoch.erase(e.node);
        // T10: the watchdog is volatile; a stall episode interrupted by a
        // crash ends with the crash (completion shows up as kDoneRecorded).
        std::erase_if(open_stalls, [&](const auto& s) { return s.first == e.node; });
        break;
      case obs::EventKind::kEpochStart: {
        auto [it, fresh] = last_epoch.try_emplace({e.node, e.transfer}, e.epoch);
        if (!fresh) {
          EXPECT_GT(e.epoch, it->second) << "T3 " << at;
          it->second = e.epoch;
        }
        break;
      }
      case obs::EventKind::kRetransmit: {
        EXPECT_LT(e.attempt, e.cap) << "T4 " << at;
        EXPECT_LE(e.cap, meta.retransmit_cap) << "T4 " << at;
        auto [it, fresh] = last_attempt.try_emplace({e.node, e.peer}, e.attempt);
        if (!fresh) {
          EXPECT_GT(e.attempt, it->second) << "T4 " << at;
          it->second = e.attempt;
        }
        break;
      }
      case obs::EventKind::kPoolDrain:
        EXPECT_TRUE(drained_bundles[e.node].insert(e.peer).second)
            << "T5 " << at << ": node " << e.node << " consumed bundle " << e.peer << " twice";
        break;
      default:
        break;
    }
  }
  // T10: on liveness-bound runs the trace ends with zero unresolved stalls.
  if (expect_stalls_resolved) {
    for (const auto& [node, transfer] : open_stalls) {
      ADD_FAILURE() << "T10 " << at << ": node " << node << " transfer " << transfer
                    << " stalled and never resolved";
    }
  }
}

// One full protocol run under `mix` with `seed`; asserts S1–S3 always and
// liveness when the mix is in-bound. Returns true iff the run completed.
bool run_chaos(const Mix& mix, std::uint64_t seed, bool retransmit = true) {
  obs::MemoryTraceRecorder trace;
  SystemOptions o;
  o.seed = 9000 + seed;
  o.a = {4, 1};
  o.b = {mix.churn == Mix::Churn::kLeave ? 5u : 4u, 1};
  o.b_standby = mix.churn == Mix::Churn::kJoin ? 1 : 0;
  o.protocol.trace = &trace;
  o.protocol.retransmit = retransmit;
  // Stall watchdog (PR 9): shorter than the partition_b_backup window
  // (100ms–500ms), so an isolated backup reliably trips a stall that then
  // resolves after the heal — and long enough that healthy runs stay quiet.
  o.protocol.watchdog_deadline = 300'000;
  o.protocol.batch_verify = mix.batch_verify;
  o.protocol.verify_workers = mix.verify_workers;
  o.protocol.contribution_pool = mix.contribution_pool;
  o.protocol.pool_prefill = mix.pool_prefill;
  o.protocol.max_inflight_transfers = mix.max_inflight;
  o.protocol.per_transfer_rng = mix.per_transfer_rng;
  if (mix.byzantine_b1) {
    o.b_behaviors.assign(4, Behavior::kHonest);
    o.b_behaviors[0] = Behavior::kAdaptiveCancelCoordinator;
  }
  System sys(std::move(o));
  sys.sim().set_duplication_percent(mix.duplication_percent);

  net::FaultPlan plan;
  plan.drop_percent = mix.drop_percent;
  plan.corrupt_percent = mix.corrupt_percent;
  if (mix.partition_b_backup) {
    // Isolate B rank 2 (a backup coordinator) for a window mid-protocol.
    net::FaultPlan::Partition part;
    part.start = 100'000;
    part.heal = 500'000;
    part.island = {sys.config().b.node_of(2)};
    plan.partitions.push_back(part);
  }
  if (!plan.empty()) sys.sim().set_fault_plan(plan);

  if (mix.crash_restart_b1) {
    sys.sim().crash_at(sys.config().b.node_of(1), 200'000);
    sys.sim().restart_at(sys.config().b.node_of(1), 700'000);
  }
  if (mix.crash_a4) sys.sim().crash_at(sys.config().a.node_of(4), 150'000);

  const std::uint32_t b_n = sys.b_cfg().n;
  if (mix.churn != Mix::Churn::kNone) {
    std::vector<net::NodeId> roster;
    for (ServerRank r = 1; r <= 4; ++r) roster.push_back(sys.b_node(r));
    if (mix.churn == Mix::Churn::kJoin) roster.push_back(sys.b_standby_node(0));
    sys.schedule_reconfig_b(sys.make_b_spec(1, 1, roster), mix.churn_at);
  }
  if (mix.churn_crash_member) {
    // Crashes win over same-time events: rank 4 never sees the round start,
    // so it never deals and the quorums come from ranks 1..3.
    sys.sim().crash_at(sys.b_node(4), mix.churn_at);
    sys.sim().restart_at(sys.b_node(4), mix.churn_at + 900'000);
  }

  TransferId t1 = sys.add_transfer(sys.config().params.encode_message(Bigint(1000 + seed)));
  TransferId t2 = sys.add_transfer(sys.config().params.encode_message(Bigint(2000 + seed)));
  std::vector<TransferId> transfers = {t1, t2};
  if (mix.churn != Mix::Churn::kNone) {
    // Post-rotation work: guarantees the run outlives the install (the early
    // transfers may finish before churn_at) and exercises the new
    // configuration end to end.
    transfers.push_back(sys.add_transfer_at(
        sys.config().params.encode_message(Bigint(3000 + seed)), mix.churn_at + 150'000));
  }
  for (unsigned i = 0; i < mix.concurrent_transfers; ++i) {
    // Open-loop arrivals 3ms apart (one network hop is up to 20ms): the whole
    // batch is in flight long before any instance can finish.
    transfers.push_back(sys.add_transfer_arriving(
        sys.config().params.encode_message(Bigint(4000 + 100 * seed + i)), 1'000 + 3'000 * i));
  }

  bool completed = sys.run_to_completion();

  // The storm actually happened: some node's engine reached >= 8 concurrent
  // self-coordinated transfers (or the cap, when one is set).
  if (mix.concurrent_transfers >= 8) {
    std::uint64_t max_inflight_seen = 0;
    for (const obs::TraceEvent& e : trace.events()) {
      if (e.kind == obs::EventKind::kEngineAdmit && e.count > max_inflight_seen)
        max_inflight_seen = e.count;
    }
    const std::uint64_t want = mix.max_inflight == 0 ? 8 : mix.max_inflight;
    EXPECT_GE(max_inflight_seen, want) << mix.name << " seed=" << seed;
  }

  // S1: every result held anywhere decrypts to the published plaintext.
  // (This is correctness AND agreement: all servers' results for a transfer
  // decrypt to the same value because both compare against the oracle.)
  for (TransferId t : transfers) {
    for (ServerRank r = 1; r <= b_n; ++r) {
      auto res = sys.result(t, r);
      if (!res) continue;
      EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t))
          << mix.name << " seed=" << seed << " t=" << t << " rank=" << r;
    }
    for (std::size_t i = 0; i < sys.b_standby_count(); ++i) {
      auto res = sys.b_standby_server(i).result(t);
      if (!res) continue;
      EXPECT_EQ(sys.oracle_decrypt_b(*res), sys.plaintext_of(t))
          << mix.name << " seed=" << seed << " t=" << t << " standby=" << i;
    }
  }
  // S2: no service signature on an adversarial payload, ever.
  for (ServerRank r = 1; r <= 4; ++r) {
    EXPECT_EQ(sys.a_server(r).attack_successes(), 0) << mix.name << " seed=" << seed;
  }
  for (ServerRank r = 1; r <= b_n; ++r) {
    EXPECT_EQ(sys.b_server(r).attack_successes(), 0) << mix.name << " seed=" << seed;
  }
  // Faults were genuinely injected (guards against a silently-empty plan).
  if (mix.drop_percent > 0 && retransmit) {
    EXPECT_GT(sys.sim().stats().messages_dropped, 0u) << mix.name << " seed=" << seed;
    EXPECT_GT(trace.count_of(obs::EventKind::kMsgDrop), 0u) << mix.name << " seed=" << seed;
  }

  // T1–T10: the run's trace satisfies the Fig. 4 causality invariants under
  // every fault mix (the C++ mirror of tools/trace_check.py). Stall
  // resolution (T10) is only owed when the protocol owes liveness: the
  // fire-once deadlock regression intentionally stalls forever.
  EXPECT_GT(trace.events().size(), 0u) << mix.name << " seed=" << seed;
  check_trace_invariants(trace, mix.name, seed, mix.liveness_expected && retransmit);

  // The watchdog actually barked: isolating a B backup past the deadline
  // must produce at least one stall, and the heal must resolve it.
  if (mix.partition_b_backup && mix.liveness_expected && retransmit) {
    EXPECT_GT(trace.count_of(obs::EventKind::kStall), 0u) << mix.name << " seed=" << seed;
    EXPECT_GT(trace.count_of(obs::EventKind::kStallResolved), 0u)
        << mix.name << " seed=" << seed;
  }

  // CI artifact hook (tools/ci.sh): export the full JSONL trace of this run
  // when DBLIND_CHAOS_TRACE_DIR is set, for offline span/critical-path
  // analysis of a failing (mix, seed).
  if (const char* dir = std::getenv("DBLIND_CHAOS_TRACE_DIR"); dir != nullptr) {
    std::string path = std::string(dir) + "/" + mix.name + "_seed" +
                       std::to_string(seed) + (retransmit ? "" : "_noretx") + ".jsonl";
    std::ofstream out(path);
    if (out) {
      out << obs::to_jsonl(trace.meta()) << "\n";
      for (const obs::TraceEvent& e : trace.events()) out << obs::to_jsonl(e) << "\n";
    }
  }

  if (mix.liveness_expected && retransmit) {
    EXPECT_TRUE(completed) << mix.name << " seed=" << seed;
    // run_to_completion stops the instant the CURRENT roster covers every
    // result; after churn, members still interpolating their re-shared key
    // (and the adopted standby) may have sub-share/result pulls riding their
    // capped backoff (800 ms initial delay) at that moment. Let the queued
    // retries fire before asserting: if a pull genuinely capped out, the
    // queue drains with the share still pending and the assertions below
    // fail exactly as before.
    if (mix.churn != Mix::Churn::kNone) {
      sys.sim().run_until([&] {
        for (ServerRank r = 1; r <= b_n; ++r) {
          if (!sys.is_honest_b(r) || sys.b_server(r).rank() == 0) continue;
          if (sys.b_server(r).share_pending()) return false;
          for (TransferId t : transfers) {
            if (!sys.b_server(r).result(t)) return false;
          }
        }
        if (mix.churn == Mix::Churn::kJoin) {
          if (sys.b_standby_server(0).share_pending()) return false;
          for (TransferId t : transfers) {
            if (!sys.b_standby_server(0).result(t)) return false;
          }
        }
        return true;
      });
    }
    for (TransferId t : transfers) {
      for (ServerRank r = 1; r <= b_n; ++r) {
        if (!sys.is_honest_b(r)) continue;
        // Retired servers (rank 0 after a shrink) stop receiving dones; only
        // current roster members owe results.
        if (sys.b_server(r).rank() == 0) continue;
        EXPECT_TRUE(sys.result(t, r).has_value())
            << mix.name << " seed=" << seed << " t=" << t << " rank=" << r;
      }
    }
    // Once the roster stabilizes, every live member sits at the new epoch —
    // including an adopted standby and a member that crashed through the
    // install and rejoined.
    if (mix.churn != Mix::Churn::kNone) {
      for (ServerRank r = 1; r <= b_n; ++r) {
        if (!sys.is_honest_b(r)) continue;
        EXPECT_EQ(sys.b_server(r).config_epoch(), 1u) << mix.name << " seed=" << seed
                                                      << " rank=" << r;
      }
      if (mix.churn == Mix::Churn::kJoin) {
        EXPECT_EQ(sys.b_standby_server(0).config_epoch(), 1u) << mix.name << " seed=" << seed;
        EXPECT_FALSE(sys.b_standby_server(0).share_pending()) << mix.name << " seed=" << seed;
        for (TransferId t : transfers) {
          EXPECT_TRUE(sys.b_standby_server(0).result(t).has_value())
              << mix.name << " seed=" << seed << " t=" << t;
        }
      }
    }
  }
  return completed;
}

class ChaosSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChaosSweep, SafetyAlwaysLivenessInBound) {
  const auto [mix_index, seed] = GetParam();
  run_chaos(kMixes[mix_index], static_cast<std::uint64_t>(seed));
}

// Tier-1 grid: 6 seeds × 12 mixes = 72 deterministic runs, each its own ctest
// entry (parallelizable). tools/ci.sh runs the wider sweep (the churn mixes
// also get a dedicated `ci.sh churn` job).
INSTANTIATE_TEST_SUITE_P(Grid, ChaosSweep,
                         ::testing::Combine(::testing::Range(0, kMixCount),
                                            ::testing::Range(0, 6)),
                         [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
                           std::string name = kMixes[std::get<0>(info.param)].name;
                           for (char& c : name)
                             if (c == '-') c = '_';  // gtest names are [A-Za-z0-9_]
                           return name + "_seed" + std::to_string(std::get<1>(info.param));
                         });

// Wider sweep, sized at runtime: DBLIND_CHAOS_SEEDS=<n> runs n seeds per mix
// in one process (gtest_discover_tests enumerates at build time, so the env
// knob cannot add ctest entries — CI invokes the binary directly instead).
// DBLIND_CHAOS_MIXES=<substr> restricts the sweep to mixes whose name
// contains the substring; tools/ci.sh's `churn` job uses it to run the four
// reconfiguration mixes at a deeper seed count than the all-mix sweep.
// DBLIND_CHAOS_SEED_BASE=<s> shifts the first seed (default 100) so a
// failure deep into a wide sweep can be re-run in isolation.
TEST(ChaosSweep, EnvConfiguredSweep) {
  const char* env = std::getenv("DBLIND_CHAOS_SEEDS");
  int seeds = env ? std::atoi(env) : 0;
  if (seeds <= 0) GTEST_SKIP() << "set DBLIND_CHAOS_SEEDS=<n> for the wide sweep";
  const char* filter = std::getenv("DBLIND_CHAOS_MIXES");
  const char* base_env = std::getenv("DBLIND_CHAOS_SEED_BASE");
  const int base = base_env ? std::atoi(base_env) : 100;
  int matched = 0;
  for (int mix = 0; mix < kMixCount; ++mix) {
    if (filter != nullptr && std::string(kMixes[mix].name).find(filter) == std::string::npos)
      continue;
    ++matched;
    for (int seed = 0; seed < seeds; ++seed) {
      run_chaos(kMixes[mix], static_cast<std::uint64_t>(base + seed));
      if (::testing::Test::HasFailure())
        FAIL() << "violation at mix=" << kMixes[mix].name << " seed=" << (base + seed);
    }
  }
  EXPECT_GT(matched, 0) << "DBLIND_CHAOS_MIXES='" << (filter ? filter : "")
                        << "' matched no fault mix";
}

// The regression the whole retransmission layer exists for: with the layer
// OFF, a fixed seed at 25% loss starves the protocol of a liveness-critical
// message and the event queue drains with no result anywhere — the
// fire-once protocol deadlocks. The SAME seed with retransmission ON
// completes. (Deterministic: both runs are pure functions of the seed.)
TEST(ChaosRegression, DeadlocksWithoutRetransmission) {
  Mix lossy{.name = "deadlock", .drop_percent = 25, .liveness_expected = false};
  bool without = run_chaos(lossy, 424242, /*retransmit=*/false);
  EXPECT_FALSE(without) << "expected the fire-once protocol to deadlock under 25% loss";
  lossy.liveness_expected = true;
  bool with = run_chaos(lossy, 424242, /*retransmit=*/true);
  EXPECT_TRUE(with);
}

// Crash-recovery in isolation: the designated B coordinator dies mid-protocol
// and comes back; its durable state (registered transfers, done messages)
// must let it finish — recovered via its own result pull if the done message
// passed it by while it was down.
TEST(ChaosRecovery, RestartedCoordinatorCatchesUp) {
  Mix mix{.name = "restart-only", .crash_restart_b1 = true};
  EXPECT_TRUE(run_chaos(mix, 7));
}

}  // namespace
}  // namespace dblind::core
