#include "zkp/schnorr.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dblind::zkp {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

GroupParams toy() { return GroupParams::named(ParamId::kToy64); }

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()),
          reinterpret_cast<const std::uint8_t*>(s.data()) + s.size()};
}

TEST(Schnorr, SignVerifyRoundTrip) {
  GroupParams gp = toy();
  Prng prng(1);
  SchnorrSigningKey sk = SchnorrSigningKey::generate(gp, prng);
  auto msg = bytes("hello, distributed world");
  SchnorrSignature sig = sk.sign(msg, prng);
  EXPECT_TRUE(sk.verify_key().verify(msg, sig));
}

TEST(Schnorr, WrongMessageRejected) {
  GroupParams gp = toy();
  Prng prng(2);
  SchnorrSigningKey sk = SchnorrSigningKey::generate(gp, prng);
  SchnorrSignature sig = sk.sign(bytes("message one"), prng);
  EXPECT_FALSE(sk.verify_key().verify(bytes("message two"), sig));
  EXPECT_FALSE(sk.verify_key().verify(bytes(""), sig));
}

TEST(Schnorr, WrongKeyRejected) {
  GroupParams gp = toy();
  Prng prng(3);
  SchnorrSigningKey sk1 = SchnorrSigningKey::generate(gp, prng);
  SchnorrSigningKey sk2 = SchnorrSigningKey::generate(gp, prng);
  auto msg = bytes("signed by sk1");
  SchnorrSignature sig = sk1.sign(msg, prng);
  EXPECT_FALSE(sk2.verify_key().verify(msg, sig));
}

TEST(Schnorr, TamperedSignatureRejected) {
  GroupParams gp = toy();
  Prng prng(4);
  SchnorrSigningKey sk = SchnorrSigningKey::generate(gp, prng);
  auto msg = bytes("tamper target");
  SchnorrSignature sig = sk.sign(msg, prng);

  SchnorrSignature bad_s = sig;
  bad_s.s = (bad_s.s + Bigint(1)) % gp.q();
  EXPECT_FALSE(sk.verify_key().verify(msg, bad_s));

  SchnorrSignature bad_r = sig;
  bad_r.r = gp.mul(bad_r.r, gp.g());
  EXPECT_FALSE(sk.verify_key().verify(msg, bad_r));
}

TEST(Schnorr, MalformedSignatureRejectedNotCrash) {
  GroupParams gp = toy();
  Prng prng(5);
  SchnorrSigningKey sk = SchnorrSigningKey::generate(gp, prng);
  auto msg = bytes("x");
  // r not in group; s out of range.
  EXPECT_FALSE(sk.verify_key().verify(msg, {Bigint(0), Bigint(1)}));
  EXPECT_FALSE(sk.verify_key().verify(msg, {gp.p() - Bigint(1), Bigint(1)}));
  EXPECT_FALSE(sk.verify_key().verify(msg, {gp.g(), gp.q()}));
  EXPECT_FALSE(sk.verify_key().verify(msg, {gp.g(), Bigint(-1)}));
}

TEST(Schnorr, SignaturesAreRandomized) {
  GroupParams gp = toy();
  Prng prng(6);
  SchnorrSigningKey sk = SchnorrSigningKey::generate(gp, prng);
  auto msg = bytes("same message");
  SchnorrSignature s1 = sk.sign(msg, prng);
  SchnorrSignature s2 = sk.sign(msg, prng);
  EXPECT_NE(s1, s2);
  EXPECT_TRUE(sk.verify_key().verify(msg, s1));
  EXPECT_TRUE(sk.verify_key().verify(msg, s2));
}

TEST(Schnorr, KeyValidation) {
  GroupParams gp = toy();
  EXPECT_THROW((void)SchnorrSigningKey::from_private(gp, Bigint(0)), std::invalid_argument);
  EXPECT_THROW((void)SchnorrSigningKey::from_private(gp, gp.q()), std::invalid_argument);
  EXPECT_THROW(SchnorrVerifyKey(gp, Bigint(0)), std::invalid_argument);
  EXPECT_THROW(SchnorrVerifyKey(gp, gp.p() - Bigint(1)), std::invalid_argument);
}

TEST(SchnorrBatch, AllValidAccepted) {
  GroupParams gp = toy();
  Prng prng(20);
  std::vector<SchnorrSigningKey> keys;
  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<SchnorrSignature> sigs;
  for (int i = 0; i < 7; ++i) {
    keys.push_back(SchnorrSigningKey::generate(gp, prng));
    msgs.push_back(bytes("message " + std::to_string(i)));
    sigs.push_back(keys.back().sign(msgs.back(), prng));
  }
  std::vector<BatchEntry> batch;
  std::vector<SchnorrVerifyKey> vks;
  for (int i = 0; i < 7; ++i) vks.push_back(keys[static_cast<std::size_t>(i)].verify_key());
  for (int i = 0; i < 7; ++i)
    batch.push_back({&vks[static_cast<std::size_t>(i)], msgs[static_cast<std::size_t>(i)],
                     &sigs[static_cast<std::size_t>(i)]});
  EXPECT_TRUE(schnorr_batch_verify(gp, batch));
}

TEST(SchnorrBatch, OneBadSignatureRejectsBatch) {
  GroupParams gp = toy();
  Prng prng(21);
  std::vector<SchnorrSigningKey> keys;
  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<SchnorrSignature> sigs;
  for (int i = 0; i < 5; ++i) {
    keys.push_back(SchnorrSigningKey::generate(gp, prng));
    msgs.push_back(bytes("m" + std::to_string(i)));
    sigs.push_back(keys.back().sign(msgs.back(), prng));
  }
  sigs[3].s = (sigs[3].s + Bigint(1)) % gp.q();  // corrupt one
  std::vector<SchnorrVerifyKey> vks;
  for (auto& k : keys) vks.push_back(k.verify_key());
  std::vector<BatchEntry> batch;
  for (int i = 0; i < 5; ++i)
    batch.push_back({&vks[static_cast<std::size_t>(i)], msgs[static_cast<std::size_t>(i)],
                     &sigs[static_cast<std::size_t>(i)]});
  EXPECT_FALSE(schnorr_batch_verify(gp, batch));
}

TEST(SchnorrBatch, SwappedMessagesRejected) {
  GroupParams gp = toy();
  Prng prng(22);
  SchnorrSigningKey k1 = SchnorrSigningKey::generate(gp, prng);
  SchnorrSigningKey k2 = SchnorrSigningKey::generate(gp, prng);
  auto m1 = bytes("alpha");
  auto m2 = bytes("beta");
  SchnorrSignature s1 = k1.sign(m1, prng);
  SchnorrSignature s2 = k2.sign(m2, prng);
  SchnorrVerifyKey v1 = k1.verify_key();
  SchnorrVerifyKey v2 = k2.verify_key();
  // Messages swapped between entries: both individually invalid.
  std::vector<BatchEntry> batch = {{&v1, m2, &s1}, {&v2, m1, &s2}};
  EXPECT_FALSE(schnorr_batch_verify(gp, batch));
}

TEST(SchnorrBatch, EmptyAndSingleton) {
  GroupParams gp = toy();
  Prng prng(23);
  EXPECT_TRUE(schnorr_batch_verify(gp, {}));
  SchnorrSigningKey k = SchnorrSigningKey::generate(gp, prng);
  auto m = bytes("solo");
  SchnorrSignature sig = k.sign(m, prng);
  SchnorrVerifyKey vk = k.verify_key();
  std::vector<BatchEntry> one = {{&vk, m, &sig}};
  EXPECT_TRUE(schnorr_batch_verify(gp, one));
  sig.s = (sig.s + Bigint(1)) % gp.q();
  std::vector<BatchEntry> bad = {{&vk, m, &sig}};
  EXPECT_FALSE(schnorr_batch_verify(gp, bad));
}

TEST(SchnorrBatch, MalformedEntriesRejected) {
  GroupParams gp = toy();
  Prng prng(24);
  SchnorrSigningKey k = SchnorrSigningKey::generate(gp, prng);
  auto m = bytes("x");
  SchnorrSignature sig = k.sign(m, prng);
  SchnorrVerifyKey vk = k.verify_key();
  SchnorrSignature out_of_range = sig;
  out_of_range.s = gp.q();
  std::vector<BatchEntry> batch = {{&vk, m, &out_of_range}};
  EXPECT_FALSE(schnorr_batch_verify(gp, batch));
  SchnorrSignature bad_r = sig;
  bad_r.r = gp.p() - Bigint(1);  // not in subgroup
  std::vector<BatchEntry> batch2 = {{&vk, m, &bad_r}};
  EXPECT_FALSE(schnorr_batch_verify(gp, batch2));
}

TEST(Schnorr, EmptyMessageSignable) {
  GroupParams gp = toy();
  Prng prng(7);
  SchnorrSigningKey sk = SchnorrSigningKey::generate(gp, prng);
  SchnorrSignature sig = sk.sign({}, prng);
  EXPECT_TRUE(sk.verify_key().verify({}, sig));
  EXPECT_FALSE(sk.verify_key().verify(bytes("a"), sig));
}

}  // namespace
}  // namespace dblind::zkp
