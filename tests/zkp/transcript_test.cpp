#include "zkp/transcript.hpp"

#include <gtest/gtest.h>

namespace dblind::zkp {
namespace {

using mpz::Bigint;

const Bigint kQ = Bigint::from_hex("7b00807d99b158cf");

TEST(Transcript, DeterministicForSameInputs) {
  Transcript a("domain");
  Transcript b("domain");
  a.absorb(Bigint(42)).absorb_str("x");
  b.absorb(Bigint(42)).absorb_str("x");
  EXPECT_EQ(a.challenge(kQ), b.challenge(kQ));
}

TEST(Transcript, DomainSeparates) {
  Transcript a("domain-1");
  Transcript b("domain-2");
  a.absorb(Bigint(42));
  b.absorb(Bigint(42));
  EXPECT_NE(a.challenge(kQ), b.challenge(kQ));
}

TEST(Transcript, LengthFramingPreventsAmbiguity) {
  // ("ab", "c") and ("a", "bc") must hash differently — the classic
  // concatenation ambiguity that length framing exists to prevent.
  Transcript a("d");
  a.absorb_str("ab").absorb_str("c");
  Transcript b("d");
  b.absorb_str("a").absorb_str("bc");
  EXPECT_NE(a.challenge(kQ), b.challenge(kQ));
}

TEST(Transcript, SignMattersForBigints) {
  Transcript a("d");
  a.absorb(Bigint(5));
  Transcript b("d");
  b.absorb(Bigint(-5));
  EXPECT_NE(a.challenge(kQ), b.challenge(kQ));
}

TEST(Transcript, ZeroAndEmptyDistinct) {
  Transcript a("d");
  a.absorb(Bigint(0));
  Transcript b("d");
  b.absorb_str("");
  EXPECT_NE(a.challenge(kQ), b.challenge(kQ));
}

TEST(Transcript, ChallengeInRange) {
  for (int i = 0; i < 50; ++i) {
    Transcript t("d");
    t.absorb(Bigint(static_cast<std::uint64_t>(i)));
    Bigint c = t.challenge(kQ);
    EXPECT_FALSE(c.is_negative());
    EXPECT_LT(c, kQ);
  }
}

TEST(Transcript, OrderMatters) {
  Transcript a("d");
  a.absorb(Bigint(1)).absorb(Bigint(2));
  Transcript b("d");
  b.absorb(Bigint(2)).absorb(Bigint(1));
  EXPECT_NE(a.challenge(kQ), b.challenge(kQ));
}

}  // namespace
}  // namespace dblind::zkp
