#include "zkp/pedersen.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"

namespace dblind::zkp {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

PedersenParams make(std::string_view domain = "test") {
  return PedersenParams(GroupParams::named(ParamId::kToy64), domain);
}

TEST(HashToGroup, DeterministicAndInGroup) {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  Bigint h1 = gp.hash_to_group("label-a");
  Bigint h2 = gp.hash_to_group("label-a");
  Bigint h3 = gp.hash_to_group("label-b");
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_TRUE(gp.in_group(h1));
  EXPECT_TRUE(gp.in_group(h3));
  EXPECT_NE(h1, Bigint(1));
}

TEST(HashToGroup, WorksAcrossSizes) {
  for (ParamId id : {ParamId::kTest128, ParamId::kTest256, ParamId::kSec512,
                     ParamId::kSec2048}) {
    GroupParams gp = GroupParams::named(id);
    Bigint h = gp.hash_to_group("x");
    EXPECT_TRUE(gp.in_group(h)) << static_cast<int>(id);
  }
}

TEST(Pedersen, CommitOpenRoundTrip) {
  PedersenParams pp = make();
  Prng prng(1);
  for (int i = 0; i < 10; ++i) {
    Bigint v = prng.uniform_below(pp.group().q());
    auto o = pp.commit_random(v, prng);
    EXPECT_TRUE(pp.open(o.commitment, v, o.randomness));
  }
}

TEST(Pedersen, WrongOpeningsRejected) {
  PedersenParams pp = make();
  Prng prng(2);
  Bigint v = prng.uniform_below(pp.group().q());
  auto o = pp.commit_random(v, prng);
  EXPECT_FALSE(pp.open(o.commitment, mpz::addmod(v, Bigint(1), pp.group().q()), o.randomness));
  EXPECT_FALSE(pp.open(o.commitment, v, mpz::addmod(o.randomness, Bigint(1), pp.group().q())));
  EXPECT_FALSE(pp.open(Bigint(0), v, o.randomness));
}

TEST(Pedersen, PerfectlyHidingShape) {
  // Any commitment can be opened to any value given the right randomness:
  // with v', r' = r + (v - v')·log_h g ... we cannot compute that (unknown
  // dlog), but we CAN check that commitments to different values with
  // suitable randomness coincide — construct via the homomorphism.
  PedersenParams pp = make();
  Prng prng(3);
  Bigint v1 = prng.uniform_below(pp.group().q());
  Bigint r1 = pp.group().random_exponent(prng);
  Bigint c = pp.commit(v1, r1);
  // Same commitment value appears for (v1+delta) only with different
  // randomness; verify distribution-level hiding cheaply: commitments to two
  // fixed values under random r are statistically identical — spot-check
  // that each value can produce each of a few sampled commitment outputs'
  // group membership (weak but meaningful structural check).
  EXPECT_TRUE(pp.group().in_group(c));
}

TEST(Pedersen, HomomorphicAddition) {
  PedersenParams pp = make();
  Prng prng(4);
  const Bigint& q = pp.group().q();
  Bigint v1 = prng.uniform_below(q);
  Bigint v2 = prng.uniform_below(q);
  Bigint r1 = pp.group().random_exponent(prng);
  Bigint r2 = pp.group().random_exponent(prng);
  Bigint c1 = pp.commit(v1, r1);
  Bigint c2 = pp.commit(v2, r2);
  EXPECT_EQ(pp.add(c1, c2), pp.commit(mpz::addmod(v1, v2, q), mpz::addmod(r1, r2, q)));
}

TEST(Pedersen, DomainsAreIndependent) {
  PedersenParams p1 = make("domain-1");
  PedersenParams p2 = make("domain-2");
  EXPECT_NE(p1.h(), p2.h());
  Prng prng(5);
  Bigint v = prng.uniform_below(p1.group().q());
  Bigint r = p1.group().random_exponent(prng);
  EXPECT_NE(p1.commit(v, r), p2.commit(v, r));
}

}  // namespace
}  // namespace dblind::zkp
