#include "zkp/chaum_pedersen.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"

namespace dblind::zkp {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

GroupParams toy() { return GroupParams::named(ParamId::kToy64); }

DlogStatement make_statement(const GroupParams& gp, const Bigint& a, const Bigint& base2) {
  return {gp.g(), gp.pow_g(a), base2, gp.pow(base2, a)};
}

TEST(ChaumPedersen, ProveVerifyRoundTrip) {
  GroupParams gp = toy();
  Prng prng(1);
  for (int i = 0; i < 10; ++i) {
    Bigint a = gp.random_exponent(prng);
    Bigint y = gp.random_element(prng);
    DlogStatement stmt = make_statement(gp, a, y);
    DlogEqProof proof = dlog_prove(gp, stmt, a, "test-ctx", prng);
    EXPECT_TRUE(dlog_verify(gp, stmt, proof, "test-ctx"));
  }
}

TEST(ChaumPedersen, WrongContextRejected) {
  GroupParams gp = toy();
  Prng prng(2);
  Bigint a = gp.random_exponent(prng);
  DlogStatement stmt = make_statement(gp, a, gp.random_element(prng));
  DlogEqProof proof = dlog_prove(gp, stmt, a, "context-A", prng);
  EXPECT_FALSE(dlog_verify(gp, stmt, proof, "context-B"));
}

TEST(ChaumPedersen, UnequalLogsRejected) {
  // x = g^a but z = Y^b with a != b: no witness exists; a forged proof using
  // either exponent must fail.
  GroupParams gp = toy();
  Prng prng(3);
  Bigint a = gp.random_exponent(prng);
  Bigint b = mpz::addmod(a, Bigint(1), gp.q());
  Bigint y = gp.random_element(prng);
  DlogStatement lie = {gp.g(), gp.pow_g(a), y, gp.pow(y, b)};
  // Prover refuses outright:
  EXPECT_THROW((void)dlog_prove(gp, lie, a, "ctx", prng), std::invalid_argument);
  EXPECT_THROW((void)dlog_prove(gp, lie, b, "ctx", prng), std::invalid_argument);
  // A proof for the honest statement does not transfer to the lie:
  DlogStatement honest = make_statement(gp, a, y);
  DlogEqProof proof = dlog_prove(gp, honest, a, "ctx", prng);
  EXPECT_FALSE(dlog_verify(gp, lie, proof, "ctx"));
}

TEST(ChaumPedersen, TamperedProofRejected) {
  GroupParams gp = toy();
  Prng prng(4);
  Bigint a = gp.random_exponent(prng);
  DlogStatement stmt = make_statement(gp, a, gp.random_element(prng));
  DlogEqProof proof = dlog_prove(gp, stmt, a, "ctx", prng);

  DlogEqProof bad = proof;
  bad.s = mpz::addmod(bad.s, Bigint(1), gp.q());
  EXPECT_FALSE(dlog_verify(gp, stmt, bad, "ctx"));

  bad = proof;
  bad.t1 = gp.mul(bad.t1, gp.g());
  EXPECT_FALSE(dlog_verify(gp, stmt, bad, "ctx"));

  bad = proof;
  bad.t2 = gp.mul(bad.t2, gp.g());
  EXPECT_FALSE(dlog_verify(gp, stmt, bad, "ctx"));
}

TEST(ChaumPedersen, NonGroupElementsRejected) {
  GroupParams gp = toy();
  Prng prng(5);
  Bigint a = gp.random_exponent(prng);
  DlogStatement stmt = make_statement(gp, a, gp.random_element(prng));
  DlogEqProof proof = dlog_prove(gp, stmt, a, "ctx", prng);

  DlogStatement bad = stmt;
  bad.x = gp.p() - Bigint(1);  // non-residue
  EXPECT_FALSE(dlog_verify(gp, bad, proof, "ctx"));
  bad = stmt;
  bad.z = Bigint(0);
  EXPECT_FALSE(dlog_verify(gp, bad, proof, "ctx"));

  DlogEqProof malformed = proof;
  malformed.s = gp.q();  // out of range
  EXPECT_FALSE(dlog_verify(gp, stmt, malformed, "ctx"));
}

TEST(ChaumPedersen, ZeroExponentWorks) {
  // a = 0: X = 1, Z = 1. Degenerate but valid statement.
  GroupParams gp = toy();
  Prng prng(6);
  Bigint y = gp.random_element(prng);
  DlogStatement stmt = {gp.g(), Bigint(1), y, Bigint(1)};
  DlogEqProof proof = dlog_prove(gp, stmt, Bigint(0), "ctx", prng);
  EXPECT_TRUE(dlog_verify(gp, stmt, proof, "ctx"));
}

TEST(ChaumPedersen, NegativeWitnessReducedModQ) {
  GroupParams gp = toy();
  Prng prng(7);
  Bigint a = gp.random_exponent(prng);
  Bigint neg = a - gp.q();  // same residue class
  DlogStatement stmt = make_statement(gp, a, gp.random_element(prng));
  DlogEqProof proof = dlog_prove(gp, stmt, neg, "ctx", prng);
  EXPECT_TRUE(dlog_verify(gp, stmt, proof, "ctx"));
}

TEST(ChaumPedersen, ProofsDoNotTransferBetweenStatements) {
  GroupParams gp = toy();
  Prng prng(8);
  Bigint a = gp.random_exponent(prng);
  DlogStatement s1 = make_statement(gp, a, gp.random_element(prng));
  DlogStatement s2 = make_statement(gp, a, gp.random_element(prng));
  DlogEqProof proof = dlog_prove(gp, s1, a, "ctx", prng);
  EXPECT_FALSE(dlog_verify(gp, s2, proof, "ctx"));
}

}  // namespace
}  // namespace dblind::zkp
