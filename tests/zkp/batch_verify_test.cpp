// Adversarial soundness tests for random-linear-combination batch
// verification (PR 3 satellite).
//
// The batch verifiers must agree with per-proof verification on every input a
// Byzantine server could craft: each single-proof mutation (tampered
// commitment, response, statement element, wrong key, proofs swapped between
// statements) has to make the whole batch reject, and the *_isolate fallback
// has to name the exact culprit. Mutations are swept across many seeds so a
// lucky randomizer cancellation (probability 2^-min(128,|q|) per run) would
// have to repeat dozens of times to slip through.
#include "zkp/batch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "mpz/modmath.hpp"
#include "threshold/thresh_decrypt.hpp"
#include "zkp/vde.hpp"

namespace dblind::zkp {
namespace {

using elgamal::Ciphertext;
using elgamal::KeyPair;
using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

GroupParams toy() { return GroupParams::named(ParamId::kToy64); }

CpBatchItem make_item(const GroupParams& gp, Prng& prng, const std::string& ctx) {
  Bigint a = gp.random_exponent(prng);
  Bigint y = gp.random_element(prng);
  DlogStatement stmt = {gp.g(), gp.pow_g(a), y, gp.pow(y, a)};
  DlogEqProof proof = dlog_prove(gp, stmt, a, ctx, prng);
  return {stmt, proof, ctx};
}

std::vector<CpBatchItem> make_batch(const GroupParams& gp, Prng& prng, std::size_t k) {
  std::vector<CpBatchItem> items;
  for (std::size_t i = 0; i < k; ++i) {
    items.push_back(make_item(gp, prng, "batch-ctx-" + std::to_string(i)));
  }
  return items;
}

TEST(CpBatch, ValidBatchesAccept) {
  GroupParams gp = toy();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Prng prng(seed);
    for (std::size_t k : {0u, 1u, 2u, 5u, 16u}) {
      auto items = make_batch(gp, prng, k);
      Prng vr = prng.fork("verify");
      EXPECT_TRUE(cp_batch_verify(gp, items, vr)) << "seed=" << seed << " k=" << k;
      Prng vr2 = prng.fork("isolate");
      BatchResult r = cp_batch_verify_isolate(gp, items, vr2);
      EXPECT_TRUE(r.ok);
      EXPECT_TRUE(r.bad.empty());
    }
  }
}

// One mutation per run, swept over >= 50 seeds; each must reject and the
// isolate fallback must finger exactly the mutated index.
TEST(CpBatch, EverySingleProofMutationRejectedAcrossSeeds) {
  GroupParams gp = toy();
  // Mutations applied to items[target] of a 5-item batch.
  const auto mutations = std::vector<void (*)(const GroupParams&, CpBatchItem&)>{
      // Tampered commitments.
      [](const GroupParams& g, CpBatchItem& it) { it.proof.t1 = g.mul(it.proof.t1, g.g()); },
      [](const GroupParams& g, CpBatchItem& it) { it.proof.t2 = g.mul(it.proof.t2, g.g()); },
      // Tampered response.
      [](const GroupParams& g, CpBatchItem& it) {
        it.proof.s = mpz::addmod(it.proof.s, Bigint(1), g.q());
      },
      // Tampered statement elements (x, z, and the second base).
      [](const GroupParams& g, CpBatchItem& it) { it.stmt.x = g.mul(it.stmt.x, g.g()); },
      [](const GroupParams& g, CpBatchItem& it) { it.stmt.z = g.mul(it.stmt.z, g.g()); },
      [](const GroupParams& g, CpBatchItem& it) { it.stmt.base2 = g.mul(it.stmt.base2, g.g()); },
      // Wrong Fiat-Shamir context (proof bound to another session).
      [](const GroupParams&, CpBatchItem& it) { it.context += "-evil"; },
      // Structural garbage: non-residue commitment, out-of-range response.
      [](const GroupParams& g, CpBatchItem& it) { it.proof.t1 = g.p() - Bigint(1); },
      [](const GroupParams& g, CpBatchItem& it) { it.proof.s = g.q(); },
  };

  for (std::uint64_t seed = 1; seed <= 54; ++seed) {
    Prng prng(seed);
    auto clean = make_batch(gp, prng, 5);
    std::size_t target = seed % clean.size();
    std::size_t mi = seed % mutations.size();
    auto items = clean;
    mutations[mi](gp, items[target]);

    Prng vr = prng.fork("verify");
    EXPECT_FALSE(cp_batch_verify(gp, items, vr))
        << "seed=" << seed << " mutation=" << mi << " target=" << target;

    Prng vr2 = prng.fork("isolate");
    BatchResult r = cp_batch_verify_isolate(gp, items, vr2);
    EXPECT_FALSE(r.ok);
    ASSERT_EQ(r.bad.size(), 1u) << "seed=" << seed << " mutation=" << mi;
    EXPECT_EQ(r.bad[0], target) << "seed=" << seed << " mutation=" << mi;
  }
}

TEST(CpBatch, SwappedProofsBetweenStatementsRejected) {
  GroupParams gp = toy();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Prng prng(seed + 1000);
    auto items = make_batch(gp, prng, 4);
    // Items 1 and 2 share a context; both statements and both proofs are
    // honest, but the proofs are crossed between the statements.
    CpBatchItem a = make_item(gp, prng, "shared");
    CpBatchItem b = make_item(gp, prng, "shared");
    std::swap(a.proof, b.proof);
    items[1] = a;
    items[2] = b;

    Prng vr = prng.fork("verify");
    EXPECT_FALSE(cp_batch_verify(gp, items, vr)) << seed;
    Prng vr2 = prng.fork("isolate");
    BatchResult r = cp_batch_verify_isolate(gp, items, vr2);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.bad, (std::vector<std::size_t>{1, 2})) << seed;
  }
}

TEST(CpBatch, MultipleCulpritsAllIdentified) {
  GroupParams gp = toy();
  Prng prng(77);
  auto items = make_batch(gp, prng, 8);
  for (std::size_t i : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    items[i].proof.s = mpz::addmod(items[i].proof.s, Bigint(1), gp.q());
  }
  Prng vr = prng.fork("verify");
  EXPECT_FALSE(cp_batch_verify(gp, items, vr));
  Prng vr2 = prng.fork("isolate");
  BatchResult r = cp_batch_verify_isolate(gp, items, vr2);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.bad, (std::vector<std::size_t>{0, 3, 7}));
}

// Batch accept/reject must agree with serial verification on random mixes of
// valid and mutated proofs — the equivalence the protocol layer relies on.
TEST(CpBatch, AgreesWithSerialVerificationOnRandomMixes) {
  GroupParams gp = toy();
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Prng prng(seed + 5000);
    auto items = make_batch(gp, prng, 6);
    bool any_bad = false;
    for (auto& it : items) {
      if (prng.uniform_u64(3) == 0) {
        it.proof.t2 = gp.mul(it.proof.t2, gp.g());
        any_bad = true;
      }
    }
    bool serial_ok = true;
    for (const auto& it : items) {
      serial_ok = serial_ok && dlog_verify(gp, it.stmt, it.proof, it.context);
    }
    EXPECT_EQ(serial_ok, !any_bad);
    Prng vr = prng.fork("verify");
    EXPECT_EQ(cp_batch_verify(gp, items, vr), serial_ok) << seed;
  }
}

// ---- VDE batches ----------------------------------------------------------

struct VdeFixture {
  GroupParams gp = toy();
  Prng prng;
  KeyPair ka;
  KeyPair kb;
  std::vector<Ciphertext> cas, cbs;
  std::vector<VdeProof> proofs;
  std::vector<std::string> contexts;

  VdeFixture(std::uint64_t seed, std::size_t k)
      : prng(seed), ka(KeyPair::generate(gp, prng)), kb(KeyPair::generate(gp, prng)) {
    for (std::size_t i = 0; i < k; ++i) {
      Bigint rho = gp.random_element(prng);
      Bigint r1 = gp.random_exponent(prng);
      Bigint r2 = gp.random_exponent(prng);
      cas.push_back(ka.public_key().encrypt_with_nonce(rho, r1));
      cbs.push_back(kb.public_key().encrypt_with_nonce(rho, r2));
      contexts.push_back("vde-" + std::to_string(i));
      proofs.push_back(vde_prove(ka.public_key(), cas.back(), r1, kb.public_key(), cbs.back(), r2,
                                 contexts.back(), prng));
    }
  }

  [[nodiscard]] std::vector<VdeBatchItem> items() const {
    std::vector<VdeBatchItem> out;
    for (std::size_t i = 0; i < proofs.size(); ++i) {
      out.push_back({&ka.public_key(), &cas[i], &kb.public_key(), &cbs[i], &proofs[i],
                     contexts[i]});
    }
    return out;
  }
};

TEST(VdeBatch, ValidBatchAcceptsAndEmptyIsTrivial) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    VdeFixture fx(seed, 4);
    Prng vr(seed * 31);
    EXPECT_TRUE(vde_batch_verify(fx.items(), vr)) << seed;
    Prng vr2(seed * 37);
    EXPECT_TRUE(vde_batch_verify(std::vector<VdeBatchItem>{}, vr2));
  }
}

TEST(VdeBatch, TamperedProofRejectedAndCulpritIsolatedAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    VdeFixture fx(seed, 4);
    std::size_t target = seed % 4;
    VdeProof& p = fx.proofs[target];
    switch (seed % 5) {
      case 0: p.g12 = fx.gp.mul(p.g12, fx.gp.g()); break;
      case 1: p.g21 = fx.gp.mul(p.g21, fx.gp.g()); break;
      case 2: p.pr1.s = mpz::addmod(p.pr1.s, Bigint(1), fx.gp.q()); break;
      case 3: p.pr2.t1 = fx.gp.mul(p.pr2.t1, fx.gp.g()); break;
      case 4: p.pr3.t2 = fx.gp.mul(p.pr3.t2, fx.gp.g()); break;
    }
    auto items = fx.items();
    Prng vr(seed * 131);
    EXPECT_FALSE(vde_batch_verify(items, vr)) << seed;
    Prng vr2(seed * 137);
    BatchResult r = vde_batch_verify_isolate(items, vr2);
    EXPECT_FALSE(r.ok) << seed;
    ASSERT_EQ(r.bad.size(), 1u) << seed;
    EXPECT_EQ(r.bad[0], target) << seed;
  }
}

TEST(VdeBatch, ProofUnderWrongKeyRejected) {
  VdeFixture fx(9, 3);
  Prng prng(900);
  // Swap in a fresh key pair for item 1's B-side: the proof no longer matches.
  KeyPair evil = KeyPair::generate(fx.gp, prng);
  auto items = fx.items();
  items[1].kb = &evil.public_key();
  Prng vr(901);
  EXPECT_FALSE(vde_batch_verify(items, vr));
  Prng vr2(902);
  BatchResult r = vde_batch_verify_isolate(items, vr2);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.bad.size(), 1u);
  EXPECT_EQ(r.bad[0], 1u);
}

TEST(VdeBatch, SwappedProofsBetweenItemsRejected) {
  VdeFixture fx(11, 3);
  // Give items 0 and 2 the same context, then cross their proofs.
  fx.contexts[0] = fx.contexts[2] = "same";
  Prng prng(1100);
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    Bigint rho = fx.gp.random_element(prng);
    Bigint r1 = fx.gp.random_exponent(prng);
    Bigint r2 = fx.gp.random_exponent(prng);
    fx.cas[i] = fx.ka.public_key().encrypt_with_nonce(rho, r1);
    fx.cbs[i] = fx.kb.public_key().encrypt_with_nonce(rho, r2);
    fx.proofs[i] = vde_prove(fx.ka.public_key(), fx.cas[i], r1, fx.kb.public_key(), fx.cbs[i], r2,
                             "same", prng);
  }
  std::swap(fx.proofs[0], fx.proofs[2]);
  Prng vr(1101);
  EXPECT_FALSE(vde_batch_verify(fx.items(), vr));
  Prng vr2(1102);
  BatchResult r = vde_batch_verify_isolate(fx.items(), vr2);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.bad, (std::vector<std::size_t>{0, 2}));
}

}  // namespace
}  // namespace dblind::zkp

// ---- Decryption-share batches ---------------------------------------------

namespace dblind::threshold {
namespace {

using elgamal::Ciphertext;
using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

struct ShareFixture {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  Prng prng;
  ServiceKeyMaterial km;
  Ciphertext c;
  std::vector<DecryptionShare> shares;

  explicit ShareFixture(std::uint64_t seed)
      : prng(seed), km(ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng)) {
    Bigint m = gp.random_element(prng);
    c = km.public_key().encrypt(m, prng);
    for (std::uint32_t i = 1; i <= 4; ++i) {
      shares.push_back(make_decryption_share(gp, c, km.share_of(i), "dec-ctx", prng));
    }
  }
};

TEST(ShareBatch, ValidSharesAccept) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ShareFixture fx(seed);
    Prng vr(seed * 7);
    EXPECT_TRUE(batch_verify_decryption_shares(fx.gp, fx.km.commitments(), fx.c, fx.shares,
                                               "dec-ctx", vr))
        << seed;
  }
}

TEST(ShareBatch, MutatedShareRejectedAndIsolatedAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    ShareFixture fx(seed);
    std::size_t target = seed % fx.shares.size();
    DecryptionShare& ds = fx.shares[target];
    switch (seed % 4) {
      case 0: ds.d = fx.gp.mul(ds.d, fx.gp.g()); break;                        // wrong share
      case 1: ds.proof.s = mpz::addmod(ds.proof.s, Bigint(1), fx.gp.q()); break;
      case 2: ds.proof.t1 = fx.gp.mul(ds.proof.t1, fx.gp.g()); break;
      case 3: ds.index = (ds.index % 4) + 1; break;  // claims another server's slot
    }
    Prng vr(seed * 17);
    EXPECT_FALSE(batch_verify_decryption_shares(fx.gp, fx.km.commitments(), fx.c, fx.shares,
                                                "dec-ctx", vr))
        << seed;
    Prng vr2(seed * 19);
    zkp::BatchResult r = batch_verify_decryption_shares_isolate(fx.gp, fx.km.commitments(), fx.c,
                                                                fx.shares, "dec-ctx", vr2);
    EXPECT_FALSE(r.ok) << seed;
    ASSERT_EQ(r.bad.size(), 1u) << seed;
    EXPECT_EQ(r.bad[0], target) << seed;
  }
}

TEST(ShareBatch, WrongContextRejected) {
  ShareFixture fx(3);
  Prng vr(33);
  EXPECT_FALSE(batch_verify_decryption_shares(fx.gp, fx.km.commitments(), fx.c, fx.shares,
                                              "other-ctx", vr));
}

TEST(ShareBatch, ZeroIndexRejected) {
  ShareFixture fx(4);
  fx.shares[0].index = 0;
  Prng vr(44);
  EXPECT_FALSE(batch_verify_decryption_shares(fx.gp, fx.km.commitments(), fx.c, fx.shares,
                                              "dec-ctx", vr));
}

}  // namespace
}  // namespace dblind::threshold
