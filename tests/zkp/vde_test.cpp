#include "zkp/vde.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"

namespace dblind::zkp {
namespace {

using elgamal::Ciphertext;
using elgamal::KeyPair;
using elgamal::PublicKey;
using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

struct DualKeys {
  GroupParams gp;
  KeyPair ka;
  KeyPair kb;

  static DualKeys make(std::uint64_t seed, ParamId id = ParamId::kToy64) {
    GroupParams gp = GroupParams::named(id);
    Prng prng(seed);
    KeyPair ka = KeyPair::generate(gp, prng);
    KeyPair kb = KeyPair::generate(gp, prng);
    return {std::move(gp), std::move(ka), std::move(kb)};
  }
};

TEST(Vde, HonestDualEncryptionVerifies) {
  DualKeys s = DualKeys::make(1);
  Prng prng(100);
  for (int i = 0; i < 10; ++i) {
    Bigint rho = s.gp.random_element(prng);
    Bigint r1 = s.gp.random_exponent(prng);
    Bigint r2 = s.gp.random_exponent(prng);
    Ciphertext ca = s.ka.public_key().encrypt_with_nonce(rho, r1);
    Ciphertext cb = s.kb.public_key().encrypt_with_nonce(rho, r2);
    VdeProof proof = vde_prove(s.ka.public_key(), ca, r1, s.kb.public_key(), cb, r2, "ctx", prng);
    EXPECT_TRUE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), cb, proof, "ctx"));
  }
}

TEST(Vde, DifferentPlaintextsRejectedByProver) {
  DualKeys s = DualKeys::make(2);
  Prng prng(101);
  Bigint rho1 = s.gp.random_element(prng);
  Bigint rho2 = s.gp.mul(rho1, s.gp.g());  // != rho1
  Bigint r1 = s.gp.random_exponent(prng);
  Bigint r2 = s.gp.random_exponent(prng);
  Ciphertext ca = s.ka.public_key().encrypt_with_nonce(rho1, r1);
  Ciphertext cb = s.kb.public_key().encrypt_with_nonce(rho2, r2);
  // Honest prover cannot construct the proof: Pr3's statement is false.
  EXPECT_THROW((void)vde_prove(s.ka.public_key(), ca, r1, s.kb.public_key(), cb, r2, "ctx", prng),
               std::invalid_argument);
}

TEST(Vde, InconsistentContributionRejectedByVerifier) {
  // Adversarial server: proves a VDE for a consistent pair, then swaps in an
  // inconsistent second ciphertext. Verifier must reject.
  DualKeys s = DualKeys::make(3);
  Prng prng(102);
  Bigint rho = s.gp.random_element(prng);
  Bigint rho_bad = s.gp.mul(rho, s.gp.g());
  Bigint r1 = s.gp.random_exponent(prng);
  Bigint r2 = s.gp.random_exponent(prng);
  Ciphertext ca = s.ka.public_key().encrypt_with_nonce(rho, r1);
  Ciphertext cb = s.kb.public_key().encrypt_with_nonce(rho, r2);
  VdeProof proof = vde_prove(s.ka.public_key(), ca, r1, s.kb.public_key(), cb, r2, "ctx", prng);

  Ciphertext cb_bad = s.kb.public_key().encrypt_with_nonce(rho_bad, r2);
  EXPECT_FALSE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), cb_bad, proof, "ctx"));
}

TEST(Vde, SameKeyBothSidesStillWorks) {
  // K_A == K_B is a legal (if unusual) configuration.
  DualKeys s = DualKeys::make(4);
  Prng prng(103);
  Bigint rho = s.gp.random_element(prng);
  Bigint r1 = s.gp.random_exponent(prng);
  Bigint r2 = s.gp.random_exponent(prng);
  Ciphertext c1 = s.ka.public_key().encrypt_with_nonce(rho, r1);
  Ciphertext c2 = s.ka.public_key().encrypt_with_nonce(rho, r2);
  VdeProof proof = vde_prove(s.ka.public_key(), c1, r1, s.ka.public_key(), c2, r2, "ctx", prng);
  EXPECT_TRUE(vde_verify(s.ka.public_key(), c1, s.ka.public_key(), c2, proof, "ctx"));
}

TEST(Vde, EqualNoncesWork) {
  // r1 == r2 makes Pr3's witness zero — still a valid proof.
  DualKeys s = DualKeys::make(5);
  Prng prng(104);
  Bigint rho = s.gp.random_element(prng);
  Bigint r = s.gp.random_exponent(prng);
  Ciphertext ca = s.ka.public_key().encrypt_with_nonce(rho, r);
  Ciphertext cb = s.kb.public_key().encrypt_with_nonce(rho, r);
  VdeProof proof = vde_prove(s.ka.public_key(), ca, r, s.kb.public_key(), cb, r, "ctx", prng);
  EXPECT_TRUE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), cb, proof, "ctx"));
}

TEST(Vde, TamperedProofComponentsRejected) {
  DualKeys s = DualKeys::make(6);
  Prng prng(105);
  Bigint rho = s.gp.random_element(prng);
  Bigint r1 = s.gp.random_exponent(prng);
  Bigint r2 = s.gp.random_exponent(prng);
  Ciphertext ca = s.ka.public_key().encrypt_with_nonce(rho, r1);
  Ciphertext cb = s.kb.public_key().encrypt_with_nonce(rho, r2);
  VdeProof proof = vde_prove(s.ka.public_key(), ca, r1, s.kb.public_key(), cb, r2, "ctx", prng);

  VdeProof bad = proof;
  bad.g12 = s.gp.mul(bad.g12, s.gp.g());
  EXPECT_FALSE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), cb, bad, "ctx"));

  bad = proof;
  bad.g21 = s.gp.mul(bad.g21, s.gp.g());
  EXPECT_FALSE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), cb, bad, "ctx"));

  bad = proof;
  bad.pr1.s = mpz::addmod(bad.pr1.s, Bigint(1), s.gp.q());
  EXPECT_FALSE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), cb, bad, "ctx"));

  bad = proof;
  bad.pr2.t1 = s.gp.mul(bad.pr2.t1, s.gp.g());
  EXPECT_FALSE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), cb, bad, "ctx"));

  bad = proof;
  bad.pr3.s = mpz::addmod(bad.pr3.s, Bigint(1), s.gp.q());
  EXPECT_FALSE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), cb, bad, "ctx"));
}

TEST(Vde, WrongContextRejected) {
  DualKeys s = DualKeys::make(7);
  Prng prng(106);
  Bigint rho = s.gp.random_element(prng);
  Bigint r1 = s.gp.random_exponent(prng);
  Bigint r2 = s.gp.random_exponent(prng);
  Ciphertext ca = s.ka.public_key().encrypt_with_nonce(rho, r1);
  Ciphertext cb = s.kb.public_key().encrypt_with_nonce(rho, r2);
  VdeProof proof =
      vde_prove(s.ka.public_key(), ca, r1, s.kb.public_key(), cb, r2, "instance-1", prng);
  EXPECT_FALSE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), cb, proof, "instance-2"));
}

TEST(Vde, NonGroupCiphertextComponentsRejected) {
  DualKeys s = DualKeys::make(8);
  Prng prng(107);
  Bigint rho = s.gp.random_element(prng);
  Bigint r1 = s.gp.random_exponent(prng);
  Bigint r2 = s.gp.random_exponent(prng);
  Ciphertext ca = s.ka.public_key().encrypt_with_nonce(rho, r1);
  Ciphertext cb = s.kb.public_key().encrypt_with_nonce(rho, r2);
  VdeProof proof = vde_prove(s.ka.public_key(), ca, r1, s.kb.public_key(), cb, r2, "ctx", prng);

  Ciphertext bad = ca;
  bad.a = s.gp.p() - Bigint(1);  // in Z_p^* but not in the subgroup
  EXPECT_FALSE(vde_verify(s.ka.public_key(), bad, s.kb.public_key(), cb, proof, "ctx"));
  bad = cb;
  bad.b = Bigint(0);
  EXPECT_FALSE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), bad, proof, "ctx"));
}

TEST(Vde, SwappedSubproofsRejected) {
  // Pr1 and Pr2 have symmetric shapes; domain separation must prevent using
  // one in place of the other.
  DualKeys s = DualKeys::make(9);
  Prng prng(108);
  Bigint rho = s.gp.random_element(prng);
  Bigint r = s.gp.random_exponent(prng);  // same nonce both sides -> same shapes
  Ciphertext ca = s.ka.public_key().encrypt_with_nonce(rho, r);
  Ciphertext cb = s.kb.public_key().encrypt_with_nonce(rho, r);
  VdeProof proof = vde_prove(s.ka.public_key(), ca, r, s.kb.public_key(), cb, r, "ctx", prng);
  VdeProof swapped = proof;
  std::swap(swapped.pr1, swapped.pr2);
  EXPECT_FALSE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), cb, swapped, "ctx"));
}

TEST(Vde, WorksOn256BitGroup) {
  DualKeys s = DualKeys::make(10, ParamId::kTest256);
  Prng prng(109);
  Bigint rho = s.gp.random_element(prng);
  Bigint r1 = s.gp.random_exponent(prng);
  Bigint r2 = s.gp.random_exponent(prng);
  Ciphertext ca = s.ka.public_key().encrypt_with_nonce(rho, r1);
  Ciphertext cb = s.kb.public_key().encrypt_with_nonce(rho, r2);
  VdeProof proof = vde_prove(s.ka.public_key(), ca, r1, s.kb.public_key(), cb, r2, "ctx", prng);
  EXPECT_TRUE(vde_verify(s.ka.public_key(), ca, s.kb.public_key(), cb, proof, "ctx"));
}

}  // namespace
}  // namespace dblind::zkp
