#include "baselines/pss_transfer.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"

namespace dblind::baselines {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Prng;

struct Fixture {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  Prng prng;
  Bigint secret;
  std::vector<threshold::Share> a_shares;
  threshold::FeldmanCommitments a_commitments;

  explicit Fixture(std::uint64_t seed, std::size_t n_a = 4, std::size_t f_a = 1) : prng(seed) {
    secret = prng.uniform_below(gp.q());
    auto poly = threshold::sharing_polynomial(secret, f_a, gp.q(), prng);
    a_commitments = threshold::feldman_commit(gp, poly);
    for (std::uint32_t i = 1; i <= n_a; ++i)
      a_shares.push_back({i, threshold::eval_polynomial(poly, i, gp.q())});
  }
};

TEST(PssTransfer, ResharedSecretReconstructsAtB) {
  Fixture fx(1);
  std::vector<threshold::Share> quorum(fx.a_shares.begin(), fx.a_shares.begin() + 2);
  PssTransferResult r = pss_transfer(fx.gp, quorum, fx.a_commitments, 7, 2, fx.prng);
  ASSERT_EQ(r.b_shares.size(), 7u);
  // Any f_B+1 = 3 new shares reconstruct the same secret.
  std::vector<threshold::Share> b_quorum = {r.b_shares[0], r.b_shares[3], r.b_shares[6]};
  EXPECT_EQ(threshold::shamir_reconstruct(b_quorum, fx.gp.q()), fx.secret);
}

TEST(PssTransfer, NewSharingIsIndependent) {
  // Resharing twice produces different share values (fresh randomness) for
  // the same secret.
  Fixture fx(2);
  std::vector<threshold::Share> quorum(fx.a_shares.begin(), fx.a_shares.begin() + 2);
  PssTransferResult r1 = pss_transfer(fx.gp, quorum, fx.a_commitments, 4, 1, fx.prng);
  PssTransferResult r2 = pss_transfer(fx.gp, quorum, fx.a_commitments, 4, 1, fx.prng);
  EXPECT_NE(r1.b_shares[0].value, r2.b_shares[0].value);
  std::vector<threshold::Share> q1 = {r1.b_shares[0], r1.b_shares[1]};
  std::vector<threshold::Share> q2 = {r2.b_shares[0], r2.b_shares[1]};
  EXPECT_EQ(threshold::shamir_reconstruct(q1, fx.gp.q()),
            threshold::shamir_reconstruct(q2, fx.gp.q()));
}

TEST(PssTransfer, NewCommitmentsVerifyNewShares) {
  Fixture fx(3);
  std::vector<threshold::Share> quorum(fx.a_shares.begin(), fx.a_shares.begin() + 2);
  PssTransferResult r = pss_transfer(fx.gp, quorum, fx.a_commitments, 4, 1, fx.prng);
  for (const threshold::Share& s : r.b_shares) {
    EXPECT_TRUE(threshold::feldman_verify(fx.gp, r.b_commitments, s)) << s.index;
  }
  // Constant term still commits to the same secret.
  EXPECT_EQ(r.b_commitments.coefficients[0], fx.gp.pow_g(fx.secret));
}

TEST(PssTransfer, SubshareVerificationCatchesCheatingDealer) {
  Fixture fx(4);
  ReshareDeal deal = pss_deal(fx.gp, fx.a_shares[0], 4, 1, fx.prng);
  EXPECT_TRUE(pss_verify_subshare(fx.gp, fx.a_commitments, deal, 2));

  // Corrupted sub-share.
  ReshareDeal bad = deal;
  bad.subshares[1].value = mpz::addmod(bad.subshares[1].value, Bigint(1), fx.gp.q());
  EXPECT_FALSE(pss_verify_subshare(fx.gp, fx.a_commitments, bad, 2));

  // Dealer resharing a DIFFERENT value than its committed share.
  threshold::Share forged{fx.a_shares[0].index,
                          mpz::addmod(fx.a_shares[0].value, Bigint(1), fx.gp.q())};
  ReshareDeal wrong = pss_deal(fx.gp, forged, 4, 1, fx.prng);
  EXPECT_FALSE(pss_verify_subshare(fx.gp, fx.a_commitments, wrong, 1));
}

TEST(PssTransfer, ProactiveRefreshWithinService) {
  // Refresh = reshare to the same (n, f): new shares, same secret. This is
  // the per-secret recurring cost the paper's approach avoids.
  Fixture fx(5);
  std::vector<threshold::Share> quorum(fx.a_shares.begin(), fx.a_shares.begin() + 2);
  PssTransferResult refreshed = pss_transfer(fx.gp, quorum, fx.a_commitments, 4, 1, fx.prng);
  std::vector<threshold::Share> new_quorum = {refreshed.b_shares[1], refreshed.b_shares[2]};
  EXPECT_EQ(threshold::shamir_reconstruct(new_quorum, fx.gp.q()), fx.secret);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NE(refreshed.b_shares[i].value, fx.a_shares[i].value);
}

TEST(PssTransfer, MessageAccountingIsQuadratic) {
  Fixture fx(6, 7, 2);
  std::vector<threshold::Share> quorum(fx.a_shares.begin(), fx.a_shares.begin() + 3);
  PssTransferResult r = pss_transfer(fx.gp, quorum, fx.a_commitments, 10, 3, fx.prng);
  EXPECT_EQ(r.messages, 3u * 10u);  // |Q| × n_B pairwise links
  EXPECT_GT(r.bytes, 0u);
}

TEST(PssTransfer, CombineValidatesInput) {
  Fixture fx(7);
  EXPECT_THROW((void)pss_combine(fx.gp, {}, 1), std::invalid_argument);
  ReshareDeal deal = pss_deal(fx.gp, fx.a_shares[0], 4, 1, fx.prng);
  std::vector<ReshareDeal> dup = {deal, deal};
  EXPECT_THROW((void)pss_combine(fx.gp, dup, 1), std::invalid_argument);
  std::vector<ReshareDeal> one = {deal};
  EXPECT_THROW((void)pss_combine(fx.gp, one, 99), std::invalid_argument);
}

TEST(PssTransfer, DegenerateSingleDealerQuorum) {
  // f_A = 0: a single share IS the secret; resharing still works.
  Fixture fx(8, 3, 0);
  std::vector<threshold::Share> quorum = {fx.a_shares[0]};
  PssTransferResult r = pss_transfer(fx.gp, quorum, fx.a_commitments, 4, 1, fx.prng);
  std::vector<threshold::Share> bq = {r.b_shares[0], r.b_shares[1]};
  EXPECT_EQ(threshold::shamir_reconstruct(bq, fx.gp.q()), fx.secret);
}

}  // namespace
}  // namespace dblind::baselines
