#include "baselines/jakobsson.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"
#include "threshold/keygen.hpp"

namespace dblind::baselines {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Prng;

struct Fixture {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  Prng prng;
  threshold::ServiceKeyMaterial a_km;  // service A (threshold)
  elgamal::KeyPair kb;                 // service B key (only y_B is used)
  Bigint m;
  elgamal::Ciphertext c;

  explicit Fixture(std::uint64_t seed, threshold::ServiceConfig cfg = {4, 1})
      : prng(seed),
        a_km(threshold::ServiceKeyMaterial::dealer_keygen(gp, cfg, prng)),
        kb(elgamal::KeyPair::generate(gp, prng)),
        m(gp.random_element(prng)),
        c(a_km.public_key().encrypt(m, prng)) {}
};

TEST(Jakobsson, QuorumReencryptsCorrectly) {
  Fixture fx(1);
  std::vector<JakobssonPartial> partials;
  for (std::uint32_t i : {1u, 3u}) {
    partials.push_back(
        jakobsson_partial(fx.gp, fx.c, fx.a_km.share_of(i), fx.kb.public_key().y(), "t1", fx.prng));
  }
  elgamal::Ciphertext out = jakobsson_combine(fx.gp, fx.c, partials);
  EXPECT_EQ(fx.kb.decrypt(out), fx.m);
}

TEST(Jakobsson, AnyQuorumWorks) {
  Fixture fx(2, {7, 2});
  for (const auto& q : std::vector<std::vector<std::uint32_t>>{{1, 2, 3}, {5, 6, 7}, {2, 4, 6}}) {
    std::vector<JakobssonPartial> partials;
    for (std::uint32_t i : q)
      partials.push_back(jakobsson_partial(fx.gp, fx.c, fx.a_km.share_of(i),
                                           fx.kb.public_key().y(), "t", fx.prng));
    EXPECT_EQ(fx.kb.decrypt(jakobsson_combine(fx.gp, fx.c, partials)), fx.m);
  }
}

TEST(Jakobsson, OutputIsFreshCiphertext) {
  Fixture fx(3);
  std::vector<JakobssonPartial> partials;
  for (std::uint32_t i : {1u, 2u})
    partials.push_back(jakobsson_partial(fx.gp, fx.c, fx.a_km.share_of(i),
                                         fx.kb.public_key().y(), "t", fx.prng));
  elgamal::Ciphertext out = jakobsson_combine(fx.gp, fx.c, partials);
  EXPECT_NE(out.a, fx.c.a);
  EXPECT_NE(out.b, fx.c.b);
  // Not decryptable as-is under A's key semantics... it IS a valid E_B(m).
  EXPECT_TRUE(fx.kb.public_key().well_formed(out));
}

TEST(Jakobsson, PartialsVerify) {
  Fixture fx(4);
  for (std::uint32_t i = 1; i <= 4; ++i) {
    JakobssonPartial p = jakobsson_partial(fx.gp, fx.c, fx.a_km.share_of(i),
                                           fx.kb.public_key().y(), "ctx", fx.prng);
    EXPECT_TRUE(jakobsson_verify_partial(fx.gp, fx.a_km.commitments(), fx.c,
                                         fx.kb.public_key().y(), p, "ctx"))
        << i;
  }
}

TEST(Jakobsson, TamperedPartialsRejected) {
  Fixture fx(5);
  JakobssonPartial p = jakobsson_partial(fx.gp, fx.c, fx.a_km.share_of(2),
                                         fx.kb.public_key().y(), "ctx", fx.prng);

  JakobssonPartial bad = p;
  bad.enc_y = fx.gp.mul(bad.enc_y, fx.gp.g());  // would shift the plaintext!
  EXPECT_FALSE(jakobsson_verify_partial(fx.gp, fx.a_km.commitments(), fx.c,
                                        fx.kb.public_key().y(), bad, "ctx"));

  bad = p;
  bad.dec.d = fx.gp.mul(bad.dec.d, fx.gp.g());
  EXPECT_FALSE(jakobsson_verify_partial(fx.gp, fx.a_km.commitments(), fx.c,
                                        fx.kb.public_key().y(), bad, "ctx"));

  bad = p;
  bad.index = 3;
  EXPECT_FALSE(jakobsson_verify_partial(fx.gp, fx.a_km.commitments(), fx.c,
                                        fx.kb.public_key().y(), bad, "ctx"));

  // Context binding.
  EXPECT_FALSE(jakobsson_verify_partial(fx.gp, fx.a_km.commitments(), fx.c,
                                        fx.kb.public_key().y(), p, "other-ctx"));
}

TEST(Jakobsson, UndetectedTamperingWouldCorruptPlaintext) {
  // Shows WHY the proofs matter: combining with a tampered enc_y yields a
  // ciphertext of a different plaintext.
  Fixture fx(6);
  std::vector<JakobssonPartial> partials;
  for (std::uint32_t i : {1u, 2u})
    partials.push_back(jakobsson_partial(fx.gp, fx.c, fx.a_km.share_of(i),
                                         fx.kb.public_key().y(), "t", fx.prng));
  partials[0].enc_y = fx.gp.mul(partials[0].enc_y, fx.gp.g());
  EXPECT_NE(fx.kb.decrypt(jakobsson_combine(fx.gp, fx.c, partials)), fx.m);
}

TEST(Jakobsson, CombineRejectsBadInput) {
  Fixture fx(7);
  EXPECT_THROW((void)jakobsson_combine(fx.gp, fx.c, {}), std::invalid_argument);
  JakobssonPartial p = jakobsson_partial(fx.gp, fx.c, fx.a_km.share_of(1),
                                         fx.kb.public_key().y(), "t", fx.prng);
  std::vector<JakobssonPartial> dup = {p, p};
  EXPECT_THROW((void)jakobsson_combine(fx.gp, fx.c, dup), std::invalid_argument);
}

TEST(Jakobsson, MatchesBlindingProtocolSemantics) {
  // Both re-encryption approaches produce ciphertexts of the same m under B.
  Fixture fx(8);
  std::vector<JakobssonPartial> partials;
  for (std::uint32_t i : {1u, 2u})
    partials.push_back(jakobsson_partial(fx.gp, fx.c, fx.a_km.share_of(i),
                                         fx.kb.public_key().y(), "t", fx.prng));
  elgamal::Ciphertext via_jakobsson = jakobsson_combine(fx.gp, fx.c, partials);

  // Blinding path (centralized math, as in Fig. 2).
  Bigint rho = fx.gp.random_element(fx.prng);
  elgamal::Ciphertext ea_rho = fx.a_km.public_key().encrypt(rho, fx.prng);
  elgamal::Ciphertext eb_rho = fx.kb.public_key().encrypt(rho, fx.prng);
  auto blinded = fx.a_km.public_key().multiply(fx.c, ea_rho);
  ASSERT_TRUE(blinded.has_value());
  // Threshold-decrypt E_A(mρ).
  std::vector<threshold::DecryptionShare> shares;
  for (std::uint32_t i : {1u, 2u})
    shares.push_back(
        threshold::make_decryption_share(fx.gp, *blinded, fx.a_km.share_of(i), "d", fx.prng));
  Bigint m_rho = threshold::combine_decryption(fx.gp, *blinded, shares);
  elgamal::Ciphertext via_blinding =
      fx.kb.public_key().juxtapose(m_rho, fx.kb.public_key().inverse(eb_rho));

  EXPECT_EQ(fx.kb.decrypt(via_jakobsson), fx.kb.decrypt(via_blinding));
  EXPECT_EQ(fx.kb.decrypt(via_blinding), fx.m);
}

}  // namespace
}  // namespace dblind::baselines
