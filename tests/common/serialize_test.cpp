// Round-trip and rejection tests for the persistence encodings.
#include <gtest/gtest.h>

#include "elgamal/serialize.hpp"
#include "group/serialize.hpp"
#include "threshold/keygen.hpp"
#include "threshold/serialize.hpp"
#include "threshold/thresh_decrypt.hpp"

namespace dblind {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

TEST(SerializeGroup, RoundTripAllNamedParams) {
  Prng prng(1);
  for (ParamId id : {ParamId::kToy64, ParamId::kTest128, ParamId::kTest256}) {
    GroupParams gp = GroupParams::named(id);
    auto bytes = group::group_params_to_bytes(gp);
    GroupParams back = group::group_params_from_bytes(bytes, prng);
    EXPECT_TRUE(back == gp);
    GroupParams trusted = group::group_params_from_bytes_trusted(bytes);
    EXPECT_TRUE(trusted == gp);
  }
}

TEST(SerializeGroup, HexRoundTrip) {
  Prng prng(2);
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  std::string hex = group::group_params_to_hex(gp);
  EXPECT_TRUE(group::group_params_from_hex(hex, prng) == gp);
}

TEST(SerializeGroup, TamperedParamsRejected) {
  Prng prng(3);
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  auto bytes = group::group_params_to_bytes(gp);

  // Bad tag.
  auto bad = bytes;
  bad[0] = 0x7F;
  EXPECT_THROW((void)group::group_params_from_bytes(bad, prng), common::CodecError);

  // Truncated.
  auto trunc = bytes;
  trunc.resize(trunc.size() / 2);
  EXPECT_THROW((void)group::group_params_from_bytes(trunc, prng), common::CodecError);

  // Trailing garbage.
  auto extra = bytes;
  extra.push_back(0);
  EXPECT_THROW((void)group::group_params_from_bytes(extra, prng), common::CodecError);

  // Structurally broken (p != 2q+1): flip low byte of p.
  auto broken = bytes;
  broken[bytes.size() - 1] ^= 0xFF;  // mutates g actually; craft p-break instead below
  // Craft: encode with q+1.
  common::Writer w;
  w.u8(0x11);
  w.bigint(gp.p());
  w.bigint(gp.q() + Bigint(1));
  w.bigint(gp.g());
  EXPECT_THROW((void)group::group_params_from_bytes_trusted(w.view()), std::invalid_argument);
}

TEST(SerializeGroup, NonPrimeRejectedByCheckedLoad) {
  Prng prng(4);
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  // q' = q + 2 keeps structure checkable but breaks primality of p' = 2q'+1
  // (or of q'); construct p' = 2q'+1 so structure passes.
  Bigint q2 = gp.q() + Bigint(2);
  Bigint p2 = q2.shl(1) + Bigint(1);
  common::Writer w;
  w.u8(0x11);
  w.bigint(p2);
  w.bigint(q2);
  w.bigint(Bigint(4));
  EXPECT_THROW((void)group::group_params_from_bytes(w.view(), prng), std::invalid_argument);
}

TEST(SerializeElGamal, PublicKeyRoundTrip) {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  Prng prng(5);
  elgamal::KeyPair kp = elgamal::KeyPair::generate(gp, prng);
  auto bytes = elgamal::public_key_to_bytes(kp.public_key());
  elgamal::PublicKey back = elgamal::public_key_from_bytes(bytes);
  EXPECT_TRUE(back == kp.public_key());
  // And it still encrypts/decrypts against the original private key.
  Bigint m = gp.random_element(prng);
  EXPECT_EQ(kp.decrypt(back.encrypt(m, prng)), m);
}

TEST(SerializeElGamal, PublicKeyWithBadPointRejected) {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  common::Writer w;
  w.u8(0x21);
  w.bytes(group::group_params_to_bytes(gp));
  w.bigint(gp.p() - Bigint(1));  // non-residue, not in subgroup
  EXPECT_THROW((void)elgamal::public_key_from_bytes(w.view()), std::invalid_argument);
}

TEST(SerializeElGamal, CiphertextRoundTrip) {
  GroupParams gp = GroupParams::named(ParamId::kTest128);
  Prng prng(6);
  elgamal::KeyPair kp = elgamal::KeyPair::generate(gp, prng);
  elgamal::Ciphertext c = kp.public_key().encrypt(gp.random_element(prng), prng);
  auto bytes = elgamal::ciphertext_to_bytes(c);
  EXPECT_EQ(elgamal::ciphertext_from_bytes(bytes), c);
  bytes.push_back(0);
  EXPECT_THROW((void)elgamal::ciphertext_from_bytes(bytes), common::CodecError);
}

TEST(SerializeThreshold, ShareRoundTrip) {
  threshold::Share s{7, Bigint::from_hex("deadbeef12345678")};
  auto bytes = threshold::share_to_bytes(s);
  EXPECT_EQ(threshold::share_from_bytes(bytes), s);

  // Zero index rejected.
  threshold::Share z{0, Bigint(1)};
  auto zb = threshold::share_to_bytes(z);
  EXPECT_THROW((void)threshold::share_from_bytes(zb), common::CodecError);
}

TEST(SerializeThreshold, CommitmentsRoundTrip) {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  Prng prng(7);
  auto poly = threshold::sharing_polynomial(Bigint(42), 3, gp.q(), prng);
  threshold::FeldmanCommitments c = threshold::feldman_commit(gp, poly);
  auto bytes = threshold::commitments_to_bytes(c);
  EXPECT_EQ(threshold::commitments_from_bytes(bytes), c);

  // Empty commitments rejected.
  common::Writer w;
  w.u8(0x32);
  w.u32(0);
  EXPECT_THROW((void)threshold::commitments_from_bytes(w.view()), common::CodecError);
}

TEST(SerializeThreshold, SharesSurviveStorageAndStillDecrypt) {
  // Full scenario: persist a server's share + service commitments, reload,
  // and produce a verifiable decryption share.
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  Prng prng(8);
  auto km = threshold::ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  Bigint m = gp.random_element(prng);
  elgamal::Ciphertext c = km.public_key().encrypt(m, prng);

  auto share_blob = threshold::share_to_bytes(km.share_of(2));
  auto comm_blob = threshold::commitments_to_bytes(km.commitments());

  threshold::Share share = threshold::share_from_bytes(share_blob);
  threshold::FeldmanCommitments comm = threshold::commitments_from_bytes(comm_blob);
  auto ds = threshold::make_decryption_share(gp, c, share, "ctx", prng);
  EXPECT_TRUE(threshold::verify_decryption_share(gp, comm, c, ds, "ctx"));
}

}  // namespace
}  // namespace dblind
