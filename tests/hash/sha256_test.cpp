#include "hash/sha256.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace dblind::hash {
namespace {

std::string hex_digest(std::string_view s) { return to_hex(Sha256::digest(s)); }

// FIPS 180-4 / NIST CAVP known-answer tests.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_digest(""), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_digest("abc"), "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_digest("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactlyOneBlock) {
  // 64 bytes: padding spills into a second block.
  std::string s(64, 'a');
  EXPECT_EQ(hex_digest(s), "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, MillionAs) {
  std::string s(1000000, 'a');
  EXPECT_EQ(hex_digest(s), "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(to_hex(h.finish()), hex_digest(msg)) << split;
  }
}

TEST(Sha256, ManySmallUpdates) {
  Sha256 h;
  std::string msg;
  for (int i = 0; i < 300; ++i) {
    std::string piece(1, static_cast<char>('a' + i % 26));
    h.update(piece);
    msg += piece;
  }
  EXPECT_EQ(to_hex(h.finish()), hex_digest(msg));
}

TEST(Sha256, LengthSensitivity) {
  // Messages around the 55/56-byte padding boundary all hash differently.
  std::string prev;
  for (std::size_t len = 50; len <= 70; ++len) {
    std::string cur = to_hex(Sha256::digest(std::string(len, 'x')));
    EXPECT_NE(cur, prev);
    prev = cur;
  }
}

// RFC 4231 HMAC-SHA256 test vectors.
TEST(HmacSha256, Rfc4231Case1) {
  std::vector<std::uint8_t> key(20, 0x0b);
  std::string data = "Hi There";
  auto mac = hmac_sha256(key, std::span<const std::uint8_t>(
                                  reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(to_hex(mac), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  std::string key = "Jefe";
  std::string data = "what do ya want for nothing?";
  auto mac = hmac_sha256(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()),
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()),
                                    data.size()));
  EXPECT_EQ(to_hex(mac), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  std::vector<std::uint8_t> key(20, 0xaa);
  std::vector<std::uint8_t> data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  std::vector<std::uint8_t> key(131, 0xaa);
  std::string data = "Test Using Larger Than Block-Size Key - Hash Key First";
  auto mac = hmac_sha256(key, std::span<const std::uint8_t>(
                                  reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
  EXPECT_EQ(to_hex(mac), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hex, RoundTrip) {
  std::vector<std::uint8_t> bytes = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(bytes), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), bytes);
  EXPECT_EQ(from_hex("0001ABFF7F"), bytes);
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, Errors) {
  EXPECT_THROW((void)from_hex("abc"), std::invalid_argument);
  EXPECT_THROW((void)from_hex("zz"), std::invalid_argument);
}

}  // namespace
}  // namespace dblind::hash
