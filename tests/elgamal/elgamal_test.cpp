#include "elgamal/elgamal.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "mpz/modmath.hpp"

namespace dblind::elgamal {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

GroupParams toy() { return GroupParams::named(ParamId::kToy64); }

TEST(ElGamal, EncryptDecryptRoundTrip) {
  GroupParams gp = toy();
  Prng prng(1);
  KeyPair kp = KeyPair::generate(gp, prng);
  for (int i = 0; i < 20; ++i) {
    Bigint m = gp.random_element(prng);
    Ciphertext c = kp.public_key().encrypt(m, prng);
    EXPECT_EQ(kp.decrypt(c), m);
  }
}

TEST(ElGamal, EncryptionIsRandomized) {
  GroupParams gp = toy();
  Prng prng(2);
  KeyPair kp = KeyPair::generate(gp, prng);
  Bigint m = gp.random_element(prng);
  Ciphertext c1 = kp.public_key().encrypt(m, prng);
  Ciphertext c2 = kp.public_key().encrypt(m, prng);
  EXPECT_NE(c1, c2);
  EXPECT_EQ(kp.decrypt(c1), kp.decrypt(c2));
}

TEST(ElGamal, KnownNonceMatchesDefinition) {
  GroupParams gp = toy();
  Prng prng(3);
  KeyPair kp = KeyPair::generate(gp, prng);
  Bigint m = gp.random_element(prng);
  Bigint r = gp.random_exponent(prng);
  Ciphertext c = kp.public_key().encrypt_with_nonce(m, r);
  EXPECT_EQ(c.a, gp.pow_g(r));
  EXPECT_EQ(c.b, gp.mul(m, gp.pow(kp.public_key().y(), r)));
}

TEST(ElGamal, RejectsBadPlaintextAndNonce) {
  GroupParams gp = toy();
  Prng prng(4);
  KeyPair kp = KeyPair::generate(gp, prng);
  // Non-residue plaintext.
  EXPECT_THROW((void)kp.public_key().encrypt(gp.p() - Bigint(1), prng), std::invalid_argument);
  EXPECT_THROW((void)kp.public_key().encrypt(Bigint(0), prng), std::invalid_argument);
  // Nonce 0 and >= q.
  Bigint m = gp.random_element(prng);
  EXPECT_THROW((void)kp.public_key().encrypt_with_nonce(m, Bigint(0)), std::invalid_argument);
  EXPECT_THROW((void)kp.public_key().encrypt_with_nonce(m, gp.q()), std::invalid_argument);
}

TEST(ElGamal, DecryptRejectsMalformed) {
  GroupParams gp = toy();
  Prng prng(5);
  KeyPair kp = KeyPair::generate(gp, prng);
  EXPECT_THROW((void)kp.decrypt({Bigint(0), Bigint(5)}), std::invalid_argument);
  EXPECT_THROW((void)kp.decrypt({Bigint(5), gp.p()}), std::invalid_argument);
}

TEST(ElGamal, PublicKeyValidatesY) {
  GroupParams gp = toy();
  EXPECT_THROW(PublicKey(gp, Bigint(0)), std::invalid_argument);
  EXPECT_THROW(PublicKey(gp, gp.p() - Bigint(1)), std::invalid_argument);  // non-residue
}

TEST(ElGamal, KeyPairFromPrivateValidates) {
  GroupParams gp = toy();
  EXPECT_THROW((void)KeyPair::from_private(gp, Bigint(0)), std::invalid_argument);
  EXPECT_THROW((void)KeyPair::from_private(gp, gp.q()), std::invalid_argument);
  KeyPair kp = KeyPair::from_private(gp, Bigint(12345));
  EXPECT_EQ(kp.public_key().y(), gp.pow_g(Bigint(12345)));
}

// --- §3 ciphertext algebra -------------------------------------------------

TEST(ElGamalAlgebra, InverseProperty) {
  // E(m)^{-1} ∈ E(m^{-1})
  GroupParams gp = toy();
  Prng prng(6);
  KeyPair kp = KeyPair::generate(gp, prng);
  Bigint m = gp.random_element(prng);
  Ciphertext c = kp.public_key().encrypt(m, prng);
  Ciphertext inv = kp.public_key().inverse(c);
  EXPECT_EQ(kp.decrypt(inv), gp.inv(m));
}

TEST(ElGamalAlgebra, JuxtapositionProperty) {
  // m' · E(m, r) = E(m'm, r)
  GroupParams gp = toy();
  Prng prng(7);
  KeyPair kp = KeyPair::generate(gp, prng);
  Bigint m = gp.random_element(prng);
  Bigint mp = gp.random_element(prng);
  Bigint r = gp.random_exponent(prng);
  Ciphertext c = kp.public_key().encrypt_with_nonce(m, r);
  Ciphertext juxta = kp.public_key().juxtapose(mp, c);
  // Same nonce r, product plaintext.
  EXPECT_EQ(juxta, kp.public_key().encrypt_with_nonce(gp.mul(m, mp), r));
  EXPECT_EQ(kp.decrypt(juxta), gp.mul(m, mp));
}

TEST(ElGamalAlgebra, MultiplicationProperty) {
  // E(m1) × E(m2) ∈ E(m1*m2)
  GroupParams gp = toy();
  Prng prng(8);
  KeyPair kp = KeyPair::generate(gp, prng);
  Bigint m1 = gp.random_element(prng);
  Bigint m2 = gp.random_element(prng);
  Ciphertext c1 = kp.public_key().encrypt(m1, prng);
  Ciphertext c2 = kp.public_key().encrypt(m2, prng);
  auto prod = kp.public_key().multiply(c1, c2);
  ASSERT_TRUE(prod.has_value());
  EXPECT_EQ(kp.decrypt(*prod), gp.mul(m1, m2));
}

TEST(ElGamalAlgebra, MultiplicationSideConditionDetected) {
  // r2 = q - r1 makes r1 + r2 ≡ 0, i.e. a == 1: the degenerate case the
  // paper's side condition catches (and that would otherwise leak m1*m2).
  GroupParams gp = toy();
  Prng prng(9);
  KeyPair kp = KeyPair::generate(gp, prng);
  Bigint m1 = gp.random_element(prng);
  Bigint m2 = gp.random_element(prng);
  Bigint r1 = gp.random_exponent(prng);
  Bigint r2 = gp.q() - r1;
  Ciphertext c1 = kp.public_key().encrypt_with_nonce(m1, r1);
  Ciphertext c2 = kp.public_key().encrypt_with_nonce(m2, r2);
  auto prod = kp.public_key().multiply(c1, c2);
  EXPECT_FALSE(prod.has_value());
  // And indeed the degenerate "ciphertext" would expose the plaintext:
  EXPECT_EQ(gp.mul(c1.b, c2.b), gp.mul(m1, m2));
}

TEST(ElGamalAlgebra, ProductOfMany) {
  GroupParams gp = toy();
  Prng prng(10);
  KeyPair kp = KeyPair::generate(gp, prng);
  std::vector<Ciphertext> cs;
  Bigint expect(1);
  for (int i = 0; i < 7; ++i) {
    Bigint m = gp.random_element(prng);
    expect = gp.mul(expect, m);
    cs.push_back(kp.public_key().encrypt(m, prng));
  }
  auto prod = kp.public_key().product(cs);
  ASSERT_TRUE(prod.has_value());
  EXPECT_EQ(kp.decrypt(*prod), expect);
}

TEST(ElGamalAlgebra, ProductToleratesDegenerateIntermediate) {
  // The side condition constrains only the total nonce sum; an intermediate
  // cancellation must not abort the fold.
  GroupParams gp = toy();
  Prng prng(11);
  KeyPair kp = KeyPair::generate(gp, prng);
  Bigint r1 = gp.random_exponent(prng);
  Bigint m1 = gp.random_element(prng);
  Bigint m2 = gp.random_element(prng);
  Bigint m3 = gp.random_element(prng);
  std::vector<Ciphertext> cs = {
      kp.public_key().encrypt_with_nonce(m1, r1),
      kp.public_key().encrypt_with_nonce(m2, gp.q() - r1),  // cancels r1
      kp.public_key().encrypt(m3, prng),
  };
  auto prod = kp.public_key().product(cs);
  ASSERT_TRUE(prod.has_value());
  EXPECT_EQ(kp.decrypt(*prod), gp.mul(gp.mul(m1, m2), m3));
}

TEST(ElGamalAlgebra, ProductDetectsTotalDegeneracy) {
  GroupParams gp = toy();
  Prng prng(12);
  KeyPair kp = KeyPair::generate(gp, prng);
  Bigint r1 = gp.random_exponent(prng);
  std::vector<Ciphertext> cs = {
      kp.public_key().encrypt_with_nonce(gp.random_element(prng), r1),
      kp.public_key().encrypt_with_nonce(gp.random_element(prng), gp.q() - r1),
  };
  EXPECT_FALSE(kp.public_key().product(cs).has_value());
}

TEST(ElGamalAlgebra, ProductOfEmptyThrows) {
  GroupParams gp = toy();
  Prng prng(13);
  KeyPair kp = KeyPair::generate(gp, prng);
  EXPECT_THROW((void)kp.public_key().product({}), std::invalid_argument);
}

TEST(ElGamal, WellFormedChecks) {
  GroupParams gp = toy();
  Prng prng(14);
  KeyPair kp = KeyPair::generate(gp, prng);
  Ciphertext good = kp.public_key().encrypt(gp.random_element(prng), prng);
  EXPECT_TRUE(kp.public_key().well_formed(good));
  EXPECT_FALSE(kp.public_key().well_formed({Bigint(0), good.b}));
  EXPECT_FALSE(kp.public_key().well_formed({good.a, gp.p()}));
}

// Blinding/un-blinding algebra (paper Fig. 1/2, single-key core): verifies
// the derivation chain (mρ)·E_B(ρ)^{-1} ∈ E_B(m) used by step 4.
TEST(ElGamalAlgebra, BlindUnblindChain) {
  GroupParams gp = toy();
  Prng prng(15);
  KeyPair ka = KeyPair::generate(gp, prng);
  KeyPair kb = KeyPair::generate(gp, prng);
  Bigint m = gp.random_element(prng);
  Bigint rho = gp.random_element(prng);

  Ciphertext ea_m = ka.public_key().encrypt(m, prng);
  Ciphertext ea_rho = ka.public_key().encrypt(rho, prng);
  Ciphertext eb_rho = kb.public_key().encrypt(rho, prng);

  auto blinded = ka.public_key().multiply(ea_m, ea_rho);
  ASSERT_TRUE(blinded.has_value());
  Bigint m_rho = ka.decrypt(*blinded);
  EXPECT_EQ(m_rho, gp.mul(m, rho));

  Ciphertext eb_m = kb.public_key().juxtapose(m_rho, kb.public_key().inverse(eb_rho));
  EXPECT_EQ(kb.decrypt(eb_m), m);
}

}  // namespace
}  // namespace dblind::elgamal
