#include "threshold/pedersen_dkg.hpp"

#include <gtest/gtest.h>

#include "threshold/thresh_decrypt.hpp"

namespace dblind::threshold {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

GroupParams toy() { return GroupParams::named(ParamId::kToy64); }

TEST(PedersenDkg, HonestRunProducesWorkingKey) {
  GroupParams gp = toy();
  Prng prng(1);
  PedersenDkgResult r = run_pedersen_dkg(gp, {4, 1}, prng);
  EXPECT_TRUE(r.disqualified_phase1.empty());
  EXPECT_TRUE(r.exposed_phase2.empty());

  std::vector<Share> quorum = {r.material.share_of(1), r.material.share_of(3)};
  EXPECT_EQ(gp.pow_g(shamir_reconstruct(quorum, gp.q())), r.material.public_key().y());
}

TEST(PedersenDkg, SharesFeldmanVerify) {
  GroupParams gp = toy();
  Prng prng(2);
  PedersenDkgResult r = run_pedersen_dkg(gp, {7, 2}, prng);
  for (std::uint32_t i = 1; i <= 7; ++i)
    EXPECT_TRUE(feldman_verify(gp, r.material.commitments(), r.material.share_of(i))) << i;
}

TEST(PedersenDkg, Phase1CheaterDisqualified) {
  GroupParams gp = toy();
  Prng prng(3);
  PedersenDkgResult r = run_pedersen_dkg(gp, {4, 1}, prng, {3});
  EXPECT_EQ(r.disqualified_phase1, (std::vector<std::uint32_t>{3}));
  std::vector<Share> quorum = {r.material.share_of(2), r.material.share_of(4)};
  EXPECT_EQ(gp.pow_g(shamir_reconstruct(quorum, gp.q())), r.material.public_key().y());
}

TEST(PedersenDkg, Phase2CheaterExposedButKeyUnbiased) {
  // The crucial difference from joint-Feldman: a dealer that misbehaves
  // AFTER seeing others' openings stays in QUAL (its true contribution is
  // reconstructed), so it cannot bias the key by strategic self-exclusion.
  GroupParams gp = toy();
  Prng prng(4);
  PedersenDkgResult cheat = run_pedersen_dkg(gp, {4, 1}, prng, {}, {2});
  EXPECT_TRUE(cheat.disqualified_phase1.empty());
  EXPECT_EQ(cheat.exposed_phase2, (std::vector<std::uint32_t>{2}));

  // Identical run without the phase-2 cheat produces the SAME key: the cheat
  // changed nothing about the outcome.
  Prng prng2(4);
  PedersenDkgResult honest = run_pedersen_dkg(gp, {4, 1}, prng2);
  EXPECT_EQ(cheat.material.public_key().y(), honest.material.public_key().y());
  // And the shares still match the joint commitments.
  for (std::uint32_t i = 1; i <= 4; ++i)
    EXPECT_TRUE(feldman_verify(gp, cheat.material.commitments(), cheat.material.share_of(i)));
}

TEST(PedersenDkg, KeyWorksForThresholdDecryption) {
  GroupParams gp = toy();
  Prng prng(5);
  PedersenDkgResult r = run_pedersen_dkg(gp, {4, 1}, prng, {}, {1});
  Bigint m = gp.random_element(prng);
  elgamal::Ciphertext c = r.material.public_key().encrypt(m, prng);
  std::vector<DecryptionShare> shares;
  for (std::uint32_t i : {2u, 3u}) {
    auto ds = make_decryption_share(gp, c, r.material.share_of(i), "ctx", prng);
    EXPECT_TRUE(verify_decryption_share(gp, r.material.commitments(), c, ds, "ctx"));
    shares.push_back(std::move(ds));
  }
  EXPECT_EQ(combine_decryption(gp, c, shares), m);
}

TEST(PedersenDkg, TooManyPhase1CheatersThrow) {
  GroupParams gp = toy();
  Prng prng(6);
  EXPECT_THROW((void)run_pedersen_dkg(gp, {4, 3}, prng, {1}), std::runtime_error);
  EXPECT_THROW((void)run_pedersen_dkg(gp, {2, 2}, prng), std::invalid_argument);
}

TEST(PedersenDkg, DifferentRunsDifferentKeys) {
  GroupParams gp = toy();
  Prng prng(7);
  PedersenDkgResult a = run_pedersen_dkg(gp, {4, 1}, prng);
  PedersenDkgResult b = run_pedersen_dkg(gp, {4, 1}, prng);
  EXPECT_NE(a.material.public_key().y(), b.material.public_key().y());
}

}  // namespace
}  // namespace dblind::threshold
