#include "threshold/pedersen_vss.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"

namespace dblind::threshold {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

zkp::PedersenParams make() {
  return zkp::PedersenParams(GroupParams::named(ParamId::kToy64), "vss-test");
}

TEST(PedersenVss, SharesVerifyAndReconstruct) {
  zkp::PedersenParams pp = make();
  Prng prng(1);
  Bigint secret = prng.uniform_below(pp.group().q());
  PedersenDeal deal = pedersen_share(pp, secret, 7, 2, prng);
  ASSERT_EQ(deal.shares.size(), 7u);
  ASSERT_EQ(deal.commitments.size(), 3u);
  for (const PedersenShare& s : deal.shares) {
    EXPECT_TRUE(pedersen_verify(pp, deal.commitments, s)) << s.index;
  }
  std::vector<PedersenShare> quorum = {deal.shares[1], deal.shares[4], deal.shares[6]};
  EXPECT_EQ(pedersen_reconstruct(pp, quorum), secret);
}

TEST(PedersenVss, CommitmentsHideTheSecret) {
  // Unlike Feldman, the constant-term commitment is NOT g^{secret}: it is
  // blinded by h^{b_0}.
  zkp::PedersenParams pp = make();
  Prng prng(2);
  Bigint secret = prng.uniform_below(pp.group().q());
  PedersenDeal deal = pedersen_share(pp, secret, 4, 1, prng);
  EXPECT_NE(deal.commitments[0], pp.group().pow_g(secret));
}

TEST(PedersenVss, TamperedSharesRejected) {
  zkp::PedersenParams pp = make();
  Prng prng(3);
  PedersenDeal deal = pedersen_share(pp, Bigint(42), 4, 1, prng);
  PedersenShare bad = deal.shares[2];
  bad.value = mpz::addmod(bad.value, Bigint(1), pp.group().q());
  EXPECT_FALSE(pedersen_verify(pp, deal.commitments, bad));

  bad = deal.shares[2];
  bad.blinding = mpz::addmod(bad.blinding, Bigint(1), pp.group().q());
  EXPECT_FALSE(pedersen_verify(pp, deal.commitments, bad));

  bad = deal.shares[2];
  bad.index = 4;  // claims another evaluation point
  EXPECT_FALSE(pedersen_verify(pp, deal.commitments, bad));
}

TEST(PedersenVss, OutOfRangeSharesRejected) {
  zkp::PedersenParams pp = make();
  Prng prng(4);
  PedersenDeal deal = pedersen_share(pp, Bigint(1), 4, 1, prng);
  PedersenShare bad = deal.shares[0];
  bad.value = pp.group().q();
  EXPECT_FALSE(pedersen_verify(pp, deal.commitments, bad));
  bad = deal.shares[0];
  bad.index = 0;
  EXPECT_FALSE(pedersen_verify(pp, deal.commitments, bad));
}

TEST(PedersenVss, AdditiveAcrossDeals) {
  // Pedersen-VSS deals add: shares and commitments of two deals combine to a
  // valid sharing of the sum — the building block of unbiased DKGs.
  zkp::PedersenParams pp = make();
  Prng prng(5);
  const Bigint& q = pp.group().q();
  Bigint s1 = prng.uniform_below(q);
  Bigint s2 = prng.uniform_below(q);
  PedersenDeal d1 = pedersen_share(pp, s1, 4, 1, prng);
  PedersenDeal d2 = pedersen_share(pp, s2, 4, 1, prng);

  std::vector<Bigint> joint_commitments;
  for (std::size_t j = 0; j < d1.commitments.size(); ++j)
    joint_commitments.push_back(pp.add(d1.commitments[j], d2.commitments[j]));
  std::vector<PedersenShare> joint_shares;
  for (std::uint32_t i = 0; i < 4; ++i) {
    joint_shares.push_back({i + 1, mpz::addmod(d1.shares[i].value, d2.shares[i].value, q),
                            mpz::addmod(d1.shares[i].blinding, d2.shares[i].blinding, q)});
    EXPECT_TRUE(pedersen_verify(pp, joint_commitments, joint_shares.back()));
  }
  std::vector<PedersenShare> quorum = {joint_shares[0], joint_shares[3]};
  EXPECT_EQ(pedersen_reconstruct(pp, quorum), mpz::addmod(s1, s2, q));
}

TEST(PedersenVss, BadArgumentsThrow) {
  zkp::PedersenParams pp = make();
  Prng prng(6);
  EXPECT_THROW((void)pedersen_share(pp, Bigint(1), 2, 2, prng), std::invalid_argument);
  EXPECT_THROW((void)pedersen_reconstruct(pp, {}), std::invalid_argument);
  PedersenDeal deal = pedersen_share(pp, Bigint(1), 4, 1, prng);
  std::vector<PedersenShare> dup = {deal.shares[0], deal.shares[0]};
  EXPECT_THROW((void)pedersen_reconstruct(pp, dup), std::invalid_argument);
}

}  // namespace
}  // namespace dblind::threshold
