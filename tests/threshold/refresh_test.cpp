#include "threshold/refresh.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"
#include "threshold/thresh_decrypt.hpp"

namespace dblind::threshold {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

GroupParams toy() { return GroupParams::named(ParamId::kToy64); }

TEST(Refresh, PublicKeyUnchangedSharesChanged) {
  GroupParams gp = toy();
  Prng prng(1);
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  ServiceKeyMaterial fresh = refresh_service(km, prng);

  EXPECT_EQ(fresh.public_key().y(), km.public_key().y());
  for (std::uint32_t i = 1; i <= 4; ++i) {
    EXPECT_NE(fresh.share_of(i).value, km.share_of(i).value) << i;
  }
}

TEST(Refresh, NewSharesReconstructSameKey) {
  GroupParams gp = toy();
  Prng prng(2);
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, {7, 2}, prng);
  std::vector<Share> old_q = {km.share_of(1), km.share_of(2), km.share_of(3)};
  Bigint key = shamir_reconstruct(old_q, gp.q());

  ServiceKeyMaterial fresh = refresh_service(km, prng);
  std::vector<Share> new_q = {fresh.share_of(4), fresh.share_of(5), fresh.share_of(7)};
  EXPECT_EQ(shamir_reconstruct(new_q, gp.q()), key);
}

TEST(Refresh, MixedOldNewSharesDoNotReconstruct) {
  // The point of refresh: shares from different epochs are incompatible, so
  // a mobile adversary's f old shares + f new shares are useless.
  GroupParams gp = toy();
  Prng prng(3);
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  std::vector<Share> old_q = {km.share_of(1), km.share_of(2)};
  Bigint key = shamir_reconstruct(old_q, gp.q());

  ServiceKeyMaterial fresh = refresh_service(km, prng);
  std::vector<Share> mixed = {km.share_of(1), fresh.share_of(2)};
  EXPECT_NE(shamir_reconstruct(mixed, gp.q()), key);
}

TEST(Refresh, CommitmentsTrackNewShares) {
  GroupParams gp = toy();
  Prng prng(4);
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  ServiceKeyMaterial fresh = refresh_service(km, prng);
  for (std::uint32_t i = 1; i <= 4; ++i) {
    EXPECT_TRUE(feldman_verify(gp, fresh.commitments(), fresh.share_of(i))) << i;
    // Old commitments no longer match refreshed shares.
    EXPECT_FALSE(feldman_verify(gp, km.commitments(), fresh.share_of(i))) << i;
  }
}

TEST(Refresh, ThresholdDecryptionStillWorksAfterRefresh) {
  GroupParams gp = toy();
  Prng prng(5);
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  Bigint m = gp.random_element(prng);
  elgamal::Ciphertext c = km.public_key().encrypt(m, prng);

  ServiceKeyMaterial fresh = refresh_service(km, prng);
  std::vector<DecryptionShare> shares;
  for (std::uint32_t i : {2u, 4u}) {
    DecryptionShare ds = make_decryption_share(gp, c, fresh.share_of(i), "ctx", prng);
    EXPECT_TRUE(verify_decryption_share(gp, fresh.commitments(), c, ds, "ctx"));
    shares.push_back(std::move(ds));
  }
  EXPECT_EQ(combine_decryption(gp, c, shares), m);
}

TEST(Refresh, RepeatedRefreshesStayConsistent) {
  GroupParams gp = toy();
  Prng prng(6);
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  Bigint m = gp.random_element(prng);
  elgamal::Ciphertext c = km.public_key().encrypt(m, prng);
  ServiceKeyMaterial cur = km;
  for (int epoch = 0; epoch < 5; ++epoch) {
    cur = refresh_service(cur, prng);
    EXPECT_EQ(cur.public_key().y(), km.public_key().y()) << epoch;
  }
  std::vector<DecryptionShare> shares;
  for (std::uint32_t i : {1u, 3u})
    shares.push_back(make_decryption_share(gp, c, cur.share_of(i), "x", prng));
  EXPECT_EQ(combine_decryption(gp, c, shares), m);
}

TEST(Refresh, PartialDealerSetsWork) {
  // Only a quorum of dealers contributes (others may be crashed).
  GroupParams gp = toy();
  Prng prng(7);
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  ServiceKeyMaterial fresh = refresh_service(km, prng, {2, 3});
  EXPECT_EQ(fresh.public_key().y(), km.public_key().y());
  std::vector<Share> q = {fresh.share_of(1), fresh.share_of(4)};
  EXPECT_EQ(gp.pow_g(shamir_reconstruct(q, gp.q())), km.public_key().y());
}

TEST(Refresh, NonZeroSharingRejected) {
  // A malicious dealer sharing a non-zero constant would silently shift the
  // service key; refresh_verify catches it via the identity-commitment rule.
  GroupParams gp = toy();
  Prng prng(8);
  auto poly = sharing_polynomial(Bigint(5), 1, gp.q(), prng);  // NOT zero
  RefreshDeal bad;
  bad.dealer = 1;
  bad.commitments = feldman_commit(gp, poly);
  for (std::uint32_t j = 1; j <= 4; ++j)
    bad.subshares.push_back({j, eval_polynomial(poly, j, gp.q())});
  EXPECT_FALSE(refresh_verify(gp, bad, 1));

  // A corrupted sub-share of an honest zero-deal is caught too.
  RefreshDeal deal = refresh_deal(gp, 1, 4, 1, prng);
  EXPECT_TRUE(refresh_verify(gp, deal, 2));
  deal.subshares[1].value = mpz::addmod(deal.subshares[1].value, Bigint(1), gp.q());
  EXPECT_FALSE(refresh_verify(gp, deal, 2));
}

TEST(Refresh, BadInputsThrow) {
  GroupParams gp = toy();
  Prng prng(9);
  EXPECT_THROW((void)refresh_deal(gp, 0, 4, 1, prng), std::invalid_argument);
  EXPECT_THROW((void)refresh_deal(gp, 5, 4, 1, prng), std::invalid_argument);
  RefreshDeal deal = refresh_deal(gp, 1, 4, 1, prng);
  Share outside{9, Bigint(1)};
  std::vector<RefreshDeal> deals = {deal};
  EXPECT_THROW((void)refresh_apply(gp, outside, deals), std::invalid_argument);
}

}  // namespace
}  // namespace dblind::threshold
