#include "threshold/keygen.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"
#include "threshold/shamir.hpp"

namespace dblind::threshold {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

GroupParams toy() { return GroupParams::named(ParamId::kToy64); }

TEST(ServiceConfig, QuorumAndSafety) {
  ServiceConfig c{4, 1};
  EXPECT_EQ(c.quorum(), 2u);
  EXPECT_TRUE(c.byzantine_safe());
  EXPECT_FALSE((ServiceConfig{4, 2}).byzantine_safe());
  EXPECT_TRUE((ServiceConfig{10, 3}).byzantine_safe());
}

TEST(DealerKeygen, SharesReconstructServiceKey) {
  GroupParams gp = toy();
  Prng prng(1);
  ServiceConfig cfg{4, 1};
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, cfg, prng);

  std::vector<Share> quorum = {km.share_of(1), km.share_of(3)};
  Bigint k = shamir_reconstruct(quorum, gp.q());
  EXPECT_EQ(gp.pow_g(k), km.public_key().y());
}

TEST(DealerKeygen, AllSharesFeldmanVerify) {
  GroupParams gp = toy();
  Prng prng(2);
  ServiceConfig cfg{7, 2};
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, cfg, prng);
  for (std::uint32_t i = 1; i <= 7; ++i) {
    EXPECT_TRUE(feldman_verify(gp, km.commitments(), km.share_of(i))) << i;
    EXPECT_EQ(km.verification_key_of(i), gp.pow_g(km.share_of(i).value)) << i;
  }
}

TEST(DealerKeygen, CommitmentDegreeMatchesThreshold) {
  GroupParams gp = toy();
  Prng prng(3);
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, {10, 3}, prng);
  EXPECT_EQ(km.commitments().coefficients.size(), 4u);  // degree f = 3
}

TEST(DealerKeygen, BadIndicesThrow) {
  GroupParams gp = toy();
  Prng prng(4);
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  EXPECT_THROW((void)km.share_of(0), std::out_of_range);
  EXPECT_THROW((void)km.share_of(5), std::out_of_range);
  EXPECT_THROW((void)km.verification_key_of(99), std::out_of_range);
}

TEST(DealerKeygen, RejectsBadConfig) {
  GroupParams gp = toy();
  Prng prng(5);
  EXPECT_THROW((void)ServiceKeyMaterial::dealer_keygen(gp, {3, 3}, prng), std::invalid_argument);
  EXPECT_THROW((void)ServiceKeyMaterial::dealer_keygen(gp, {0, 0}, prng), std::invalid_argument);
}

TEST(Dkg, HonestRunProducesConsistentKey) {
  GroupParams gp = toy();
  Prng prng(6);
  ServiceConfig cfg{4, 1};
  DkgResult r = run_joint_feldman_dkg(gp, cfg, prng);
  EXPECT_TRUE(r.disqualified.empty());

  // Shares reconstruct a key matching the joint public key.
  std::vector<Share> quorum = {r.material.share_of(2), r.material.share_of(4)};
  Bigint k = shamir_reconstruct(quorum, gp.q());
  EXPECT_EQ(gp.pow_g(k), r.material.public_key().y());
}

TEST(Dkg, CheatingDealerDisqualified) {
  GroupParams gp = toy();
  Prng prng(7);
  ServiceConfig cfg{4, 1};
  DkgResult r = run_joint_feldman_dkg(gp, cfg, prng, {2});
  ASSERT_EQ(r.disqualified.size(), 1u);
  EXPECT_EQ(r.disqualified[0], 2u);

  // Key is still well-formed without the cheater's contribution.
  std::vector<Share> quorum = {r.material.share_of(1), r.material.share_of(3)};
  EXPECT_EQ(gp.pow_g(shamir_reconstruct(quorum, gp.q())), r.material.public_key().y());
}

TEST(Dkg, MultipleCheatersDisqualified) {
  GroupParams gp = toy();
  Prng prng(8);
  ServiceConfig cfg{7, 2};
  DkgResult r = run_joint_feldman_dkg(gp, cfg, prng, {1, 5});
  EXPECT_EQ(r.disqualified, (std::vector<std::uint32_t>{1, 5}));
  std::vector<Share> quorum = {r.material.share_of(2), r.material.share_of(3),
                               r.material.share_of(4)};
  EXPECT_EQ(gp.pow_g(shamir_reconstruct(quorum, gp.q())), r.material.public_key().y());
}

TEST(Dkg, TooManyCheatersThrow) {
  GroupParams gp = toy();
  Prng prng(9);
  ServiceConfig cfg{4, 3};  // quorum 4 needs all dealers
  EXPECT_THROW((void)run_joint_feldman_dkg(gp, cfg, prng, {1}), std::runtime_error);
}

TEST(Dkg, DifferentRunsDifferentKeys) {
  GroupParams gp = toy();
  Prng prng(10);
  DkgResult a = run_joint_feldman_dkg(gp, {4, 1}, prng);
  DkgResult b = run_joint_feldman_dkg(gp, {4, 1}, prng);
  EXPECT_NE(a.material.public_key().y(), b.material.public_key().y());
}

TEST(KeyMaterial, ConstructorValidatesShares) {
  GroupParams gp = toy();
  Prng prng(11);
  ServiceKeyMaterial km = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  // Tampered share fails validation.
  std::vector<Share> shares;
  for (std::uint32_t i = 1; i <= 4; ++i) shares.push_back(km.share_of(i));
  shares[2].value = mpz::addmod(shares[2].value, Bigint(1), gp.q());
  EXPECT_THROW(ServiceKeyMaterial(gp, ServiceConfig{4, 1}, km.public_key(), km.commitments(),
                                  shares),
               std::invalid_argument);
}

}  // namespace
}  // namespace dblind::threshold
