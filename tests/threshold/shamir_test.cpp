#include "threshold/shamir.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"

namespace dblind::threshold {
namespace {

using mpz::Bigint;
using mpz::Prng;

const Bigint kQ = Bigint::from_hex("7b00807d99b158cf");  // 64-bit prime

TEST(Shamir, ReconstructFromExactQuorum) {
  Prng prng(1);
  Bigint secret = prng.uniform_below(kQ);
  auto shares = shamir_share(secret, 7, 2, kQ, prng);
  ASSERT_EQ(shares.size(), 7u);
  std::vector<Share> quorum(shares.begin(), shares.begin() + 3);
  EXPECT_EQ(shamir_reconstruct(quorum, kQ), secret);
}

TEST(Shamir, ReconstructFromAnySubset) {
  Prng prng(2);
  Bigint secret = prng.uniform_below(kQ);
  auto shares = shamir_share(secret, 7, 2, kQ, prng);
  // Every 3-subset of {1..7} reconstructs. Spot-check several.
  std::vector<std::vector<std::size_t>> subsets = {
      {0, 1, 2}, {4, 5, 6}, {0, 3, 6}, {1, 2, 5}, {2, 4, 6}};
  for (const auto& idx : subsets) {
    std::vector<Share> quorum;
    for (std::size_t i : idx) quorum.push_back(shares[i]);
    EXPECT_EQ(shamir_reconstruct(quorum, kQ), secret);
  }
}

TEST(Shamir, MoreThanQuorumAlsoWorks) {
  Prng prng(3);
  Bigint secret = prng.uniform_below(kQ);
  auto shares = shamir_share(secret, 5, 1, kQ, prng);
  EXPECT_EQ(shamir_reconstruct(shares, kQ), secret);
}

TEST(Shamir, TooFewSharesGiveWrongSecret) {
  // f shares interpolate to something, but (whp) not the secret — and more
  // importantly each f-subset is consistent with *any* secret.
  Prng prng(4);
  Bigint secret = prng.uniform_below(kQ);
  auto shares = shamir_share(secret, 7, 2, kQ, prng);
  std::vector<Share> few(shares.begin(), shares.begin() + 2);
  EXPECT_NE(shamir_reconstruct(few, kQ), secret);
}

TEST(Shamir, ZeroDegreeMeansConstant) {
  Prng prng(5);
  Bigint secret = prng.uniform_below(kQ);
  auto shares = shamir_share(secret, 4, 0, kQ, prng);
  for (const Share& s : shares) EXPECT_EQ(s.value, secret);
}

TEST(Shamir, SecretZeroWorks) {
  Prng prng(6);
  auto shares = shamir_share(Bigint(0), 4, 1, kQ, prng);
  std::vector<Share> quorum(shares.begin(), shares.begin() + 2);
  EXPECT_EQ(shamir_reconstruct(quorum, kQ), Bigint(0));
}

TEST(Shamir, RejectsBadArguments) {
  Prng prng(7);
  EXPECT_THROW((void)shamir_share(Bigint(1), 3, 3, kQ, prng), std::invalid_argument);
  EXPECT_THROW((void)shamir_share(kQ, 3, 1, kQ, prng), std::invalid_argument);
  EXPECT_THROW((void)shamir_share(Bigint(-1), 3, 1, kQ, prng), std::invalid_argument);
  EXPECT_THROW((void)shamir_reconstruct({}, kQ), std::invalid_argument);
}

TEST(Shamir, RejectsDuplicateShares) {
  Prng prng(8);
  auto shares = shamir_share(Bigint(42), 4, 1, kQ, prng);
  std::vector<Share> dup = {shares[0], shares[0]};
  EXPECT_THROW((void)shamir_reconstruct(dup, kQ), std::invalid_argument);
}

TEST(Lagrange, CoefficientsSumCorrectly) {
  // Interpolating the constant polynomial 1: Σ λ_i = 1.
  std::vector<std::uint32_t> indices = {1, 3, 5, 7};
  Bigint sum(0);
  for (std::uint32_t i : indices) sum = mpz::addmod(sum, lagrange_at_zero(indices, i, kQ), kQ);
  EXPECT_EQ(sum, Bigint(1));
}

TEST(Lagrange, RejectsBadIndexSets) {
  std::vector<std::uint32_t> indices = {1, 2, 3};
  EXPECT_THROW((void)lagrange_at_zero(indices, 9, kQ), std::invalid_argument);
  std::vector<std::uint32_t> with_zero = {0, 1, 2};
  EXPECT_THROW((void)lagrange_at_zero(with_zero, 1, kQ), std::invalid_argument);
}

TEST(Polynomial, EvalMatchesDirectComputation) {
  // f(x) = 3 + 5x + 7x^2 mod q
  std::vector<Bigint> coeffs = {Bigint(3), Bigint(5), Bigint(7)};
  EXPECT_EQ(eval_polynomial(coeffs, 0, kQ), Bigint(3));
  EXPECT_EQ(eval_polynomial(coeffs, 1, kQ), Bigint(15));
  EXPECT_EQ(eval_polynomial(coeffs, 2, kQ), Bigint(3 + 10 + 28));
  EXPECT_EQ(eval_polynomial(coeffs, 10, kQ), Bigint(3 + 50 + 700));
}

TEST(Polynomial, ShareValuesLieOnPolynomial) {
  Prng prng(9);
  Bigint secret = prng.uniform_below(kQ);
  auto coeffs = sharing_polynomial(secret, 3, kQ, prng);
  EXPECT_EQ(coeffs.size(), 4u);
  EXPECT_EQ(coeffs[0], secret);
  EXPECT_EQ(eval_polynomial(coeffs, 0, kQ), secret);
}

}  // namespace
}  // namespace dblind::threshold
