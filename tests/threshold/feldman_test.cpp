#include "threshold/feldman.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"

namespace dblind::threshold {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

GroupParams toy() { return GroupParams::named(ParamId::kToy64); }

TEST(Feldman, AllDealtSharesVerify) {
  GroupParams gp = toy();
  Prng prng(1);
  Bigint secret = prng.uniform_below(gp.q());
  auto coeffs = sharing_polynomial(secret, 2, gp.q(), prng);
  FeldmanCommitments c = feldman_commit(gp, coeffs);
  for (std::uint32_t i = 1; i <= 7; ++i) {
    Share s{i, eval_polynomial(coeffs, i, gp.q())};
    EXPECT_TRUE(feldman_verify(gp, c, s)) << i;
  }
}

TEST(Feldman, CorruptedShareRejected) {
  GroupParams gp = toy();
  Prng prng(2);
  auto coeffs = sharing_polynomial(prng.uniform_below(gp.q()), 2, gp.q(), prng);
  FeldmanCommitments c = feldman_commit(gp, coeffs);
  Share good{3, eval_polynomial(coeffs, 3, gp.q())};
  Share bad{3, mpz::addmod(good.value, Bigint(1), gp.q())};
  EXPECT_TRUE(feldman_verify(gp, c, good));
  EXPECT_FALSE(feldman_verify(gp, c, bad));
}

TEST(Feldman, WrongIndexRejected) {
  GroupParams gp = toy();
  Prng prng(3);
  auto coeffs = sharing_polynomial(prng.uniform_below(gp.q()), 1, gp.q(), prng);
  FeldmanCommitments c = feldman_commit(gp, coeffs);
  Share s{2, eval_polynomial(coeffs, 3, gp.q())};  // value for index 3 claimed as index 2
  EXPECT_FALSE(feldman_verify(gp, c, s));
}

TEST(Feldman, EvalAtZeroIsPublicKeyPoint) {
  GroupParams gp = toy();
  Prng prng(4);
  Bigint secret = prng.uniform_below(gp.q());
  auto coeffs = sharing_polynomial(secret, 3, gp.q(), prng);
  FeldmanCommitments c = feldman_commit(gp, coeffs);
  EXPECT_EQ(feldman_eval(gp, c, 0), gp.pow_g(secret));
}

TEST(Feldman, EvalMatchesShareExponent) {
  GroupParams gp = toy();
  Prng prng(5);
  auto coeffs = sharing_polynomial(prng.uniform_below(gp.q()), 2, gp.q(), prng);
  FeldmanCommitments c = feldman_commit(gp, coeffs);
  for (std::uint32_t i : {1u, 5u, 100u}) {
    EXPECT_EQ(feldman_eval(gp, c, i), gp.pow_g(eval_polynomial(coeffs, i, gp.q())));
  }
}

TEST(Feldman, DegenerateInputs) {
  GroupParams gp = toy();
  EXPECT_THROW((void)feldman_commit(gp, {}), std::invalid_argument);
  FeldmanCommitments empty;
  EXPECT_THROW((void)feldman_eval(gp, empty, 1), std::invalid_argument);
  Prng prng(6);
  auto coeffs = sharing_polynomial(Bigint(5), 1, gp.q(), prng);
  FeldmanCommitments c = feldman_commit(gp, coeffs);
  EXPECT_FALSE(feldman_verify(gp, c, {0, Bigint(5)}));          // index 0
  EXPECT_FALSE(feldman_verify(gp, c, {1, gp.q()}));             // value out of range
  EXPECT_FALSE(feldman_verify(gp, c, {1, Bigint(-1)}));         // negative
}

TEST(Feldman, CommitmentsHideNothingAboutDegree) {
  // Commitments length equals degree+1 — callers rely on this to check the
  // dealer used the right threshold.
  GroupParams gp = toy();
  Prng prng(7);
  auto coeffs = sharing_polynomial(Bigint(1), 4, gp.q(), prng);
  EXPECT_EQ(feldman_commit(gp, coeffs).coefficients.size(), 5u);
}

}  // namespace
}  // namespace dblind::threshold
