#include "threshold/thresh_decrypt.hpp"

#include <gtest/gtest.h>

#include "mpz/modmath.hpp"

namespace dblind::threshold {
namespace {

using elgamal::Ciphertext;
using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

struct Fixture {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  Prng prng;
  ServiceKeyMaterial km;
  Bigint m;
  Ciphertext c;

  explicit Fixture(std::uint64_t seed, ServiceConfig cfg = {4, 1})
      : prng(seed),
        km(ServiceKeyMaterial::dealer_keygen(gp, cfg, prng)),
        m(gp.random_element(prng)),
        c(km.public_key().encrypt(m, prng)) {}
};

TEST(ThreshDecrypt, QuorumRecoversPlaintext) {
  Fixture fx(1);
  std::vector<DecryptionShare> shares;
  for (std::uint32_t i : {1u, 3u}) {
    shares.push_back(make_decryption_share(fx.gp, fx.c, fx.km.share_of(i), "ctx", fx.prng));
  }
  EXPECT_EQ(combine_decryption(fx.gp, fx.c, shares), fx.m);
}

TEST(ThreshDecrypt, AnyQuorumWorks) {
  Fixture fx(2, {7, 2});
  std::vector<std::vector<std::uint32_t>> quorums = {{1, 2, 3}, {5, 6, 7}, {1, 4, 7}, {2, 3, 6}};
  for (const auto& q : quorums) {
    std::vector<DecryptionShare> shares;
    for (std::uint32_t i : q)
      shares.push_back(make_decryption_share(fx.gp, fx.c, fx.km.share_of(i), "ctx", fx.prng));
    EXPECT_EQ(combine_decryption(fx.gp, fx.c, shares), fx.m);
  }
}

TEST(ThreshDecrypt, MoreThanQuorumWorks) {
  Fixture fx(3);
  std::vector<DecryptionShare> shares;
  for (std::uint32_t i = 1; i <= 4; ++i)
    shares.push_back(make_decryption_share(fx.gp, fx.c, fx.km.share_of(i), "ctx", fx.prng));
  EXPECT_EQ(combine_decryption(fx.gp, fx.c, shares), fx.m);
}

TEST(ThreshDecrypt, SharesVerify) {
  Fixture fx(4);
  for (std::uint32_t i = 1; i <= 4; ++i) {
    DecryptionShare ds = make_decryption_share(fx.gp, fx.c, fx.km.share_of(i), "ctx", fx.prng);
    EXPECT_TRUE(verify_decryption_share(fx.gp, fx.km.commitments(), fx.c, ds, "ctx")) << i;
  }
}

TEST(ThreshDecrypt, CorruptShareDetected) {
  Fixture fx(5);
  DecryptionShare ds = make_decryption_share(fx.gp, fx.c, fx.km.share_of(2), "ctx", fx.prng);

  DecryptionShare bad = ds;
  bad.d = fx.gp.mul(bad.d, fx.gp.g());
  EXPECT_FALSE(verify_decryption_share(fx.gp, fx.km.commitments(), fx.c, bad, "ctx"));

  bad = ds;
  bad.index = 3;  // claims another server's identity
  EXPECT_FALSE(verify_decryption_share(fx.gp, fx.km.commitments(), fx.c, bad, "ctx"));

  bad = ds;
  bad.proof.s = mpz::addmod(bad.proof.s, Bigint(1), fx.gp.q());
  EXPECT_FALSE(verify_decryption_share(fx.gp, fx.km.commitments(), fx.c, bad, "ctx"));
}

TEST(ThreshDecrypt, CorruptShareBreaksCombinationButIsCaught) {
  // Combining with a bad share yields garbage — which is why Fig. 4 step 6(b)
  // carries per-share correctness evidence. Verification catches it first.
  Fixture fx(6);
  std::vector<DecryptionShare> shares;
  shares.push_back(make_decryption_share(fx.gp, fx.c, fx.km.share_of(1), "ctx", fx.prng));
  DecryptionShare bad = make_decryption_share(fx.gp, fx.c, fx.km.share_of(2), "ctx", fx.prng);
  bad.d = fx.gp.mul(bad.d, fx.gp.g());
  shares.push_back(bad);

  EXPECT_NE(combine_decryption(fx.gp, fx.c, shares), fx.m);
  EXPECT_FALSE(verify_decryption_share(fx.gp, fx.km.commitments(), fx.c, shares[1], "ctx"));
  EXPECT_TRUE(verify_decryption_share(fx.gp, fx.km.commitments(), fx.c, shares[0], "ctx"));
}

TEST(ThreshDecrypt, ContextBindsShares) {
  Fixture fx(7);
  DecryptionShare ds = make_decryption_share(fx.gp, fx.c, fx.km.share_of(1), "instance-9", fx.prng);
  EXPECT_TRUE(verify_decryption_share(fx.gp, fx.km.commitments(), fx.c, ds, "instance-9"));
  EXPECT_FALSE(verify_decryption_share(fx.gp, fx.km.commitments(), fx.c, ds, "instance-10"));
}

TEST(ThreshDecrypt, CombineRejectsBadInputs) {
  Fixture fx(8);
  EXPECT_THROW((void)combine_decryption(fx.gp, fx.c, {}), std::invalid_argument);
  DecryptionShare ds = make_decryption_share(fx.gp, fx.c, fx.km.share_of(1), "ctx", fx.prng);
  std::vector<DecryptionShare> dup = {ds, ds};
  EXPECT_THROW((void)combine_decryption(fx.gp, fx.c, dup), std::invalid_argument);
}

TEST(ThreshDecrypt, FewerThanQuorumGivesGarbage) {
  Fixture fx(9, {7, 2});
  std::vector<DecryptionShare> shares;
  for (std::uint32_t i : {1u, 2u})  // need 3
    shares.push_back(make_decryption_share(fx.gp, fx.c, fx.km.share_of(i), "ctx", fx.prng));
  EXPECT_NE(combine_decryption(fx.gp, fx.c, shares), fx.m);
}

TEST(ThreshDecrypt, MatchesCentralizedDecryption) {
  // Reconstructing the key and decrypting directly agrees with threshold
  // decryption.
  Fixture fx(10);
  std::vector<Share> key_shares = {fx.km.share_of(1), fx.km.share_of(2)};
  Bigint k = shamir_reconstruct(key_shares, fx.gp.q());
  elgamal::KeyPair kp = elgamal::KeyPair::from_private(fx.gp, k);
  EXPECT_EQ(kp.decrypt(fx.c), fx.m);
}

}  // namespace
}  // namespace dblind::threshold
