// Shamir re-sharing onto a different roster/threshold (PR 7): the key — and
// thus the service public key — must be preserved across (n, f) -> (n', f')
// transitions, bad deals must be caught at the commitment or sub-share check,
// and old/new share sets must not mix (the algebra itself changes the
// evaluation points, so a mixed quorum reconstructs garbage — pinned here).
#include "threshold/reshare.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mpz/modmath.hpp"
#include "threshold/refresh.hpp"

namespace dblind::threshold {
namespace {

using mpz::Bigint;

group::GroupParams params() { return group::GroupParams::named(group::ParamId::kToy64); }

Bigint reconstruct_from(const ServiceKeyMaterial& m, std::uint32_t first,
                        std::uint32_t count) {
  std::vector<Share> quorum;
  for (std::uint32_t r = first; r < first + count; ++r) quorum.push_back(m.share_of(r));
  return shamir_reconstruct(quorum, m.params().q());
}

TEST(Reshare, PreservesKeyAcrossRosterGrowth) {
  group::GroupParams gp = params();
  mpz::Prng prng(42);
  ServiceConfig old_cfg{4, 1};
  ServiceKeyMaterial old_m = ServiceKeyMaterial::dealer_keygen(gp, old_cfg, prng);

  ServiceConfig new_cfg{7, 2};  // n: 4 -> 7, f: 1 -> 2
  ServiceKeyMaterial new_m = reshare_service(old_m, new_cfg, prng);

  EXPECT_EQ(new_m.public_key().y(), old_m.public_key().y());
  EXPECT_EQ(new_m.commitments().coefficients.size(), new_cfg.f + 1);
  // Any new quorum reconstructs the same key as any old quorum.
  Bigint key = reconstruct_from(old_m, 1, old_cfg.quorum());
  EXPECT_EQ(reconstruct_from(new_m, 1, new_cfg.quorum()), key);
  EXPECT_EQ(reconstruct_from(new_m, 4, new_cfg.quorum()), key);
  EXPECT_EQ(gp.pow_g(key), old_m.public_key().y());
  // Every new share verifies against the new joint commitments.
  for (std::uint32_t j = 1; j <= new_cfg.n; ++j) {
    EXPECT_TRUE(feldman_verify(gp, new_m.commitments(), new_m.share_of(j)));
  }
}

TEST(Reshare, PreservesKeyAcrossRosterShrink) {
  group::GroupParams gp = params();
  mpz::Prng prng(7);
  ServiceKeyMaterial old_m = ServiceKeyMaterial::dealer_keygen(gp, {7, 2}, prng);
  ServiceKeyMaterial new_m = reshare_service(old_m, {4, 1}, prng, {2, 4, 6});

  EXPECT_EQ(new_m.public_key().y(), old_m.public_key().y());
  EXPECT_EQ(reconstruct_from(new_m, 1, 2), reconstruct_from(old_m, 1, 3));
}

TEST(Reshare, AnyOldQuorumDealsTheSameKey) {
  group::GroupParams gp = params();
  mpz::Prng prng(9);
  ServiceKeyMaterial old_m = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  ServiceKeyMaterial via12 = reshare_service(old_m, {4, 1}, prng, {1, 2});
  ServiceKeyMaterial via34 = reshare_service(old_m, {4, 1}, prng, {3, 4});
  EXPECT_EQ(reconstruct_from(via12, 1, 2), reconstruct_from(via34, 1, 2));
  // Fresh polynomials: the actual shares differ even though the key matches.
  EXPECT_NE(via12.share_of(1).value, via34.share_of(1).value);
}

TEST(Reshare, CommitmentCheckCatchesWrongConstantTerm) {
  group::GroupParams gp = params();
  mpz::Prng prng(11);
  ServiceKeyMaterial old_m = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);

  ReshareDeal good = reshare_deal(gp, old_m.share_of(2), 4, 1, prng);
  EXPECT_TRUE(reshare_verify_commitments(gp, old_m.commitments(), good, 1));

  // A dealer re-sharing a DIFFERENT value than its old share is caught.
  Share forged{2, gp.random_exponent(prng)};
  ReshareDeal bad = reshare_deal(gp, forged, 4, 1, prng);
  EXPECT_FALSE(reshare_verify_commitments(gp, old_m.commitments(), bad, 1));
  // Wrong target degree is caught too.
  EXPECT_FALSE(reshare_verify_commitments(gp, old_m.commitments(), good, 2));
}

TEST(Reshare, SubshareCheckCatchesTampering) {
  group::GroupParams gp = params();
  mpz::Prng prng(13);
  ServiceKeyMaterial old_m = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  ReshareDeal deal = reshare_deal(gp, old_m.share_of(1), 4, 1, prng);
  for (const Share& sub : deal.subshares) {
    EXPECT_TRUE(reshare_verify_subshare(gp, deal.commitments, sub));
  }
  Share tampered = deal.subshares[2];
  tampered.value = mpz::addmod(tampered.value, Bigint(1), gp.q());
  EXPECT_FALSE(reshare_verify_subshare(gp, deal.commitments, tampered));
  Share wrong_index = deal.subshares[2];
  wrong_index.index = 4;
  EXPECT_FALSE(reshare_verify_subshare(gp, deal.commitments, wrong_index));
}

TEST(Reshare, MixedOldNewQuorumReconstructsGarbage) {
  // Cross-epoch safety at the algebra level: shares from different
  // configurations must never be combined (invariant I6's root cause).
  group::GroupParams gp = params();
  mpz::Prng prng(17);
  ServiceKeyMaterial old_m = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  ServiceKeyMaterial new_m = reshare_service(old_m, {4, 1}, prng);
  Bigint key = reconstruct_from(old_m, 1, 2);

  std::vector<Share> mixed{old_m.share_of(1), new_m.share_of(2)};
  EXPECT_NE(shamir_reconstruct(mixed, gp.q()), key);
}

TEST(Reshare, RejectsSubThresholdDealerQuorum) {
  group::GroupParams gp = params();
  mpz::Prng prng(19);
  ServiceKeyMaterial old_m = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  EXPECT_THROW((void)reshare_service(old_m, {4, 1}, prng, {3}), std::invalid_argument);
}

TEST(Reshare, ComposesWithZeroSharingRefresh) {
  // Reconfigure, then proactively refresh the new roster: both preserve the
  // key, so clients never see a public-key change.
  group::GroupParams gp = params();
  mpz::Prng prng(23);
  ServiceKeyMaterial m0 = ServiceKeyMaterial::dealer_keygen(gp, {4, 1}, prng);
  ServiceKeyMaterial m1 = reshare_service(m0, {7, 2}, prng);
  ServiceKeyMaterial m2 = refresh_service(m1, prng);
  EXPECT_EQ(m2.public_key().y(), m0.public_key().y());
  EXPECT_EQ(reconstruct_from(m2, 1, 3), reconstruct_from(m0, 1, 2));
}

}  // namespace
}  // namespace dblind::threshold
