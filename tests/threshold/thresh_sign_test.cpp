#include "threshold/thresh_sign.hpp"

#include <gtest/gtest.h>

#include <string>

#include "mpz/modmath.hpp"

namespace dblind::threshold {
namespace {

using group::GroupParams;
using group::ParamId;
using mpz::Bigint;
using mpz::Prng;

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()),
          reinterpret_cast<const std::uint8_t*>(s.data()) + s.size()};
}

struct Fixture {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  Prng prng;
  ServiceKeyMaterial km;

  explicit Fixture(std::uint64_t seed, ServiceConfig cfg = {4, 1})
      : prng(seed), km(ServiceKeyMaterial::dealer_keygen(gp, cfg, prng)) {}

  // Runs the full commit/reveal/respond/combine flow over `quorum`.
  zkp::SchnorrSignature sign(const std::vector<std::uint32_t>& quorum,
                             std::span<const std::uint8_t> msg) {
    std::vector<SigningMember> members;
    members.reserve(quorum.size());
    for (std::uint32_t i : quorum) members.emplace_back(gp, km.share_of(i), prng);

    std::vector<NonceCommitment> commitments;
    std::vector<NonceReveal> reveals;
    for (auto& m : members) {
      commitments.push_back(m.commitment());
      reveals.push_back(m.reveal());
    }
    Bigint r_joint = combine_nonce(gp, reveals);
    Bigint e = zkp::schnorr_challenge(gp, r_joint, km.public_key().y(), msg);

    std::vector<PartialSignature> partials;
    for (std::size_t idx = 0; idx < members.size(); ++idx) {
      auto p = members[idx].respond(commitments, reveals, km.public_key().y(), msg);
      EXPECT_TRUE(p.has_value());
      EXPECT_TRUE(verify_partial_signature(gp, km.commitments(), reveals[idx], *p, e));
      partials.push_back(*p);
    }
    return combine_signature(gp, reveals, partials);
  }
};

TEST(ThreshSign, QuorumSignatureVerifiesUnderServiceKey) {
  Fixture fx(1);
  auto msg = bytes("blind, A, E_A(rho), B, E_B(rho)");
  zkp::SchnorrSignature sig = fx.sign({1, 2}, msg);
  zkp::SchnorrVerifyKey vk(fx.gp, fx.km.public_key().y());
  EXPECT_TRUE(vk.verify(msg, sig));
}

TEST(ThreshSign, AnyQuorumProducesValidSignature) {
  Fixture fx(2, {7, 2});
  auto msg = bytes("message");
  zkp::SchnorrVerifyKey vk(fx.gp, fx.km.public_key().y());
  for (const auto& q : std::vector<std::vector<std::uint32_t>>{{1, 2, 3}, {5, 6, 7}, {2, 4, 6}}) {
    EXPECT_TRUE(vk.verify(msg, fx.sign(q, msg)));
  }
}

TEST(ThreshSign, SignatureBoundToMessage) {
  Fixture fx(3);
  zkp::SchnorrSignature sig = fx.sign({1, 3}, bytes("msg-a"));
  zkp::SchnorrVerifyKey vk(fx.gp, fx.km.public_key().y());
  EXPECT_FALSE(vk.verify(bytes("msg-b"), sig));
}

TEST(ThreshSign, NonceReuseRefused) {
  Fixture fx(4);
  auto msg = bytes("m");
  std::vector<SigningMember> members;
  for (std::uint32_t i : {1u, 2u}) members.emplace_back(fx.gp, fx.km.share_of(i), fx.prng);
  std::vector<NonceCommitment> commitments{members[0].commitment(), members[1].commitment()};
  std::vector<NonceReveal> reveals{members[0].reveal(), members[1].reveal()};
  auto first = members[0].respond(commitments, reveals, fx.km.public_key().y(), msg);
  EXPECT_TRUE(first.has_value());
  auto second = members[0].respond(commitments, reveals, fx.km.public_key().y(), msg);
  EXPECT_FALSE(second.has_value());
}

TEST(ThreshSign, MismatchedRevealRefused) {
  // A reveal that does not match its commitment (nonce chosen after seeing
  // others) makes honest members refuse to sign.
  Fixture fx(5);
  auto msg = bytes("m");
  std::vector<SigningMember> members;
  for (std::uint32_t i : {1u, 2u}) members.emplace_back(fx.gp, fx.km.share_of(i), fx.prng);
  std::vector<NonceCommitment> commitments{members[0].commitment(), members[1].commitment()};
  std::vector<NonceReveal> reveals{members[0].reveal(), members[1].reveal()};
  reveals[1].t = fx.gp.mul(reveals[1].t, fx.gp.g());  // adversarial substitution
  EXPECT_FALSE(members[0].respond(commitments, reveals, fx.km.public_key().y(), msg).has_value());
}

TEST(ThreshSign, ForeignOrDuplicateRevealsRefused) {
  Fixture fx(6);
  auto msg = bytes("m");
  std::vector<SigningMember> members;
  for (std::uint32_t i : {1u, 2u}) members.emplace_back(fx.gp, fx.km.share_of(i), fx.prng);
  std::vector<NonceCommitment> commitments{members[0].commitment(), members[1].commitment()};
  std::vector<NonceReveal> reveals{members[0].reveal(), members[1].reveal()};

  // Reveal without commitment.
  std::vector<NonceReveal> extra = reveals;
  extra.push_back({3, fx.gp.g()});
  EXPECT_FALSE(members[0].respond(commitments, extra, fx.km.public_key().y(), msg).has_value());

  // Duplicate index.
  std::vector<NonceReveal> dup = {reveals[0], reveals[0]};
  std::vector<NonceCommitment> dupc = {commitments[0], commitments[0]};
  EXPECT_FALSE(members[0].respond(dupc, dup, fx.km.public_key().y(), msg).has_value());

  // Quorum excluding self.
  std::vector<NonceReveal> noself = {reveals[1]};
  std::vector<NonceCommitment> noselfc = {commitments[1]};
  EXPECT_FALSE(members[0].respond(noselfc, noself, fx.km.public_key().y(), msg).has_value());
}

TEST(ThreshSign, BadPartialIdentified) {
  Fixture fx(7);
  auto msg = bytes("m");
  std::vector<SigningMember> members;
  for (std::uint32_t i : {1u, 2u}) members.emplace_back(fx.gp, fx.km.share_of(i), fx.prng);
  std::vector<NonceCommitment> commitments{members[0].commitment(), members[1].commitment()};
  std::vector<NonceReveal> reveals{members[0].reveal(), members[1].reveal()};
  Bigint e = zkp::schnorr_challenge(fx.gp, combine_nonce(fx.gp, reveals), fx.km.public_key().y(),
                                    msg);

  auto p0 = members[0].respond(commitments, reveals, fx.km.public_key().y(), msg);
  ASSERT_TRUE(p0.has_value());
  PartialSignature forged = *p0;
  forged.s = mpz::addmod(forged.s, Bigint(1), fx.gp.q());
  EXPECT_TRUE(verify_partial_signature(fx.gp, fx.km.commitments(), reveals[0], *p0, e));
  EXPECT_FALSE(verify_partial_signature(fx.gp, fx.km.commitments(), reveals[0], forged, e));
  // Index spoofing is caught too.
  PartialSignature spoof = *p0;
  spoof.index = 2;
  EXPECT_FALSE(verify_partial_signature(fx.gp, fx.km.commitments(), reveals[1], spoof, e));
}

TEST(ThreshSign, CombineValidatesInputs) {
  Fixture fx(8);
  auto msg = bytes("m");
  std::vector<SigningMember> members;
  for (std::uint32_t i : {1u, 2u}) members.emplace_back(fx.gp, fx.km.share_of(i), fx.prng);
  std::vector<NonceCommitment> commitments{members[0].commitment(), members[1].commitment()};
  std::vector<NonceReveal> reveals{members[0].reveal(), members[1].reveal()};
  std::vector<PartialSignature> partials;
  for (auto& m : members)
    partials.push_back(*m.respond(commitments, reveals, fx.km.public_key().y(), msg));

  EXPECT_THROW((void)combine_signature(fx.gp, reveals, {}), std::invalid_argument);
  std::vector<PartialSignature> dup = {partials[0], partials[0]};
  EXPECT_THROW((void)combine_signature(fx.gp, reveals, dup), std::invalid_argument);
  std::vector<NonceReveal> one_reveal = {reveals[0]};
  EXPECT_THROW((void)combine_signature(fx.gp, one_reveal, partials), std::invalid_argument);
}

TEST(ThreshSign, LargerQuorumThanNeededStillValid) {
  Fixture fx(9, {7, 2});
  auto msg = bytes("over-provisioned quorum");
  zkp::SchnorrSignature sig = fx.sign({1, 2, 3, 4, 5}, msg);
  zkp::SchnorrVerifyKey vk(fx.gp, fx.km.public_key().y());
  EXPECT_TRUE(vk.verify(msg, sig));
}

}  // namespace
}  // namespace dblind::threshold
