#include "group/params.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "mpz/modmath.hpp"
#include "mpz/prime.hpp"

namespace dblind::group {
namespace {

using mpz::Bigint;

class NamedParamsTest : public ::testing::TestWithParam<ParamId> {};

TEST_P(NamedParamsTest, StructureHolds) {
  GroupParams gp = GroupParams::named(GetParam());
  EXPECT_EQ(gp.p(), gp.q().shl(1) + Bigint(1));  // p = 2q + 1
  EXPECT_EQ(gp.g(), Bigint(4));
  // g generates the order-q subgroup: g^q == 1 and g != 1.
  EXPECT_EQ(mpz::powmod(gp.g(), gp.q(), gp.p()), Bigint(1));
  EXPECT_TRUE(gp.in_group(gp.g()));
}

TEST_P(NamedParamsTest, PrimalityHolds) {
  GroupParams gp = GroupParams::named(GetParam());
  mpz::Prng prng(99);
  // Modest round count to keep the 2048-bit case quick; the sets were
  // generated with 40 rounds offline.
  EXPECT_TRUE(mpz::is_probable_prime(gp.p(), prng, 4));
  EXPECT_TRUE(mpz::is_probable_prime(gp.q(), prng, 4));
}

INSTANTIATE_TEST_SUITE_P(AllSizes, NamedParamsTest,
                         ::testing::Values(ParamId::kToy64, ParamId::kTest128, ParamId::kTest256,
                                           ParamId::kSec512, ParamId::kSec1024, ParamId::kSec2048),
                         [](const auto& info) {
                           switch (info.param) {
                             case ParamId::kToy64: return "Toy64";
                             case ParamId::kTest128: return "Test128";
                             case ParamId::kTest256: return "Test256";
                             case ParamId::kSec512: return "Sec512";
                             case ParamId::kSec1024: return "Sec1024";
                             case ParamId::kSec2048: return "Sec2048";
                             case ParamId::kEc255: return "Ec255";
                           }
                           return "Unknown";
                         });

GroupParams toy() { return GroupParams::named(ParamId::kToy64); }

TEST(GroupParams, BitsReported) {
  EXPECT_EQ(toy().bits(), 64u);
  EXPECT_EQ(GroupParams::named(ParamId::kTest256).bits(), 256u);
}

TEST(GroupParams, MembershipChecks) {
  GroupParams gp = toy();
  EXPECT_TRUE(gp.in_group(Bigint(4)));   // g
  EXPECT_TRUE(gp.in_group(Bigint(1)));   // identity is a QR
  EXPECT_FALSE(gp.in_group(Bigint(0)));
  EXPECT_FALSE(gp.in_group(gp.p()));
  EXPECT_FALSE(gp.in_group(Bigint(-4)));
  // Generator of the full group Z_p^* is not in the QR subgroup: p-1 = -1
  // is a non-residue for p ≡ 3 (mod 4).
  EXPECT_FALSE(gp.in_group(gp.p() - Bigint(1)));
}

TEST(GroupParams, ExponentRange) {
  GroupParams gp = toy();
  EXPECT_TRUE(gp.is_exponent(Bigint(0)));
  EXPECT_TRUE(gp.is_exponent(gp.q() - Bigint(1)));
  EXPECT_FALSE(gp.is_exponent(gp.q()));
  EXPECT_FALSE(gp.is_exponent(Bigint(-1)));
}

TEST(GroupParams, PowAndMulConsistent) {
  GroupParams gp = toy();
  mpz::Prng prng(5);
  Bigint x = gp.random_exponent(prng);
  Bigint y = gp.random_exponent(prng);
  // g^x * g^y == g^(x+y)
  EXPECT_EQ(gp.mul(gp.pow_g(x), gp.pow_g(y)), gp.pow_g(mpz::addmod(x, y, gp.q())));
  // (g^x)^y == (g^y)^x
  EXPECT_EQ(gp.pow(gp.pow_g(x), y), gp.pow(gp.pow_g(y), x));
}

TEST(GroupParams, InverseIsInverse) {
  GroupParams gp = toy();
  mpz::Prng prng(6);
  for (int i = 0; i < 10; ++i) {
    Bigint e = gp.random_element(prng);
    EXPECT_EQ(gp.mul(e, gp.inv(e)), Bigint(1));
  }
}

TEST(GroupParams, RandomElementInGroup) {
  GroupParams gp = toy();
  mpz::Prng prng(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(gp.in_group(gp.random_element(prng)));
    Bigint e = gp.random_exponent(prng);
    EXPECT_TRUE(!e.is_zero() && e < gp.q());
  }
}

TEST(GroupParams, MessageEncodingRoundTrip) {
  GroupParams gp = toy();
  for (std::uint64_t v : {1ull, 2ull, 42ull, 1000000007ull}) {
    Bigint enc = gp.encode_message(Bigint(v));
    EXPECT_TRUE(gp.in_group(enc)) << v;
    EXPECT_EQ(gp.decode_message(enc), Bigint(v)) << v;
  }
  // Top of range: v == q.
  Bigint enc = gp.encode_message(gp.q());
  EXPECT_EQ(gp.decode_message(enc), gp.q());
}

TEST(GroupParams, MessageEncodingRejectsOutOfRange) {
  GroupParams gp = toy();
  EXPECT_THROW((void)gp.encode_message(Bigint(0)), std::invalid_argument);
  EXPECT_THROW((void)gp.encode_message(gp.q() + Bigint(1)), std::invalid_argument);
  EXPECT_THROW((void)gp.encode_message(Bigint(-3)), std::invalid_argument);
  EXPECT_THROW((void)gp.decode_message(Bigint(0)), std::invalid_argument);
}

TEST(GroupParams, ByteEncodingRoundTrip) {
  GroupParams gp = GroupParams::named(ParamId::kTest256);
  std::vector<std::uint8_t> payloads[] = {
      {}, {0x00}, {0x41}, {0x00, 0x00, 0x7f}, {0xde, 0xad, 0xbe, 0xef}, std::vector<std::uint8_t>(28, 0xab)};
  for (const auto& payload : payloads) {
    Bigint enc = gp.encode_bytes(payload);
    EXPECT_TRUE(gp.in_group(enc));
    EXPECT_EQ(gp.decode_bytes(enc), payload);
  }
}

TEST(GroupParams, ByteEncodingRejectsOversized) {
  GroupParams gp = toy();
  std::vector<std::uint8_t> big(9, 0xff);
  EXPECT_THROW((void)gp.encode_bytes(big), std::invalid_argument);
}

TEST(GroupParams, ElementBytesFixedWidth) {
  GroupParams gp = GroupParams::named(ParamId::kTest128);
  EXPECT_EQ(gp.element_size(), 16u);
  EXPECT_EQ(gp.element_bytes(Bigint(1)).size(), 16u);
  EXPECT_EQ(gp.element_bytes(gp.p() - Bigint(1)).size(), 16u);
}

TEST(GroupParams, GenerateFreshGroup) {
  mpz::Prng prng(8);
  GroupParams gp = GroupParams::generate(32, prng);
  EXPECT_EQ(gp.bits(), 32u);
  EXPECT_EQ(gp.p(), gp.q().shl(1) + Bigint(1));
  EXPECT_TRUE(gp.in_group(gp.g()));
}

TEST(GroupParams, FromValuesValidates) {
  mpz::Prng prng(9);
  GroupParams gp = toy();
  // Valid round trip.
  GroupParams again = GroupParams::from_values(gp.p(), gp.q(), gp.g(), prng);
  EXPECT_TRUE(again == gp);
  // p != 2q+1
  EXPECT_THROW((void)GroupParams::from_values(gp.p(), gp.q() + Bigint(1), gp.g(), prng),
               std::invalid_argument);
  // Composite p.
  EXPECT_THROW((void)GroupParams::from_values(gp.q().shl(1) + Bigint(3), gp.q() + Bigint(1),
                                              Bigint(4), prng),
               std::invalid_argument);
  // Bad generator: order-2 element p-1.
  EXPECT_THROW((void)GroupParams::from_values(gp.p(), gp.q(), gp.p() - Bigint(1), prng),
               std::invalid_argument);
  EXPECT_THROW((void)GroupParams::from_values(gp.p(), gp.q(), Bigint(1), prng),
               std::invalid_argument);
}

// The FixedBaseCache behind pow_cached/pin_base/pow_fixed is shared across
// all copies of a GroupParams and across threads (its mutex is a
// dblind::Mutex in the annotated-capability rollout, PR 6). Hammer table
// construction, pinning, and lookups from many threads at once; every
// result must still equal the plain pow() answer. Run under the tsan
// preset this is the data-race proof for the cache.
TEST(GroupParams, ConcurrentCachedPowAndPinning) {
  GroupParams gp = toy();
  mpz::Prng prng(2026);
  constexpr int kBases = 4;
  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  std::vector<Bigint> bases;
  std::vector<Bigint> exps;
  bases.reserve(kBases);
  exps.reserve(kThreads * kIters);
  for (int i = 0; i < kBases; ++i) bases.push_back(gp.random_element(prng));
  for (int i = 0; i < kThreads * kIters; ++i) exps.push_back(gp.random_exponent(prng));

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Copies share the cache: each thread works through its own copy, so
      // first-use table builds race for real.
      GroupParams local = gp;
      for (int i = 0; i < kIters; ++i) {
        const Bigint& b = bases[static_cast<std::size_t>((t + i) % kBases)];
        const Bigint& e = exps[static_cast<std::size_t>(t * kIters + i)];
        if (i % 7 == 0) local.pin_base(b);  // pinning races lookups
        Bigint want = local.pow(b, e);
        if (local.pow_cached(b, e) != want) mismatches.fetch_add(1);
        if (local.pow_fixed(b, e) != want) mismatches.fetch_add(1);
        if (local.pow_g(e) != local.pow(local.g(), e)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace dblind::group
