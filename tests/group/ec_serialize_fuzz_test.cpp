// Cross-backend serialization fuzz: every malformed or non-canonical wire
// encoding of a group element or parameter set must be rejected at decode
// time with a typed error (CodecError / invalid_argument / in_group==false),
// never accepted, re-encoded differently, or crash — on BOTH backends.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/codec.hpp"
#include "group/params.hpp"
#include "group/serialize.hpp"
#include "mpz/random.hpp"

namespace dblind::group {
namespace {

using mpz::Bigint;
using mpz::Prng;

std::vector<std::uint8_t> random_bytes(Prng& prng, std::size_t max_len) {
  std::vector<std::uint8_t> out(prng.uniform_u64(max_len + 1));
  prng.fill(out);
  return out;
}

class BackendPair : public ::testing::TestWithParam<ParamId> {};

INSTANTIATE_TEST_SUITE_P(Backends, BackendPair,
                         ::testing::Values(ParamId::kToy64, ParamId::kEc255),
                         [](const auto& info) {
                           return info.param == ParamId::kEc255 ? "ec255" : "modp";
                         });

TEST_P(BackendPair, RandomIntegersRarelyLandInGroupAndNeverCrash) {
  GroupParams gp = GroupParams::named(GetParam());
  Prng prng(2024);
  for (int iter = 0; iter < 400; ++iter) {
    // Integers up to twice the element width, plus negatives: in_group must
    // classify every one of them without throwing.
    std::vector<std::uint8_t> raw(prng.uniform_u64(2 * gp.element_size()) + 1);
    prng.fill(raw);
    Bigint x = Bigint::from_bytes_be(raw);
    if (iter % 7 == 0) x = Bigint(0) - x;
    bool member = gp.in_group(x);
    if (member) {
      // Accepted values must round-trip through the canonical byte form.
      std::vector<std::uint8_t> bytes = gp.element_bytes(x);
      EXPECT_EQ(bytes.size(), gp.element_size());
    }
  }
}

TEST_P(BackendPair, MutatedElementsAreRejectedOrStayCanonical) {
  GroupParams gp = GroupParams::named(GetParam());
  Prng prng(77);
  for (int iter = 0; iter < 64; ++iter) {
    Bigint x = gp.random_element(prng);
    ASSERT_TRUE(gp.in_group(x));
    // Flip one bit of the canonical byte encoding. The result is either
    // rejected or a *different* valid element — never silently the same one.
    std::vector<std::uint8_t> be = x.to_bytes_be(gp.element_size());
    std::uint64_t bit = prng.uniform_u64(8 * gp.element_size());
    be[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    Bigint mutated = Bigint::from_bytes_be(be);
    if (gp.in_group(mutated)) {
      EXPECT_NE(mutated, x);
    }
  }
}

TEST(EcSerializeFuzz, NonCanonicalEcEncodingsRejected) {
  GroupParams gp = GroupParams::named(ParamId::kEc255);
  const Bigint p = Bigint(1).shl(255) - Bigint(19);
  // Field values in [p, 2^255): canonical-range violations.
  EXPECT_FALSE(gp.in_group(p));
  EXPECT_FALSE(gp.in_group(p + Bigint(2)));
  EXPECT_FALSE(gp.in_group(Bigint(1).shl(255) - Bigint(1)));
  // Bit 255 set (byte 31 high bit): never valid even for small residues.
  EXPECT_FALSE(gp.in_group(Bigint(1).shl(255) + gp.g()));
  // Wider than 32 bytes.
  EXPECT_FALSE(gp.in_group(Bigint(1).shl(256) + Bigint(4)));
  // Negative integers are not encodings.
  EXPECT_FALSE(gp.in_group(Bigint(0) - gp.g()));
  // Odd s (negative field element per RFC 9496) is rejected: take a valid
  // element and flip its parity bit.
  mpz::Prng prng(31);
  for (int i = 0; i < 16; ++i) {
    Bigint x = gp.random_element(prng);
    Bigint parity_flipped = x.is_odd() ? x - Bigint(1) : x + Bigint(1);
    EXPECT_FALSE(gp.in_group(parity_flipped)) << "element " << i;
  }
}

TEST(EcSerializeFuzz, DecodeMessageRejectsNonMembersWithTypedError) {
  GroupParams gp = GroupParams::named(ParamId::kEc255);
  EXPECT_THROW((void)gp.decode_message(Bigint(1).shl(255)), std::invalid_argument);
  EXPECT_THROW((void)gp.decode_message(Bigint(0) - gp.g()), std::invalid_argument);
  EXPECT_THROW((void)gp.decode_message(Bigint(1).shl(255) - Bigint(1)),
               std::invalid_argument);
}

TEST(EcSerializeFuzz, DecodeMessageOnArbitraryElementsIsBoundedOrTyped) {
  GroupParams gp = GroupParams::named(ParamId::kEc255);
  // Arbitrary group elements were not produced by encode_message; decoding
  // them must either throw the typed error or return a value inside the
  // documented message range — never crash, never exceed the range.
  mpz::Prng prng(55);
  for (int i = 0; i < 64; ++i) {
    Bigint x = gp.random_element(prng);
    try {
      Bigint v = gp.decode_message(x);
      EXPECT_FALSE(v.is_zero());
      EXPECT_LE(v, gp.max_message_value());
    } catch (const std::invalid_argument&) {
      // typed rejection is equally acceptable
    }
  }
}

TEST(EcSerializeFuzz, GroupParamsWireFuzzNeverCrashes) {
  Prng prng(404);
  Prng check_rng(405);
  for (int iter = 0; iter < 300; ++iter) {
    auto bytes = random_bytes(prng, 64);
    try {
      (void)group_params_from_bytes(bytes, check_rng);
    } catch (const common::CodecError&) {
    } catch (const std::invalid_argument&) {
    }
    try {
      (void)group_params_from_bytes_trusted(bytes);
    } catch (const common::CodecError&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(EcSerializeFuzz, EcTagWithTrailingBytesIsCodecError) {
  GroupParams gp = GroupParams::named(ParamId::kEc255);
  std::vector<std::uint8_t> bytes = group_params_to_bytes(gp);
  bytes.push_back(0x00);  // trailing garbage after the fixed-curve tag
  mpz::Prng prng(1);
  EXPECT_THROW((void)group_params_from_bytes(bytes, prng), common::CodecError);
  EXPECT_THROW((void)group_params_from_bytes_trusted(bytes), common::CodecError);
  // Unknown tag.
  std::vector<std::uint8_t> bad_tag{0x7e};
  EXPECT_THROW((void)group_params_from_bytes(bad_tag, prng), common::CodecError);
}

}  // namespace
}  // namespace dblind::group
