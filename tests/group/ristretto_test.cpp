// ristretto255 unit tests: RFC 9496 known-answer vectors, group laws, the
// canonical-encoding contract (decode rejects everything that is not an
// encoding), the ported comb / multi-scalar-mul machinery, and a property
// fuzz of the underlying GF(2^255-19) arithmetic against the Bigint oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "group/ristretto.hpp"
#include "hash/sha256.hpp"
#include "mpz/bigint.hpp"
#include "mpz/fe25519.hpp"
#include "mpz/modmath.hpp"
#include "mpz/random.hpp"

namespace dblind::group::ec {
namespace {

using mpz::Bigint;
using mpz::Fe25519;

// RFC 9496 §A.1: encodings of 0*B .. 15*B (B = generator), little-endian hex.
constexpr const char* kGeneratorMultiples[16] = {
    "0000000000000000000000000000000000000000000000000000000000000000",
    "e2f2ae0a6abc4e71a884a961c500515f58e30b6aa582dd8db6a65945e08d2d76",
    "6a493210f7499cd17fecb510ae0cea23a110e8d5b901f8acadd3095c73a3b919",
    "94741f5d5d52755ece4f23f044ee27d5d1ea1e2bd196b462166b16152a9d0259",
    "da80862773358b466ffadfe0b3293ab3d9fd53c5ea6c955358f568322daf6a57",
    "e882b131016b52c1d3337080187cf768423efccbb517bb495ab812c4160ff44e",
    "f64746d3c92b13050ed8d80236a7f0007c3b3f962f5ba793d19a601ebb1df403",
    "44f53520926ec81fbd5a387845beb7df85a96a24ece18738bdcfa6a7822a176d",
    "903293d8f2287ebe10e2374dc1a53e0bc887e592699f02d077d5263cdd55601c",
    "02622ace8f7303a31cafc63f8fc48fdc16e1c8c8d234b2f0d6685282a9076031",
    "20706fd788b2720a1ed2a5dad4952b01f413bcf0e7564de8cdc816689e2db95f",
    "bce83f8ba5dd2fa572864c24ba1810f9522bc6004afe95877ac73241cafdab42",
    "e4549ee16b9aa03099ca208c67adafcafa4c3f3e4e5303de6026e3ca8ff84460",
    "aa52e000df2e16f55fb1032fc33bc42742dad6bd5a8fc0be0167436c5948501f",
    "46376b80f409b29dc2b5f6f0c52591990896e5716f41477cd30085ab7f10301e",
    "e0c418f7c8d9c4cdd7395b93ea124f3ad99021bb681dfc3302a9d99a2e53e64e",
};

std::string to_hex(const EncodedPoint& e) {
  return hash::to_hex(std::vector<std::uint8_t>(e.begin(), e.end()));
}

EncodedPoint from_hex(const char* hex) {
  std::vector<std::uint8_t> v = hash::from_hex(hex);
  EncodedPoint out{};
  std::copy(v.begin(), v.end(), out.begin());
  return out;
}

ScalarBytes scalar_from_u64(std::uint64_t k) {
  ScalarBytes s{};
  for (int i = 0; i < 8; ++i) s[i] = static_cast<std::uint8_t>(k >> (8 * i));
  return s;
}

ScalarBytes random_scalar(mpz::Prng& prng) {
  // Uniform below the group order via the Bigint sampler.
  Bigint ell = Bigint::from_bytes_be([] {
    ScalarBytes le = group_order_le();
    std::reverse(le.begin(), le.end());
    return std::vector<std::uint8_t>(le.begin(), le.end());
  }());
  Bigint v = prng.uniform_below(ell);
  std::vector<std::uint8_t> be = v.to_bytes_be(32);
  ScalarBytes s{};
  for (int i = 0; i < 32; ++i) s[i] = be[31 - i];
  return s;
}

TEST(RistrettoKat, GeneratorMultiplesByAddition) {
  Point p = identity();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(to_hex(encode(p)), kGeneratorMultiples[i]) << "i=" << i;
    p = add(p, base_point());
  }
}

TEST(RistrettoKat, GeneratorMultiplesByScalarMul) {
  for (std::uint64_t k = 0; k < 16; ++k) {
    Point p = scalar_mul(base_point(), scalar_from_u64(k));
    EXPECT_EQ(to_hex(encode(p)), kGeneratorMultiples[k]) << "k=" << k;
  }
}

TEST(RistrettoKat, DecodeRoundTripsEveryVector) {
  for (const char* hex : kGeneratorMultiples) {
    EncodedPoint e = from_hex(hex);
    auto p = decode(e);
    ASSERT_TRUE(p.has_value()) << hex;
    EXPECT_EQ(encode(*p), e) << hex;
  }
}

TEST(RistrettoGroup, OrderAnnihilatesGenerator) {
  EXPECT_TRUE(is_identity(scalar_mul(base_point(), group_order_le())));
  // ell - 1 is the inverse of 1: (ell-1)*B + B == 0.
  ScalarBytes ell_minus_1 = group_order_le();
  ell_minus_1[0] -= 1;
  Point p = scalar_mul(base_point(), ell_minus_1);
  EXPECT_TRUE(is_identity(add(p, base_point())));
  EXPECT_TRUE(eq(p, neg(base_point())));
}

TEST(RistrettoGroup, AddCommutesAndAssociates) {
  mpz::Prng prng(7);
  Point a = scalar_mul(base_point(), random_scalar(prng));
  Point b = scalar_mul(base_point(), random_scalar(prng));
  Point c = scalar_mul(base_point(), random_scalar(prng));
  EXPECT_TRUE(eq(add(a, b), add(b, a)));
  EXPECT_TRUE(eq(add(add(a, b), c), add(a, add(b, c))));
  EXPECT_TRUE(eq(add(a, identity()), a));
  EXPECT_TRUE(is_identity(add(a, neg(a))));
  EXPECT_TRUE(eq(dbl(a), add(a, a)));
}

TEST(RistrettoGroup, EqIsCosetAwareNotCoordinateEquality) {
  // The same group element reached via different routes has different
  // extended coordinates but must compare equal (and encode identically).
  Point via_dbl = dbl(base_point());
  Point via_add = add(base_point(), base_point());
  Point via_mul = scalar_mul(base_point(), scalar_from_u64(2));
  EXPECT_TRUE(eq(via_dbl, via_add));
  EXPECT_TRUE(eq(via_dbl, via_mul));
  EXPECT_EQ(encode(via_dbl), encode(via_add));
}

TEST(RistrettoDecode, RejectsNonCanonicalEncodings) {
  // All 0xff: the field value is >= p (non-canonical) and the high bit set.
  EncodedPoint all_ff;
  all_ff.fill(0xff);
  EXPECT_FALSE(decode(all_ff).has_value());

  // Negative s (low bit set): -encode(B) flipped into the negative half.
  EncodedPoint neg_s = from_hex(kGeneratorMultiples[1]);
  neg_s[0] |= 0x01;
  EXPECT_FALSE(decode(neg_s).has_value());

  // High bit of byte 31 set on an otherwise-valid encoding.
  EncodedPoint high_bit = from_hex(kGeneratorMultiples[1]);
  high_bit[31] |= 0x80;
  EXPECT_FALSE(decode(high_bit).has_value());

  // p - 1 is canonical as a field element but not on the right coset.
  // (2^255 - 20, little-endian: ec ff .. ff 7f)
  EncodedPoint p_minus_1;
  p_minus_1.fill(0xff);
  p_minus_1[0] = 0xec;
  p_minus_1[31] = 0x7f;
  EXPECT_FALSE(decode(p_minus_1).has_value());

  // p itself encodes the same field element as 0 but non-canonically.
  EncodedPoint p_enc;
  p_enc.fill(0xff);
  p_enc[0] = 0xed;
  p_enc[31] = 0x7f;
  EXPECT_FALSE(decode(p_enc).has_value());
}

TEST(RistrettoDecode, RandomStringsMostlyRejectAndNeverCrash) {
  mpz::Prng prng(99);
  int accepted = 0;
  for (int i = 0; i < 256; ++i) {
    EncodedPoint e;
    prng.fill(e);
    auto p = decode(e);
    if (p.has_value()) {
      ++accepted;
      EXPECT_EQ(encode(*p), e);  // accepted strings must be canonical
    }
  }
  // About half of sub-p values have a square x^2 candidate; with the two
  // sign/high bits this lands near 1/4 acceptance. Just bound it loosely.
  EXPECT_LT(accepted, 128);
}

TEST(RistrettoMap, MapToPointIsDeterministicAndValid) {
  std::array<std::uint8_t, 64> uniform{};
  for (int i = 0; i < 64; ++i) uniform[i] = static_cast<std::uint8_t>(i * 7 + 1);
  Point p = map_to_point(uniform);
  Point q = map_to_point(uniform);
  EXPECT_TRUE(eq(p, q));
  EncodedPoint e = encode(p);
  auto back = decode(e);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(eq(*back, p));
  uniform[0] ^= 1;
  EXPECT_FALSE(eq(map_to_point(uniform), p));
}

TEST(RistrettoComb, MatchesScalarMulForBothWindowWidths) {
  mpz::Prng prng(11);
  CombTable w4(base_point(), 4);
  CombTable w5(base_point(), 5);
  for (int i = 0; i < 8; ++i) {
    ScalarBytes s = random_scalar(prng);
    Point ref = scalar_mul(base_point(), s);
    EXPECT_TRUE(eq(w4.mul(s), ref)) << "w=4 i=" << i;
    EXPECT_TRUE(eq(w5.mul(s), ref)) << "w=5 i=" << i;
  }
  EXPECT_TRUE(is_identity(w4.mul(ScalarBytes{})));
  EXPECT_TRUE(is_identity(w4.mul(group_order_le())));
}

TEST(RistrettoMultiExp, MatchesNaiveAcrossStrausPippengerCrossover) {
  mpz::Prng prng(13);
  // n = 2 and 8 take the Straus path, 9 and 24 the Pippenger path.
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{8},
                        std::size_t{9}, std::size_t{24}}) {
    std::vector<Point> bases;
    std::vector<ScalarBytes> scalars;
    Point naive = identity();
    for (std::size_t i = 0; i < n; ++i) {
      ScalarBytes b = random_scalar(prng);
      ScalarBytes s = random_scalar(prng);
      bases.push_back(scalar_mul(base_point(), b));
      scalars.push_back(s);
      naive = add(naive, scalar_mul(bases.back(), s));
    }
    EXPECT_TRUE(eq(multi_scalar_mul(bases, scalars), naive)) << "n=" << n;
  }
  EXPECT_TRUE(is_identity(multi_scalar_mul({}, {})));
}

// ---- GF(2^255-19) property fuzz against the Bigint oracle ------------------

Bigint field_p() {
  return Bigint(1).shl(255) - Bigint(19);
}

Bigint fe_to_bigint(const Fe25519& a) {
  std::array<std::uint8_t, 32> le{};
  mpz::fe_to_bytes(le, a);
  std::vector<std::uint8_t> be(le.rbegin(), le.rend());
  return Bigint::from_bytes_be(be);
}

Fe25519 fe_from_bigint(const Bigint& v) {
  std::vector<std::uint8_t> be = v.to_bytes_be(32);
  std::array<std::uint8_t, 32> le{};
  for (int i = 0; i < 32; ++i) le[i] = be[31 - i];
  return mpz::fe_from_bytes(le);
}

TEST(Fe25519Fuzz, ArithmeticMatchesBigintOracle) {
  mpz::Prng prng(1729);
  const Bigint p = field_p();
  for (int iter = 0; iter < 200; ++iter) {
    Bigint av = prng.uniform_below(p);
    Bigint bv = prng.uniform_below(p);
    Fe25519 a = fe_from_bigint(av);
    Fe25519 b = fe_from_bigint(bv);
    EXPECT_EQ(fe_to_bigint(mpz::fe_add(a, b)), mpz::addmod(av, bv, p));
    EXPECT_EQ(fe_to_bigint(mpz::fe_sub(a, b)), mpz::submod(av, bv, p));
    EXPECT_EQ(fe_to_bigint(mpz::fe_mul(a, b)), mpz::mulmod(av, bv, p));
    EXPECT_EQ(fe_to_bigint(mpz::fe_sq(a)), mpz::mulmod(av, av, p));
    EXPECT_EQ(fe_to_bigint(mpz::fe_neg(a)), mpz::submod(Bigint(0), av, p));
    EXPECT_EQ(fe_to_bigint(mpz::fe_mul_small(a, 121666)),
              mpz::mulmod(av, Bigint(121666), p));
    if (!av.is_zero()) {
      EXPECT_EQ(mpz::mulmod(fe_to_bigint(mpz::fe_invert(a)), av, p), Bigint(1));
    }
  }
}

TEST(Fe25519Fuzz, EncodingRoundTripsAndOrders) {
  mpz::Prng prng(271828);
  const Bigint p = field_p();
  for (int iter = 0; iter < 100; ++iter) {
    Bigint v = prng.uniform_below(p);
    Fe25519 a = fe_from_bigint(v);
    EXPECT_EQ(fe_to_bigint(a), v);
    EXPECT_EQ(mpz::fe_is_zero(a), v.is_zero());
    // RFC negativity == low bit of the canonical encoding.
    EXPECT_EQ(mpz::fe_is_negative(a), v.is_odd());
  }
  // Values >= p entered via from_bytes reduce to v - p.
  Fe25519 wrapped = fe_from_bigint(p - Bigint(1));
  Fe25519 one = Fe25519::one();
  EXPECT_TRUE(mpz::fe_eq(mpz::fe_add(wrapped, mpz::fe_add(one, one)), one));
}

TEST(Fe25519Fuzz, SqrtRatioAgreesWithOracle) {
  mpz::Prng prng(31415);
  const Bigint p = field_p();
  for (int iter = 0; iter < 50; ++iter) {
    Bigint uv = prng.uniform_below(p);
    Bigint vv = prng.uniform_below(p);
    if (vv.is_zero()) continue;
    auto [was_square, root] = mpz::fe_sqrt_ratio_m1(fe_from_bigint(uv), fe_from_bigint(vv));
    Bigint r = fe_to_bigint(root);
    Bigint r2v = mpz::mulmod(mpz::mulmod(r, r, p), vv, p);
    if (was_square) {
      EXPECT_EQ(r2v, uv);  // r^2 * v == u
    } else {
      // r^2 * v == i * u with i = sqrt(-1), so (r^2 * v)^2 == -u^2.
      Bigint lhs = mpz::mulmod(r2v, r2v, p);
      Bigint rhs = mpz::submod(Bigint(0), mpz::mulmod(uv, uv, p), p);
      EXPECT_EQ(lhs, rhs) << "r^2*v should square to -u^2";
    }
    EXPECT_FALSE(fe_is_negative(root));
  }
}

}  // namespace
}  // namespace dblind::group::ec
