// GroupParams on the ristretto255 backend: the full facade contract that
// every protocol layer relies on — algebra, message embedding, fixed-base
// caches and their epoch invalidation, element serialization, op accounting —
// plus cross-backend differential checks against the mod-p oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "group/params.hpp"
#include "group/serialize.hpp"
#include "mpz/modmath.hpp"
#include "mpz/random.hpp"

namespace dblind::group {
namespace {

using mpz::Bigint;

GroupParams ec() { return GroupParams::named(ParamId::kEc255); }

TEST(EcBackend, BasicShape) {
  GroupParams gp = ec();
  EXPECT_EQ(gp.backend_kind(), backend::Kind::kEc255);
  EXPECT_EQ(gp.backend_name(), "ec255");
  EXPECT_EQ(gp.element_size(), 32u);
  EXPECT_EQ(gp.bits(), 255u);
  // ell = 2^252 + 27742317777372353535851937790883648493.
  EXPECT_EQ(gp.q(), Bigint::from_hex(
                        "1000000000000000000000000000000014def9dea2f79cd65812631a5cf5d3ed"));
  EXPECT_EQ(gp.p(), Bigint(1).shl(255) - Bigint(19));
  EXPECT_TRUE(gp.is_identity(gp.identity()));
  EXPECT_EQ(gp.identity(), Bigint(0));  // 32 zero bytes boxed
  EXPECT_TRUE(gp.in_group(gp.g()));
  EXPECT_FALSE(gp.is_identity(gp.g()));
}

TEST(EcBackend, GroupLawsThroughTheFacade) {
  GroupParams gp = ec();
  mpz::Prng prng(5);
  Bigint e1 = gp.random_exponent(prng);
  Bigint e2 = gp.random_exponent(prng);
  Bigint x = gp.pow_g(e1);
  Bigint y = gp.pow_g(e2);
  EXPECT_TRUE(gp.in_group(x));
  EXPECT_TRUE(gp.in_zp_star(x));
  // Homomorphism: g^e1 * g^e2 == g^(e1+e2).
  EXPECT_EQ(gp.mul(x, y), gp.pow_g(mpz::addmod(e1, e2, gp.q())));
  // pow vs pow_g, inverse, identity.
  EXPECT_EQ(gp.pow(gp.g(), e1), x);
  EXPECT_EQ(gp.mul(x, gp.inv(x)), gp.identity());
  EXPECT_EQ(gp.mul(x, gp.identity()), x);
  EXPECT_EQ(gp.pow(x, Bigint(0)), gp.identity());
  // (g^e1)^e2 == (g^e2)^e1.
  EXPECT_EQ(gp.pow(x, e2), gp.pow(y, e1));
  // pow2 and multi_pow against explicit products.
  Bigint a = gp.random_element(prng);
  Bigint b = gp.random_element(prng);
  EXPECT_EQ(gp.pow2(a, e1, b, e2), gp.mul(gp.pow(a, e1), gp.pow(b, e2)));
  std::vector<Bigint> bases{a, b, x};
  std::vector<Bigint> exps{e1, e2, e2};
  EXPECT_EQ(gp.multi_pow(bases, exps),
            gp.mul(gp.mul(gp.pow(a, e1), gp.pow(b, e2)), gp.pow(x, e2)));
}

TEST(EcBackend, FixedBaseCachesMatchPlainPowAndInvalidate) {
  GroupParams gp = ec();
  mpz::Prng prng(6);
  Bigint base = gp.random_element(prng);
  Bigint e = gp.random_exponent(prng);
  Bigint ref = gp.pow(base, e);
  EXPECT_EQ(gp.pow_cached(base, e), ref);
  EXPECT_GE(gp.cached_table_count(), 1u);
  // pow_fixed without a pin must not insert anything.
  std::size_t pinned_before = gp.pinned_table_count();
  EXPECT_EQ(gp.pow_fixed(base, e), ref);
  EXPECT_EQ(gp.pinned_table_count(), pinned_before);
  gp.pin_base(base);
  EXPECT_EQ(gp.pinned_table_count(), pinned_before + 1);
  EXPECT_EQ(gp.pow_fixed(base, e), ref);
  // Pinning g is a no-op (pow_g already combs it).
  gp.pin_base(gp.g());
  EXPECT_EQ(gp.pinned_table_count(), pinned_before + 1);
  // Epoch invalidation drops both cache families.
  gp.reset_base_caches();
  EXPECT_EQ(gp.cached_table_count(), 0u);
  EXPECT_EQ(gp.pinned_table_count(), 0u);
  EXPECT_EQ(gp.pow_fixed(base, e), ref);  // degrades to pow(), same value
}

TEST(EcBackend, MessageEmbeddingRoundTrips) {
  GroupParams gp = ec();
  // 2^232 - 1: the 29-byte payload ceiling.
  EXPECT_EQ(gp.max_message_value(), Bigint(1).shl(232) - Bigint(1));
  std::vector<Bigint> values{Bigint(1), Bigint(2), Bigint(424242),
                             gp.max_message_value(),
                             gp.max_message_value() - Bigint(123456789)};
  for (const Bigint& v : values) {
    Bigint elem = gp.encode_message(v);
    EXPECT_TRUE(gp.in_group(elem));
    EXPECT_EQ(gp.decode_message(elem), v);
  }
  EXPECT_THROW((void)gp.encode_message(Bigint(0)), std::invalid_argument);
  EXPECT_THROW((void)gp.encode_message(gp.max_message_value() + Bigint(1)),
               std::invalid_argument);
  // Deterministic: same value, same element.
  EXPECT_EQ(gp.encode_message(Bigint(77)), gp.encode_message(Bigint(77)));
}

TEST(EcBackend, ByteEncodingRoundTrips) {
  GroupParams gp = ec();
  std::vector<std::uint8_t> payload{0x00, 0x01, 0xff, 0x42, 0x00};
  Bigint elem = gp.encode_bytes(payload);
  EXPECT_EQ(gp.decode_bytes(elem), payload);
  // 28 payload bytes + sentinel = 29 bytes fits; 29 + sentinel does not.
  std::vector<std::uint8_t> max_fit(28, 0xab);
  EXPECT_EQ(gp.decode_bytes(gp.encode_bytes(max_fit)), max_fit);
  std::vector<std::uint8_t> too_big(29, 0xab);
  EXPECT_THROW((void)gp.encode_bytes(too_big), std::invalid_argument);
}

TEST(EcBackend, ElementBytesAreCanonical32ByteEncodings) {
  GroupParams gp = ec();
  mpz::Prng prng(8);
  for (int i = 0; i < 4; ++i) {
    Bigint x = gp.random_element(prng);
    std::vector<std::uint8_t> bytes = gp.element_bytes(x);
    ASSERT_EQ(bytes.size(), 32u);
    // The boxed Bigint IS the little-endian encoding read as an integer.
    std::vector<std::uint8_t> be(bytes.rbegin(), bytes.rend());
    EXPECT_EQ(Bigint::from_bytes_be(be), x);
  }
  EXPECT_EQ(gp.element_bytes(gp.identity()), std::vector<std::uint8_t>(32, 0));
}

TEST(EcBackend, HashToGroupIsDeterministicAndLabelSeparated) {
  GroupParams gp = ec();
  Bigint h1 = gp.hash_to_group("pedersen-h");
  Bigint h2 = gp.hash_to_group("pedersen-h");
  Bigint h3 = gp.hash_to_group("other-label");
  EXPECT_EQ(h1, h2);
  EXPECT_NE(h1, h3);
  EXPECT_TRUE(gp.in_group(h1));
  EXPECT_FALSE(gp.is_identity(h1));
}

TEST(EcBackend, OpCounterAdvancesAndWeightIsEcScale) {
  GroupParams gp = ec();
  std::uint64_t before = gp.group_op_count();
  (void)gp.pow_g(Bigint(123456));
  EXPECT_GT(gp.group_op_count(), before);
  EXPECT_EQ(gp.op_cost_weight(), 25u);  // word-muls per field mul
  EXPECT_EQ(gp.mont_mul_count(), gp.group_op_count());  // alias
  // The mod-p oracle weighs ops as 2k^2 word muls.
  GroupParams modp = GroupParams::named(ParamId::kToy64);
  EXPECT_EQ(modp.op_cost_weight(), 2u);  // k = 1 limb
}

TEST(EcBackend, RandomElementsAreDistinctAndValid) {
  GroupParams gp = ec();
  mpz::Prng prng(9);
  std::set<Bigint> seen;
  for (int i = 0; i < 16; ++i) {
    Bigint x = gp.random_element(prng);
    EXPECT_TRUE(gp.in_group(x));
    EXPECT_TRUE(seen.insert(x).second);
  }
}

TEST(EcBackend, InGroupRejectsNonEncodings) {
  GroupParams gp = ec();
  EXPECT_FALSE(gp.in_group(Bigint(-1)));
  EXPECT_FALSE(gp.in_group(Bigint(1).shl(256)));      // too wide
  EXPECT_FALSE(gp.in_group(Bigint(1).shl(255) - Bigint(1)));  // >= p, non-canonical
  // g with the sign bit of the encoding flipped (negative s) is rejected.
  Bigint flipped = gp.g().is_odd() ? gp.g() - Bigint(1) : gp.g() + Bigint(1);
  EXPECT_FALSE(gp.in_group(flipped));
}

TEST(EcBackend, NamedOrEnvSelectsBackend) {
  GroupParams def = GroupParams::named_or_env(ParamId::kToy64);
  const char* env = std::getenv("DBLIND_BACKEND");  // NOLINT(concurrency-mt-unsafe)
  if (env != nullptr && (std::string_view(env) == "ec" || std::string_view(env) == "ec255")) {
    EXPECT_EQ(def.backend_kind(), backend::Kind::kEc255);
  } else {
    EXPECT_EQ(def.backend_kind(), backend::Kind::kModP);
  }
}

TEST(EcBackend, SerializationRoundTripsAndIsCompact) {
  GroupParams gp = ec();
  std::vector<std::uint8_t> bytes = group_params_to_bytes(gp);
  EXPECT_EQ(bytes.size(), 1u);  // tag only: the curve is named, not negotiated
  mpz::Prng prng(10);
  GroupParams back = group_params_from_bytes(bytes, prng);
  EXPECT_EQ(back, gp);
  EXPECT_EQ(back.backend_kind(), backend::Kind::kEc255);
  GroupParams trusted = group_params_from_bytes_trusted(bytes);
  EXPECT_EQ(trusted, gp);
  // Hex form round trips too.
  EXPECT_EQ(group_params_from_hex(group_params_to_hex(gp), prng), gp);
}

TEST(EcBackend, EqualityDistinguishesBackends) {
  EXPECT_EQ(ec(), ec());
  EXPECT_FALSE(ec() == GroupParams::named(ParamId::kToy64));
  EXPECT_FALSE(ec() == GroupParams::named(ParamId::kSec2048));
}

// ---- cross-backend differential: the mod-p group is the oracle -------------

TEST(EcBackendDifferential, AlgebraAgreesWithModPOracle) {
  // The same algebraic scripts run on both backends must satisfy the same
  // identities; element values differ, structure must not.
  for (ParamId id : {ParamId::kToy64, ParamId::kEc255}) {
    GroupParams gp = GroupParams::named(id);
    mpz::Prng prng(42);
    Bigint k = gp.random_exponent(prng);
    Bigint r = gp.random_exponent(prng);
    Bigint m = gp.encode_message(Bigint(31337));
    // ElGamal round trip: (g^r, m * y^r) with y = g^k decrypts via a^k.
    Bigint y = gp.pow_g(k);
    Bigint a = gp.pow_g(r);
    Bigint b = gp.mul(m, gp.pow(y, r));
    Bigint recovered = gp.mul(b, gp.inv(gp.pow(a, k)));
    EXPECT_EQ(recovered, m) << "backend " << gp.backend_name();
    EXPECT_EQ(gp.decode_message(recovered), Bigint(31337))
        << "backend " << gp.backend_name();
  }
}

}  // namespace
}  // namespace dblind::group
