// Fixed-base comb tables: differential tests against the generic Montgomery
// path across window widths and edge exponents, plus the GroupParams pinning
// semantics (explicit pin set, g fast path, no insertion on miss) and the
// mont-mul reduction the offline/online split's bench gate relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "group/params.hpp"
#include "mpz/modmath.hpp"
#include "mpz/montgomery.hpp"
#include "mpz/random.hpp"

namespace dblind::group {
namespace {

using mpz::Bigint;

std::vector<Bigint> edge_exponents(const Bigint& q, mpz::Prng& prng) {
  std::vector<Bigint> exps = {Bigint(0), Bigint(1), Bigint(2), q - Bigint(1)};
  // Window-boundary shapes: all-ones and single-bit exponents stress carry
  // paths between comb windows.
  exps.push_back((Bigint(1) << 17) - Bigint(1));
  exps.push_back(Bigint(1) << (q.bit_length() - 1));
  for (int i = 0; i < 8; ++i) exps.push_back(prng.uniform_below(q));
  return exps;
}

class FixedBaseWindows : public ::testing::TestWithParam<std::size_t> {};

// Every window width must agree with the generic square-and-multiply path on
// the edge exponents (0, 1, order-1, boundary patterns) and random draws.
TEST_P(FixedBaseWindows, AgreesWithGenericPow) {
  const std::size_t window = GetParam();
  GroupParams gp = GroupParams::named(ParamId::kTest128);
  mpz::MontgomeryCtx ctx(gp.p());
  mpz::Prng prng(7100 + window);

  for (const Bigint& base : {gp.g(), gp.pow_g(Bigint(12345)), Bigint(1)}) {
    mpz::FixedBasePow table(ctx, base, gp.q().bit_length(), window);
    EXPECT_EQ(table.window_bits(), window);
    for (const Bigint& e : edge_exponents(gp.q(), prng)) {
      EXPECT_EQ(table.pow(e), ctx.pow(base, e))
          << "window=" << window << " e=" << e.to_hex();
      EXPECT_EQ(table.pow(e), mpz::powmod(base, e, gp.p()))
          << "window=" << window << " e=" << e.to_hex();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, FixedBaseWindows, ::testing::Values(1, 2, 3, 4, 5, 6),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(FixedBase, RejectsOutOfRangeWindow) {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  mpz::MontgomeryCtx ctx(gp.p());
  EXPECT_THROW(mpz::FixedBasePow(ctx, gp.g(), 64, 0), std::invalid_argument);
  EXPECT_THROW(mpz::FixedBasePow(ctx, gp.g(), 64, 9), std::invalid_argument);
}

// pow_fixed must be a pure dispatcher: pinned bases hit their comb table,
// g hits the pow_g table, anything else falls through to the generic path —
// all with identical results, and a miss must never grow the pinned set
// (that is pin_base's explicit privilege).
TEST(FixedBase, PinnedDispatchMatchesPow) {
  GroupParams gp = GroupParams::named(ParamId::kTest128);
  mpz::Prng prng(7200);
  const Bigint y = gp.pow_g(gp.random_exponent(prng));
  const Bigint stranger = gp.pow_g(gp.random_exponent(prng));
  gp.pin_base(y);
  gp.pin_base(y);       // idempotent
  gp.pin_base(gp.g());  // no-op: pow_g's table already covers g

  for (const Bigint& e :
       {Bigint(0), Bigint(1), gp.q() - Bigint(1), gp.random_exponent(prng)}) {
    EXPECT_EQ(gp.pow_fixed(y, e), gp.pow(y, e)) << "pinned base, e=" << e.to_hex();
    EXPECT_EQ(gp.pow_fixed(gp.g(), e), gp.pow_g(e)) << "generator, e=" << e.to_hex();
    EXPECT_EQ(gp.pow_fixed(stranger, e), gp.pow(stranger, e))
        << "unpinned base, e=" << e.to_hex();
  }
}

// Copies of GroupParams share the pinned tables (one build per key epoch,
// visible to every server holding the same parameters).
TEST(FixedBase, PinSharedAcrossCopies) {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  mpz::Prng prng(7300);
  const Bigint y = gp.pow_g(gp.random_exponent(prng));
  GroupParams copy = gp;
  gp.pin_base(y);

  const Bigint e = gp.random_exponent(prng);
  const std::uint64_t before = copy.mont_mul_count();
  const Bigint via_copy = copy.pow_fixed(y, e);
  const std::uint64_t comb_muls = copy.mont_mul_count() - before;
  EXPECT_EQ(via_copy, gp.pow(y, e));
  // The copy must have used the comb table built through the original: a
  // q-bit exponent costs at most ceil(bits/5) multiplications there, far
  // below the squaring chain of the generic path.
  EXPECT_LE(comb_muls, (gp.q().bit_length() + 4) / 5 + 1);
}

// Epoch-boundary invalidation (PR 7): reset_base_caches drops every pinned
// comb table, so bases pinned for a dying key epoch are unreachable in the
// next one — the epoch's install cascade calls exactly this before pinning
// the new roster's verification keys. Results stay correct throughout (a
// miss falls back to the generic path); only the table inventory changes.
TEST(FixedBase, ResetDropsPinnedTablesAcrossEpochs) {
  GroupParams gp = GroupParams::named(ParamId::kToy64);
  mpz::Prng prng(7500);
  const Bigint y_old = gp.pow_g(gp.random_exponent(prng));
  const Bigint y_new = gp.pow_g(gp.random_exponent(prng));
  gp.pin_base(y_old);
  // Populate the on-demand side too: both inventories must die at the reset.
  (void)gp.pow_cached(y_new, gp.random_exponent(prng));
  EXPECT_EQ(gp.pinned_table_count(), 1u);
  EXPECT_GE(gp.cached_table_count(), 1u);

  gp.reset_base_caches();
  EXPECT_EQ(gp.pinned_table_count(), 0u);
  EXPECT_EQ(gp.cached_table_count(), 0u);
  // The stale base still computes correctly — through the generic path, at
  // the generic path's cost (a fresh dispatch must not resurrect the table).
  const Bigint e = gp.random_exponent(prng);
  EXPECT_EQ(gp.pow_fixed(y_old, e), gp.pow(y_old, e));
  EXPECT_EQ(gp.pinned_table_count(), 0u);

  // The new epoch pins its own bases; the old one stays unpinned, and the
  // reset is visible through every copy sharing the parameter caches.
  GroupParams copy = gp;
  gp.pin_base(y_new);
  EXPECT_EQ(copy.pinned_table_count(), 1u);
  EXPECT_EQ(copy.pow_fixed(y_new, e), gp.pow(y_new, e));
}

// The perf claim behind the tentpole, machine-independent: a comb-table
// exponentiation performs at least 2x fewer Montgomery multiplications than
// the generic path for the same (base, exponent).
TEST(FixedBase, CombHalvesMontMulsVsGeneric) {
  GroupParams gp = GroupParams::named(ParamId::kTest256);
  mpz::MontgomeryCtx ctx(gp.p());
  mpz::Prng prng(7400);
  const Bigint base = mpz::powmod(gp.g(), Bigint(987654321), gp.p());
  // Window 5 = the width pin_base() uses for protocol bases.
  mpz::FixedBasePow table(ctx, base, gp.q().bit_length(), 5);

  const Bigint e = prng.uniform_below(gp.q());
  std::uint64_t t0 = ctx.mul_count();
  const Bigint via_comb = table.pow(e);
  const std::uint64_t comb = ctx.mul_count() - t0;
  t0 = ctx.mul_count();
  const Bigint via_generic = ctx.pow(base, e);
  const std::uint64_t generic = ctx.mul_count() - t0;

  EXPECT_EQ(via_comb, via_generic);
  EXPECT_LE(comb * 2, generic) << "comb=" << comb << " generic=" << generic;
}

}  // namespace
}  // namespace dblind::group
