#!/usr/bin/env bash
# clang-tidy driver for the dblind tree.
#
# Usage: tools/run_tidy.sh [-p <build-dir>] [extra clang-tidy args...]
#
# Runs clang-tidy (config: .clang-tidy at the repo root) over every .cpp
# under src/ using the compile-commands database of <build-dir>. The
# warning set is promoted to errors by WarningsAsErrors, so any finding
# fails the run.
#
# Exit codes:
#   0   clean
#   1   clang-tidy findings (or usage error)
#   77  skipped: no clang-tidy binary on PATH (ctest marks the gate test
#       SKIPPED via SKIP_RETURN_CODE; CI images with clang installed run
#       the real gate)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD=""
if [[ "${1:-}" == "-p" ]]; then
  BUILD="${2:?run_tidy.sh: -p needs a build dir}"
  shift 2
fi
if [[ -z "$BUILD" ]]; then
  for cand in "$ROOT/build" "$ROOT/build-relwithdebinfo" "$ROOT/build-asan"; do
    [[ -f "$cand/compile_commands.json" ]] && BUILD="$cand" && break
  done
fi
if [[ -z "$BUILD" || ! -f "$BUILD/compile_commands.json" ]]; then
  echo "run_tidy.sh: no compile_commands.json found; configure first" \
       "(e.g. cmake --preset relwithdebinfo)" >&2
  exit 1
fi

TIDY=""
for cand in clang-tidy clang-tidy-21 clang-tidy-20 clang-tidy-19 clang-tidy-18 \
            clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" > /dev/null 2>&1; then
    TIDY="$cand"
    break
  fi
done
if [[ -z "$TIDY" ]]; then
  echo "run_tidy.sh: clang-tidy not installed; skipping tidy gate" >&2
  exit 77
fi

mapfile -t FILES < <(find "$ROOT/src" -name '*.cpp' | sort)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_tidy.sh: no sources under src/" >&2
  exit 1
fi

echo "run_tidy.sh: $TIDY over ${#FILES[@]} files (db: $BUILD)"
JOBS="$(nproc 2> /dev/null || echo 4)"
printf '%s\n' "${FILES[@]}" |
  xargs -P "$JOBS" -n 4 "$TIDY" -p "$BUILD" --quiet "$@"
STATUS=$?

if [[ $STATUS -ne 0 ]]; then
  echo "run_tidy.sh: clang-tidy reported findings (exit $STATUS)" >&2
  exit 1
fi
echo "run_tidy.sh: clean"
exit 0
