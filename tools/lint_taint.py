#!/usr/bin/env python3
"""Secret-flow taint lint for the dblind re-encryption stack.

``lint_crypto.py`` pattern-matches single lines: it catches ``std::cout <<
share`` but not ``auto tmp = share; std::cout << tmp;``. This linter closes
that gap with an **intra-procedural dataflow pass** over every function body
in ``src/``: taint is seeded at secret *sources*, propagated through
assignments, arithmetic and function-call returns, and reported when it
reaches a *sink* — unless the flow passed through an approved *laundering*
call first.

Sources (what seeds taint):
  * naming convention — identifiers whose name marks them as secret-bearing
    anywhere in the protocol stack: ``rho*``, ``r1``/``r2``, ``share*``,
    ``secret*``, ``witness*``, ``nonce*``, ``sk*``/``priv*``, ``key_share*``,
    ``blinding*``, ``exponent*``-named locals and members — and, for the EC
    backend, ``scalar*``/``clamped*`` (a scalar is the curve-side spelling
    of a secret exponent). These are tainted at every use; renaming a
    secret does not launder it (the assignment propagates the taint to the
    new name).
  * ``mpz::Prng`` draws — ``prng.*``, ``ctx.rng()``, ``random_element()``,
    ``random_exponent()``, ``uniform_*()``, ``.fork()``. Raw randomness is
    secret until laundered.
  * decryption — any ``*decrypt*(...)`` call return. A value that was safely
    encrypted becomes secret *again* the moment it is decrypted
    (re-tainting), even if the ciphertext variable was clean.
  * the field registry — a declaration carrying a trailing ``// taint:secret``
    comment registers that field/variable name as tainted in every function
    of the file (for secrets whose names are protocol-neutral, e.g. a member
    ``x_`` holding a Shamir share).

Propagation: ``lhs = expr`` / ``lhs op= expr`` / ``Type lhs(expr)`` taints
``lhs`` whenever ``expr`` mentions tainted material and no laundering call
wraps it. Overwriting a propagated-taint variable with a clean expression
clears it (flow sensitivity); name-based taint cannot be cleared.

Laundering (approved one-way/enciphering transforms whose output is public
by design): ``encrypt*``, ``commit*``, ``hash*``/``sha256*``/``digest*``,
transcript ``absorb*``/``challenge*``, group exponentiation (``pow``,
``pow_g``, ``pow_fixed``, ``pow_cached``, ``pow2``, ``multi_pow`` — DL-hard),
and the wire-framing path ``make_envelope``/``frame_bytes`` (its output is a
signed protocol message, public by definition). Length/size projections
(``bit_length()``, ``size()``) are deliberately NOT laundering — consistent
with lint_crypto's trace-hygiene rule.

Sinks (where tainted values must never arrive):
  taint-trace       arguments of ``emit_*``/``record*`` observability calls
                    (multi-line calls included)
  taint-metric      arguments of metric-handle updates ``.inc()``/``.set()``/
                    ``.observe()``
  taint-log         ``std::cout``/``cerr``/``clog`` insertion, printf-family,
                    ``std::format`` — plus stream-insertion via a named
                    ostream (``os << tainted``)
  taint-snapshot    bodies of ``::snapshot()`` durable-state serializers.
                    Only *ephemeral* secrets fire here (rho, r1/r2, nonces,
                    witnesses, prng state, pool bundles): snapshots exist to
                    persist long-lived key material, but single-use
                    randomness must never survive a crash (re-proving over
                    it after restore breaks witness secrecy).
  taint-retransmit  the retransmit cache: assignments into ``*frame*`` /
                    ``*retransmit_cache*`` members and ``arm_resend``/
                    ``cache_frame*`` arguments must carry framed signed
                    bytes, never raw secrets.

Waivers: append ``// taint-lint: allow(<rule>) <reason>`` to the flagged
line (or the line directly above). A reason is mandatory.

Exit codes: 0 clean, 1 violations, 2 usage error. ``--self-test`` runs the
embedded corpus (multi-step propagation, laundering, re-tainting after
decrypt, suppressions) and fails if any rule stops firing.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List, Set, Tuple

import lintlib
from lintlib import Finding

# --- sources -----------------------------------------------------------------

# Identifiers tainted by naming convention (matched against whole words).
SECRET_NAME = re.compile(
    r"^(?:rho\w*|r1|r2|shares?\w*|secrets?\w*|witness\w*|nonces?\w*|sk\w*|"
    r"priv\w*|key_share\w*|blinding\w*|decrypt_share\w*|exponents?\w*|"
    # Re-sharing sub-shares (PR 7): a dealer's point evaluations of its own
    # share; any one of them plus the dealer's commitments pins the share.
    r"subshares?\w*|enc_sub\w*|sign_sub\w*|"
    # EC backend (PR 10): scalars are the curve-side spelling of secret
    # exponents (key shares, rho, clamped keys); sk_* is covered by sk\w*.
    r"scalars?\w*|clamped\w*)$",
    re.IGNORECASE,
)

# The subset that is *ephemeral* (single-use randomness): the only class of
# secret that the snapshot sink rejects.
EPHEMERAL_NAME = re.compile(
    r"^(?:rho\w*|r1|r2|nonces?\w*|witness\w*|prng\w*|bundles?\w*|pool\w*)$",
    re.IGNORECASE,
)

# An expression drawing fresh randomness (result: tainted AND ephemeral).
PRNG_DRAW = re.compile(
    r"\bprng\b|\brng\s*\(|\.fork\s*\(|\brandom_element\s*\(|"
    r"\brandom_exponent\s*\(|\buniform_\w+\s*\("
)

# An expression whose result is freshly-decrypted plaintext (re-tainting:
# the ciphertext may have been clean, the plaintext is secret again).
DECRYPT_CALL = re.compile(r"\b\w*decrypt\w*\s*\(", re.IGNORECASE)

# Field-registry annotation on a declaration line.
REGISTRY_MARK = re.compile(r"//\s*taint:secret\b")
# The declared identifier: last word before ; = { ( on the code part.
DECL_NAME = re.compile(r"([A-Za-z_]\w*)\s*(?:;|=|\{|\()")

# --- laundering --------------------------------------------------------------

LAUNDER_CALL = re.compile(
    r"\b(?:encrypt\w*|commit\w*|hash\w*|sha256\w*|digest\w*|absorb\w*|"
    r"challenge\w*|pow_g|pow_fixed|pow_cached|pow2|multi_pow|pow|"
    r"make_envelope|frame_bytes|signed_frame|frame_service|"
    r"check_\w+|verify\w*)\s*\("
)

# Public projections of secret-holding structs: identity/shape metadata whose
# value is protocol-public even though the owning object carries secrets
# (e.g. ``secrets_.rank`` — the server's rank — vs ``secrets_.sign_share``).
PUBLIC_PROJECTION = re.compile(r"\b[A-Za-z_][\w]*\s*(?:\.|->)\s*(?:rank|role)\b")

# --- sinks -------------------------------------------------------------------

TRACE_SINK = re.compile(r"\b(?:emit|record)\w*\s*\(")
METRIC_SINK = re.compile(r"\.(?:inc|set|observe)\s*\(")
LOG_SINK = re.compile(
    r"std::(cout|cerr|clog)\b|\bf?printf\s*\(|\bputs\s*\(|\bstd::format\s*\(|"
    r"\bsyslog\s*\(|\bos\s*<<"
)
RETRANSMIT_CALL_SINK = re.compile(r"\b(?:arm_resend|cache_frames?\w*|store_frames?\w*)\s*\(")
RETRANSMIT_ASSIGN_SINK = re.compile(
    r"((?:[A-Za-z_]\w*\.)*\w*(?:frame|retransmit_cache)\w*)\s*=(?!=)(.*)$"
)

# Column-0 function definition (same heuristic the crypto lint uses for its
# region tracking: a non-indented line with a call-shaped head that does not
# end in ';').
FN_DEF = re.compile(r"^[\w:<>,&*~\[\]\s]*\b[\w~]+\s*\(")
SNAPSHOT_FN = re.compile(r"::snapshot\s*\(")

WORD = re.compile(r"[A-Za-z_]\w*")

WAIVER = lintlib.make_waiver_re("taint-lint")

# Assignment: optional decl type, dotted lhs, then = / += / ^= ... (not ==).
ASSIGN = re.compile(
    r"^\s*(?:[\w:<>,\s&*]*?[\s&*])?"
    r"([A-Za-z_]\w*(?:\.[A-Za-z_]\w*)*)\s*(?:[-+*/|^&]?=)(?![=<>])\s*(.+)$"
)
# Constructor-style local declaration: `Bigint tmp(rho);` / `Bigint tmp{rho};`
CTOR_DECL = re.compile(r"^\s*(?:[\w:<>]+\s+)+([A-Za-z_]\w*)\s*[({](.*)[)}]\s*;")


def strip_laundered(text: str) -> str:
    """Remove the balanced argument text of every laundering call.

    ``emit(commitment(rho))`` becomes ``emit()`` — the laundered occurrence
    of ``rho`` can no longer match, while unlaundered uses of the same name
    elsewhere on the line still do. The receiver chain of a laundering
    method call is removed with it (``ms.member->commitment()`` launders
    ``ms``: a commitment *of* a tainted object is public by design), and
    public projections (``secrets_.rank``) are blanked first.
    """
    text = PUBLIC_PROJECTION.sub("", text)
    while True:
        m = LAUNDER_CALL.search(text)
        if m is None:
            return text
        # Extend backwards over the receiver chain: obj.method(, obj->method(.
        start = m.start()
        while start > 0 and (text[start - 1].isalnum() or text[start - 1] in "_.->:"):
            start -= 1
        open_paren = m.end() - 1
        depth = 0
        end = None
        for i in range(open_paren, len(text)):
            if text[i] in "([{":
                depth += 1
            elif text[i] in ")]}":
                depth -= 1
                if depth == 0:
                    end = i
                    break
        if end is None:  # call spans past this line: drop the rest
            return text[:start]
        text = text[:start] + text[end + 1:]


class TaintState:
    """Per-function taint: propagated names on top of the naming convention."""

    def __init__(self, registry: Set[str]):
        self.registry = registry
        self.tainted: Set[str] = set()    # propagated (flow-killable)
        self.ephemeral: Set[str] = set()  # propagated single-use randomness

    def is_tainted(self, word: str) -> bool:
        return bool(SECRET_NAME.match(word)) or word in self.registry or word in self.tainted

    def is_ephemeral(self, word: str) -> bool:
        return bool(EPHEMERAL_NAME.match(word)) or word in self.ephemeral

    def tainted_words(self, text: str, ephemeral_only: bool = False) -> List[str]:
        check = self.is_ephemeral if ephemeral_only else self.is_tainted
        return [w for w in WORD.findall(text) if check(w)]


def collect_registry(lines: List[str]) -> Set[str]:
    """Names declared with a trailing ``// taint:secret`` comment."""
    names: Set[str] = set()
    for raw in lines:
        if not REGISTRY_MARK.search(raw):
            continue
        code = lintlib.strip_comments_and_strings(raw)
        m = DECL_NAME.search(code)
        if m:
            names.add(m.group(1))
    return names


def split_functions(lines: List[str]) -> List[Tuple[int, List[int]]]:
    """Column-0 function regions: (def line index, body line indices)."""
    regions: List[Tuple[int, List[int]]] = []
    in_fn = False
    start = 0
    body: List[int] = []
    for idx, raw in enumerate(lines):
        code = lintlib.strip_comments_and_strings(raw)
        if in_fn:
            if raw.startswith("}"):
                regions.append((start, body))
                in_fn = False
                body = []
            else:
                body.append(idx)
        elif (FN_DEF.search(code) and raw and not raw[0].isspace()
              and not code.rstrip().endswith(";")):
            in_fn = True
            start = idx
            body = [idx]  # include the signature: parameters can be sources
    if in_fn:
        regions.append((start, body))
    return regions


def lint_text(rel_path: str, text: str) -> List[Finding]:
    lines = text.splitlines()
    registry = collect_registry(lines)
    findings: List[Finding] = []
    seen: Set[Tuple[int, str]] = set()

    def flag(idx: int, rule: str, message: str) -> None:
        if (idx, rule) in seen:
            return
        if lintlib.waived(lines, idx, rule, WAIVER):
            return
        seen.add((idx, rule))
        findings.append(Finding(rel_path, idx + 1, rule, message))

    for def_idx, body in split_functions(lines):
        def_code = lintlib.strip_comments_and_strings(lines[def_idx])
        in_snapshot = bool(SNAPSHOT_FN.search(def_code))
        state = TaintState(registry)
        # Two passes: the second catches taint that flows "backward" through
        # a loop (a name tainted late in the body, used in a sink earlier).
        for _ in range(2):
            sink_depth = 0  # open multi-line trace/metric sink call
            sink_rule = ""
            for idx in body:
                raw = lines[idx]
                code = lintlib.strip_comments_and_strings(raw)
                laundered = strip_laundered(code)

                # -- continuation of a multi-line sink call ------------------
                if sink_depth > 0:
                    for w in state.tainted_words(strip_laundered(code)):
                        flag(idx, sink_rule,
                             f"tainted value '{w}' reaches a {sink_rule.removeprefix('taint-')} "
                             "sink (continuation line of a multi-line call)")
                    sink_depth = max(0, sink_depth + code.count("(") - code.count(")"))

                # -- propagation ---------------------------------------------
                m = ASSIGN.match(code) or CTOR_DECL.match(code)
                if m:
                    lhs, rhs = m.group(1), m.group(2)
                    lhs_base = lhs.split(".", 1)[0]
                    rhs_launder_free = strip_laundered(rhs)
                    rhs_tainted = (bool(state.tainted_words(rhs_launder_free))
                                   or bool(DECRYPT_CALL.search(rhs_launder_free)))
                    rhs_ephemeral = (bool(state.tainted_words(rhs_launder_free,
                                                              ephemeral_only=True))
                                     or bool(PRNG_DRAW.search(rhs_launder_free)))
                    if rhs_tainted or rhs_ephemeral:
                        state.tainted.update({lhs, lhs_base})
                        if rhs_ephemeral:
                            state.ephemeral.update({lhs, lhs_base})
                    else:
                        # Clean overwrite kills *propagated* taint. Name-based
                        # taint is not killable: a variable called rho_copy
                        # stays suspect.
                        state.tainted.discard(lhs)
                        state.ephemeral.discard(lhs)

                # -- sinks ---------------------------------------------------
                if in_snapshot:
                    for w in state.tainted_words(laundered, ephemeral_only=True):
                        flag(idx, "taint-snapshot",
                             f"ephemeral secret '{w}' inside a snapshot() body: "
                             "single-use randomness must never reach durable state")

                for sink_re, rule in ((TRACE_SINK, "taint-trace"),
                                      (METRIC_SINK, "taint-metric"),
                                      (RETRANSMIT_CALL_SINK, "taint-retransmit")):
                    for call in sink_re.finditer(code):
                        seg = strip_laundered(code[call.end() - 1:])
                        for w in state.tainted_words(seg):
                            flag(idx, rule,
                                 f"tainted value '{w}' flows into a "
                                 f"{rule.removeprefix('taint-')} sink "
                                 f"'{code[call.start():call.end()].strip()}...)'")
                        raw_seg = code[call.end() - 1:]
                        depth = raw_seg.count("(") - raw_seg.count(")")
                        if depth > 0:
                            sink_depth = depth
                            sink_rule = rule

                if LOG_SINK.search(code):
                    for w in state.tainted_words(laundered):
                        flag(idx, "taint-log",
                             f"tainted value '{w}' reaches a logging/formatting sink")

                m = RETRANSMIT_ASSIGN_SINK.search(code)
                if m and not LAUNDER_CALL.search(m.group(2)):
                    for w in state.tainted_words(m.group(2)):
                        flag(idx, "taint-retransmit",
                             f"tainted value '{w}' stored into retransmit-cache "
                             f"member '{m.group(1)}'; cache framed signed bytes only")

    return findings


# --------------------------------------------------------------------------
# Self-test corpus. Each case: (rule-that-must-fire-or-None, snippet).
# Snippets are full column-0 function bodies, as the dataflow pass sees them.
def _fn(body: str, sig: str = "void example_fn(net::Context& ctx)") -> str:
    return f"{sig} {{\n{body}\n}}"


SELF_TEST_CASES = [
    # ---- direct flows into sinks (baseline parity with lint_crypto) -------
    ("taint-trace", _fn("  emit_trace(ctx, kind, nullptr, {.count = rho.words()});")),
    ("taint-log", _fn('  std::cout << "share: " << share << "\\n";')),
    ("taint-metric", _fn("  depth_metric_.set(witness_r1.words());")),
    ("taint-trace", _fn("  recorder->record(make_event(nonce));")),
    # ---- multi-step propagation -------------------------------------------
    ("taint-trace", _fn(
        "  auto tmp = rho;\n"
        "  emit_trace(ctx, kind, nullptr, {.count = tmp.words()});")),
    ("taint-log", _fn(
        "  mpz::Bigint a = sk_share;\n"
        "  mpz::Bigint b = a + mpz::Bigint(1);\n"
        "  std::cout << b.to_hex();")),
    ("taint-log", _fn(
        "  auto x = secrets_.enc_share;\n"
        "  auto y = x;\n"
        "  auto z = y;\n"
        "  std::cout << z.to_hex();")),
    ("taint-metric", _fn(
        "  Bigint masked = blinding_factor ^ pad;\n"
        "  gauge_.set(masked.words());")),
    ("taint-trace", _fn(
        "  Bigint doubled(witness);\n"
        "  emit_trace(ctx, kind, nullptr, {.count = doubled.words()});")),
    # propagation through arithmetic on the rhs:
    ("taint-log", _fn(
        "  auto sum = pub + rho;\n"
        "  std::cout << sum.to_hex();")),
    # ---- prng draws are sources even with neutral names -------------------
    ("taint-trace", _fn(
        "  auto mask = gp.random_exponent(prng);\n"
        "  emit_trace(ctx, kind, nullptr, {.count = mask.words()});")),
    ("taint-log", _fn(
        "  auto fresh = prng.uniform_below(q);\n"
        "  std::cout << fresh.to_hex();")),
    # ---- re-tainting after decrypt ----------------------------------------
    ("taint-log", _fn(
        "  auto plain = service.decrypt(ct);\n"
        "  std::cout << plain.to_hex();")),
    ("taint-trace", _fn(
        "  auto m = thresh_decrypt_combine(gp, replies);\n"
        "  emit_trace(ctx, kind, nullptr, {.count = m.words()});")),
    # the ciphertext itself was clean before the decrypt:
    (None, _fn(
        "  auto ct = wire.ciphertext;\n"
        "  std::cout << ct.c1.to_hex();")),
    # ---- taint:secret field registry --------------------------------------
    ("taint-log", "struct S {\n"
     "  mpz::Bigint x_;  // taint:secret — Shamir share under a neutral name\n"
     "};\n"
     "void S::debug() {\n"
     "  std::cout << x_.to_hex();\n"
     "}"),
    ("taint-trace", "mpz::Bigint stash_;  // taint:secret pooled witness\n"
     "void tick(net::Context& ctx) {\n"
     "  auto v = stash_;\n"
     "  emit_trace(ctx, kind, nullptr, {.count = v.words()});\n"
     "}"),
    (None, "struct S {\n"
     "  mpz::Bigint x_;  // plain public accumulator\n"
     "};\n"
     "void S::debug() {\n"
     "  std::cout << x_.to_hex();\n"
     "}"),
    # ---- laundering -------------------------------------------------------
    (None, _fn(
        "  auto ct = cfg.a.encryption_key.encrypt(rho, ctx.rng());\n"
        "  std::cout << ct.c1.to_hex();")),
    (None, _fn(
        "  auto c = commitment(share, r);\n"
        "  emit_trace(ctx, kind, nullptr, {.count = c.words()});")),
    (None, _fn(
        "  auto d = sha256_hex(witness.to_bytes_be());\n"
        "  std::cout << d;")),
    (None, _fn(
        "  auto y = gp.pow_g(sk_share);\n"
        "  std::cout << y.to_hex();")),
    # laundering inside the sink argument itself:
    (None, _fn("  emit_trace(ctx, kind, nullptr, {.count = hash_u64(nonce)});")),
    # laundering does NOT cover a sibling unlaundered use on the same line:
    ("taint-log", _fn("  std::cout << hash_u64(nonce) << nonce.to_hex();")),
    # length projections are not laundering (matches lint_crypto policy):
    ("taint-trace", _fn("  emit_trace(ctx, kind, nullptr, {.count = rho.bit_length()});")),
    # ---- flow kill: clean overwrite ---------------------------------------
    (None, _fn(
        "  auto v = rho;\n"
        "  v = mpz::Bigint(0);\n"
        "  std::cout << v.to_hex();")),
    # ...but a name-based secret stays tainted after overwrite:
    ("taint-log", _fn(
        "  rho_copy = mpz::Bigint(0);\n"
        "  rho_copy = other;\n"
        "  std::cout << rho_copy.to_hex();")),
    # ---- snapshot sink: ephemeral secrets only ----------------------------
    ("taint-snapshot",
     "std::vector<std::uint8_t> ProtocolServer::snapshot() const {\n"
     "  w.bigint(rho_backup);\n"
     "}"),
    ("taint-snapshot",
     "std::vector<std::uint8_t> ProtocolServer::snapshot() const {\n"
     "  for (const auto& bundle : entries_) put_bundle(w, bundle);\n"
     "}"),
    ("taint-snapshot",
     "std::vector<std::uint8_t> ProtocolServer::snapshot() const {\n"
     "  auto stash = nonce_cache_;\n"
     "  w.bytes(stash);\n"
     "}"),
    # long-lived key material in a snapshot is the point of snapshots:
    (None,
     "std::vector<std::uint8_t> ProtocolServer::snapshot() const {\n"
     "  w.u32(static_cast<std::uint32_t>(transfers_.size()));\n"
     "  for (TransferId t : transfers_) w.u64(t);\n"
     "}"),
    # ---- retransmit-cache sink --------------------------------------------
    ("taint-retransmit", _fn(
        "  st.commit_frame = rho.to_bytes_be();")),
    ("taint-retransmit", _fn(
        "  arm_resend(ctx, witness_bytes);")),
    ("taint-retransmit", _fn(
        "  auto leaked = r1;\n"
        "  cache_frames(st, leaked);")),
    # the legitimate path: framed, signed envelope bytes
    (None, _fn(
        "  auto env = make_envelope(cfg_, secrets_, body, ctx.rng());\n"
        "  st.commit_frame = frame_bytes(env);")),
    (None, _fn(
        "  st.commit_frame = signed_frame(ctx, encode_body(MsgType::kCommit, commit));")),
    # public projections of a secret-holding struct carry no taint:
    (None, _fn(
        "  commit.server = secrets_.rank;\n"
        "  st.commit_frame = signed_frame(ctx, encode_body(MsgType::kCommit, commit));")),
    (None, _fn(
        "  InstanceId id{transfer, secrets_.rank, epoch};\n"
        "  emit_trace(ctx, obs::EventKind::kEpochStart, &id);")),
    # ...but secret fields of the same struct do:
    ("taint-log", _fn(
        "  auto s = secrets_.sign_share;\n"
        "  std::cout << s.to_hex();")),
    # a laundering method call launders its receiver chain too — the
    # commitment *of* a tainted signing member is public by design:
    (None, _fn(
        "  ms.member = make_member(secrets_.sign_share, ctx.rng());\n"
        "  reply.commit = ms.member->commitment();\n"
        "  ms.commit_frame = signed_frame(ctx, encode_body(MsgType::kReply, reply));")),
    # verification helpers launder: a verdict over secret-adjacent input is
    # public (it decides protocol control flow anyway):
    (None, _fn(
        "  auto contribute = check_contribute_batch(cfg_, env, ctx.rng());\n"
        "  record_contribute_verdict(ctx, env, &*contribute);")),
    # ---- multi-line sink calls --------------------------------------------
    ("taint-trace", _fn(
        "  emit_trace(ctx, obs::EventKind::kRetransmit, nullptr,\n"
        "             {.transfer = r.transfer,\n"
        "              .count = nonce_commitment.words()});")),
    (None, _fn(
        "  emit_trace(ctx, obs::EventKind::kVerifyPass, &contribute->id,\n"
        "             {.peer = contribute->server,\n"
        "              .subject = static_cast<std::uint32_t>(MsgType::kContribute)});")),
    # ---- suppression comments ---------------------------------------------
    (None, _fn(
        "  // taint-lint: allow(taint-log) toy-parameter debug build only\n"
        "  std::cout << share.to_hex();")),
    (None, _fn(
        "  std::cout << share.to_hex();  "
        "// taint-lint: allow(taint-log) test vector, kToy64 params")),
    # a waiver without a reason does not waive:
    ("taint-log", _fn(
        "  // taint-lint: allow(taint-log)\n"
        "  std::cout << share.to_hex();")),
    # a waiver for a different rule does not waive:
    ("taint-log", _fn(
        "  // taint-lint: allow(taint-trace) wrong rule\n"
        "  std::cout << share.to_hex();")),
    # ---- re-sharing sub-shares (PR 7) -------------------------------------
    # A sub-share is as sensitive as the share it interpolates to; the
    # naming convention taints subshare*/enc_sub*/sign_sub* directly.
    ("taint-log", _fn(
        "  auto subshare = reshare_deal(params, secrets_.enc_share, prng);\n"
        "  std::cout << subshare.to_hex();")),
    ("taint-trace", _fn(
        "  emit_trace(ctx, kind, nullptr, {.count = msg.enc_sub.words()});")),
    ("taint-retransmit", _fn(
        "  st.commit_frame = sign_sub.to_bytes_be();")),
    # ReshareSubshareMsg's fields carry the registry mark in messages.hpp;
    # mirror that shape here so the decl-registry path covers them too:
    ("taint-log", "struct ReshareSubshareMsg {\n"
     "  mpz::Bigint e_;  // taint:secret — sub-share of the encryption share\n"
     "};\n"
     "void dump(const ReshareSubshareMsg& m) {\n"
     "  std::cout << m.e_.to_hex();\n"
     "}"),
    # ---- EC backend scalars (PR 10) ----------------------------------------
    # A scalar is the curve-side spelling of a secret exponent; the naming
    # convention taints scalar*/clamped* directly (sk_* via sk*).
    ("taint-log", _fn(
        "  auto scalar = params.to_scalar(secrets_.enc_share);\n"
        "  std::cout << scalar.to_hex();")),
    ("taint-trace", _fn(
        "  emit_trace(ctx, kind, nullptr, {.count = clamped_key.words()});")),
    ("taint-log", _fn(
        "  mpz::Bigint sk_scalar = prng.uniform_below(params.q());\n"
        "  printf(\"%s\", sk_scalar.to_hex().c_str());")),
    # a laundered scalar (through pow) is public — a public key:
    (None, _fn(
        "  auto y = params.pow_g(sk_scalar);\n"
        "  std::cout << y.to_hex();")),
    # The legitimate wire path: sub-shares travel only inside a signed,
    # encoded envelope frame — that is laundering, same as commit frames:
    (None, _fn(
        "  sub.enc_sub = eval_poly(coeffs, target_rank);\n"
        "  ctx.send(to, frame_client(encode_body(MsgType::kReshareSubshare, sub)));")),
    # Feldman commitments *to* a sub-share polynomial are public by design:
    (None, _fn(
        "  auto cs = reshare_commitments(params, deal.commitments, rank);\n"
        "  emit_trace(ctx, kind, nullptr, {.count = cs.size()});")),
    # ---- false-positive guards --------------------------------------------
    # string literals mentioning secrets (e.g. test names) are not values —
    # the shared stripping in lintlib blanks them before matching:
    (None, _fn('  std::cout << "secret-sharing smoke test passed\\n";')),
    (None, _fn('  log_line("rho commitment verified", count);')),
    (None, _fn('  printf("blinding share test %d\\n", test_id);')),
    # public protocol coordinates:
    (None, _fn(
        "  emit_trace(ctx, obs::EventKind::kCommitSent, &init->id);\n"
        "  counter_.inc();\n"
        "  depth_gauge_.set(entries);")),
    # arithmetic purely over public values:
    (None, _fn(
        "  auto total = base + offset;\n"
        "  std::cout << total;")),
]
# Corpus size guard: the PR contract says >= 30 adversarial cases.
assert len(SELF_TEST_CASES) >= 30, "taint corpus shrank below 30 cases"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repo root (contains src/)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the embedded corpus instead of the tree")
    opts = ap.parse_args()

    if opts.self_test:
        return lintlib.run_self_test(SELF_TEST_CASES, lint_text, "lint_taint")

    findings = lintlib.lint_tree(pathlib.Path(opts.root).resolve(), lint_text)
    return lintlib.report(findings, "lint_taint")


if __name__ == "__main__":
    sys.exit(main())
