"""Shared plumbing for the project lints (lint_crypto.py, lint_taint.py).

Both linters walk the same C++ surface (``src/`` of the repo), strip the
same comment/string syntax, honor the same ``// <tool>: allow(<rule>)
reason`` waiver shape, and keep themselves honest with the same embedded
known-bad/known-good self-test corpus pattern. This module is that common
core, so a fix to (say) string-literal stripping lands in every lint at
once instead of drifting per tool.

Zero dependencies beyond the standard library, like the linters themselves.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Callable, Iterator, List, NamedTuple, Sequence, Tuple

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}


class Finding(NamedTuple):
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Blank out string/char literals and // comments (keeps offsets stable).

    String literal *content* becomes dots (the quotes stay), so an
    identifier-looking word inside a string — e.g. a test name mentioning
    "secret share" — can never match an identifier pattern. This is the
    canonical preprocessing for every identifier-level rule; see the
    string-literal cases in both linters' self-test corpora.

    Block comments are handled line-locally, which is adequate for this
    codebase's style (no multi-line /* */ around code).
    """
    out: List[str] = []
    i, n = 0, len(line)
    state = None  # None | '"' | "'"
    while i < n:
        c = line[i]
        if state is None:
            if c == '"' or c == "'":
                state = c
                out.append(c)
            elif c == "/" and i + 1 < n and line[i + 1] == "/":
                break  # rest is comment
            elif c == "/" and i + 1 < n and line[i + 1] == "*":
                end = line.find("*/", i + 2)
                if end == -1:
                    break
                i = end + 1  # skip block comment
            else:
                out.append(c)
        else:
            if c == "\\":
                out.append("..")
                i += 1
            elif c == state:
                state = None
                out.append(c)
            else:
                out.append(".")
        i += 1
    return "".join(out)


def strip_comments_only(line: str) -> str:
    """Drop // and line-local /* */ comments but keep string literals."""
    # A // inside a string literal would be rare in this tree; accept the
    # line-local approximation for lint purposes.
    out = re.sub(r"/\*.*?\*/", "", line)
    return out.split("//", 1)[0]


def split_call_args(code: str, open_paren: int) -> List[str]:
    """Split the argument list of the call whose '(' is at ``open_paren``.

    Returns top-level comma-separated argument texts; empty list if the
    call spans past this line (best-effort, line-local)."""
    depth = 0
    args: List[str] = []
    cur: List[str] = []
    for ch in code[open_paren:]:
        if ch in "([{":
            depth += 1
            if depth == 1:
                continue
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                args.append("".join(cur).strip())
                return [a for a in args if a]
        if depth >= 1:
            if ch == "," and depth == 1:
                args.append("".join(cur).strip())
                cur = []
            else:
                cur.append(ch)
    return []  # unbalanced on this line


def make_waiver_re(tool: str) -> re.Pattern:
    """Waiver comment for ``tool``: ``// <tool>: allow(<rule>) <reason>``.

    The reason is mandatory — a waiver without one does not waive.
    """
    return re.compile(rf"//\s*{re.escape(tool)}:\s*allow\(([a-z-]+)\)\s*(\S.*)?$")


def waived(lines: Sequence[str], idx: int, rule: str, waiver_re: re.Pattern) -> bool:
    """True when line ``idx`` (or the one above) carries a reasoned waiver."""
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = waiver_re.search(lines[probe])
            if m and m.group(1) == rule and m.group(2):
                return True
    return False


def iter_source_files(root: pathlib.Path, subdir: str = "src") -> Iterator[Tuple[str, str]]:
    """Yield (repo-relative posix path, text) for every C++ file under subdir."""
    base = root / subdir
    if not base.is_dir():
        print(f"lint: no {subdir}/ under {root}", file=sys.stderr)
        sys.exit(2)
    for path in sorted(base.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        rel = path.relative_to(root).as_posix()
        yield rel, path.read_text(encoding="utf-8")


def lint_tree(root: pathlib.Path,
              lint_text: Callable[[str, str], List[Finding]],
              subdir: str = "src") -> List[Finding]:
    findings: List[Finding] = []
    for rel, text in iter_source_files(root, subdir):
        findings.extend(lint_text(rel, text))
    return findings


# Self-test corpus entries: (rule-that-must-fire-or-None, snippet) or
# (rule, snippet, path) for path-scoped rules.
Case = Tuple  # 2- or 3-tuple; kept loose for corpus readability


def run_self_test(cases: Sequence[Case],
                  lint_text: Callable[[str, str], List[Finding]],
                  label: str,
                  default_path: str = "src/example/example.cpp") -> int:
    """Run the embedded corpus; returns a process exit code (0 ok, 1 fail).

    Keeps the gate honest — if a rule regresses, the selftest ctest entry
    fails even though the tree itself is clean.
    """
    failures = 0
    for case in cases:
        expected_rule, snippet = case[0], case[1]
        path = case[2] if len(case) == 3 else default_path
        findings = lint_text(path, snippet + "\n")
        rules = {f.rule for f in findings}
        if expected_rule is None and findings:
            print(f"self-test FAIL (spurious {sorted(rules)}): {snippet}")
            failures += 1
        elif expected_rule is not None and expected_rule not in rules:
            print(f"self-test FAIL (missed {expected_rule}): {snippet}")
            failures += 1
    total = len(cases)
    print(f"{label} self-test: {total - failures}/{total} cases ok")
    return 1 if failures else 0


def report(findings: Sequence[Finding], label: str) -> int:
    """Print findings; returns the process exit code."""
    for f in findings:
        print(f.render())
    if findings:
        print(f"{label}: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    print(f"{label}: clean")
    return 0
