// dblind — command-line front end.
//
//   dblind params   [--bits N | --fresh N] [--seed S]
//   dblind keygen   --params <hex> [--n N --f F] [--seed S]
//   dblind encrypt  --key <pubkey-hex> --message <text> [--seed S]
//   dblind decrypt  --params <hex> --key <privkey-hex> --ciphertext <hex>
//   dblind transfer [--bits N] [--message <text>] [--seed S]
//                   [--byzantine honest|silent|badvde|bogus|adaptive]
//                   [--crash-coordinator] [--loss PCT] [--stats]
//                   [--trace out.jsonl] [--metrics]
//
// `transfer` runs the complete asynchronous re-encryption protocol in the
// simulator and prints what happened; the other subcommands operate on
// hex-encoded artifacts so they compose in shell pipelines. --trace writes a
// JSONL event log that tools/trace_check.py can validate; --metrics dumps
// the metrics registry in Prometheus text format after the run.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "elgamal/serialize.hpp"
#include "group/serialize.hpp"
#include "hash/sha256.hpp"
#include "threshold/keygen.hpp"
#include "threshold/serialize.hpp"

namespace {

using namespace dblind;  // NOLINT

int usage() {
  std::fputs(
      "usage:\n"
      "  dblind params   [--bits 64|128|256|512|1024|2048 | --fresh N] [--seed S]\n"
      "                  [--backend modp|ec]   (or env DBLIND_BACKEND=ec)\n"
      "  dblind keygen   --params <hex> [--n N --f F] [--seed S]\n"
      "  dblind encrypt  --key <pubkey-hex> --message <text> [--seed S]\n"
      "  dblind decrypt  --params <hex> --key <privkey-hex> --ciphertext <hex>\n"
      "  dblind transfer [--bits N] [--backend modp|ec] [--message <text>] [--seed S]\n"
      "                  [--byzantine honest|silent|badvde|bogus|adaptive]\n"
      "                  [--crash-coordinator] [--loss PCT] [--stats]\n"
      "                  [--trace out.jsonl] [--metrics]\n",
      stderr);
  return 2;
}

// Tiny flag parser: --name value pairs plus boolean switches.
class Args {
 public:
  Args(int argc, char** argv, const std::vector<std::string>& bool_flags) {
    for (int i = 2; i < argc; ++i) {
      std::string a = argv[i];
      if (a.rfind("--", 0) != 0) {
        ok_ = false;
        return;
      }
      std::string name = a.substr(2);
      bool is_bool = false;
      for (const std::string& b : bool_flags) is_bool = is_bool || b == name;
      if (is_bool) {
        values_[name] = "1";
      } else if (i + 1 < argc) {
        values_[name] = argv[++i];
      } else {
        ok_ = false;
        return;
      }
    }
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const {
    auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::string get_or(const std::string& name, std::string def) const {
    return get(name).value_or(std::move(def));
  }
  [[nodiscard]] bool has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

group::ParamId id_for_bits(unsigned bits) {
  switch (bits) {
    case 64: return group::ParamId::kToy64;
    case 128: return group::ParamId::kTest128;
    case 256: return group::ParamId::kTest256;
    case 512: return group::ParamId::kSec512;
    case 1024: return group::ParamId::kSec1024;
    case 2048: return group::ParamId::kSec2048;
    default: throw std::invalid_argument("no named parameter set with that size");
  }
}

// Group selection shared by params/transfer: --backend beats DBLIND_BACKEND
// beats the mod-p set picked by --bits (ec ignores --bits — the curve is
// fixed).
group::GroupParams params_for(const Args& args) {
  group::ParamId id = id_for_bits(std::stoul(args.get_or("bits", "256")));
  if (auto backend = args.get("backend")) {
    if (*backend == "ec" || *backend == "ec255")
      return group::GroupParams::named(group::ParamId::kEc255);
    if (*backend == "modp") return group::GroupParams::named(id);
    throw std::invalid_argument("unknown --backend (want modp|ec)");
  }
  return group::GroupParams::named_or_env(id);
}

int cmd_params(const Args& args) {
  mpz::Prng prng(std::stoull(args.get_or("seed", "1")));
  group::GroupParams gp = [&] {
    if (auto fresh = args.get("fresh")) {
      return group::GroupParams::generate(std::stoul(*fresh), prng);
    }
    return params_for(args);
  }();
  std::printf("bits: %zu\nparams: %s\n", gp.bits(), group::group_params_to_hex(gp).c_str());
  return 0;
}

int cmd_keygen(const Args& args) {
  auto params_hex = args.get("params");
  if (!params_hex) return usage();
  mpz::Prng prng(std::stoull(args.get_or("seed", "1")));
  group::GroupParams gp = group::group_params_from_hex(*params_hex, prng);
  std::size_t n = std::stoul(args.get_or("n", "4"));
  std::size_t f = std::stoul(args.get_or("f", "1"));
  auto km = threshold::ServiceKeyMaterial::dealer_keygen(gp, {n, f}, prng);
  std::printf("public-key: %s\n",
              hash::to_hex(elgamal::public_key_to_bytes(km.public_key())).c_str());
  std::printf("commitments: %s\n",
              hash::to_hex(threshold::commitments_to_bytes(km.commitments())).c_str());
  for (std::uint32_t i = 1; i <= n; ++i) {
    std::printf("share-%u: %s\n", i,
                hash::to_hex(threshold::share_to_bytes(km.share_of(i))).c_str());
  }
  return 0;
}

int cmd_encrypt(const Args& args) {
  auto key_hex = args.get("key");
  auto message = args.get("message");
  if (!key_hex || !message) return usage();
  mpz::Prng prng = args.has("seed") ? mpz::Prng(std::stoull(*args.get("seed")))
                                    : mpz::Prng::from_os_entropy();
  elgamal::PublicKey key = elgamal::public_key_from_bytes(hash::from_hex(*key_hex));
  mpz::Bigint m = key.params().encode_bytes(
      {reinterpret_cast<const std::uint8_t*>(message->data()), message->size()});
  elgamal::Ciphertext c = key.encrypt(m, prng);
  std::printf("ciphertext: %s\n", hash::to_hex(elgamal::ciphertext_to_bytes(c)).c_str());
  return 0;
}

int cmd_decrypt(const Args& args) {
  auto params_hex = args.get("params");
  auto key_hex = args.get("key");
  auto ct_hex = args.get("ciphertext");
  if (!params_hex || !key_hex || !ct_hex) return usage();
  group::GroupParams gp = group::group_params_from_bytes_trusted(hash::from_hex(*params_hex));
  elgamal::KeyPair kp = elgamal::KeyPair::from_private(gp, mpz::Bigint::from_hex(*key_hex));
  elgamal::Ciphertext c = elgamal::ciphertext_from_bytes(hash::from_hex(*ct_hex));
  auto bytes = gp.decode_bytes(kp.decrypt(c));
  std::printf("message: %.*s\n", static_cast<int>(bytes.size()),
              reinterpret_cast<const char*>(bytes.data()));
  return 0;
}

int cmd_transfer(const Args& args) {
  using Behavior = core::ProtocolServer::Behavior;
  core::SystemOptions opts;
  opts.params = params_for(args);
  opts.seed = std::stoull(args.get_or("seed", "1"));

  std::string behavior_name = args.get_or("byzantine", "honest");
  Behavior b1 = Behavior::kHonest;
  if (behavior_name == "silent") b1 = Behavior::kSilent;
  else if (behavior_name == "badvde") b1 = Behavior::kInconsistentContribution;
  else if (behavior_name == "bogus") b1 = Behavior::kBogusBlindCoordinator;
  else if (behavior_name == "adaptive") b1 = Behavior::kAdaptiveCancelCoordinator;
  else if (behavior_name != "honest") return usage();
  if (b1 != Behavior::kHonest) {
    opts.b_behaviors.assign(opts.b.n, Behavior::kHonest);
    opts.b_behaviors[0] = b1;
  }

  // Observability: both objects must outlive the System (it holds raw
  // pointers to them through ProtocolOptions).
  std::ofstream trace_out;
  std::optional<obs::JsonlTraceRecorder> trace;
  if (auto path = args.get("trace")) {
    trace_out.open(*path, std::ios::trunc);
    if (!trace_out) {
      std::fprintf(stderr, "error: cannot open trace file %s\n", path->c_str());
      return 1;
    }
    trace.emplace(trace_out);
    opts.protocol.trace = &*trace;
  }
  obs::MetricsRegistry registry;
  if (args.has("metrics")) opts.protocol.metrics = &registry;

  core::System sys(std::move(opts));
  if (auto loss = args.get("loss")) {
    net::FaultPlan plan;
    plan.drop_percent = static_cast<unsigned>(std::stoul(*loss));
    sys.sim().set_fault_plan(plan);
  }
  std::string message = args.get_or("message", "attack at dawn");
  mpz::Bigint m = sys.config().params.encode_bytes(
      {reinterpret_cast<const std::uint8_t*>(message.data()), message.size()});
  core::TransferId t = sys.add_transfer(m);
  if (args.has("crash-coordinator")) sys.sim().crash_at(sys.config().b.node_of(1), 0);

  std::printf("running the Fig. 4 protocol: |A|=%zu |B|=%zu f=%zu byzantine=%s%s\n",
              sys.a_cfg().n, sys.b_cfg().n, sys.b_cfg().f, behavior_name.c_str(),
              args.has("crash-coordinator") ? " +crashed-coordinator" : "");
  if (!sys.run_to_completion()) {
    std::puts("FAILED: protocol did not complete");
    return 1;
  }
  core::ServerRank witness = sys.is_honest_b(1) ? 1 : 2;
  auto res = sys.result(t, witness);
  if (!res) {
    std::puts("FAILED: no result at honest B server");
    return 1;
  }
  auto bytes = sys.config().params.decode_bytes(sys.oracle_decrypt_b(*res));
  std::string recovered(bytes.begin(), bytes.end());
  std::printf("B received E_B(m); decrypts to: \"%s\"  [%s]\n", recovered.c_str(),
              recovered == message ? "MATCH" : "MISMATCH");
  if (b1 != Behavior::kHonest) {
    std::printf("adversary obtained service signatures on forged payloads: %d\n",
                sys.b_server(1).attack_successes());
  }
  if (args.has("stats")) {
    const net::NetStats& s = sys.sim().stats();
    std::printf("stats: %.1f ms virtual latency, %llu messages, %.1f KiB\n",
                s.end_time / 1000.0, static_cast<unsigned long long>(s.messages_sent),
                s.bytes_sent / 1024.0);
  }
  if (args.has("metrics")) std::fputs(registry.prometheus_text().c_str(), stdout);
  return recovered == message ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string cmd = argv[1];
  try {
    if (cmd == "params") {
      Args args(argc, argv, {});
      if (!args.ok()) return usage();
      return cmd_params(args);
    }
    if (cmd == "keygen") {
      Args args(argc, argv, {});
      if (!args.ok()) return usage();
      return cmd_keygen(args);
    }
    if (cmd == "encrypt") {
      Args args(argc, argv, {});
      if (!args.ok()) return usage();
      return cmd_encrypt(args);
    }
    if (cmd == "decrypt") {
      Args args(argc, argv, {});
      if (!args.ok()) return usage();
      return cmd_decrypt(args);
    }
    if (cmd == "transfer") {
      Args args(argc, argv, {"crash-coordinator", "stats", "metrics"});
      if (!args.ok()) return usage();
      return cmd_transfer(args);
    }
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
      usage();
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
