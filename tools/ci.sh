#!/usr/bin/env bash
# Local CI for the dblind tree — the same three jobs a hosted workflow
# would run, executable on any dev box:
#
#   relwithdebinfo   default-flags build (+ -Werror) and the full ctest
#                    suite — the tier-1 gate
#   asan             ASan+UBSan build and the full ctest suite
#   tsan             TSan build and the full ctest suite
#   lint             clang-tidy gate (skips if clang-tidy is absent) and
#                    the crypto-hygiene lint + its self-test
#   taint            secret-flow taint lint (lint_taint.py): intra-procedural
#                    dataflow from secret sources into trace/metric/log/
#                    snapshot/retransmit sinks, plus its adversarial
#                    self-test corpus
#   thread_safety    Clang -Werror=thread-safety sweep over the
#                    core/sync.hpp capability annotations (skips if clang++
#                    is absent — GCC compiles the annotations to nothing)
#   chaos            wide fault-injection sweep: the chaos_test binary run
#                    directly with DBLIND_CHAOS_SEEDS (default 50) seeds per
#                    fault mix — ctest's build-time discovery can't size the
#                    sweep at runtime, so this invokes the binary itself.
#                    On a violation the failing (mix, seed) is re-run alone
#                    with span tracing enabled; the JSONL trace plus
#                    trace_check.py / trace_critpath.py reports are kept in
#                    build-relwithdebinfo/chaos-artifacts/<mix>-seed<n>/
#                    (path printed at the end of the job)
#   churn            reconfiguration sweep: the four churn-* fault mixes
#                    (join/leave/crash-during-reshare/mid-transfer) at
#                    DBLIND_CHAOS_SEEDS (default 50) seeds each, selected via
#                    DBLIND_CHAOS_MIXES=churn — deeper than the all-mix chaos
#                    job affords for the epoch-boundary paths; same failure
#                    forensics as the chaos job
#   load             open-loop load harness smoke: bench_load --smoke (toy
#                    parameters, Poisson arrivals, concurrent vs sequential
#                    equivalence + saturation check). Set
#                    DBLIND_SOAK_TRANSFERS=<n> to additionally run a TSan
#                    soak of the same harness with <n> transfers, exercising
#                    the verify-pool workers and cross-transfer batch drain
#                    under the race detector
#   backend_matrix   EC-backend matrix (PR 10): the full ctest suite re-run
#                    with DBLIND_BACKEND=ec (every SystemOptions default
#                    routes through GroupParams::named_or_env, so the whole
#                    protocol stack executes on ristretto255), minus the
#                    `bench` label — the bench gate pins mod-p baselines and
#                    rewrites BENCH_pr*.json, so it only runs on the default
#                    backend. Then a chaos smoke: every fault mix at
#                    DBLIND_CHAOS_SEEDS (default 6 here, not 50) seeds on the
#                    EC backend, with the same failure forensics as the
#                    chaos job. The dedicated EC suites (ristretto KATs,
#                    field fuzz, cross-backend equivalence) carry the ctest
#                    label backend.ec and already run in tier-1 on any
#                    backend.
#   bench            verification fast-path regression gate: bench_check.py
#                    compares batched vs serial proof verification by
#                    deterministic mont-mul counts and writes BENCH_pr3.json;
#                    fails if the batch path stops being >= 2x cheaper
#   trace_check      observability gate: trace_check.py --self-test, then a
#                    fixed-seed lossy Byzantine CLI run whose JSONL trace is
#                    replayed against the Fig. 4 invariants (done needs f+1
#                    valid contributions, reveal needs the commit quorum,
#                    epoch monotonicity, retransmit backoff cap)
#
# Usage: tools/ci.sh [job...]     (no args = all jobs, lint first)
# Exit: nonzero if any selected job fails.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"
JOBS=("$@")
[[ ${#JOBS[@]} -eq 0 ]] && JOBS=(lint taint thread_safety relwithdebinfo asan tsan chaos churn load backend_matrix bench trace_check)
NPROC="$(nproc 2> /dev/null || echo 4)"
FAILED=()

banner() { printf '\n==== ci: %s ====\n' "$1"; }

run_preset_job() {
  local preset="$1"
  shift
  banner "$preset"
  cmake --preset "$preset" "$@" &&
    cmake --build --preset "$preset" -j "$NPROC" &&
    ctest --preset "$preset" -j "$NPROC"
}

# Wide chaos/churn sweep with failure forensics. Runs the env-configured
# sweep; on a violation, parses the "violation at mix=<name> seed=<n>"
# marker out of the gtest output and re-runs exactly that (mix, seed) with
# DBLIND_CHAOS_TRACE_DIR set, so every node's JSONL span trace — plus the
# offline trace_check.py invariant replay and trace_critpath.py latency
# report — survives the run as an artifact directory for debugging.
run_chaos_sweep() {
  local mixes="${1:-}" # DBLIND_CHAOS_MIXES filter; empty = all mixes
  local bin="$ROOT/build-relwithdebinfo/tests/chaos_test"
  local log rc
  log="$(mktemp)"
  DBLIND_CHAOS_SEEDS="${DBLIND_CHAOS_SEEDS:-50}" DBLIND_CHAOS_MIXES="$mixes" \
    "$bin" --gtest_filter='ChaosSweep.EnvConfiguredSweep' > "$log" 2>&1
  rc=$?
  cat "$log"
  if [[ $rc -ne 0 ]]; then
    local where mix seed
    where="$(grep -o 'violation at mix=[A-Za-z0-9_-]* seed=[0-9]*' "$log" | head -n 1)"
    if [[ -n $where ]]; then
      mix="${where#violation at mix=}"
      mix="${mix%% *}"
      seed="${where##*seed=}"
      local art="$ROOT/build-relwithdebinfo/chaos-artifacts/${mix}-seed${seed}"
      mkdir -p "$art"
      echo "ci.sh: replaying mix=$mix seed=$seed with tracing enabled"
      DBLIND_CHAOS_TRACE_DIR="$art" DBLIND_CHAOS_MIXES="$mix" \
        DBLIND_CHAOS_SEEDS=1 DBLIND_CHAOS_SEED_BASE="$seed" \
        "$bin" --gtest_filter='ChaosSweep.EnvConfiguredSweep' \
        > "$art/replay.log" 2>&1
      local tr
      for tr in "$art"/*.jsonl; do
        [[ -e $tr ]] || continue
        python3 tools/trace_check.py "$tr" > "${tr%.jsonl}.invariants.txt" 2>&1
        python3 tools/trace_critpath.py "$tr" > "${tr%.jsonl}.critpath.txt" 2>&1
      done
      echo "ci.sh: chaos failure artifacts preserved at $art"
    fi
  fi
  rm -f "$log"
  return $rc
}

for job in "${JOBS[@]}"; do
  case "$job" in
    relwithdebinfo)
      # -Werror here (not in the preset) so the preset's compile flags stay
      # byte-identical to a plain `cmake -B build` configure.
      run_preset_job relwithdebinfo -DDBLIND_WERROR=ON || FAILED+=("$job")
      ;;
    asan | tsan)
      run_preset_job "$job" || FAILED+=("$job")
      ;;
    lint)
      banner lint
      {
        # run_tidy.sh needs a compile database; the relwithdebinfo preset
        # provides one without sanitizer flags in it.
        cmake --preset relwithdebinfo > /dev/null &&
          tools/run_tidy.sh -p "$ROOT/build-relwithdebinfo"
        tidy=$?
        [[ $tidy -eq 77 ]] && tidy=0  # skipped: no clang-tidy on this host
        python3 tools/lint_crypto.py --root "$ROOT" &&
          python3 tools/lint_crypto.py --self-test &&
          [[ $tidy -eq 0 ]]
      } || FAILED+=("$job")
      ;;
    taint)
      banner taint
      {
        python3 tools/lint_taint.py --root "$ROOT" &&
          python3 tools/lint_taint.py --self-test
      } || FAILED+=("$job")
      ;;
    thread_safety)
      banner thread_safety
      tools/run_thread_safety.sh
      ts=$?
      [[ $ts -eq 77 ]] && ts=0  # skipped: no clang++ on this host
      [[ $ts -eq 0 ]] || FAILED+=("$job")
      ;;
    chaos)
      banner chaos
      {
        cmake --preset relwithdebinfo > /dev/null &&
          cmake --build --preset relwithdebinfo -j "$NPROC" --target chaos_test &&
          run_chaos_sweep ""
      } || FAILED+=("$job")
      ;;
    churn)
      banner churn
      {
        cmake --preset relwithdebinfo > /dev/null &&
          cmake --build --preset relwithdebinfo -j "$NPROC" --target chaos_test &&
          run_chaos_sweep churn
      } || FAILED+=("$job")
      ;;
    load)
      banner load
      {
        cmake --preset relwithdebinfo > /dev/null &&
          cmake --build --preset relwithdebinfo -j "$NPROC" --target bench_load &&
          "$ROOT/build-relwithdebinfo/bench/bench_load" --smoke
        smoke=$?
        soak=0
        if [[ $smoke -eq 0 && -n "${DBLIND_SOAK_TRANSFERS:-}" ]]; then
          # TSan soak: the load harness is the densest consumer of the
          # verify-pool workers + cross-transfer drain, so a wide run under
          # the race detector is the concurrency stress test.
          cmake --preset tsan > /dev/null &&
            cmake --build --preset tsan -j "$NPROC" --target bench_load &&
            DBLIND_SOAK_TRANSFERS="$DBLIND_SOAK_TRANSFERS" \
              "$ROOT/build-tsan/bench/bench_load" --smoke
          soak=$?
        fi
        [[ $smoke -eq 0 && $soak -eq 0 ]]
      } || FAILED+=("$job")
      ;;
    backend_matrix)
      banner backend_matrix
      {
        cmake --preset relwithdebinfo > /dev/null &&
          cmake --build --preset relwithdebinfo -j "$NPROC" &&
          (
            export DBLIND_BACKEND=ec
            ctest --test-dir "$ROOT/build-relwithdebinfo" -LE bench \
              -j "$NPROC" --output-on-failure &&
              DBLIND_CHAOS_SEEDS="${DBLIND_CHAOS_SEEDS:-6}" run_chaos_sweep ""
          )
      } || FAILED+=("$job")
      ;;
    bench)
      banner bench
      {
        cmake --preset relwithdebinfo > /dev/null &&
          cmake --build --preset relwithdebinfo -j "$NPROC" \
            --target bench_fig4_full bench_primitives bench_load &&
          python3 tools/bench_check.py --build-dir "$ROOT/build-relwithdebinfo"
      } || FAILED+=("$job")
      ;;
    trace_check)
      banner trace_check
      {
        cmake --preset relwithdebinfo > /dev/null &&
          cmake --build --preset relwithdebinfo -j "$NPROC" --target dblind &&
          python3 tools/trace_check.py --self-test &&
          python3 tools/trace_check.py \
            --generate-with "$ROOT/build-relwithdebinfo/tools/dblind"
      } || FAILED+=("$job")
      ;;
    *)
      echo "ci.sh: unknown job '$job' (relwithdebinfo|asan|tsan|lint|taint|thread_safety|chaos|churn|load|backend_matrix|bench|trace_check)" >&2
      FAILED+=("$job")
      ;;
  esac
done

banner summary
if [[ ${#FAILED[@]} -gt 0 ]]; then
  echo "FAILED jobs: ${FAILED[*]}"
  exit 1
fi
echo "all jobs passed: ${JOBS[*]}"
