#!/usr/bin/env bash
# Clang thread-safety-analysis gate for the dblind tree.
#
# Usage: tools/run_thread_safety.sh [extra clang++ args...]
#
# Compiles every .cpp under src/ with `clang++ -fsyntax-only -Wthread-safety
# -Werror=thread-safety`. The analysis is purely a frontend pass, so no
# linking (and no gtest/benchmark deps) is needed — a syntax-only sweep over
# the annotated sources is the complete gate. The capabilities themselves
# live in src/core/sync.hpp (dblind::Mutex / MutexLock / GUARDED_BY ...);
# on non-Clang compilers they expand to nothing, so this script is the only
# place the annotations are actually *checked*.
#
# Exit codes:
#   0   clean
#   1   thread-safety findings (or usage error)
#   77  skipped: no clang++ binary on PATH (ctest marks the gate test
#       SKIPPED via SKIP_RETURN_CODE; CI images with clang installed run
#       the real gate)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

CLANG=""
for cand in clang++ clang++-21 clang++-20 clang++-19 clang++-18 \
            clang++-17 clang++-16 clang++-15 clang++-14; do
  if command -v "$cand" > /dev/null 2>&1; then
    CLANG="$cand"
    break
  fi
done
if [[ -z "$CLANG" ]]; then
  echo "run_thread_safety.sh: clang++ not installed; skipping gate" >&2
  exit 77
fi

mapfile -t FILES < <(find "$ROOT/src" -name '*.cpp' | sort)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "run_thread_safety.sh: no sources under src/" >&2
  exit 1
fi

echo "run_thread_safety.sh: $CLANG -Werror=thread-safety over ${#FILES[@]} files"
JOBS="$(nproc 2> /dev/null || echo 4)"
printf '%s\n' "${FILES[@]}" |
  xargs -P "$JOBS" -n 4 "$CLANG" -fsyntax-only -std=c++20 \
    -Wthread-safety -Wthread-safety-beta -Werror=thread-safety \
    -I "$ROOT/src" "$@"
STATUS=$?

if [[ $STATUS -ne 0 ]]; then
  echo "run_thread_safety.sh: thread-safety findings (exit $STATUS)" >&2
  exit 1
fi
echo "run_thread_safety.sh: clean"
exit 0
