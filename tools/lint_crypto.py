#!/usr/bin/env python3
"""Crypto-hygiene linter for the dblind re-encryption stack.

Project-specific rules that neither the compiler nor clang-tidy knows
about, run over the token/line surface of ``src/``:

  secret-logging
      Secret-bearing values (Bigint shares, blinding factors rho_i,
      decryption shares, signing nonces, VDE witnesses) must never reach a
      logging/formatting sink: ``std::cout``/``cerr``/``clog`` insertion,
      ``printf``-family calls, or ``std::format``. Also bans defining an
      ``operator<<(std::ostream&, ...)`` for a secret-bearing type, which
      would make accidental logging compile.

  raw-entropy
      All randomness must route through the seeded, replayable
      ``mpz::Prng`` (src/mpz/random.hpp). Direct use of ``rand``/
      ``srand``/``random``, ``std::random_device``, ``std::mt19937``,
      ``getentropy``, ``/dev/urandom`` etc. anywhere else silently breaks
      the bit-for-bit replay property the simulator and the Byzantine
      tests depend on — and classic ``rand()`` is not
      cryptographically strong to begin with.

  secret-exponent-powmod
      Modular exponentiation whose *exponent* is a secret (key share,
      rho, nonce, witness) must use the Montgomery path
      (``MontgomeryCtx::pow``), not the generic ``powmod`` convenience
      wrapper: the wrapper is the slow path and falls back to plain
      square-and-multiply for even moduli, with a memory/timing profile
      that varies more with operand values. ``powmod`` stays fine for
      public-exponent checks (e.g. subgroup-membership tests in
      group/params.cpp).

  secret-scalar-mul
      The EC analogue of secret-exponent-powmod: elliptic-curve scalar
      multiplication whose scalar is a secret (key share, rho, nonce,
      witness, clamped key) must go through the ``GroupParams`` facade
      (``pow``/``pow_fixed``/``multi_pow``), never call the raw
      ``ec::scalar_mul``/``multi_scalar_mul``/``comb_mul`` primitives
      directly: the facade dispatches to the backend's uniform-window
      ladder and keeps the group-op accounting honest, while ad-hoc
      callers of the primitives are one refactor away from a
      double-and-add whose branch profile follows the secret scalar.
      The backend implementation itself (src/group/) is exempt.

  retransmit-rerandomize
      Retransmission paths (functions whose name contains ``resend`` or
      ``retransmit``) must re-send the originally-signed bytes verbatim,
      never rebuild the message: re-running ``make_envelope``/``vde_prove``
      or drawing fresh randomness inside a resend path re-randomizes a
      message the receiver may have already acted on — and for Schnorr
      commit/reveal rounds a fresh nonce commitment after a reveal is
      catastrophic nonce reuse. Cache the framed bytes; resend those.

  batch-randomizer
      Random-linear-combination batch verification (functions whose name
      contains ``batch_verify``) is only sound when the per-equation
      randomizers are fresh and unpredictable to the prover: a constant or
      reused coefficient lets a cheater craft equation errors that cancel
      in the combined product. Randomizer assignments inside a batch
      verifier must draw from ``mpz::Prng`` (src/mpz/random.hpp) or derive
      from a transcript digest (``from_bytes_be`` over a hash) — never
      from literals or other randomizers.

  trace-hygiene
      The observability layer (src/obs/ and every ``emit_*``/``record_*``
      call that feeds it) must only ever see public protocol coordinates —
      timestamps, node ids, ranks, message types, counts. Secret material
      (rho, key shares, decryption exponents, signing nonces, Prng state)
      appearing in src/obs/ code or in the arguments of an emit/record
      call would end up in trace files and metric dumps, which ship to
      disk and dashboards. Phase names like "contribute"/"blind"/"commit"
      are public vocabulary and deliberately not matched.

  pool-reuse
      The precomputed contribution pool (src/core/contribution_pool.hpp)
      holds single-use secret randomness: rho, encryption nonces, and the
      VDE announcement exponents. Three sub-checks keep it safe: (1) the
      ``ContributionBundle`` type must stay move-only (deleted copy
      constructor) so a bundle cannot be silently duplicated and proved
      over twice — two Fiat-Shamir challenges on one announcement leak the
      witness; (2) no ``snapshot()`` body may mention the pool or bundles —
      precomputed rho values are secrets and must never be serialized to
      durable state; (3) every rho/r1/r2 assignment inside
      ``make_contribution_bundle`` must draw from an ``mpz::Prng`` — pool
      randomness is never derived from constants or recycled values.

Waivers: append ``// crypto-lint: allow(<rule>) <reason>`` to the
flagged line (or the line directly above it). A reason is mandatory.

Exit codes: 0 clean, 1 violations (or waiver without reason), 2 usage
error. ``--self-test`` runs the embedded corpus of known-bad/known-good
snippets and fails if any rule stops firing — this is what makes the
ctest gate trip when someone *would* insert ``std::cout << share`` or a
raw ``rand()`` call.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List

import lintlib
from lintlib import (Finding, split_call_args, strip_comments_and_strings,
                     strip_comments_only)

# Identifiers that carry secret material somewhere in the protocol stack.
# Matched case-insensitively as a word prefix (so `rho_i`, `shares_`,
# `blinding_factor` all hit). Tuned to src/: ContributorState{rho, r1, r2},
# DecryptionShare, ServerSecrets, SigningMember nonces, VDE witnesses.
SECRET_IDENT = re.compile(
    r"\b(rho|share|shares|secret|secrets|sk|priv|private_key|witness|nonce|"
    r"blind|blinding|contribution|partial|decrypt_share|key_share|r1|r2)\w*",
    re.IGNORECASE,
)

# Logging / formatting sinks. `<<` alone is NOT a sink: Bigint uses
# operator<< for shifts. A stream object (or printf/format family call)
# must appear in the same statement.
LOG_SINK = re.compile(
    r"std::(cout|cerr|clog)\b|\bf?printf\s*\(|\bputs\s*\(|\bstd::format\s*\(|"
    r"\bsyslog\s*\(|\bLOG\s*\(|\bDBLIND_LOG\b"
)

OSTREAM_OVERLOAD = re.compile(r"operator\s*<<\s*\(\s*std::ostream\s*&")

# Entropy sources that bypass mpz::Prng. `random` needs care: `random()`
# libc call yes, `random.hpp`/`uniform_*` no.
RAW_ENTROPY = re.compile(
    r"\b(rand|srand|rand_r|random|srandom|drand48|lrand48|arc4random\w*)\s*\(|"
    r"std::(random_device|mt19937\w*|minstd_rand\w*|ranlux\w*|knuth_b)\b|"
    r"\bgetentropy\s*\(|\bgetrandom\s*\(|\bRAND_bytes\s*\("
)

# Checked against the line with comments stripped but string literals kept
# (the device path only ever appears inside a string). To avoid flagging a
# mere *mention* of the path — an error message, a test name — the line must
# also actually open/read it; this is the string-literal false-positive
# class the shared lintlib stripping exists for, narrowed here because this
# one rule must look inside strings.
DEV_RANDOM = re.compile(r"/dev/u?random")
DEV_RANDOM_OPEN = re.compile(r"\b(?:ifstream|fstream|fopen|open|openat|freopen|readlink)\b")

# Files allowed to touch the OS entropy source / implement the Prng itself.
RAW_ENTROPY_ALLOWED = {"src/mpz/random.cpp", "src/mpz/random.hpp"}

# Files allowed to call the generic powmod with arbitrary exponents
# (the implementation itself and its even-modulus fallback).
POWMOD_ALLOWED = {"src/mpz/modmath.cpp", "src/mpz/modmath.hpp"}

POWMOD_CALL = re.compile(r"\bpowmod\s*\(")

# Files allowed to call the raw EC scalar-mul primitives: the group backend
# itself (ristretto ladder/comb implementation and its GroupParams facade).
SCALAR_MUL_ALLOWED_PREFIX = "src/group/"

SCALAR_MUL_CALL = re.compile(r"\b(?:multi_)?scalar_mul\s*\(|\bcomb_mul\s*\(")

# Secret scalars for the EC rule: everything SECRET_IDENT knows, plus the
# EC-specific vocabulary (bare `scalar`, clamped keys).
SECRET_SCALAR = re.compile(
    r"\b(rho|share|shares|secret|secrets|sk|priv|private_key|witness|nonce|"
    r"blind|blinding|contribution|partial|decrypt_share|key_share|r1|r2|"
    r"scalar|clamped)\w*",
    re.IGNORECASE,
)

# A *definition* line (column 0, not a `;`-terminated declaration) of a
# function whose name marks it as a retransmission path.
RESEND_FN_DEF = re.compile(r"^[\w:<>,&*~\[\]\s]*\b\w*(?:resend|retransmit)\w*\s*\(")

# Anything that mints fresh crypto material — forbidden inside resend paths,
# which must replay cached, originally-signed bytes.
RERANDOMIZE = re.compile(
    r"\bmake_envelope\s*\(|\bvde_prove\s*\(|\.encrypt\w*\s*\(|\brng\s*\(\s*\)|"
    r"\brandom_element\s*\(|\brandom_exponent\s*\(|\bfork\s*\("
)

# A definition line of a batch-verification function (same column-0
# heuristic as RESEND_FN_DEF).
BATCH_FN_DEF = re.compile(r"^[\w:<>,&*~\[\]\s]*\b\w*batch_verify\w*\s*\(")

# A randomizer being bound inside a batch verifier: `Bigint c1 = ...;`,
# `c1 = ...;`, `Bigint c2(...)`. Member access (`coeff.push_back`) does not
# match — transcript-derived coefficient vectors are built that way and are
# legitimate.
RANDOMIZER_ASSIGN = re.compile(
    r"\b(?:Bigint\s+)?(c1|c2|coeff\w*|randomizer\w*|rand_c\w*)\s*(?:=|\(|\{)(.*)$"
)

# Acceptable randomizer sources: the seeded Prng, or a transcript digest.
RANDOMIZER_SOURCE = re.compile(r"\bprng\b|\brng\b|\buniform_\w+|\bfrom_bytes_be\b|\.fork\s*\(")

WAIVER = lintlib.make_waiver_re("crypto-lint")


def waived(lines: List[str], idx: int, rule: str) -> bool:
    return lintlib.waived(lines, idx, rule, WAIVER)

# Secret material that must never reach the observability layer. Narrower
# than SECRET_IDENT on purpose: "contribute"/"blind"/"commit"/"sign" are
# *phase names* — public vocabulary that trace events legitimately carry
# (kContributeSent, SignPurpose::kBlind) — so they are not matched here.
# `private` needs a suffix (private_key, ...): bare `private` is the C++
# access specifier, a keyword that can never name a value.
TRACE_SECRET = re.compile(
    r"\b(rho\w*|shares?\w*|secrets?\w*|witness\w*|nonces?\w*|prng\w*|"
    r"private\w+|sk|key_share\w*|enc_share\w*|sign_share\w*|"
    r"decrypt_exponent\w*|r1|r2)\b|\brng\s*\(",
    re.IGNORECASE,
)

# A call (or definition — both are checked, definitions are harmless) of a
# function that feeds the observability layer. Beyond emit_*/record_*, this
# covers the PR 9 span plumbing: mint_span()/set_current_span() arguments
# become causal span ids in the JSONL stream, and the watchdog's
# arm/progress/complete arguments resurface verbatim inside kStall state
# dumps — all of them must carry only public coordinates.
EMIT_CALL = re.compile(
    r"\b(?:emit|record)\w*\s*\("
    r"|\b(?:mint_span|set_current_span)\s*\("
    r"|\bwatchdog\w*\.\s*(?:arm|progress|complete|expired)\s*\("
)

# A TraceEvent built by hand (the watchdog emits kStall/kStallResolved
# directly so the emit_trace hook cannot re-enter itself). Every field
# assigned between this declaration and the record() handoff lands on the
# wire, so the whole build region is scanned like an emit argument list.
TRACE_EVENT_DECL = re.compile(r"\bobs::TraceEvent\s+(\w+)\s*;")

# --- pool-reuse --------------------------------------------------------------
# The move-only bundle type and its mandatory deleted copy constructor.
BUNDLE_STRUCT = re.compile(r"\bstruct\s+ContributionBundle\b")
BUNDLE_COPY_DELETED = re.compile(
    r"ContributionBundle\s*\(\s*const\s+ContributionBundle\s*&\s*\)\s*=\s*delete"
)

# A column-0 definition of a snapshot() member (durable-state serializer).
SNAPSHOT_FN_DEF = re.compile(r"::snapshot\s*\(")

# Pool state showing up inside a snapshot body: pooled bundles hold secret
# randomness and must never be serialized.
POOL_IN_SNAPSHOT = re.compile(r"\b(pool_?\w*|bundle\w*)\b", re.IGNORECASE)

# A column-0 definition of the bundle factory.
MKBUNDLE_FN_DEF = re.compile(r"\bmake_contribution_bundle\s*\(")

# A secret field of the bundle being bound inside the factory.
BUNDLE_SECRET_ASSIGN = re.compile(r"\.\s*(rho|r1|r2)\s*=(.*)$")

# Acceptable sources for bundle randomness: the prng argument (directly or
# through the GroupParams sampling helpers, which take it as a parameter).
BUNDLE_RANDOM_SOURCE = re.compile(r"\bprng\b")


def lint_text(rel_path: str, text: str) -> List[Finding]:
    findings: List[Finding] = []
    lines = text.splitlines()
    in_resend_fn = False  # inside the body of a resend/retransmit function
    in_batch_fn = False  # inside the body of a *batch_verify* function
    in_snapshot_fn = False  # inside the body of a ::snapshot() serializer
    in_mkbundle_fn = False  # inside the body of make_contribution_bundle
    emit_depth = 0  # paren depth of an emit_*/record_* call spanning lines
    trace_build_var = None  # name of a hand-built TraceEvent being populated
    is_obs = rel_path.startswith("src/obs/")

    # pool-reuse (1): a file declaring the bundle type must keep it move-only.
    for idx, raw in enumerate(lines):
        code = strip_comments_and_strings(raw)
        if BUNDLE_STRUCT.search(code) and not waived(lines, idx, "pool-reuse"):
            if not any(BUNDLE_COPY_DELETED.search(strip_comments_and_strings(l))
                       for l in lines):
                findings.append(
                    Finding(
                        rel_path,
                        idx + 1,
                        "pool-reuse",
                        "ContributionBundle must delete its copy constructor "
                        "(move-only): a copied bundle could be proved over "
                        "twice, and two challenges on one VDE announcement "
                        "leak the witness",
                    )
                )
            break

    for idx, raw in enumerate(lines):
        line_no = idx + 1
        code = strip_comments_and_strings(raw)

        # --- trace-hygiene --------------------------------------------------
        def trace_flag(ident: str) -> None:
            findings.append(
                Finding(
                    rel_path,
                    line_no,
                    "trace-hygiene",
                    f"secret-bearing identifier '{ident}' reaches the "
                    "observability layer; traces and metrics must carry only "
                    "public protocol coordinates",
                )
            )

        if is_obs:
            m = TRACE_SECRET.search(code)
            if m and not waived(lines, idx, "trace-hygiene"):
                trace_flag(m.group(0).strip())
        else:
            if emit_depth > 0:  # continuation of a multi-line emit/record call
                m = TRACE_SECRET.search(code)
                if m and not waived(lines, idx, "trace-hygiene"):
                    trace_flag(m.group(0).strip())
                emit_depth = max(0, emit_depth + code.count("(") - code.count(")"))
            for call in EMIT_CALL.finditer(code):
                seg = code[call.end() - 1:]
                m = TRACE_SECRET.search(seg)
                if m and not waived(lines, idx, "trace-hygiene"):
                    trace_flag(m.group(0).strip())
                depth = seg.count("(") - seg.count(")")
                if depth > 0:
                    emit_depth = depth
            decl = TRACE_EVENT_DECL.search(code)
            if decl is not None:
                trace_build_var = decl.group(1)
            elif trace_build_var is not None:
                if re.search(rf"\b{trace_build_var}\s*\.\s*\w+\s*=", code):
                    m = TRACE_SECRET.search(code)
                    if m and not waived(lines, idx, "trace-hygiene"):
                        trace_flag(m.group(0).strip())
                if re.search(rf"record\w*\s*\(\s*{trace_build_var}\s*\)", code) \
                        or raw.startswith("}"):
                    trace_build_var = None

        # --- retransmit-rerandomize ----------------------------------------
        # Line-local region tracking: a column-0 definition whose name says
        # "resend"/"retransmit" opens the region; a column-0 `}` closes it.
        if in_resend_fn and raw.startswith("}"):
            in_resend_fn = False
        elif (
            not in_resend_fn
            and RESEND_FN_DEF.search(code)
            and raw
            and not raw[0].isspace()
            and not code.rstrip().endswith(";")
        ):
            in_resend_fn = True
        elif in_resend_fn:
            m = RERANDOMIZE.search(code)
            if m and not waived(lines, idx, "retransmit-rerandomize"):
                findings.append(
                    Finding(
                        rel_path,
                        line_no,
                        "retransmit-rerandomize",
                        f"'{m.group(0).strip()}' mints fresh crypto material "
                        "inside a retransmission path; resend the cached, "
                        "originally-signed bytes instead",
                    )
                )

        # --- batch-randomizer ----------------------------------------------
        # Same region-tracking shape: a column-0 definition whose name
        # contains "batch_verify" opens the region; a column-0 `}` closes it.
        # Inside, every randomizer binding must draw from mpz::Prng or a
        # transcript digest — a literal or a copy of another randomizer
        # breaks batch soundness (errors can be crafted to cancel).
        if in_batch_fn and raw.startswith("}"):
            in_batch_fn = False
        elif (
            not in_batch_fn
            and BATCH_FN_DEF.search(code)
            and raw
            and not raw[0].isspace()
            and not code.rstrip().endswith(";")
        ):
            in_batch_fn = True
        elif in_batch_fn:
            m = RANDOMIZER_ASSIGN.search(code)
            if (
                m
                and not RANDOMIZER_SOURCE.search(m.group(2))
                and not waived(lines, idx, "batch-randomizer")
            ):
                findings.append(
                    Finding(
                        rel_path,
                        line_no,
                        "batch-randomizer",
                        f"batch randomizer '{m.group(1)}' is not drawn from "
                        "mpz::Prng (src/mpz/random.hpp) or a transcript "
                        "digest; constant or reused randomizers break batch "
                        "verification soundness",
                    )
                )

        # --- pool-reuse (2, 3) ----------------------------------------------
        # Region tracking as above: a column-0 ::snapshot( definition (or
        # make_contribution_bundle definition) opens a region, a column-0 `}`
        # closes it. Snapshot bodies must never touch pool/bundle state; the
        # bundle factory must bind its secret fields from the prng argument.
        if in_snapshot_fn and raw.startswith("}"):
            in_snapshot_fn = False
        elif (
            not in_snapshot_fn
            and SNAPSHOT_FN_DEF.search(code)
            and raw
            and not raw[0].isspace()
            and not code.rstrip().endswith(";")
        ):
            in_snapshot_fn = True
        elif in_snapshot_fn:
            m = POOL_IN_SNAPSHOT.search(code)
            if m and not waived(lines, idx, "pool-reuse"):
                findings.append(
                    Finding(
                        rel_path,
                        line_no,
                        "pool-reuse",
                        f"'{m.group(0)}' inside a snapshot() body: pooled "
                        "contribution bundles hold single-use secret "
                        "randomness and must never reach durable state",
                    )
                )
        if in_mkbundle_fn and raw.startswith("}"):
            in_mkbundle_fn = False
        elif (
            not in_mkbundle_fn
            and MKBUNDLE_FN_DEF.search(code)
            and raw
            and not raw[0].isspace()
            and not code.rstrip().endswith(";")
        ):
            in_mkbundle_fn = True
        elif in_mkbundle_fn:
            m = BUNDLE_SECRET_ASSIGN.search(code)
            if (
                m
                and not BUNDLE_RANDOM_SOURCE.search(m.group(2))
                and not waived(lines, idx, "pool-reuse")
            ):
                findings.append(
                    Finding(
                        rel_path,
                        line_no,
                        "pool-reuse",
                        f"bundle secret '{m.group(1)}' is not drawn from the "
                        "mpz::Prng argument; pool randomness must be "
                        "seed-replayable and never constant or recycled",
                    )
                )

        # --- secret-logging -------------------------------------------------
        if OSTREAM_OVERLOAD.search(code) and not waived(lines, idx, "secret-logging"):
            findings.append(
                Finding(
                    rel_path,
                    line_no,
                    "secret-logging",
                    "ostream operator<< overload in the crypto stack makes "
                    "accidental secret logging compile; remove it",
                )
            )
        elif LOG_SINK.search(code):
            m = SECRET_IDENT.search(code)
            if m and not waived(lines, idx, "secret-logging"):
                findings.append(
                    Finding(
                        rel_path,
                        line_no,
                        "secret-logging",
                        f"secret-bearing identifier '{m.group(0)}' reaches a "
                        "logging/formatting sink",
                    )
                )

        # --- raw-entropy ----------------------------------------------------
        if rel_path not in RAW_ENTROPY_ALLOWED:
            no_comments = strip_comments_only(raw)
            m = RAW_ENTROPY.search(code) or (
                DEV_RANDOM.search(no_comments)
                if DEV_RANDOM_OPEN.search(no_comments) else None)
            if m and not waived(lines, idx, "raw-entropy"):
                findings.append(
                    Finding(
                        rel_path,
                        line_no,
                        "raw-entropy",
                        f"'{m.group(0).strip()}' bypasses mpz::Prng "
                        "(src/mpz/random.hpp); all randomness must be "
                        "seed-replayable",
                    )
                )

        # --- secret-exponent-powmod ----------------------------------------
        if rel_path not in POWMOD_ALLOWED:
            for call in POWMOD_CALL.finditer(code):
                args = split_call_args(code, call.end() - 1)
                if len(args) >= 2 and SECRET_IDENT.search(args[1]):
                    if not waived(lines, idx, "secret-exponent-powmod"):
                        findings.append(
                            Finding(
                                rel_path,
                                line_no,
                                "secret-exponent-powmod",
                                f"powmod with secret exponent '{args[1]}': use "
                                "MontgomeryCtx::pow for secret exponents",
                            )
                        )

        # --- secret-scalar-mul ---------------------------------------------
        if not rel_path.startswith(SCALAR_MUL_ALLOWED_PREFIX):
            for call in SCALAR_MUL_CALL.finditer(code):
                args = split_call_args(code, call.end() - 1)
                if len(args) >= 2 and SECRET_SCALAR.search(args[1]):
                    if not waived(lines, idx, "secret-scalar-mul"):
                        findings.append(
                            Finding(
                                rel_path,
                                line_no,
                                "secret-scalar-mul",
                                f"raw EC scalar-mul with secret scalar "
                                f"'{args[1]}': use the GroupParams facade "
                                "(pow/pow_fixed/multi_pow) outside src/group/",
                            )
                        )
    return findings


# --------------------------------------------------------------------------
# Self-test corpus: (rule-that-must-fire-or-None, snippet). Keeps the gate
# honest — if a regex regresses, the selftest ctest entry fails even though
# the tree itself is clean.
SELF_TEST_CASES = [
    # secret-logging must fire:
    ("secret-logging", 'std::cout << "share: " << share << "\\n";'),
    ("secret-logging", "std::cerr << st.rho.to_hex();"),
    ("secret-logging", 'printf("rho=%s", rho.to_hex().c_str());'),
    ("secret-logging", "std::ostream& operator<<(std::ostream& os, const Bigint& v);"),
    ("secret-logging", "std::cout << std::format(\"nonce {}\", nonce_hex);"),
    # ...and must NOT fire on these:
    (None, "Bigint x = a << 64;  // limb shift, not a stream"),
    (None, "out.bigint(st.rho);  // canonical codec, not a log sink"),
    (None, 'std::cout << "protocol done, " << n_messages << " msgs\\n";'),
    (None, '// comment mentioning std::cout << share is fine'),
    # raw-entropy must fire:
    ("raw-entropy", "int r = rand();"),
    ("raw-entropy", "srand(time(nullptr));"),
    ("raw-entropy", "std::random_device rd;"),
    ("raw-entropy", "std::mt19937_64 gen(seed);"),
    ("raw-entropy", 'std::ifstream urandom("/dev/urandom");'),
    ("raw-entropy", "getentropy(buf, sizeof buf);"),
    # ...and must NOT fire:
    (None, "auto v = prng.uniform_below(q);"),
    (None, "Prng child = rng.fork(\"label\");"),
    (None, "std::uniform_int_distribution<int> d(0, 9);  // no engine here"),
    # string literals that merely *mention* the device path (error messages,
    # test names) are not entropy sources — only an actual open/read is:
    (None, 'throw std::runtime_error("refusing /dev/urandom fallback");'),
    (None, 'std::puts("no /dev/urandom in sandbox");'),
    # ...and string literals mentioning secrets are not secret values:
    (None, 'std::cout << "secret-sharing smoke test passed\\n";'),
    (None, 'printf("blinding share test %d\\n", test_id);'),
    # secret-exponent-powmod must fire:
    ("secret-exponent-powmod", "auto y = powmod(g, sk_share, p);"),
    ("secret-exponent-powmod", "auto c1 = powmod(base, rho, p);"),
    ("secret-exponent-powmod", "return powmod(h, witness_r1, p);"),
    # ...and must NOT fire:
    (None, "if (powmod(g, q, p) != Bigint(1)) throw;  // public subgroup check"),
    (None, "auto y = ctx.pow(g, sk_share);  // Montgomery path, correct"),
    (
        None,
        "auto y = powmod(g, sk_share, p);  "
        "// crypto-lint: allow(secret-exponent-powmod) even modulus in test vector",
    ),
    # secret-scalar-mul must fire:
    ("secret-scalar-mul", "auto P = ec::scalar_mul(base, sk_share_bytes);"),
    ("secret-scalar-mul", "Point y = scalar_mul(g, rho_scalar);"),
    ("secret-scalar-mul", "auto acc = multi_scalar_mul(bases, witness_scalars);"),
    ("secret-scalar-mul", "return comb_mul(table, clamped_key);"),
    # ...and must NOT fire:
    (None, "auto y = params.pow(g, sk_share);  // facade path, correct"),
    (None, "auto y = params.pow_fixed(pin, rho);  // comb via facade"),
    (None, "auto P = scalar_mul(g, public_cofactor);  // public scalar"),
    # the backend implementation itself is exempt:
    (None, "auto P = scalar_mul(base, scalar);", "src/group/ristretto.cpp"),
    (
        None,
        "auto P = ec::scalar_mul(base, sk_scalar);  "
        "// crypto-lint: allow(secret-scalar-mul) KAT vector in test helper",
    ),
    # retransmit-rerandomize must fire (multi-line snippets: definition +
    # body + closing brace, as lint_text sees them in a real file):
    (
        "retransmit-rerandomize",
        "void ProtocolServer::resend_frame(net::Context& ctx, net::NodeId to) {\n"
        "  auto env = make_envelope(cfg_, secrets_, body, ctx.rng());\n"
        "}",
    ),
    (
        "retransmit-rerandomize",
        "void ProtocolServer::handle_resend_timer(net::Context& ctx, std::uint64_t key) {\n"
        "  cm.vde = vde_prove(ka, ea, r1, kb, eb, r2, vde_context(id, rank), ctx.rng());\n"
        "}",
    ),
    (
        "retransmit-rerandomize",
        "void retransmit_blind(net::Context& ctx) {\n"
        "  req.ea_m = cfg_.a.encryption_key.encrypt(m_, ctx.rng());\n"
        "}",
    ),
    # ...and must NOT fire:
    (
        None,
        "void ProtocolServer::resend_frame(net::Context& ctx, net::NodeId to) {\n"
        "  ++retransmits_sent_;\n"
        "  ctx.send(to, st.commit_frame);  // cached originally-signed bytes\n"
        "}",
    ),
    (
        None,
        "void ProtocolServer::handle_init(net::Context& ctx, const SignedMessage& env) {\n"
        "  auto out = make_envelope(cfg_, secrets_, body, ctx.rng());  // first send: fine\n"
        "}",
    ),
    (
        None,
        "void helper() {\n"
        "  arm_resend(ctx, std::move(r));  // call into the resend layer, not a definition\n"
        "  auto out = make_envelope(cfg_, secrets_, body, ctx.rng());\n"
        "}",
    ),
    # batch-randomizer must fire (constant or reused randomizers inside a
    # *batch_verify* definition):
    (
        "batch-randomizer",
        "bool cp_batch_verify(const GroupParams& params, std::span<const CpBatchItem> items,\n"
        "                     mpz::Prng& prng) {\n"
        "  Bigint c1(7);\n"
        "}",
    ),
    (
        "batch-randomizer",
        "bool vde_batch_verify(const GroupParams& gp, std::span<const VdeBatchItem> items) {\n"
        "  Bigint c1 = Bigint(0x1234);\n"
        "}",
    ),
    (
        "batch-randomizer",
        "bool batch_verify_decryption_shares(const GroupParams& gp, mpz::Prng& prng) {\n"
        "  Bigint c1 = prng.uniform_nonzero_below(bound);\n"
        "  Bigint c2 = c1;  // reused randomizer\n"
        "}",
    ),
    # ...and must NOT fire:
    (
        None,
        "bool cp_batch_verify(const GroupParams& params, std::span<const CpBatchItem> items,\n"
        "                     mpz::Prng& prng) {\n"
        "  const Bigint c1 = prng.uniform_nonzero_below(bound);\n"
        "  const Bigint c2 = prng.uniform_nonzero_below(bound);\n"
        "}",
    ),
    (
        None,
        "bool schnorr_batch_verify(const GroupParams& params, std::span<const Item> batch) {\n"
        "  coeff.push_back(Bigint::from_bytes_be(h.digest()));  // transcript-derived\n"
        "}",
    ),
    (
        None,
        "void helper_outside_batch() {\n"
        "  Bigint c1(7);  // not a batch verifier; test fixtures may use constants\n"
        "}",
    ),
    # trace-hygiene must fire — secrets in emit/record call arguments:
    (
        "trace-hygiene",
        "emit_trace(ctx, obs::EventKind::kVerifyFail, nullptr, "
        "{.count = st.rho.bit_length()});",
    ),
    ("trace-hygiene", "record_event(trace_, secrets_.enc_share);"),
    ("trace-hygiene", "emit_trace(ctx, kind, nullptr, {.peer = share.index});"),
    (
        "trace-hygiene",  # multi-line call: secret on a continuation line
        "emit_trace(ctx, obs::EventKind::kRetransmit, nullptr,\n"
        "           {.transfer = r.transfer,\n"
        "            .count = nonce_commitment.words()});",
    ),
    ("trace-hygiene", "recorder->record(make_event(prng.state()));"),
    # ...secrets through the PR 9 span plumbing and watchdog call sites:
    ("trace-hygiene", "ctx.set_current_span(secrets_.rank ^ mask);"),
    ("trace-hygiene", "watchdog_.progress(ev.transfer, ev.ts, share_index);"),
    (
        "trace-hygiene",  # multi-line watchdog call, secret on a continuation
        "watchdog_.arm(transfer,\n"
        "              rho.bit_length());",
    ),
    # ...and through a hand-built TraceEvent dump (bypasses emit_trace):
    (
        "trace-hygiene",
        "obs::TraceEvent out;\n"
        "out.kind = obs::EventKind::kStall;\n"
        "out.count = secrets_.enc_share.words();\n"
        "opts_.trace->record(out);",
    ),
    # ...secrets in src/obs/ code itself, regardless of function name:
    ("trace-hygiene", "ev.count = rho.bit_length();", "src/obs/trace.cpp"),
    ("trace-hygiene", "std::uint64_t x = ctx.rng().next();", "src/obs/metrics.cpp"),
    # ...and must NOT fire on public protocol coordinates:
    (None, "emit_trace(ctx, obs::EventKind::kCommitSent, &init->id);"),
    (
        None,
        "emit_trace(ctx, obs::EventKind::kVerifyPass, &contribute->id,\n"
        "           {.peer = contribute->server,\n"
        "            .subject = static_cast<std::uint32_t>(MsgType::kContribute)});",
    ),
    (None, "record_done(&ctx, *done, msg.done);"),
    (None, "emit_trace(ctx, obs::EventKind::kDecryptDone, &msg.id, "
           "{.count = cfg_.a.cfg.quorum()});"),
    (None, "ev.peer = env.signer;", "src/obs/trace.cpp"),
    (None, " private:\n  std::vector<Cell> cells_;", "src/obs/metrics.hpp"),
    ("trace-hygiene", "out = private_key.to_hex();", "src/obs/metrics.hpp"),
    (None, "out += kind_name(e.kind);", "src/obs/trace.cpp"),
    # phase names are public vocabulary, not secrets:
    (None, "emit_trace(ctx, obs::EventKind::kBlindSignBegin, &st.id, "
           "{.count = quorum});"),
    # span ids and watchdog state dumps carry only public coordinates:
    (None, "ev.span = ctx.mint_span();\nctx.set_current_span(ev.span);"),
    (None, "watchdog_.progress(ev.transfer, ev.ts, ev.span);"),
    (
        None,
        "obs::TraceEvent out;\n"
        "out.kind = obs::EventKind::kStall;\n"
        "out.count = engine_.queued();\n"
        "out.peer = pending.size();\n"
        "opts_.trace->record(out);\n"
        "rho_reuse_after_region(rho);  // after record(): region closed",
    ),
    # pool-reuse must fire — bundle type that is not move-only:
    (
        "pool-reuse",
        "struct ContributionBundle {\n"
        "  mpz::Bigint rho;\n"
        "  ContributionBundle(const ContributionBundle&) = default;\n"
        "};",
    ),
    (
        "pool-reuse",
        "struct ContributionBundle {\n"
        "  mpz::Bigint rho;\n"
        "};",
    ),
    # ...pool state serialized by a snapshot body:
    (
        "pool-reuse",
        "std::vector<std::uint8_t> ProtocolServer::snapshot() const {\n"
        "  w.u32(static_cast<std::uint32_t>(pool_->size()));\n"
        "}",
    ),
    (
        "pool-reuse",
        "std::vector<std::uint8_t> ProtocolServer::snapshot() const {\n"
        "  for (const auto& bundle : entries_) put_bundle(w, bundle);\n"
        "}",
    ),
    # ...bundle secrets not drawn from the prng argument:
    (
        "pool-reuse",
        "ContributionBundle make_contribution_bundle(const SystemConfig& cfg,\n"
        "                                            std::uint64_t id, mpz::Prng& prng) {\n"
        "  b.rho = mpz::Bigint(7);\n"
        "}",
    ),
    (
        "pool-reuse",
        "ContributionBundle make_contribution_bundle(const SystemConfig& cfg,\n"
        "                                            std::uint64_t id, mpz::Prng& prng) {\n"
        "  b.r1 = last_bundle.r1;\n"
        "}",
    ),
    # ...and must NOT fire:
    (
        None,
        "struct ContributionBundle {\n"
        "  mpz::Bigint rho;\n"
        "  ContributionBundle(ContributionBundle&&) = default;\n"
        "  ContributionBundle(const ContributionBundle&) = delete;\n"
        "};",
    ),
    (
        None,
        "std::vector<std::uint8_t> ProtocolServer::snapshot() const {\n"
        "  w.u32(static_cast<std::uint32_t>(transfers_.size()));\n"
        "}",
    ),
    (
        None,
        "ContributionBundle make_contribution_bundle(const SystemConfig& cfg,\n"
        "                                            std::uint64_t id, mpz::Prng& prng) {\n"
        "  b.rho = gp.random_element(prng);\n"
        "  b.r1 = gp.random_exponent(prng);\n"
        "  b.r2 = gp.random_exponent(prng);\n"
        "}",
    ),
    (
        None,
        "void helper_outside_snapshot() {\n"
        "  if (pool_ != nullptr) pool_->clear();  // restore path, not snapshot\n"
        "}",
    ),
]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=".", help="repo root (contains src/)")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="lint the embedded known-bad corpus instead of the tree",
    )
    opts = ap.parse_args()

    if opts.self_test:
        return lintlib.run_self_test(SELF_TEST_CASES, lint_text, "lint_crypto")

    findings = lintlib.lint_tree(pathlib.Path(opts.root).resolve(), lint_text)
    return lintlib.report(findings, "lint_crypto")


if __name__ == "__main__":
    sys.exit(main())
