"""Shared plumbing for the offline trace tools (trace_check.py,
trace_critpath.py).

Both tools consume the same JSONL stream obs::JsonlTraceRecorder writes:
one meta header line followed by one JSON object per trace event. This
module owns the stream-level concerns so they cannot drift per tool:

  * the known event-kind vocabulary (mirrors obs::EventKind),
  * per-line structural validation with line-numbered errors,
  * trace schema versioning: the meta line's ``"v"`` field must equal
    TRACE_VERSION — a v1 trace (no ``"v"``, no span ids) or a
    future-versioned trace is rejected up front with the offending line
    number instead of producing nonsense span DAGs downstream,
  * bounded streaming: traces are read line-by-line (never slurped), and
    an optional --max-events guard aborts with a clear error instead of
    letting a runaway trace exhaust memory in the accumulating checkers.

Zero dependencies beyond the standard library, like the tools themselves.
"""

from __future__ import annotations

import json
from typing import IO, Iterator, Optional, Tuple

# Schema version of the JSONL traces this tooling understands. Version 2
# (PR 9) added causal span ids (``span``/``parent`` on every transport- or
# protocol-emitted event) and the stall watchdog kinds; version 1 traces
# carry neither and cannot be span-analyzed.
TRACE_VERSION = 2

# Mirrors obs::EventKind (kind_name() in src/obs/trace.cpp).
KNOWN_KINDS = {
    "msg_send", "msg_recv", "msg_drop", "msg_dup", "msg_corrupt",
    "crash", "restart",
    "epoch_start", "commit_sent", "commit_accepted", "reveal_sent",
    "contribute_sent", "verify_pass", "verify_fail", "blind_sign_begin",
    "sign_done", "decrypt_begin", "decrypt_done", "done_sign_begin",
    "done_recorded", "retransmit", "pool_refill", "pool_drain",
    "epoch_install", "epoch_abort",
    "engine_admit", "engine_defer", "batch_drain", "contribute_cited",
    "stall", "stall_resolved",
}


class TraceError(Exception):
    """A malformed or unsupported trace line (message carries the line no)."""


class TraceLimitError(TraceError):
    """The --max-events guard tripped: the trace is larger than allowed."""


def parse_line(lineno: int, line: str) -> dict:
    """Validate one JSONL line; returns the decoded object.

    Meta lines are version-checked here so every consumer rejects
    mismatched schemas identically and before any event is interpreted.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        raise TraceError(f"line {lineno}: not valid JSON: {e.msg}")
    if not isinstance(obj, dict):
        raise TraceError(f"line {lineno}: expected a JSON object")
    kind = obj.get("kind")
    if not isinstance(kind, str):
        raise TraceError(f"line {lineno}: missing string field 'kind'")
    if kind == "meta":
        version = obj.get("v")
        if version != TRACE_VERSION:
            have = "none (schema v1)" if version is None else repr(version)
            raise TraceError(
                f"line {lineno}: unsupported trace schema version {have} — "
                f"this tool reads v{TRACE_VERSION} traces (re-record with a "
                f"current build)")
        return obj
    if kind not in KNOWN_KINDS:
        raise TraceError(f"line {lineno}: unknown event kind '{kind}'")
    for req in ("ts", "node"):
        if not isinstance(obj.get(req), int):
            raise TraceError(f"line {lineno}: missing integer field '{req}'")
    return obj


def iter_trace(fh: IO[str],
               max_events: Optional[int] = None) -> Iterator[Tuple[int, str]]:
    """Stream (lineno, raw line) pairs from an open JSONL trace.

    Reads line-by-line — memory use is bounded by the caller's own
    accumulation, not the trace size. Parsing is left to the caller (via
    parse_line) so a checker can collect per-line errors and keep going.
    When ``max_events`` is set, exceeding it raises TraceLimitError naming
    both the limit and the line where it tripped.
    """
    seen = 0
    for lineno, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            continue
        seen += 1
        if max_events is not None and seen > max_events:
            raise TraceLimitError(
                f"line {lineno}: trace exceeds --max-events={max_events}; "
                f"raise the limit or pre-filter the trace")
        yield lineno, line


def instance_of(ev: dict) -> tuple:
    """(transfer, coordinator, epoch) identity of an instance-scoped event."""
    return (ev.get("transfer"), ev.get("coord"), ev.get("epoch"))
