#!/usr/bin/env python3
"""Offline invariant checker for dblind JSONL traces (ISSUE 4).

Replays a trace produced by `dblind transfer --trace out.jsonl` (or any
obs::JsonlTraceRecorder stream) and checks protocol invariants that must hold
for every run, Byzantine or not:

  I1  every `done_recorded` is preceded by >= b_f+1 `verify_pass` events for
      contribute messages (subject 4) of the same instance, from distinct
      provers — no transfer completes without a verified blinding quorum.
  I2  every `reveal_sent` is preceded by >= 2*b_f+1 `commit_accepted` events
      at the same coordinator for the same instance, from distinct servers —
      no reveal before the commit quorum.
  I3  `epoch_start` epochs are strictly increasing per (node, transfer) —
      a restarted coordinator never reuses an epoch.
  I4  `retransmit` attempts are < cap, strictly increasing per (node, timer
      key), and cap never exceeds the run's configured retransmit cap.
  I5  `pool_drain` bundle ids are single-use per node — no precomputed
      blinding bundle (its VDE announcement fixes the proof nonce) is ever
      consumed for two instances, which would let two Fiat-Shamir challenges
      share one announcement and leak the witness.
  I6  cross-epoch isolation (PR 7): every contribute `verify_pass` backing a
      single instance carries the same config epoch — a transfer completes
      entirely within its birth configuration or aborts and re-runs; evidence
      from two epochs (hence two key-share polynomials) must never mix.
  I7  `epoch_install` config epochs are strictly increasing per node; a
      `restart` resets the baseline (a restored server legitimately replays
      the install chain from its durable snapshot).
  I8  transfer isolation (PR 8): every `contribute_cited` event backing an
      instance cites a contribution of that instance's OWN transfer id, and
      no instance that violated this ever reaches `done_recorded` — with many
      transfers in flight, evidence from one transfer must never leak into
      another's done record.
  I9  causal span forest (PR 9): span ids are unique across the run and
      every nonzero `parent` names a span that appeared EARLIER in the
      stream — spans are minted at record time, so a cause always precedes
      its effects (across message hops, timers, and crash/restart cycles).

Stream handling (shared with trace_critpath.py via tracelib.py): traces are
read line-by-line, never slurped; the meta line's schema version must match
tracelib.TRACE_VERSION (old or future traces are rejected with the line
number); --max-events bounds the number of events the checker will
accumulate state for, aborting with a clear error instead of exhausting
memory on a runaway trace. Malformed lines are rejected with their line
number. With --latency the checker also prints a per-phase latency table
(virtual microseconds under the simulator).

Usage:
  trace_check.py trace.jsonl [--require kind,kind,...] [--latency] [--quiet]
                             [--max-events N]
  trace_check.py --generate-with path/to/dblind   # end-to-end self-exercise
  trace_check.py --self-test                      # embedded corpus
"""

import argparse
import os
import subprocess
import sys
import tempfile

from tracelib import (TRACE_VERSION, TraceError, TraceLimitError, instance_of,
                      iter_trace, parse_line)

SUBJECT_CONTRIBUTE = 4  # MsgType::kContribute


class Checker:
    """Streams events in file order and accumulates invariant state."""

    def __init__(self):
        self.meta = None
        self.counts = {}
        self.errors = []
        # I1: instance -> set of provers whose contribute passed so far.
        self.contribute_passes = {}
        # I2: (node, instance) -> set of servers whose commit was accepted.
        self.commits = {}
        # I3: (node, transfer) -> last announced epoch.
        self.last_epoch = {}
        # I4: (node, key) -> last attempt.
        self.last_attempt = {}
        # I5: node -> set of drained bundle ids.
        self.drained_bundles = {}
        # I6: instance -> set of config epochs on its contribute verify_passes.
        self.contribute_cfg_epochs = {}
        # I7: node -> highest installed config epoch since its last restart.
        self.installed_epoch = {}
        # I8: instance -> set of foreign transfer ids its evidence cited.
        self.foreign_cites = {}
        # I9: every span id seen so far (spans are minted in record order,
        # so a parent must already be here when its child arrives).
        self.spans_seen = set()
        # Latency bookkeeping: (phase) -> list of durations.
        self.latency = {}
        self._marks = {}       # (what, node, instance) -> ts
        self._first_start = {}  # transfer -> ts of first epoch_start
        self._done = {}        # transfer -> ts of first done_recorded

    def err(self, lineno, msg):
        self.errors.append(f"line {lineno}: {msg}")

    def _mark(self, what, ev):
        self._marks[(what, ev["node"], instance_of(ev))] = ev["ts"]

    def _span(self, phase, begin_what, ev):
        t0 = self._marks.get((begin_what, ev["node"], instance_of(ev)))
        if t0 is not None:
            self.latency.setdefault(phase, []).append(ev["ts"] - t0)

    def feed(self, lineno, ev):
        kind = ev["kind"]
        if kind == "meta":
            if self.meta is not None:
                self.err(lineno, "duplicate meta line")
            self.meta = ev
            return
        self.counts[kind] = self.counts.get(kind, 0) + 1
        node, inst = ev["node"], instance_of(ev)

        span, parent = ev.get("span"), ev.get("parent")
        if parent is not None and parent not in self.spans_seen:
            self.err(lineno, f"I9: {kind} has parent span {parent} that no "
                             f"earlier event minted — orphan causal edge")
        if span is not None:
            if span in self.spans_seen:
                self.err(lineno, f"I9: span id {span} minted twice")
            self.spans_seen.add(span)

        if kind == "verify_pass" and ev.get("subject") == SUBJECT_CONTRIBUTE \
                and inst[0] is not None:
            self.contribute_passes.setdefault(inst, set()).add(ev.get("peer"))
            # cfg_epoch is suppressed in the JSONL when zero (seed epoch).
            self.contribute_cfg_epochs.setdefault(inst, set()).add(
                ev.get("cfg_epoch", 0))
        elif kind == "commit_accepted":
            self.commits.setdefault((node, inst), set()).add(ev.get("from"))
        elif kind == "epoch_start":
            key = (node, inst[0])
            prev = self.last_epoch.get(key)
            if prev is not None and ev.get("epoch") <= prev:
                self.err(lineno, f"I3: node {node} transfer {inst[0]} announced "
                                 f"epoch {ev.get('epoch')} after epoch {prev}")
            self.last_epoch[key] = ev.get("epoch")
            self._mark("epoch_start", ev)
            self._first_start.setdefault(inst[0], ev["ts"])
        elif kind == "reveal_sent":
            if self.meta is not None:
                need = 2 * self.meta["b_f"] + 1
                got = len(self.commits.get((node, inst), set()))
                if got < need:
                    self.err(lineno, f"I2: reveal for {inst} after only {got} "
                                     f"accepted commits (need {need})")
            self._span("commit", "epoch_start", ev)
            self._mark("reveal_sent", ev)
        elif kind == "blind_sign_begin":
            self._span("contribute", "reveal_sent", ev)
            self._mark("blind_sign_begin", ev)
        elif kind == "sign_done":
            if ev.get("purpose") == 1:
                self._span("blind_sign", "blind_sign_begin", ev)
            elif ev.get("purpose") == 2:
                self._span("done_sign", "done_sign_begin", ev)
        elif kind == "decrypt_begin":
            self._mark("decrypt_begin", ev)
        elif kind == "decrypt_done":
            self._span("decrypt", "decrypt_begin", ev)
        elif kind == "done_sign_begin":
            self._mark("done_sign_begin", ev)
        elif kind == "done_recorded":
            if self.meta is not None:
                need = self.meta["b_f"] + 1
                got = len(self.contribute_passes.get(inst, set()))
                if got < need:
                    self.err(lineno, f"I1: done recorded for {inst} after only "
                                     f"{got} verified contributions (need {need})")
            if inst[0] is not None and inst[0] not in self._done:
                self._done[inst[0]] = ev["ts"]
            epochs = self.contribute_cfg_epochs.get(inst, set())
            if len(epochs) > 1:
                self.err(lineno, f"I6: instance {inst} completed with verified "
                                 f"contributions from config epochs "
                                 f"{sorted(epochs)} — cross-epoch evidence mix")
            foreign = self.foreign_cites.get(inst)
            if foreign:
                self.err(lineno, f"I8: instance {inst} done-recorded but its "
                                 f"evidence cited transfers {sorted(foreign)} "
                                 f"— cross-transfer contribution leak")
        elif kind == "retransmit":
            attempt, cap = ev.get("attempt"), ev.get("cap")
            if attempt is None or cap is None:
                self.err(lineno, "I4: retransmit without attempt/cap")
                return
            if attempt >= cap:
                self.err(lineno, f"I4: retransmit attempt {attempt} >= cap {cap}")
            if self.meta is not None and cap > self.meta["retransmit_cap"]:
                self.err(lineno, f"I4: cap {cap} exceeds configured "
                                 f"{self.meta['retransmit_cap']}")
            key = (node, ev.get("key"))
            prev = self.last_attempt.get(key)
            if prev is not None and attempt <= prev:
                self.err(lineno, f"I4: attempt {attempt} for timer {key} "
                                 f"not increasing (last {prev})")
            self.last_attempt[key] = attempt
        elif kind == "epoch_install":
            cfg = ev.get("cfg_epoch")
            if not isinstance(cfg, int) or cfg < 1:
                self.err(lineno, "I7: epoch_install without a positive cfg_epoch")
                return
            prev = self.installed_epoch.get(node)
            if prev is not None and cfg <= prev:
                self.err(lineno, f"I7: node {node} installed cfg_epoch {cfg} "
                                 f"after {prev} — config epochs only move forward")
            self.installed_epoch[node] = cfg
        elif kind == "epoch_abort":
            # Aborts are stamped with the NEW epoch that killed the instance;
            # an abort in the seed epoch is impossible.
            cfg = ev.get("cfg_epoch")
            if not isinstance(cfg, int) or cfg < 1:
                self.err(lineno, "I7: epoch_abort without a positive cfg_epoch")
        elif kind == "restart":
            # A restored server replays the install chain from its snapshot;
            # its monotonicity baseline starts over.
            self.installed_epoch.pop(node, None)
        elif kind == "contribute_cited":
            cited = ev.get("cited_transfer")
            if cited is None:
                self.err(lineno, "I8: contribute_cited without cited_transfer")
                return
            if inst[0] is not None and cited != inst[0]:
                self.foreign_cites.setdefault(inst, set()).add(cited)
        elif kind == "pool_drain":
            bundle = ev.get("bundle")
            if bundle is None:
                self.err(lineno, "I5: pool_drain without bundle id")
                return
            seen = self.drained_bundles.setdefault(node, set())
            if bundle in seen:
                self.err(lineno, f"I5: node {node} consumed bundle {bundle} "
                                 f"twice (announcement reuse)")
            seen.add(bundle)

    def finish(self):
        for transfer, t_done in self._done.items():
            t0 = self._first_start.get(transfer)
            if t0 is not None:
                self.latency.setdefault("end_to_end", []).append(t_done - t0)


def check_file(path, require=(), latency=False, quiet=False, max_events=None,
               out=sys.stdout):
    checker = Checker()
    with open(path, encoding="utf-8") as fh:
        try:
            for lineno, line in iter_trace(fh, max_events=max_events):
                try:
                    checker.feed(lineno, parse_line(lineno, line))
                except TraceError as e:
                    checker.errors.append(str(e))
        except TraceLimitError as e:
            # Unlike a malformed line this is not recoverable per-line: the
            # whole point of the guard is to stop accumulating state.
            checker.errors.append(str(e))
    checker.finish()
    if checker.meta is None:
        checker.errors.append("trace has no meta line (is this a dblind trace?)")
    for kind in require:
        if checker.counts.get(kind, 0) == 0:
            checker.errors.append(f"required event kind '{kind}' never occurred")

    if not quiet:
        total = sum(checker.counts.values())
        print(f"{path}: {total} events, {len(checker.errors)} invariant "
              f"violations", file=out)
        for kind in sorted(checker.counts):
            print(f"  {kind:18} {checker.counts[kind]}", file=out)
        if latency and checker.latency:
            print("phase latency (virtual us):", file=out)
            print(f"  {'phase':12} {'n':>4} {'min':>10} {'mean':>10} {'max':>10}",
                  file=out)
            order = ["commit", "contribute", "blind_sign", "decrypt",
                     "done_sign", "end_to_end"]
            for phase in order + sorted(set(checker.latency) - set(order)):
                vals = checker.latency.get(phase)
                if not vals:
                    continue
                print(f"  {phase:12} {len(vals):>4} {min(vals):>10} "
                      f"{sum(vals) // len(vals):>10} {max(vals):>10}", file=out)
    for e in checker.errors:
        print(f"ERROR: {e}", file=sys.stderr)
    return len(checker.errors) == 0


# --- self-test corpus --------------------------------------------------------

META = ('{"kind":"meta","v":2,"run_seed":1,"a_n":4,"a_f":1,"b_n":4,"b_f":1,'
        '"retransmit_cap":12}')
META_V1 = ('{"kind":"meta","run_seed":1,"a_n":4,"a_f":1,"b_n":4,"b_f":1,'
           '"retransmit_cap":12}')


def _commits(node, n):
    return "\n".join(
        f'{{"ts":{i},"node":{node},"kind":"commit_accepted","transfer":1,'
        f'"coord":1,"epoch":0,"from":{i + 1},"count":{i + 1}}}'
        for i in range(n))


def _passes(n, cfg_epoch=0):
    # cfg_epoch 0 is suppressed on the wire, exactly like the emitter does.
    tail = f',"cfg_epoch":{cfg_epoch}' if cfg_epoch else ""
    return "\n".join(
        f'{{"ts":{10 + i},"node":4,"kind":"verify_pass","transfer":1,'
        f'"coord":1,"epoch":0,"subject":4,"peer":{i + 1}{tail}}}'
        for i in range(n))


SELF_TESTS = [
    # (name, trace text, should_pass, expected substring in errors)
    ("clean-run", "\n".join([
        META,
        f'{{"ts":0,"node":4,"kind":"epoch_start","transfer":1,"coord":1,"epoch":0}}',
        _commits(4, 3),
        '{"ts":5,"node":4,"kind":"reveal_sent","transfer":1,"coord":1,"epoch":0,"count":3}',
        _passes(2),
        '{"ts":20,"node":4,"kind":"blind_sign_begin","transfer":1,"coord":1,"epoch":0,"count":2}',
        '{"ts":30,"node":4,"kind":"sign_done","transfer":1,"coord":1,"epoch":0,"purpose":1}',
        '{"ts":40,"node":0,"kind":"decrypt_begin","transfer":1,"coord":1,"epoch":0}',
        '{"ts":50,"node":0,"kind":"decrypt_done","transfer":1,"coord":1,"epoch":0,"count":2}',
        '{"ts":51,"node":0,"kind":"done_sign_begin","transfer":1,"coord":1,"epoch":0}',
        '{"ts":60,"node":0,"kind":"sign_done","transfer":1,"coord":1,"epoch":0,"purpose":2}',
        '{"ts":70,"node":5,"kind":"done_recorded","transfer":1,"coord":1,"epoch":0}',
        '{"ts":80,"node":4,"kind":"retransmit","transfer":1,"key":3,"frames":4,"attempt":1,"cap":12}',
        '{"ts":90,"node":4,"kind":"retransmit","transfer":1,"key":3,"frames":4,"attempt":2,"cap":12}',
    ]), True, None),
    ("done-without-quorum", "\n".join([
        META,
        _passes(1),
        '{"ts":70,"node":5,"kind":"done_recorded","transfer":1,"coord":1,"epoch":0}',
    ]), False, "I1"),
    ("reveal-without-commits", "\n".join([
        META,
        _commits(4, 2),
        '{"ts":5,"node":4,"kind":"reveal_sent","transfer":1,"coord":1,"epoch":0,"count":2}',
    ]), False, "I2"),
    ("epoch-reuse", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"epoch_start","transfer":1,"coord":1,"epoch":1}',
        '{"ts":9,"node":4,"kind":"epoch_start","transfer":1,"coord":1,"epoch":1}',
    ]), False, "I3"),
    ("retransmit-over-cap", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"retransmit","transfer":1,"key":3,"frames":4,"attempt":12,"cap":12}',
    ]), False, "I4"),
    ("retransmit-cap-exceeds-config", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"retransmit","transfer":1,"key":3,"frames":4,"attempt":1,"cap":99}',
    ]), False, "I4"),
    ("pool-single-use-ok", "\n".join([
        META,
        '{"ts":0,"node":5,"kind":"pool_refill","bundle":1,"depth":1}',
        '{"ts":1,"node":5,"kind":"pool_refill","bundle":2,"depth":2}',
        '{"ts":2,"node":5,"kind":"pool_drain","transfer":1,"coord":1,"epoch":0,"bundle":1,"depth":1,"fallback":0}',
        '{"ts":3,"node":5,"kind":"pool_drain","transfer":2,"coord":1,"epoch":0,"bundle":2,"depth":0,"fallback":0}',
        '{"ts":4,"node":6,"kind":"pool_drain","transfer":1,"coord":1,"epoch":0,"bundle":1,"depth":0,"fallback":1}',
    ]), True, None),
    ("pool-bundle-reused", "\n".join([
        META,
        '{"ts":0,"node":5,"kind":"pool_refill","bundle":1,"depth":1}',
        '{"ts":1,"node":5,"kind":"pool_drain","transfer":1,"coord":1,"epoch":0,"bundle":1,"depth":0,"fallback":0}',
        '{"ts":2,"node":5,"kind":"pool_drain","transfer":2,"coord":1,"epoch":0,"bundle":1,"depth":0,"fallback":0}',
    ]), False, "I5"),
    ("pool-drain-missing-bundle", "\n".join([
        META,
        '{"ts":0,"node":5,"kind":"pool_drain","transfer":1,"coord":1,"epoch":0,"depth":0,"fallback":0}',
    ]), False, "I5"),
    ("churn-clean-rotation", "\n".join([
        META,
        '{"ts":100,"node":4,"kind":"epoch_install","cfg_epoch":1,"rank":1,"n":5}',
        '{"ts":101,"node":5,"kind":"epoch_install","cfg_epoch":1,"rank":2,"n":5}',
        '{"ts":102,"node":4,"kind":"epoch_abort","transfer":1,"coord":1,"epoch":0,"cfg_epoch":1}',
        _passes(2, cfg_epoch=1),
        '{"ts":70,"node":5,"kind":"done_recorded","transfer":1,"coord":1,"epoch":0,"cfg_epoch":1}',
        '{"ts":200,"node":4,"kind":"epoch_install","cfg_epoch":2,"rank":1,"n":5}',
    ]), True, None),
    ("cross-epoch-contribute-mix", "\n".join([
        META,
        _passes(1),                 # seed-epoch contribution ...
        _passes(2, cfg_epoch=1),    # ... mixed with epoch-1 evidence
        '{"ts":70,"node":5,"kind":"done_recorded","transfer":1,"coord":1,"epoch":0}',
    ]), False, "I6"),
    ("install-epoch-regression", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"epoch_install","cfg_epoch":2,"rank":1,"n":4}',
        '{"ts":1,"node":4,"kind":"epoch_install","cfg_epoch":1,"rank":1,"n":4}',
    ]), False, "I7"),
    ("install-epoch-repeat", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"epoch_install","cfg_epoch":1,"rank":1,"n":4}',
        '{"ts":1,"node":4,"kind":"epoch_install","cfg_epoch":1,"rank":1,"n":4}',
    ]), False, "I7"),
    ("install-missing-cfg-epoch", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"epoch_install","rank":1,"n":4}',
    ]), False, "I7"),
    ("abort-in-seed-epoch", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"epoch_abort","transfer":1,"coord":1,"epoch":0}',
    ]), False, "I7"),
    ("restart-replays-install-chain", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"epoch_install","cfg_epoch":1,"rank":1,"n":4}',
        '{"ts":1,"node":4,"kind":"epoch_install","cfg_epoch":2,"rank":1,"n":4}',
        '{"ts":2,"node":4,"kind":"crash"}',
        '{"ts":3,"node":4,"kind":"restart"}',
        '{"ts":4,"node":4,"kind":"epoch_install","cfg_epoch":1,"rank":1,"n":4}',
        '{"ts":5,"node":4,"kind":"epoch_install","cfg_epoch":2,"rank":1,"n":4}',
    ]), True, None),
    ("concurrent-clean-isolation", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"engine_admit","transfer":1,"count":1}',
        '{"ts":1,"node":4,"kind":"engine_admit","transfer":2,"count":2}',
        '{"ts":2,"node":4,"kind":"engine_defer","transfer":3,"count":1}',
        '{"ts":3,"node":4,"kind":"batch_drain","msgs":4,"equations":12}',
        _passes(2),
        '{"ts":20,"node":4,"kind":"contribute_cited","transfer":1,"coord":1,"epoch":0,"from":2,"cited_transfer":1}',
        '{"ts":21,"node":4,"kind":"contribute_cited","transfer":1,"coord":1,"epoch":0,"from":3,"cited_transfer":1}',
        '{"ts":70,"node":5,"kind":"done_recorded","transfer":1,"coord":1,"epoch":0}',
    ]), True, None),
    ("cross-transfer-cite-leak", "\n".join([
        META,
        _passes(2),
        '{"ts":20,"node":4,"kind":"contribute_cited","transfer":1,"coord":1,"epoch":0,"from":2,"cited_transfer":1}',
        '{"ts":21,"node":4,"kind":"contribute_cited","transfer":1,"coord":1,"epoch":0,"from":3,"cited_transfer":2}',
        '{"ts":70,"node":5,"kind":"done_recorded","transfer":1,"coord":1,"epoch":0}',
    ]), False, "I8"),
    ("cite-missing-transfer", "\n".join([
        META,
        '{"ts":20,"node":4,"kind":"contribute_cited","transfer":1,"coord":1,"epoch":0,"from":2}',
    ]), False, "I8"),
    ("foreign-cite-never-done-is-ok", "\n".join([
        # The leak is only a violation when the tainted instance completes;
        # an aborted instance that cited foreign evidence never done-records.
        META,
        '{"ts":20,"node":4,"kind":"contribute_cited","transfer":3,"coord":1,"epoch":0,"from":2,"cited_transfer":9}',
    ]), True, None),
    ("span-forest-ok", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"epoch_start","span":1,"transfer":1,"coord":1,"epoch":0}',
        '{"ts":1,"node":4,"kind":"msg_send","span":2,"parent":1,"peer":5,"type":2,"bytes":64}',
        '{"ts":9,"node":5,"kind":"msg_recv","span":3,"parent":2,"peer":4,"type":2,"bytes":64}',
        '{"ts":9,"node":5,"kind":"commit_accepted","span":4,"parent":3,"transfer":1,"coord":1,"epoch":0,"from":4,"count":1}',
    ]), True, None),
    ("span-orphan-parent", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"epoch_start","span":1,"transfer":1,"coord":1,"epoch":0}',
        '{"ts":1,"node":4,"kind":"msg_send","span":2,"parent":7,"peer":5,"type":2,"bytes":64}',
    ]), False, "I9"),
    ("span-minted-twice", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"epoch_start","span":1,"transfer":1,"coord":1,"epoch":0}',
        '{"ts":1,"node":5,"kind":"epoch_start","span":1,"transfer":2,"coord":1,"epoch":0}',
    ]), False, "I9"),
    ("stall-events-known", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"epoch_start","span":1,"transfer":1,"coord":1,"epoch":0}',
        '{"ts":400000,"node":5,"kind":"stall","span":2,"parent":1,"transfer":1,"queue":0,"verifies":1,"resends":2}',
        '{"ts":500000,"node":5,"kind":"stall_resolved","span":3,"parent":1,"transfer":1,"stalled_us":100000}',
    ]), True, None),
    ("v1-trace-rejected", META_V1 + "\n", False, "unsupported trace schema"),
    ("future-version-rejected",
     META.replace('"v":2', '"v":3') + "\n", False, "unsupported trace schema"),
    ("malformed-json", META + "\n{not json}\n", False, "line 2"),
    ("not-an-object", META + "\n[1,2,3]\n", False, "line 2"),
    ("unknown-kind", META + '\n{"ts":1,"node":0,"kind":"mystery"}\n', False,
     "line 2"),
    ("missing-ts", META + '\n{"node":0,"kind":"crash"}\n', False, "line 2"),
    ("no-meta", '{"ts":1,"node":0,"kind":"crash"}\n', False, "no meta"),
    ("max-events-tripped", META + "\n" + "\n".join(
        f'{{"ts":{i},"node":0,"kind":"crash"}}' for i in range(8)),
     False, "exceeds --max-events=4", {"max_events": 4}),
    ("max-events-headroom", "\n".join([
        META,
        '{"ts":0,"node":4,"kind":"crash"}',
    ]), True, None, {"max_events": 4}),
]


def run_self_test():
    failures = 0
    for case in SELF_TESTS:
        name, text, should_pass, needle = case[:4]
        kwargs = case[4] if len(case) > 4 else {}
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as fh:
            fh.write(text + "\n")
            path = fh.name
        import io
        import contextlib
        err = io.StringIO()
        with contextlib.redirect_stderr(err):
            ok = check_file(path, quiet=True, **kwargs)
        os.unlink(path)
        problems = []
        if ok != should_pass:
            problems.append(f"expected {'pass' if should_pass else 'fail'}, "
                            f"got {'pass' if ok else 'fail'}")
        if needle and needle not in err.getvalue():
            problems.append(f"expected '{needle}' in errors, got: "
                            f"{err.getvalue().strip()!r}")
        status = "ok" if not problems else "FAIL (" + "; ".join(problems) + ")"
        print(f"self-test {name:28} {status}")
        failures += bool(problems)
    return failures == 0


def run_generate_with(cli):
    """Drives the CLI through a lossy Byzantine run and validates its trace."""
    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as fh:
        path = fh.name
    try:
        cmd = [cli, "transfer", "--bits", "128", "--message", "hi",
               "--seed", "7", "--loss", "10", "--byzantine", "badvde",
               "--trace", path]
        res = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
        if res.returncode != 0:
            print(f"ERROR: {' '.join(cmd)} exited {res.returncode}:\n"
                  f"{res.stdout}{res.stderr}", file=sys.stderr)
            return False
        return check_file(path, require=("retransmit", "verify_fail",
                                         "done_recorded"), latency=True)
    finally:
        os.unlink(path)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", nargs="?", help="JSONL trace file")
    ap.add_argument("--require", default="",
                    help="comma-separated event kinds that must occur")
    ap.add_argument("--latency", action="store_true",
                    help="print the per-phase latency table")
    ap.add_argument("--quiet", action="store_true")
    ap.add_argument("--max-events", type=int, default=None, metavar="N",
                    help="abort (with an error) past N events instead of "
                         "accumulating unbounded state")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded corpus")
    ap.add_argument("--generate-with", metavar="DBLIND",
                    help="run this dblind binary to produce and check a trace")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(0 if run_self_test() else 1)
    if args.generate_with:
        sys.exit(0 if run_generate_with(args.generate_with) else 1)
    if not args.trace:
        ap.error("need a trace file, --self-test, or --generate-with")
    require = tuple(k for k in args.require.split(",") if k)
    sys.exit(0 if check_file(args.trace, require=require, latency=args.latency,
                             quiet=args.quiet, max_events=args.max_events)
             else 1)


if __name__ == "__main__":
    main()
