#!/usr/bin/env python3
"""Per-transfer critical-path and latency-budget attribution for dblind
span traces (PR 9).

Every v2 trace event is a span: `span` is a run-unique id minted at record
time and `parent` is the span of the event that caused it — the sending
side's span for msg_recv, the ambient handler span for everything else,
captured at arming time for timer-driven events. That makes each transfer's
history a DAG rooted at its arrival, and the chain of parents above its
first `done_recorded` IS the critical path: the one causal chain whose
waits delayed completion (anything off the chain overlapped with it).

The tool walks that chain backward and attributes every inter-span gap to a
latency-budget category:

  network             msg_send -> msg_recv edges (transport delay)
  queueing            admission wait: the head of the chain once it crosses
                      this transfer's engine_admit (a deferred transfer's
                      completion causally waits on whoever held the slot)
  retransmit_backoff  edges into a retransmit event (the backoff timer wait
                      between arming and the re-send that made progress)
  verify              edges into batch_drain / verify_pass / verify_fail
                      (batch-window and verify-worker waits)
  crypto              zero-gap same-handler edges. Handlers execute in zero
                      VIRTUAL time under the simulator, so crypto cost is
                      deliberately 0 us here; its real cost is group ops,
                      joined from the ScopedCounterDelta-fed
                      dblind_handler_mont_muls_total / dblind_contrib_*
                      cells when --metrics points at a prometheus snapshot
                      (bench_load --trace-out writes one next to the trace).
                      Since PR 10 the snapshot also carries a per-backend
                      dblind_group_ops_total{backend=...} series plus its
                      dblind_group_op_weight word-mul weight, so EC runs
                      attribute to ristretto255 field muls instead of being
                      mislabelled as mod-p Montgomery muls — the report's
                      `backends` table normalizes both to word-muls
  other               any gap the model cannot name (pool refill timers,
                      result-pull polling). The acceptance bar is that this
                      stays under 5% of every transfer's latency.

A transfer's total latency is first-own-event -> first done_recorded, the
same span bench_load's load_latency section measures from the arrival
schedule. `--budget F` turns the report into a gate: exit 1 unless every
completed transfer attributes >= F of its latency to named (non-`other`)
categories — wired into tools/bench_check.py, which records the result in
BENCH_pr9.json.

Usage:
  trace_critpath.py trace.jsonl [--metrics snapshot.prom] [--budget 0.95]
                    [--json] [--max-events N] [--quiet]
  trace_critpath.py --self-test
"""

import argparse
import json
import os
import sys
import tempfile

from tracelib import (TraceError, TraceLimitError, iter_trace, parse_line)

CATEGORIES = ("network", "queueing", "verify", "retransmit_backoff",
              "crypto", "other")
VERIFY_KINDS = {"batch_drain", "verify_pass", "verify_fail"}


class Span:
    __slots__ = ("ts", "kind", "node", "transfer", "parent")

    def __init__(self, ts, kind, node, transfer, parent):
        self.ts, self.kind, self.node = ts, kind, node
        self.transfer, self.parent = transfer, parent


class Trace:
    """Span index + per-transfer anchors, built in one streaming pass."""

    def __init__(self):
        self.meta = None
        self.spans = {}        # span id -> Span
        self.first_done = {}   # transfer -> Span of earliest done_recorded
        self.start_ts = {}     # transfer -> earliest own-event ts
        self.deferred = set()  # transfers that hit the admission cap
        self.errors = []

    def feed(self, lineno, ev):
        if ev["kind"] == "meta":
            self.meta = ev
            return
        kind, ts = ev["kind"], ev["ts"]
        span = ev.get("span", 0)
        transfer = ev.get("transfer")
        if span:
            if span in self.spans:
                self.errors.append(f"line {lineno}: span id {span} minted twice")
            else:
                self.spans[span] = Span(ts, kind, ev["node"], transfer,
                                        ev.get("parent", 0))
        if transfer:
            cur = self.start_ts.get(transfer)
            if cur is None or ts < cur:
                self.start_ts[transfer] = ts
            if kind == "engine_defer":
                self.deferred.add(transfer)
            elif kind == "done_recorded" and span:
                prev = self.first_done.get(transfer)
                if prev is None or ts < prev.ts:
                    self.first_done[transfer] = self.spans[span]


def classify(parent, child):
    """Budget category of the wait between a cause and its effect."""
    if child.ts == parent.ts:
        return "crypto"
    if parent.kind == "msg_send" and child.kind == "msg_recv":
        return "network"
    if child.kind == "retransmit":
        return "retransmit_backoff"
    if child.kind in VERIFY_KINDS:
        return "verify"
    if child.kind == "engine_admit":
        return "queueing"
    return "other"


def walk_transfer(trace, transfer):
    """Backward chain walk from the transfer's first done_recorded.

    Returns a budget dict: category -> virtual us, plus bookkeeping keys
    `total`, `attributed`, `hops` (chain length) and `crypto_edges`.
    """
    done = trace.first_done[transfer]
    start = trace.start_ts[transfer]
    budget = {c: 0 for c in CATEGORIES}
    budget.update(total=done.ts - start, hops=0, crypto_edges=0)
    cur = done
    visited = set()
    while True:
        # Crossing our own admission means everything earlier is the wait
        # for a slot — the predecessor's pipeline, charged as queueing.
        if cur.kind == "engine_admit" and cur.transfer == transfer:
            budget["queueing"] += max(0, cur.ts - start)
            break
        parent = trace.spans.get(cur.parent) if cur.parent else None
        if parent is None or cur.parent in visited:
            # Chain root (the arrival handler) — or a broken/cyclic trace,
            # which trace_check.py's I9 reports separately.
            budget["other"] += max(0, cur.ts - start)
            break
        visited.add(cur.parent)
        gap = cur.ts - max(parent.ts, start)
        cat = classify(parent, cur)
        if cat == "crypto":
            budget["crypto_edges"] += 1
        elif gap > 0:
            budget[cat] += gap
        budget["hops"] += 1
        if parent.ts <= start:
            break
        cur = parent
    named = sum(budget[c] for c in CATEGORIES if c != "other")
    budget["attributed"] = (named / budget["total"]) if budget["total"] else 1.0
    return budget


def analyze_file(path, max_events=None):
    trace = Trace()
    with open(path, encoding="utf-8") as fh:
        for lineno, line in iter_trace(fh, max_events=max_events):
            trace.feed(lineno, parse_line(lineno, line))
    if trace.meta is None:
        raise TraceError("trace has no meta line (is this a dblind trace?)")
    budgets = {t: walk_transfer(trace, t) for t in sorted(trace.first_done)}
    return trace, budgets


def parse_prometheus(path):
    """name{labels} -> value for counter/gauge sample lines."""
    out = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                key, value = line.rsplit(None, 1)
                out[key] = float(value)
            except ValueError:
                continue
    return out


def mont_mul_table(samples):
    """Crypto attribution: mont-muls by handler type + contrib path,
    summed across nodes from the ScopedCounterDelta-fed counters."""
    by_key = {}
    for key, value in samples.items():
        for family, label in (("dblind_handler_mont_muls_total", "type"),
                              ("dblind_contrib_mont_muls_total", "path")):
            if key.startswith(family + "{"):
                for part in key[len(family) + 1:-1].split(","):
                    if part.startswith(label + '="'):
                        name = part[len(label) + 2:-1]
                        tag = name if label == "type" else f"contrib/{name}"
                        by_key[tag] = by_key.get(tag, 0) + value
    return dict(sorted(by_key.items(), key=lambda kv: -kv[1]))


def _label_value(key, family, label):
    """Extract label="value" from a `family{...}` sample key, or None."""
    if not key.startswith(family + "{"):
        return None
    for part in key[len(family) + 1:-1].split(","):
        if part.startswith(label + '="'):
            return part[len(label) + 2:-1]
    return None


def backend_table(samples):
    """Crypto attribution by group backend (PR 10): group ops summed across
    nodes per backend label, normalized to 64x64-bit word multiplications
    via the backend's advertised dblind_group_op_weight gauge (mod-p: 2k^2
    per Montgomery mul; ec255: 25 per field mul)."""
    ops, weights = {}, {}
    for key, value in samples.items():
        name = _label_value(key, "dblind_group_ops_total", "backend")
        if name is not None:
            ops[name] = ops.get(name, 0) + value
        name = _label_value(key, "dblind_group_op_weight", "backend")
        if name is not None:
            weights[name] = value
    return {
        name: {
            "group_ops": int(total),
            "weight": int(weights.get(name, 0)),
            "word_muls": int(total * weights.get(name, 0)),
        }
        for name, total in sorted(ops.items())
    }


def summarize(budgets):
    total = sum(b["total"] for b in budgets.values())
    agg = {c: sum(b[c] for b in budgets.values()) for c in CATEGORIES}
    min_attr = min((b["attributed"] for b in budgets.values()), default=1.0)
    return {
        "transfers": len(budgets),
        "total_us": total,
        "budget_us": agg,
        "attributed_overall": (
            sum(agg[c] for c in CATEGORIES if c != "other") / total
            if total else 1.0),
        "attributed_min": min_attr,
    }


def report(path, budgets, mont_muls, backends=None, out=sys.stdout):
    print(f"{path}: critical-path budget for {len(budgets)} completed "
          f"transfers (virtual us)", file=out)
    head = ["transfer", "total"] + [c for c in CATEGORIES] + ["attr%", "hops"]
    print("  " + " ".join(f"{h:>10}" for h in head), file=out)
    for t, b in budgets.items():
        row = [str(t), str(b["total"])] + [str(b[c]) for c in CATEGORIES]
        row += [f"{100 * b['attributed']:.1f}", str(b["hops"])]
        print("  " + " ".join(f"{v:>10}" for v in row), file=out)
    s = summarize(budgets)
    print(f"  overall: {s['attributed_overall']:.1%} attributed "
          f"(worst transfer {s['attributed_min']:.1%}); crypto runs in zero "
          f"virtual time — see the mont-mul join below", file=out)
    if mont_muls:
        print("crypto attribution (group ops, all nodes):", file=out)
        for tag, value in mont_muls.items():
            print(f"  {tag:24} {int(value):>12}", file=out)
    if backends:
        print("group backend (ops x word-mul weight):", file=out)
        for name, row in backends.items():
            print(f"  {name:12} {row['group_ops']:>12} ops x {row['weight']:>5}"
                  f" = {row['word_muls']:>15} word-muls", file=out)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", nargs="?", help="JSONL v2 span trace")
    ap.add_argument("--metrics", metavar="PROM",
                    help="prometheus snapshot to join mont-mul attribution")
    ap.add_argument("--budget", type=float, default=None, metavar="F",
                    help="gate: fail unless every transfer attributes >= F "
                         "of its latency to named categories")
    ap.add_argument("--json", action="store_true",
                    help="print a machine-readable summary instead of tables")
    ap.add_argument("--max-events", type=int, default=None, metavar="N")
    ap.add_argument("--quiet", action="store_true")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded corpus")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(0 if run_self_test() else 1)
    if not args.trace:
        ap.error("need a trace file or --self-test")
    try:
        trace, budgets = analyze_file(args.trace, max_events=args.max_events)
    except (TraceError, TraceLimitError) as e:
        print(f"ERROR: {e}", file=sys.stderr)
        sys.exit(1)
    for e in trace.errors:
        print(f"ERROR: {e}", file=sys.stderr)
    if not budgets:
        print("ERROR: no completed transfer (no done_recorded span) in trace",
              file=sys.stderr)
        sys.exit(1)

    samples = parse_prometheus(args.metrics) if args.metrics else {}
    mont_muls = mont_mul_table(samples)
    backends = backend_table(samples)
    if args.json:
        s = summarize(budgets)
        s["mont_muls"] = mont_muls
        s["backends"] = backends
        s["budget_gate"] = args.budget
        print(json.dumps(s, sort_keys=True))
    elif not args.quiet:
        report(args.trace, budgets, mont_muls, backends)

    ok = not trace.errors
    if args.budget is not None:
        for t, b in budgets.items():
            if b["attributed"] < args.budget:
                print(f"ERROR: transfer {t} attributes only "
                      f"{b['attributed']:.1%} of its {b['total']} us latency "
                      f"(budget gate {args.budget:.0%}); 'other' holds "
                      f"{b['other']} us", file=sys.stderr)
                ok = False
    sys.exit(0 if ok else 1)


# --- self-test corpus --------------------------------------------------------

META = ('{"kind":"meta","v":2,"run_seed":1,"a_n":4,"a_f":1,"b_n":4,"b_f":1,'
        '"retransmit_cap":12}')


def _ev(ts, node, kind, span, parent=0, transfer=None, extra=""):
    t = f',"transfer":{transfer},"coord":1,"epoch":0' if transfer else ""
    p = f',"parent":{parent}' if parent else ""
    return (f'{{"ts":{ts},"node":{node},"kind":"{kind}","span":{span}{p}'
            f'{t}{extra}}}')


# A two-hop pipeline: arrival handler -> send -> recv -> handler -> send ->
# recv -> done. All latency is transport delay.
PURE_NETWORK = "\n".join([
    META,
    _ev(1000, 4, "epoch_start", 1, transfer=1),
    _ev(1000, 4, "msg_send", 2, parent=1),
    _ev(3000, 5, "msg_recv", 3, parent=2),
    _ev(3000, 5, "commit_accepted", 4, parent=3, transfer=1),
    _ev(3000, 5, "msg_send", 5, parent=4),
    _ev(5000, 6, "msg_recv", 6, parent=5),
    _ev(5000, 6, "done_recorded", 7, parent=6, transfer=1),
])

# Deferred admission: transfer 2 queues at ts 0 behind transfer 1 and is
# admitted at 7000 inside transfer 1's completion handler; the foreign
# chain below the admit must be charged as queueing, not walked.
QUEUED = "\n".join([
    META,
    _ev(0, 4, "engine_defer", 1, transfer=2, extra=',"count":1'),
    _ev(7000, 4, "done_recorded", 2, transfer=1),
    _ev(7000, 4, "engine_admit", 3, parent=2, transfer=2, extra=',"count":1'),
    _ev(7000, 4, "epoch_start", 4, parent=3, transfer=2),
    _ev(7000, 4, "msg_send", 5, parent=4),
    _ev(9000, 5, "msg_recv", 6, parent=5),
    _ev(9000, 5, "done_recorded", 7, parent=6, transfer=2),
])

# A dropped frame: the backoff timer (armed in the span-4 handler at 1000)
# fires at 5000 and the retransmission completes the transfer.
RETRANSMIT = "\n".join([
    META,
    _ev(1000, 4, "epoch_start", 1, transfer=1),
    _ev(1000, 4, "msg_send", 2, parent=1),
    _ev(3000, 5, "msg_recv", 3, parent=2),
    _ev(3000, 5, "commit_sent", 4, parent=3, transfer=1),
    _ev(5000, 5, "retransmit", 8, parent=4, transfer=1,
        extra=',"key":3,"frames":1,"attempt":1,"cap":12'),
    _ev(5000, 5, "msg_send", 9, parent=8),
    _ev(7000, 6, "msg_recv", 10, parent=9),
    _ev(7000, 6, "done_recorded", 11, parent=10, transfer=1),
])

# Batch verification: the drain timer (armed by the recv handler at 3000)
# fires 800 us later; the wait is verify budget.
BATCHED_VERIFY = "\n".join([
    META,
    _ev(1000, 4, "epoch_start", 1, transfer=1),
    _ev(1000, 4, "msg_send", 2, parent=1),
    _ev(3000, 5, "msg_recv", 3, parent=2),
    _ev(3800, 5, "batch_drain", 4, parent=3, extra=',"msgs":2,"equations":6'),
    _ev(3800, 5, "verify_pass", 5, parent=4, transfer=1,
        extra=',"subject":4,"peer":2'),
    _ev(3800, 5, "msg_send", 6, parent=5),
    _ev(5800, 6, "msg_recv", 7, parent=6),
    _ev(5800, 6, "done_recorded", 8, parent=7, transfer=1),
])

# A wait the model cannot name (a poll timer edge): 3000 of 5000 us land in
# `other`, so a 0.95 budget gate must reject this trace.
UNATTRIBUTED = "\n".join([
    META,
    _ev(1000, 4, "epoch_start", 1, transfer=1),
    _ev(1000, 4, "msg_send", 2, parent=1),
    _ev(3000, 5, "msg_recv", 3, parent=2),
    _ev(6000, 5, "pool_drain", 4, parent=3, transfer=1,
        extra=',"bundle":1,"depth":0,"fallback":0'),
    _ev(6000, 5, "done_recorded", 5, parent=4, transfer=1),
])

SELF_TESTS = [
    # (name, trace text, transfer, expected budget subset, gate_0_95_passes)
    ("pure-network", PURE_NETWORK, 1,
     {"total": 4000, "network": 4000, "other": 0}, True),
    ("queued-admission", QUEUED, 2,
     {"total": 9000, "queueing": 7000, "network": 2000, "other": 0}, True),
    ("retransmit-backoff", RETRANSMIT, 1,
     {"total": 6000, "network": 4000, "retransmit_backoff": 2000, "other": 0},
     True),
    ("batched-verify", BATCHED_VERIFY, 1,
     {"total": 4800, "network": 4000, "verify": 800, "other": 0}, True),
    ("unattributed-wait", UNATTRIBUTED, 1,
     {"total": 5000, "network": 2000, "other": 3000}, False),
]


# Prometheus snapshot exercising the crypto joins: two nodes on the ec255
# backend (ops must sum, the weight gauge must not), one handler family cell
# and a mod-p arm for the cross-backend shape.
PROM_SNAPSHOT = "\n".join([
    "# HELP dblind_group_ops_total group ops",
    'dblind_group_ops_total{backend="ec255",node="4"} 1500',
    'dblind_group_ops_total{backend="ec255",node="5"} 500',
    'dblind_group_op_weight{backend="ec255"} 25',
    'dblind_group_ops_total{backend="modp2048",node="6"} 100',
    'dblind_group_op_weight{backend="modp2048"} 2048',
    'dblind_handler_mont_muls_total{node="4",type="contribute"} 1200',
])


def _prom_join_self_test():
    problems = []
    with tempfile.NamedTemporaryFile("w", suffix=".prom", delete=False) as fh:
        fh.write(PROM_SNAPSHOT + "\n")
        path = fh.name
    try:
        samples = parse_prometheus(path)
        backends = backend_table(samples)
        want = {
            "ec255": {"group_ops": 2000, "weight": 25, "word_muls": 50000},
            "modp2048": {"group_ops": 100, "weight": 2048, "word_muls": 204800},
        }
        if backends != want:
            problems.append(f"backend join: want {want}, got {backends}")
        muls = mont_mul_table(samples)
        if muls.get("contribute") != 1200:
            problems.append(f"mont-mul join: want contribute=1200, got {muls}")
    finally:
        os.unlink(path)
    status = "ok" if not problems else "FAIL (" + "; ".join(problems) + ")"
    print(f"self-test {'backend-prom-join':24} {status}")
    return not problems


def run_self_test():
    failures = 0
    failures += not _prom_join_self_test()
    for name, text, transfer, expect, gate_ok in SELF_TESTS:
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                         delete=False) as fh:
            fh.write(text + "\n")
            path = fh.name
        problems = []
        try:
            trace, budgets = analyze_file(path)
            problems += trace.errors
            if transfer not in budgets:
                problems.append(f"transfer {transfer} not completed")
            else:
                b = budgets[transfer]
                for key, want in expect.items():
                    if b[key] != want:
                        problems.append(f"{key}: want {want}, got {b[key]}")
                passed = all(x["attributed"] >= 0.95 for x in budgets.values())
                if passed != gate_ok:
                    problems.append(f"0.95 gate: want {gate_ok}, got {passed}")
        except TraceError as e:
            problems.append(str(e))
        finally:
            os.unlink(path)
        status = "ok" if not problems else "FAIL (" + "; ".join(problems) + ")"
        print(f"self-test {name:24} {status}")
        failures += bool(problems)
    return failures == 0


if __name__ == "__main__":
    main()
