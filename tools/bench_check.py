#!/usr/bin/env python3
"""Bench regression gate for the verification fast path (PR 3).

Runs the deterministic verification benchmarks (bench_fig4_full's
"blind-verify" and "e2e" BENCHJSON rows, plus the multi-exp microbenchmarks
from bench_primitives), records everything in BENCH_pr3.json at the repo
root, and FAILS (exit 1) when batched verification stops beating serial
verification.

The primary gate is Montgomery-multiplication counts, not wall-clock:
mont-muls are identical across machines for a deterministic run, so the gate
cannot flake on a loaded CI box. Gates enforced:

  1. every blind-verify row: batch_mont_muls < serial_mont_muls
     (batch must never be slower on the verification-dominated column);
  2. at least one blind-verify row reaches >= 2.0x fewer mont-muls
     (the PR 3 acceptance bar);
  3. every e2e row: batch_mont_muls <= serial_mont_muls
     (the fast path must not regress the whole protocol);
  4. the obs-overhead row (PR 4): an instrumented run (JSONL trace +
     metrics registry) must report mont-mul and message counts identical
     to the plain run — the observability layer is a pure observer.

The PR 4 observability report (obs-overhead plus the per-phase latency
breakdown from the instrumented run's registry) is additionally written to
BENCH_pr4.json next to BENCH_pr3.json.

PR 5 gates (offline/online split), written to BENCH_pr5.json:

  5. pool: warm-pool online mont-muls must be >= 3.0x lower than the cold
     (no-pool) run for the same seed and transfer count — the offline phase
     genuinely moved the dual encryption + VDE announcements off the
     latency-critical path;
  6. pool: identical_results == 1 — pool-on and pool-off runs produce
     bit-identical result ciphertexts (the pool may change WHEN work runs,
     never WHAT randomness it consumes);
  7. fixed-base: comb-table exponentiation uses >= 2.0x fewer mont-muls
     than the generic square-and-multiply path for a pinned base;
  8. throughput: the pipelined run completes with integrity == 1
     (transfers/sec is recorded for context, wall-clock, never gated).

PR 7 gates (epochal reconfiguration), written to BENCH_pr7.json:

  9.  reconfig: the rotation run installs epoch 1 (installed == 1) and every
      transfer — including those aborted at the epoch boundary and re-run —
      decrypts to its original plaintext (integrity == 1);
  10. reconfig: post-rotation steady-state mont-muls/transfer within 5% of
      the no-rotation baseline for the same seed — the install's cache
      invalidation cascade (pinned comb tables, contribution pool, offline
      prng) must re-arm completely rather than leak per-transfer cost into
      the new epoch. The rotation window itself (re-share round + discarded
      in-flight work) is recorded for context, never gated.

PR 8 gates (concurrent multi-transfer engine), written to BENCH_pr8.json
from bench_load's open-loop workload:

  11. load_saturation: saturated virtual-time throughput of the concurrent
      engine (unlimited admission + cross-transfer batch drain + verify
      workers) must be >= 5.0x the sequential baseline
      (max_inflight_transfers == 1, serial verification) at f=1/sec512,
      with integrity == 1 on both arms. Virtual time is deterministic per
      seed, so the gate cannot flake on a loaded box; wall-clock and
      mont-mul counts are recorded as provenance;
  12. load_latency: every offered-load point completes all transfers with
      p50 <= p95 <= p99 (the percentile extraction is ordered and total);
  13. load_equivalence: identical_results == 1 — the concurrent and
      sequential schedules produce byte-identical per-transfer ciphertexts.

PR 9 gates (causal span tracing), written to BENCH_pr9.json together with
a re-statement of the PR 4 obs-overhead result (the span upgrade must keep
tracing-off runs byte-identical to plain runs):

  14. critpath: bench_load --trace-out's span trace, fed through
      tools/trace_critpath.py --budget 0.95, must attribute >= 95% of every
      completed transfer's virtual-time latency to named budget categories
      (network / queueing / verify / retransmit-backoff / crypto), with the
      mont-mul crypto join present in the report.

PR 10 gates (elliptic-curve group backend), written to BENCH_pr10.json
together with another re-statement of the PR 4 obs-overhead result (the
backend carve must keep the default mod-p build byte-identical to PR 9):

  15. backend-compare: the same honest Fig. 4 run (n=4, f=1, same seed) on
      ristretto255 must cost >= 5.0x fewer normalized word-multiplications
      than mod-p at matched ~128-bit security (kSec2048). Group-op counts
      are deterministic per seed; each backend's ops are weighted by its
      op_cost_weight (mod-p: 2k^2 64-bit word muls per Montgomery mul at
      k limbs; ec255: 25 word muls per fe25519 mul), so the gate compares
      machine-independent arithmetic cost, never wall-clock. Both runs must
      decrypt the original plaintext at every server (integrity == 1) and
      EC element encodings must be <= 32 bytes;
  16. backend-equivalence: the cross-backend panel (3 seeds x {honest,
      Byzantine inconsistent-contribution} on mod-p and ec255) must report
      identical_results == 1 — the observable protocol outcome is backend
      independent even though element values differ by construction.

Wall-clock numbers from bench_primitives are recorded for context only.

Usage: bench_check.py --build-dir <dir> [--output BENCH_pr3.json]
       (registered as ctest label `bench`; see tools/CMakeLists.txt)
"""

import argparse
import json
import os
import platform
import subprocess
import sys

MARKER = "BENCHJSON "


def read_environment(build_dir):
    """Provenance for the wall-clock columns: host + compiler + build type.

    Mont-mul counts are machine-independent, but serial_ms/batch_ms are not;
    without this block a report regenerated on a different box is
    indistinguishable from a hand-edited one.
    """
    env = {
        "host": platform.node(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "build_dir": os.path.basename(os.path.abspath(build_dir)),
    }
    cache = os.path.join(build_dir, "CMakeCache.txt")
    wanted = {
        "CMAKE_BUILD_TYPE": "cmake_build_type",
        "CMAKE_CXX_COMPILER": "cxx_compiler",
        "CMAKE_CXX_FLAGS": "cxx_flags",
    }
    try:
        with open(cache, encoding="utf-8") as fh:
            for line in fh:
                key = line.split(":", 1)[0]
                if key in wanted and "=" in line:
                    env[wanted[key]] = line.split("=", 1)[1].strip()
    except OSError:
        env["cmake_cache"] = "unavailable"
    return env


def run_fig4(build_dir):
    exe = os.path.join(build_dir, "bench", "bench_fig4_full")
    if not os.path.exists(exe):
        print(f"bench_check: missing {exe} (build the bench targets first)")
        sys.exit(2)
    out = subprocess.run([exe], capture_output=True, text=True, check=True)
    rows = []
    for line in out.stdout.splitlines():
        if line.startswith(MARKER):
            rows.append(json.loads(line[len(MARKER):]))
    if not rows:
        print("bench_check: bench_fig4_full produced no BENCHJSON rows")
        sys.exit(2)
    return rows


def run_load(build_dir, trace_path):
    """Open-loop load harness (PR 8); emits the load_* BENCHJSON sections
    and dumps the capped run's span trace for the PR 9 critpath gate."""
    exe = os.path.join(build_dir, "bench", "bench_load")
    if not os.path.exists(exe):
        print(f"bench_check: missing {exe} (build the bench targets first)")
        sys.exit(2)
    out = subprocess.run([exe, "--trace-out", trace_path],
                         capture_output=True, text=True, timeout=1800)
    rows = []
    for line in out.stdout.splitlines():
        if line.startswith(MARKER):
            rows.append(json.loads(line[len(MARKER):]))
    if not rows:
        print("bench_check: bench_load produced no BENCHJSON rows")
        sys.exit(2)
    return rows


def run_critpath(trace_path, failures):
    """PR 9 budget gate: trace_critpath.py over the traced load run.

    Returns the tool's --json summary (or None), appending to `failures`
    when the trace is missing or the 0.95 attribution gate rejects it.
    """
    if not os.path.exists(trace_path):
        failures.append("critpath: bench_load wrote no span trace")
        return None
    tool = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "trace_critpath.py")
    out = subprocess.run(
        [sys.executable, tool, trace_path, "--metrics", trace_path + ".prom",
         "--budget", "0.95", "--json"],
        capture_output=True, text=True, timeout=300)
    try:
        summary = json.loads(out.stdout.strip().splitlines()[-1])
    except (json.JSONDecodeError, IndexError):
        failures.append(f"critpath: no JSON summary from trace_critpath.py "
                        f"({out.stderr.strip() or 'no stderr'})")
        return None
    if out.returncode != 0:
        failures.append(
            f"critpath: budget gate failed — worst transfer attributes "
            f"{summary.get('attributed_min', 0):.1%} of its latency "
            f"(>= 95% required): {out.stderr.strip()}")
    if not summary.get("mont_muls"):
        failures.append("critpath: mont-mul crypto join is empty — the "
                        "metrics snapshot was missing or unparsable")
    return summary


def run_primitives(build_dir):
    """Multi-exp microbenchmarks; context only, never gated (wall-clock)."""
    exe = os.path.join(build_dir, "bench", "bench_primitives")
    if not os.path.exists(exe):
        return None
    try:
        out = subprocess.run(
            [exe, "--benchmark_filter=MultiPow|CpBatch|CpVerify",
             "--benchmark_format=json", "--benchmark_min_time=0.05"],
            capture_output=True, text=True, check=True, timeout=600)
        data = json.loads(out.stdout)
        return [
            {"name": b["name"], "real_time_ns": b["real_time"]}
            for b in data.get("benchmarks", [])
        ]
    except (subprocess.SubprocessError, json.JSONDecodeError) as err:
        print(f"bench_check: bench_primitives skipped ({err})")
        return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--output", default=None,
                    help="where to write the report (default <repo>/BENCH_pr3.json)")
    ap.add_argument("--skip-primitives", action="store_true",
                    help="skip the wall-clock microbenchmarks (faster CI)")
    args = ap.parse_args()

    rows = run_fig4(args.build_dir)
    trace_path = os.path.join(args.build_dir, "load_trace.jsonl")
    rows += run_load(args.build_dir, trace_path)
    blind = [r for r in rows if r.get("section") == "blind-verify"]
    e2e = [r for r in rows if r.get("section") == "e2e"]
    obs = [r for r in rows if r.get("section") == "obs-overhead"]
    phases = [r for r in rows if r.get("section") == "phases"]
    pool = [r for r in rows if r.get("section") == "pool"]
    fixed_base = [r for r in rows if r.get("section") == "fixed-base"]
    throughput = [r for r in rows if r.get("section") == "throughput"]
    reconfig = [r for r in rows if r.get("section") == "reconfig"]
    load_latency = [r for r in rows if r.get("section") == "load_latency"]
    load_saturation = [r for r in rows if r.get("section") == "load_saturation"]
    load_equivalence = [r for r in rows if r.get("section") == "load_equivalence"]
    backend_compare = [r for r in rows if r.get("section") == "backend-compare"]
    backend_equiv = [r for r in rows if r.get("section") == "backend-equivalence"]

    failures = []
    best_ratio = 0.0
    for r in blind:
        ratio = r["serial_mont_muls"] / r["batch_mont_muls"]
        r["mul_ratio"] = round(ratio, 3)
        best_ratio = max(best_ratio, ratio)
        if r["batch_mont_muls"] >= r["serial_mont_muls"]:
            failures.append(
                f"blind-verify f={r['f']}: batch ({r['batch_mont_muls']}) not cheaper "
                f"than serial ({r['serial_mont_muls']}) mont-muls")
    if not blind:
        failures.append("no blind-verify rows emitted")
    elif best_ratio < 2.0:
        failures.append(
            f"best blind-verify mont-mul ratio {best_ratio:.2f}x < 2.0x acceptance bar")
    for r in e2e:
        r["mul_ratio"] = round(r["serial_mont_muls"] / r["batch_mont_muls"], 3)
        if r["batch_mont_muls"] > r["serial_mont_muls"]:
            failures.append(
                f"e2e f={r['f']}: batch mode costs more mont-muls than serial")

    if not obs:
        failures.append("no obs-overhead row emitted")
    for r in obs:
        if r["instrumented_mont_muls"] != r["plain_mont_muls"]:
            failures.append(
                f"obs-overhead: instrumented run cost "
                f"{r['instrumented_mont_muls']} mont-muls vs "
                f"{r['plain_mont_muls']} plain — observability is not a "
                f"pure observer")
        if r["instrumented_messages"] != r["plain_messages"]:
            failures.append(
                f"obs-overhead: instrumented run sent "
                f"{r['instrumented_messages']} messages vs "
                f"{r['plain_messages']} plain")
        if r["trace_events"] == 0:
            failures.append("obs-overhead: instrumented run emitted no trace events")
    if not phases:
        failures.append("no per-phase latency rows emitted")

    pool_ratio = 0.0
    if not pool:
        failures.append("no pool row emitted")
    for r in pool:
        pool_ratio = r["cold_online_mont_muls"] / max(r["warm_online_mont_muls"], 1)
        r["online_mul_ratio"] = round(pool_ratio, 3)
        if pool_ratio < 3.0:
            failures.append(
                f"pool: warm online mont-muls only {pool_ratio:.2f}x lower than cold "
                f"({r['cold_online_mont_muls']} -> {r['warm_online_mont_muls']}), "
                f"< 3.0x acceptance bar")
        if r["identical_results"] != 1:
            failures.append(
                "pool: warm-pool run results diverged from the cold run — the pool "
                "must be byte-transparent")
        if r["warm_drains"] == 0:
            failures.append("pool: warm run never drained a precomputed bundle")
    if not fixed_base:
        failures.append("no fixed-base row emitted")
    for r in fixed_base:
        ratio = r["generic_mont_muls"] / max(r["comb_mont_muls"], 1)
        r["mul_ratio"] = round(ratio, 3)
        if ratio < 2.0:
            failures.append(
                f"fixed-base: comb table only {ratio:.2f}x fewer mont-muls than "
                f"generic pow ({r['generic_mont_muls']} -> {r['comb_mont_muls']}), "
                f"< 2.0x acceptance bar")
    if not throughput:
        failures.append("no throughput row emitted")
    for r in throughput:
        if r["integrity"] != 1:
            failures.append("throughput: pipelined run lost integrity")

    if not reconfig:
        failures.append("no reconfig row emitted")
    for r in reconfig:
        if r["installed"] != 1:
            failures.append("reconfig: rotation run never installed epoch 1")
        if r["integrity"] != 1:
            failures.append(
                "reconfig: a transfer crossing the epoch boundary lost integrity")
        pre, post = r["pre_wave_mont_muls"], r["post_wave_mont_muls"]
        delta = abs(post - pre) / pre if pre else 0.0
        r["steady_state_delta"] = round(delta, 4)
        if delta > 0.05:
            failures.append(
                f"reconfig: post-rotation steady state costs {post} mont-muls vs "
                f"{pre} baseline ({delta:.1%} drift, > 5% bar) — the install "
                f"cascade is leaking per-transfer cost into the new epoch")

    if not load_latency:
        failures.append("no load_latency rows emitted")
    for r in load_latency:
        if r["completed"] != r["transfers"]:
            failures.append(
                f"load_latency gap={r['mean_interarrival_us']}us: only "
                f"{r['completed']}/{r['transfers']} transfers completed")
        if not r["p50_us"] <= r["p95_us"] <= r["p99_us"]:
            failures.append(
                f"load_latency gap={r['mean_interarrival_us']}us: percentiles "
                f"unordered (p50={r['p50_us']}, p95={r['p95_us']}, p99={r['p99_us']})")
        if r["integrity"] != 1:
            failures.append(
                f"load_latency gap={r['mean_interarrival_us']}us: integrity lost")
    if not load_saturation:
        failures.append("no load_saturation row emitted")
    for r in load_saturation:
        if r["integrity"] != 1:
            failures.append("load_saturation: an arm lost integrity or did not complete")
        if r["speedup"] < 5.0:
            failures.append(
                f"load_saturation f={r['f']}/{r['params']}: concurrent engine only "
                f"{r['speedup']:.2f}x the sequential baseline "
                f"({r['baseline_tps']:.1f} -> {r['saturated_tps']:.1f} transfers/sec "
                f"virtual), < 5.0x acceptance bar")
    if not load_equivalence:
        failures.append("no load_equivalence row emitted")
    for r in load_equivalence:
        if r["identical_results"] != 1:
            failures.append(
                "load_equivalence: concurrent and sequential schedules diverged — "
                "the engine must change WHEN work runs, never WHAT it computes")

    if not backend_compare:
        failures.append("no backend-compare row emitted")
    for r in backend_compare:
        if r["cost_ratio"] < 5.0:
            failures.append(
                f"backend-compare: ec255 only {r['cost_ratio']:.2f}x cheaper than "
                f"mod-p {r['modp_params']} in normalized word-muls "
                f"({r['modp_word_muls']} -> {r['ec_word_muls']}), "
                f"< 5.0x acceptance bar")
        if r["ec_element_bytes"] > 32:
            failures.append(
                f"backend-compare: EC element encoding is {r['ec_element_bytes']} "
                f"bytes, > 32-byte canonical-encoding bar")
        if r["integrity"] != 1:
            failures.append(
                "backend-compare: a backend arm failed to decrypt the original "
                "plaintext at every server")
    if not backend_equiv:
        failures.append("no backend-equivalence row emitted")
    for r in backend_equiv:
        if r["identical_results"] != 1:
            failures.append(
                f"backend-equivalence: protocol outcomes diverged across backends "
                f"({r['cells']} cells) — the group abstraction is leaking into "
                f"observable behavior")

    critpath = run_critpath(trace_path, failures)

    prims = None if args.skip_primitives else run_primitives(args.build_dir)

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    out_path = args.output or os.path.join(repo_root, "BENCH_pr3.json")
    environment = read_environment(args.build_dir)
    report = {
        "gate": "verification-fast-path",
        "pass": not failures,
        "environment": environment,
        "failures": failures,
        "blind_verify": blind,
        "e2e": e2e,
        "primitives_wall_clock": prims,
    }
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    obs_path = os.path.join(os.path.dirname(out_path), "BENCH_pr4.json")
    obs_report = {
        "gate": "observability-overhead",
        "pass": not any("obs-overhead" in f or "phase" in f for f in failures),
        "environment": environment,
        "obs_overhead": obs,
        "phases": phases,
    }
    with open(obs_path, "w", encoding="utf-8") as fh:
        json.dump(obs_report, fh, indent=2)
        fh.write("\n")

    pool_path = os.path.join(os.path.dirname(out_path), "BENCH_pr5.json")
    pool_fail_keys = ("pool", "fixed-base", "throughput")
    pool_report = {
        "gate": "offline-online-split",
        "pass": not any(f.startswith(pool_fail_keys) or f.startswith("no pool")
                        or f.startswith("no fixed-base") or f.startswith("no throughput")
                        for f in failures),
        "environment": environment,
        "pool": pool,
        "fixed_base": fixed_base,
        "throughput": throughput,
    }
    with open(pool_path, "w", encoding="utf-8") as fh:
        json.dump(pool_report, fh, indent=2)
        fh.write("\n")

    reconfig_path = os.path.join(os.path.dirname(out_path), "BENCH_pr7.json")
    reconfig_report = {
        "gate": "epochal-reconfiguration",
        "pass": not any(f.startswith("reconfig") or f.startswith("no reconfig")
                        for f in failures),
        "environment": environment,
        "reconfig": reconfig,
    }
    with open(reconfig_path, "w", encoding="utf-8") as fh:
        json.dump(reconfig_report, fh, indent=2)
        fh.write("\n")

    load_path = os.path.join(os.path.dirname(out_path), "BENCH_pr8.json")
    load_report = {
        "gate": "concurrent-multi-transfer-engine",
        "pass": not any(f.startswith("load_") or f.startswith("no load_")
                        for f in failures),
        "environment": environment,
        "load_latency": load_latency,
        "load_saturation": load_saturation,
        "load_equivalence": load_equivalence,
    }
    with open(load_path, "w", encoding="utf-8") as fh:
        json.dump(load_report, fh, indent=2)
        fh.write("\n")

    # PR 9: the span-trace critpath gate, plus the PR 4 obs-overhead result
    # re-stated — the span upgrade must keep the zero-overhead property.
    critpath_path = os.path.join(os.path.dirname(out_path), "BENCH_pr9.json")
    critpath_report = {
        "gate": "causal-span-tracing",
        "pass": not any(f.startswith("critpath") or "obs-overhead" in f
                        for f in failures),
        "environment": environment,
        "obs_overhead": obs,
        "critpath": critpath,
    }
    with open(critpath_path, "w", encoding="utf-8") as fh:
        json.dump(critpath_report, fh, indent=2)
        fh.write("\n")

    # PR 10: the EC-backend cost gate, plus the PR 4 obs-overhead result
    # re-stated — the backend carve must keep the default mod-p build
    # byte-identical to PR 9.
    backend_path = os.path.join(os.path.dirname(out_path), "BENCH_pr10.json")
    backend_report = {
        "gate": "ec-group-backend",
        "pass": not any(f.startswith("backend-") or f.startswith("no backend-")
                        or "obs-overhead" in f for f in failures),
        "environment": environment,
        "backend_compare": backend_compare,
        "backend_equivalence": backend_equiv,
        "obs_overhead": obs,
    }
    with open(backend_path, "w", encoding="utf-8") as fh:
        json.dump(backend_report, fh, indent=2)
        fh.write("\n")

    for r in blind:
        print(f"blind-verify f={r['f']}: {r['serial_mont_muls']} -> "
              f"{r['batch_mont_muls']} mont-muls ({r['mul_ratio']}x)")
    for r in e2e:
        print(f"e2e          f={r['f']}: {r['serial_mont_muls']} -> "
              f"{r['batch_mont_muls']} mont-muls ({r['mul_ratio']}x)")
    for r in obs:
        print(f"obs-overhead: {r['plain_mont_muls']} plain vs "
              f"{r['instrumented_mont_muls']} instrumented mont-muls, "
              f"{r['trace_events']} trace events")
    for r in pool:
        print(f"pool: {r['cold_online_mont_muls']} cold -> "
              f"{r['warm_online_mont_muls']} warm online mont-muls "
              f"({r['online_mul_ratio']}x), identical_results={r['identical_results']}")
    for r in fixed_base:
        print(f"fixed-base: {r['generic_mont_muls']} generic -> "
              f"{r['comb_mont_muls']} comb mont-muls ({r['mul_ratio']}x)")
    for r in throughput:
        print(f"throughput: {r['transfers']} transfers, "
              f"{r['transfers_per_sec']:.1f}/sec wall-clock, integrity={r['integrity']}")
    for r in reconfig:
        print(f"reconfig: {r['pre_wave_mont_muls']} baseline -> "
              f"{r['post_wave_mont_muls']} post-rotation mont-muls "
              f"({r['steady_state_delta']:.2%} drift), rotation window "
              f"{r['rotation_mont_muls']}, integrity={r['integrity']}")
    for r in load_latency:
        print(f"load_latency gap={r['mean_interarrival_us']}us: "
              f"p50={r['p50_us']:.0f} p95={r['p95_us']:.0f} p99={r['p99_us']:.0f} "
              f"({r['completed']}/{r['transfers']} completed)")
    for r in load_saturation:
        print(f"load_saturation f={r['f']}/{r['params']}: "
              f"{r['baseline_tps']:.1f} -> {r['saturated_tps']:.1f} transfers/sec "
              f"virtual ({r['speedup']:.2f}x), integrity={r['integrity']}")
    for r in load_equivalence:
        print(f"load_equivalence: identical_results={r['identical_results']} "
              f"({r['transfers']} transfers)")
    for r in backend_compare:
        print(f"backend-compare: {r['modp_word_muls']} mod-p ({r['modp_params']}) -> "
              f"{r['ec_word_muls']} ec255 word-muls ({r['cost_ratio']:.1f}x), "
              f"elements {r['modp_element_bytes']} -> {r['ec_element_bytes']} bytes, "
              f"integrity={r['integrity']}")
    for r in backend_equiv:
        print(f"backend-equivalence: identical_results={r['identical_results']} "
              f"({r['cells']} cells)")
    if critpath:
        print(f"critpath: {critpath['transfers']} transfers, "
              f"{critpath['attributed_overall']:.1%} latency attributed "
              f"(worst {critpath['attributed_min']:.1%}), budget "
              f"{critpath['budget_us']}")
    print(f"report: {out_path} + {obs_path} + {pool_path} + {reconfig_path} + "
          f"{load_path} + {critpath_path} + {backend_path}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"PASS: best verification mont-mul ratio {best_ratio:.2f}x (>= 2.0x required)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
