file(REMOVE_RECURSE
  "../bench/bench_coordinator_failover"
  "../bench/bench_coordinator_failover.pdb"
  "CMakeFiles/bench_coordinator_failover.dir/bench_coordinator_failover.cpp.o"
  "CMakeFiles/bench_coordinator_failover.dir/bench_coordinator_failover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coordinator_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
