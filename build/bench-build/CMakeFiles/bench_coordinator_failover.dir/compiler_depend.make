# Empty compiler generated dependencies file for bench_coordinator_failover.
# This may be replaced when dependencies are built.
