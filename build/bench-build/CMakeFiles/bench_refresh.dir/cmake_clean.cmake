file(REMOVE_RECURSE
  "../bench/bench_refresh"
  "../bench/bench_refresh.pdb"
  "CMakeFiles/bench_refresh.dir/bench_refresh.cpp.o"
  "CMakeFiles/bench_refresh.dir/bench_refresh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
