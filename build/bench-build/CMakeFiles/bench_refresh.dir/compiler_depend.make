# Empty compiler generated dependencies file for bench_refresh.
# This may be replaced when dependencies are built.
