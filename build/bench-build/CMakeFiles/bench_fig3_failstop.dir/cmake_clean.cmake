file(REMOVE_RECURSE
  "../bench/bench_fig3_failstop"
  "../bench/bench_fig3_failstop.pdb"
  "CMakeFiles/bench_fig3_failstop.dir/bench_fig3_failstop.cpp.o"
  "CMakeFiles/bench_fig3_failstop.dir/bench_fig3_failstop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_failstop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
