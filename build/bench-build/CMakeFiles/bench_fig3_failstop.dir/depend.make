# Empty dependencies file for bench_fig3_failstop.
# This may be replaced when dependencies are built.
