# Empty dependencies file for bench_fig4_full.
# This may be replaced when dependencies are built.
