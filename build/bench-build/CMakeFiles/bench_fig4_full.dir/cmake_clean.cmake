file(REMOVE_RECURSE
  "../bench/bench_fig4_full"
  "../bench/bench_fig4_full.pdb"
  "CMakeFiles/bench_fig4_full.dir/bench_fig4_full.cpp.o"
  "CMakeFiles/bench_fig4_full.dir/bench_fig4_full.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
