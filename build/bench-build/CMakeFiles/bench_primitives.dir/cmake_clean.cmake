file(REMOVE_RECURSE
  "../bench/bench_primitives"
  "../bench/bench_primitives.pdb"
  "CMakeFiles/bench_primitives.dir/bench_primitives.cpp.o"
  "CMakeFiles/bench_primitives.dir/bench_primitives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
