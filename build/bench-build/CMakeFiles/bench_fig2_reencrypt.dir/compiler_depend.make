# Empty compiler generated dependencies file for bench_fig2_reencrypt.
# This may be replaced when dependencies are built.
