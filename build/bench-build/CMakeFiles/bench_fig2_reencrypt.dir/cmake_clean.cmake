file(REMOVE_RECURSE
  "../bench/bench_fig2_reencrypt"
  "../bench/bench_fig2_reencrypt.pdb"
  "CMakeFiles/bench_fig2_reencrypt.dir/bench_fig2_reencrypt.cpp.o"
  "CMakeFiles/bench_fig2_reencrypt.dir/bench_fig2_reencrypt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_reencrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
