# Empty compiler generated dependencies file for bench_stepflex.
# This may be replaced when dependencies are built.
