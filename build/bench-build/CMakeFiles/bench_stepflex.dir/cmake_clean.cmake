file(REMOVE_RECURSE
  "../bench/bench_stepflex"
  "../bench/bench_stepflex.pdb"
  "CMakeFiles/bench_stepflex.dir/bench_stepflex.cpp.o"
  "CMakeFiles/bench_stepflex.dir/bench_stepflex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stepflex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
