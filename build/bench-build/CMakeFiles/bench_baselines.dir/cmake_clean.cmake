file(REMOVE_RECURSE
  "../bench/bench_baselines"
  "../bench/bench_baselines.pdb"
  "CMakeFiles/bench_baselines.dir/bench_baselines.cpp.o"
  "CMakeFiles/bench_baselines.dir/bench_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
