file(REMOVE_RECURSE
  "../bench/bench_fig5_validation"
  "../bench/bench_fig5_validation.pdb"
  "CMakeFiles/bench_fig5_validation.dir/bench_fig5_validation.cpp.o"
  "CMakeFiles/bench_fig5_validation.dir/bench_fig5_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
