# Empty dependencies file for bench_fig5_validation.
# This may be replaced when dependencies are built.
