# Empty compiler generated dependencies file for dblind.
# This may be replaced when dependencies are built.
