file(REMOVE_RECURSE
  "CMakeFiles/dblind.dir/dblind_cli.cpp.o"
  "CMakeFiles/dblind.dir/dblind_cli.cpp.o.d"
  "dblind"
  "dblind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
