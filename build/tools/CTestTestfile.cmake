# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_transfer "/root/repo/build/tools/dblind" "transfer" "--bits" "64" "--message" "dawn" "--stats")
set_tests_properties(cli_transfer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_transfer_byzantine "/root/repo/build/tools/dblind" "transfer" "--bits" "64" "--message" "dawn" "--byzantine" "adaptive" "--stats")
set_tests_properties(cli_transfer_byzantine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_params "/root/repo/build/tools/dblind" "params" "--bits" "128")
set_tests_properties(cli_params PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fresh_params "/root/repo/build/tools/dblind" "params" "--fresh" "24" "--seed" "3")
set_tests_properties(cli_fresh_params PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
