# Empty compiler generated dependencies file for dblind_net.
# This may be replaced when dependencies are built.
