file(REMOVE_RECURSE
  "CMakeFiles/dblind_net.dir/sim.cpp.o"
  "CMakeFiles/dblind_net.dir/sim.cpp.o.d"
  "CMakeFiles/dblind_net.dir/threaded_bus.cpp.o"
  "CMakeFiles/dblind_net.dir/threaded_bus.cpp.o.d"
  "libdblind_net.a"
  "libdblind_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblind_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
