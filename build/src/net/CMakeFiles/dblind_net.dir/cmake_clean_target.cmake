file(REMOVE_RECURSE
  "libdblind_net.a"
)
