# Empty compiler generated dependencies file for dblind_elgamal.
# This may be replaced when dependencies are built.
