file(REMOVE_RECURSE
  "CMakeFiles/dblind_elgamal.dir/elgamal.cpp.o"
  "CMakeFiles/dblind_elgamal.dir/elgamal.cpp.o.d"
  "CMakeFiles/dblind_elgamal.dir/serialize.cpp.o"
  "CMakeFiles/dblind_elgamal.dir/serialize.cpp.o.d"
  "libdblind_elgamal.a"
  "libdblind_elgamal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblind_elgamal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
