file(REMOVE_RECURSE
  "libdblind_elgamal.a"
)
