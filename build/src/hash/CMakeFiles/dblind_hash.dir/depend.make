# Empty dependencies file for dblind_hash.
# This may be replaced when dependencies are built.
