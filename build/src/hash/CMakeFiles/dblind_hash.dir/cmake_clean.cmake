file(REMOVE_RECURSE
  "CMakeFiles/dblind_hash.dir/sha256.cpp.o"
  "CMakeFiles/dblind_hash.dir/sha256.cpp.o.d"
  "libdblind_hash.a"
  "libdblind_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblind_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
