file(REMOVE_RECURSE
  "libdblind_hash.a"
)
