# Empty compiler generated dependencies file for dblind_baselines.
# This may be replaced when dependencies are built.
