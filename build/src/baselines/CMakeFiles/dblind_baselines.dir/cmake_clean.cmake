file(REMOVE_RECURSE
  "CMakeFiles/dblind_baselines.dir/jakobsson.cpp.o"
  "CMakeFiles/dblind_baselines.dir/jakobsson.cpp.o.d"
  "CMakeFiles/dblind_baselines.dir/pss_transfer.cpp.o"
  "CMakeFiles/dblind_baselines.dir/pss_transfer.cpp.o.d"
  "libdblind_baselines.a"
  "libdblind_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblind_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
