file(REMOVE_RECURSE
  "libdblind_baselines.a"
)
