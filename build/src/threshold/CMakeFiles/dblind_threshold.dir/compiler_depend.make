# Empty compiler generated dependencies file for dblind_threshold.
# This may be replaced when dependencies are built.
