file(REMOVE_RECURSE
  "libdblind_threshold.a"
)
