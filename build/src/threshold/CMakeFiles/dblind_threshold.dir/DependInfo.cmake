
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/threshold/feldman.cpp" "src/threshold/CMakeFiles/dblind_threshold.dir/feldman.cpp.o" "gcc" "src/threshold/CMakeFiles/dblind_threshold.dir/feldman.cpp.o.d"
  "/root/repo/src/threshold/keygen.cpp" "src/threshold/CMakeFiles/dblind_threshold.dir/keygen.cpp.o" "gcc" "src/threshold/CMakeFiles/dblind_threshold.dir/keygen.cpp.o.d"
  "/root/repo/src/threshold/pedersen_dkg.cpp" "src/threshold/CMakeFiles/dblind_threshold.dir/pedersen_dkg.cpp.o" "gcc" "src/threshold/CMakeFiles/dblind_threshold.dir/pedersen_dkg.cpp.o.d"
  "/root/repo/src/threshold/pedersen_vss.cpp" "src/threshold/CMakeFiles/dblind_threshold.dir/pedersen_vss.cpp.o" "gcc" "src/threshold/CMakeFiles/dblind_threshold.dir/pedersen_vss.cpp.o.d"
  "/root/repo/src/threshold/refresh.cpp" "src/threshold/CMakeFiles/dblind_threshold.dir/refresh.cpp.o" "gcc" "src/threshold/CMakeFiles/dblind_threshold.dir/refresh.cpp.o.d"
  "/root/repo/src/threshold/serialize.cpp" "src/threshold/CMakeFiles/dblind_threshold.dir/serialize.cpp.o" "gcc" "src/threshold/CMakeFiles/dblind_threshold.dir/serialize.cpp.o.d"
  "/root/repo/src/threshold/shamir.cpp" "src/threshold/CMakeFiles/dblind_threshold.dir/shamir.cpp.o" "gcc" "src/threshold/CMakeFiles/dblind_threshold.dir/shamir.cpp.o.d"
  "/root/repo/src/threshold/thresh_decrypt.cpp" "src/threshold/CMakeFiles/dblind_threshold.dir/thresh_decrypt.cpp.o" "gcc" "src/threshold/CMakeFiles/dblind_threshold.dir/thresh_decrypt.cpp.o.d"
  "/root/repo/src/threshold/thresh_sign.cpp" "src/threshold/CMakeFiles/dblind_threshold.dir/thresh_sign.cpp.o" "gcc" "src/threshold/CMakeFiles/dblind_threshold.dir/thresh_sign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zkp/CMakeFiles/dblind_zkp.dir/DependInfo.cmake"
  "/root/repo/build/src/elgamal/CMakeFiles/dblind_elgamal.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/dblind_group.dir/DependInfo.cmake"
  "/root/repo/build/src/mpz/CMakeFiles/dblind_mpz.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/dblind_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
