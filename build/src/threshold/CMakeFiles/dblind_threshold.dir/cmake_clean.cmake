file(REMOVE_RECURSE
  "CMakeFiles/dblind_threshold.dir/feldman.cpp.o"
  "CMakeFiles/dblind_threshold.dir/feldman.cpp.o.d"
  "CMakeFiles/dblind_threshold.dir/keygen.cpp.o"
  "CMakeFiles/dblind_threshold.dir/keygen.cpp.o.d"
  "CMakeFiles/dblind_threshold.dir/pedersen_dkg.cpp.o"
  "CMakeFiles/dblind_threshold.dir/pedersen_dkg.cpp.o.d"
  "CMakeFiles/dblind_threshold.dir/pedersen_vss.cpp.o"
  "CMakeFiles/dblind_threshold.dir/pedersen_vss.cpp.o.d"
  "CMakeFiles/dblind_threshold.dir/refresh.cpp.o"
  "CMakeFiles/dblind_threshold.dir/refresh.cpp.o.d"
  "CMakeFiles/dblind_threshold.dir/serialize.cpp.o"
  "CMakeFiles/dblind_threshold.dir/serialize.cpp.o.d"
  "CMakeFiles/dblind_threshold.dir/shamir.cpp.o"
  "CMakeFiles/dblind_threshold.dir/shamir.cpp.o.d"
  "CMakeFiles/dblind_threshold.dir/thresh_decrypt.cpp.o"
  "CMakeFiles/dblind_threshold.dir/thresh_decrypt.cpp.o.d"
  "CMakeFiles/dblind_threshold.dir/thresh_sign.cpp.o"
  "CMakeFiles/dblind_threshold.dir/thresh_sign.cpp.o.d"
  "libdblind_threshold.a"
  "libdblind_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblind_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
