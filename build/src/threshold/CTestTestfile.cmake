# CMake generated Testfile for 
# Source directory: /root/repo/src/threshold
# Build directory: /root/repo/build/src/threshold
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
