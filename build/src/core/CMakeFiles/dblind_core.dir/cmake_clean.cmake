file(REMOVE_RECURSE
  "CMakeFiles/dblind_core.dir/client.cpp.o"
  "CMakeFiles/dblind_core.dir/client.cpp.o.d"
  "CMakeFiles/dblind_core.dir/failstop.cpp.o"
  "CMakeFiles/dblind_core.dir/failstop.cpp.o.d"
  "CMakeFiles/dblind_core.dir/messages.cpp.o"
  "CMakeFiles/dblind_core.dir/messages.cpp.o.d"
  "CMakeFiles/dblind_core.dir/refresh_protocol.cpp.o"
  "CMakeFiles/dblind_core.dir/refresh_protocol.cpp.o.d"
  "CMakeFiles/dblind_core.dir/server.cpp.o"
  "CMakeFiles/dblind_core.dir/server.cpp.o.d"
  "CMakeFiles/dblind_core.dir/system.cpp.o"
  "CMakeFiles/dblind_core.dir/system.cpp.o.d"
  "CMakeFiles/dblind_core.dir/validity.cpp.o"
  "CMakeFiles/dblind_core.dir/validity.cpp.o.d"
  "libdblind_core.a"
  "libdblind_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblind_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
