# Empty dependencies file for dblind_core.
# This may be replaced when dependencies are built.
