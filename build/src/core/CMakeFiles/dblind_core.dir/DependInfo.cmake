
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cpp" "src/core/CMakeFiles/dblind_core.dir/client.cpp.o" "gcc" "src/core/CMakeFiles/dblind_core.dir/client.cpp.o.d"
  "/root/repo/src/core/failstop.cpp" "src/core/CMakeFiles/dblind_core.dir/failstop.cpp.o" "gcc" "src/core/CMakeFiles/dblind_core.dir/failstop.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/dblind_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/dblind_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/refresh_protocol.cpp" "src/core/CMakeFiles/dblind_core.dir/refresh_protocol.cpp.o" "gcc" "src/core/CMakeFiles/dblind_core.dir/refresh_protocol.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/core/CMakeFiles/dblind_core.dir/server.cpp.o" "gcc" "src/core/CMakeFiles/dblind_core.dir/server.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/dblind_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/dblind_core.dir/system.cpp.o.d"
  "/root/repo/src/core/validity.cpp" "src/core/CMakeFiles/dblind_core.dir/validity.cpp.o" "gcc" "src/core/CMakeFiles/dblind_core.dir/validity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/threshold/CMakeFiles/dblind_threshold.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dblind_net.dir/DependInfo.cmake"
  "/root/repo/build/src/zkp/CMakeFiles/dblind_zkp.dir/DependInfo.cmake"
  "/root/repo/build/src/elgamal/CMakeFiles/dblind_elgamal.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/dblind_group.dir/DependInfo.cmake"
  "/root/repo/build/src/mpz/CMakeFiles/dblind_mpz.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/dblind_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
