file(REMOVE_RECURSE
  "libdblind_core.a"
)
