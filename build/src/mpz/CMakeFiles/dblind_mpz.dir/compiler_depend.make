# Empty compiler generated dependencies file for dblind_mpz.
# This may be replaced when dependencies are built.
