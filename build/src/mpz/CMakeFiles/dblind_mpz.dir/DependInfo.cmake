
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpz/bigint.cpp" "src/mpz/CMakeFiles/dblind_mpz.dir/bigint.cpp.o" "gcc" "src/mpz/CMakeFiles/dblind_mpz.dir/bigint.cpp.o.d"
  "/root/repo/src/mpz/modmath.cpp" "src/mpz/CMakeFiles/dblind_mpz.dir/modmath.cpp.o" "gcc" "src/mpz/CMakeFiles/dblind_mpz.dir/modmath.cpp.o.d"
  "/root/repo/src/mpz/montgomery.cpp" "src/mpz/CMakeFiles/dblind_mpz.dir/montgomery.cpp.o" "gcc" "src/mpz/CMakeFiles/dblind_mpz.dir/montgomery.cpp.o.d"
  "/root/repo/src/mpz/prime.cpp" "src/mpz/CMakeFiles/dblind_mpz.dir/prime.cpp.o" "gcc" "src/mpz/CMakeFiles/dblind_mpz.dir/prime.cpp.o.d"
  "/root/repo/src/mpz/random.cpp" "src/mpz/CMakeFiles/dblind_mpz.dir/random.cpp.o" "gcc" "src/mpz/CMakeFiles/dblind_mpz.dir/random.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hash/CMakeFiles/dblind_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
