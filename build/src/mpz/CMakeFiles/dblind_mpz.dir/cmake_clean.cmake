file(REMOVE_RECURSE
  "CMakeFiles/dblind_mpz.dir/bigint.cpp.o"
  "CMakeFiles/dblind_mpz.dir/bigint.cpp.o.d"
  "CMakeFiles/dblind_mpz.dir/modmath.cpp.o"
  "CMakeFiles/dblind_mpz.dir/modmath.cpp.o.d"
  "CMakeFiles/dblind_mpz.dir/montgomery.cpp.o"
  "CMakeFiles/dblind_mpz.dir/montgomery.cpp.o.d"
  "CMakeFiles/dblind_mpz.dir/prime.cpp.o"
  "CMakeFiles/dblind_mpz.dir/prime.cpp.o.d"
  "CMakeFiles/dblind_mpz.dir/random.cpp.o"
  "CMakeFiles/dblind_mpz.dir/random.cpp.o.d"
  "libdblind_mpz.a"
  "libdblind_mpz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblind_mpz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
