file(REMOVE_RECURSE
  "libdblind_mpz.a"
)
