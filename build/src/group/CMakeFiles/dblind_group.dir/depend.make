# Empty dependencies file for dblind_group.
# This may be replaced when dependencies are built.
