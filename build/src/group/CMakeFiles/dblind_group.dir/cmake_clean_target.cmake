file(REMOVE_RECURSE
  "libdblind_group.a"
)
