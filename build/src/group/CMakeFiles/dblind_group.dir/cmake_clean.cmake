file(REMOVE_RECURSE
  "CMakeFiles/dblind_group.dir/params.cpp.o"
  "CMakeFiles/dblind_group.dir/params.cpp.o.d"
  "CMakeFiles/dblind_group.dir/serialize.cpp.o"
  "CMakeFiles/dblind_group.dir/serialize.cpp.o.d"
  "libdblind_group.a"
  "libdblind_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblind_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
