file(REMOVE_RECURSE
  "libdblind_zkp.a"
)
