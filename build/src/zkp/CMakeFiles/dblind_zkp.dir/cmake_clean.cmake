file(REMOVE_RECURSE
  "CMakeFiles/dblind_zkp.dir/chaum_pedersen.cpp.o"
  "CMakeFiles/dblind_zkp.dir/chaum_pedersen.cpp.o.d"
  "CMakeFiles/dblind_zkp.dir/pedersen.cpp.o"
  "CMakeFiles/dblind_zkp.dir/pedersen.cpp.o.d"
  "CMakeFiles/dblind_zkp.dir/schnorr.cpp.o"
  "CMakeFiles/dblind_zkp.dir/schnorr.cpp.o.d"
  "CMakeFiles/dblind_zkp.dir/vde.cpp.o"
  "CMakeFiles/dblind_zkp.dir/vde.cpp.o.d"
  "libdblind_zkp.a"
  "libdblind_zkp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblind_zkp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
