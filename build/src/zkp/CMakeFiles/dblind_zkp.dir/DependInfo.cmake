
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zkp/chaum_pedersen.cpp" "src/zkp/CMakeFiles/dblind_zkp.dir/chaum_pedersen.cpp.o" "gcc" "src/zkp/CMakeFiles/dblind_zkp.dir/chaum_pedersen.cpp.o.d"
  "/root/repo/src/zkp/pedersen.cpp" "src/zkp/CMakeFiles/dblind_zkp.dir/pedersen.cpp.o" "gcc" "src/zkp/CMakeFiles/dblind_zkp.dir/pedersen.cpp.o.d"
  "/root/repo/src/zkp/schnorr.cpp" "src/zkp/CMakeFiles/dblind_zkp.dir/schnorr.cpp.o" "gcc" "src/zkp/CMakeFiles/dblind_zkp.dir/schnorr.cpp.o.d"
  "/root/repo/src/zkp/vde.cpp" "src/zkp/CMakeFiles/dblind_zkp.dir/vde.cpp.o" "gcc" "src/zkp/CMakeFiles/dblind_zkp.dir/vde.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/elgamal/CMakeFiles/dblind_elgamal.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/dblind_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/dblind_group.dir/DependInfo.cmake"
  "/root/repo/build/src/mpz/CMakeFiles/dblind_mpz.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
