# Empty compiler generated dependencies file for dblind_zkp.
# This may be replaced when dependencies are built.
