# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pubsub "/root/repo/build/examples/pubsub")
set_tests_properties(example_pubsub PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_key_handoff "/root/repo/build/examples/key_handoff")
set_tests_properties(example_key_handoff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adversary_demo "/root/repo/build/examples/adversary_demo")
set_tests_properties(example_adversary_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_proactive_epochs "/root/repo/build/examples/proactive_epochs")
set_tests_properties(example_proactive_epochs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_end_to_end_client "/root/repo/build/examples/end_to_end_client")
set_tests_properties(example_end_to_end_client PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
