# Empty compiler generated dependencies file for pubsub.
# This may be replaced when dependencies are built.
