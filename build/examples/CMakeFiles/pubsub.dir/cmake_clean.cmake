file(REMOVE_RECURSE
  "CMakeFiles/pubsub.dir/pubsub.cpp.o"
  "CMakeFiles/pubsub.dir/pubsub.cpp.o.d"
  "pubsub"
  "pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
