# Empty compiler generated dependencies file for adversary_demo.
# This may be replaced when dependencies are built.
