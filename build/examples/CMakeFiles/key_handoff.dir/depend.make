# Empty dependencies file for key_handoff.
# This may be replaced when dependencies are built.
