file(REMOVE_RECURSE
  "CMakeFiles/key_handoff.dir/key_handoff.cpp.o"
  "CMakeFiles/key_handoff.dir/key_handoff.cpp.o.d"
  "key_handoff"
  "key_handoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_handoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
