# Empty compiler generated dependencies file for end_to_end_client.
# This may be replaced when dependencies are built.
