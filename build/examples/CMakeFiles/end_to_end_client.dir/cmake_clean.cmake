file(REMOVE_RECURSE
  "CMakeFiles/end_to_end_client.dir/end_to_end_client.cpp.o"
  "CMakeFiles/end_to_end_client.dir/end_to_end_client.cpp.o.d"
  "end_to_end_client"
  "end_to_end_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
