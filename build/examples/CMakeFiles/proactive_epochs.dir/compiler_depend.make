# Empty compiler generated dependencies file for proactive_epochs.
# This may be replaced when dependencies are built.
