file(REMOVE_RECURSE
  "CMakeFiles/proactive_epochs.dir/proactive_epochs.cpp.o"
  "CMakeFiles/proactive_epochs.dir/proactive_epochs.cpp.o.d"
  "proactive_epochs"
  "proactive_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proactive_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
