add_test([=[ThreadedClient.FullPipelineOnRealThreads]=]  /root/repo/build/tests/threaded_client_test [==[--gtest_filter=ThreadedClient.FullPipelineOnRealThreads]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ThreadedClient.FullPipelineOnRealThreads]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  threaded_client_test_TESTS ThreadedClient.FullPipelineOnRealThreads)
