file(REMOVE_RECURSE
  "CMakeFiles/vde_test.dir/zkp/vde_test.cpp.o"
  "CMakeFiles/vde_test.dir/zkp/vde_test.cpp.o.d"
  "vde_test"
  "vde_test.pdb"
  "vde_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
