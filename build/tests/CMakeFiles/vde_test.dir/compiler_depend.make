# Empty compiler generated dependencies file for vde_test.
# This may be replaced when dependencies are built.
