file(REMOVE_RECURSE
  "CMakeFiles/prime_test.dir/mpz/prime_test.cpp.o"
  "CMakeFiles/prime_test.dir/mpz/prime_test.cpp.o.d"
  "prime_test"
  "prime_test.pdb"
  "prime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
