# Empty dependencies file for prime_test.
# This may be replaced when dependencies are built.
