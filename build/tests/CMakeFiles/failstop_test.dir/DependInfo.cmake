
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/failstop_test.cpp" "tests/CMakeFiles/failstop_test.dir/core/failstop_test.cpp.o" "gcc" "tests/CMakeFiles/failstop_test.dir/core/failstop_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dblind_core.dir/DependInfo.cmake"
  "/root/repo/build/src/threshold/CMakeFiles/dblind_threshold.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dblind_net.dir/DependInfo.cmake"
  "/root/repo/build/src/zkp/CMakeFiles/dblind_zkp.dir/DependInfo.cmake"
  "/root/repo/build/src/elgamal/CMakeFiles/dblind_elgamal.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/dblind_group.dir/DependInfo.cmake"
  "/root/repo/build/src/mpz/CMakeFiles/dblind_mpz.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/dblind_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
