# Empty dependencies file for failstop_test.
# This may be replaced when dependencies are built.
