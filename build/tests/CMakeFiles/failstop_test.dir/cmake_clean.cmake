file(REMOVE_RECURSE
  "CMakeFiles/failstop_test.dir/core/failstop_test.cpp.o"
  "CMakeFiles/failstop_test.dir/core/failstop_test.cpp.o.d"
  "failstop_test"
  "failstop_test.pdb"
  "failstop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failstop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
