# Empty compiler generated dependencies file for keygen_test.
# This may be replaced when dependencies are built.
