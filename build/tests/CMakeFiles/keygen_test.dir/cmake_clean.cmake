file(REMOVE_RECURSE
  "CMakeFiles/keygen_test.dir/threshold/keygen_test.cpp.o"
  "CMakeFiles/keygen_test.dir/threshold/keygen_test.cpp.o.d"
  "keygen_test"
  "keygen_test.pdb"
  "keygen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keygen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
