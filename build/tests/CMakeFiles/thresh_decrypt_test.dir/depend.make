# Empty dependencies file for thresh_decrypt_test.
# This may be replaced when dependencies are built.
