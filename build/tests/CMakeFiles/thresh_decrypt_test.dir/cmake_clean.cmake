file(REMOVE_RECURSE
  "CMakeFiles/thresh_decrypt_test.dir/threshold/thresh_decrypt_test.cpp.o"
  "CMakeFiles/thresh_decrypt_test.dir/threshold/thresh_decrypt_test.cpp.o.d"
  "thresh_decrypt_test"
  "thresh_decrypt_test.pdb"
  "thresh_decrypt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresh_decrypt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
