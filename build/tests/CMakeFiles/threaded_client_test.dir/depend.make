# Empty dependencies file for threaded_client_test.
# This may be replaced when dependencies are built.
