file(REMOVE_RECURSE
  "CMakeFiles/threaded_client_test.dir/integration/threaded_client_test.cpp.o"
  "CMakeFiles/threaded_client_test.dir/integration/threaded_client_test.cpp.o.d"
  "threaded_client_test"
  "threaded_client_test.pdb"
  "threaded_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
