file(REMOVE_RECURSE
  "CMakeFiles/elgamal_test.dir/elgamal/elgamal_test.cpp.o"
  "CMakeFiles/elgamal_test.dir/elgamal/elgamal_test.cpp.o.d"
  "elgamal_test"
  "elgamal_test.pdb"
  "elgamal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elgamal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
