# Empty compiler generated dependencies file for elgamal_test.
# This may be replaced when dependencies are built.
