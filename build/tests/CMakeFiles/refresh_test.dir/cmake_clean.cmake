file(REMOVE_RECURSE
  "CMakeFiles/refresh_test.dir/threshold/refresh_test.cpp.o"
  "CMakeFiles/refresh_test.dir/threshold/refresh_test.cpp.o.d"
  "refresh_test"
  "refresh_test.pdb"
  "refresh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refresh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
