# Empty dependencies file for pss_transfer_test.
# This may be replaced when dependencies are built.
