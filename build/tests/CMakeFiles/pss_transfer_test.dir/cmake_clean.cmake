file(REMOVE_RECURSE
  "CMakeFiles/pss_transfer_test.dir/baselines/pss_transfer_test.cpp.o"
  "CMakeFiles/pss_transfer_test.dir/baselines/pss_transfer_test.cpp.o.d"
  "pss_transfer_test"
  "pss_transfer_test.pdb"
  "pss_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pss_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
