file(REMOVE_RECURSE
  "CMakeFiles/modmath_test.dir/mpz/modmath_test.cpp.o"
  "CMakeFiles/modmath_test.dir/mpz/modmath_test.cpp.o.d"
  "modmath_test"
  "modmath_test.pdb"
  "modmath_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modmath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
