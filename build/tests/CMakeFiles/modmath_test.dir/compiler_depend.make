# Empty compiler generated dependencies file for modmath_test.
# This may be replaced when dependencies are built.
