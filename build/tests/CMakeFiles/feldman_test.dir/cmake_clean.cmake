file(REMOVE_RECURSE
  "CMakeFiles/feldman_test.dir/threshold/feldman_test.cpp.o"
  "CMakeFiles/feldman_test.dir/threshold/feldman_test.cpp.o.d"
  "feldman_test"
  "feldman_test.pdb"
  "feldman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feldman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
