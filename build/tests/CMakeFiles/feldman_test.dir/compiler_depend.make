# Empty compiler generated dependencies file for feldman_test.
# This may be replaced when dependencies are built.
