# Empty dependencies file for refresh_protocol_test.
# This may be replaced when dependencies are built.
