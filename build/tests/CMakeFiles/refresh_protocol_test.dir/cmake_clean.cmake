file(REMOVE_RECURSE
  "CMakeFiles/refresh_protocol_test.dir/core/refresh_protocol_test.cpp.o"
  "CMakeFiles/refresh_protocol_test.dir/core/refresh_protocol_test.cpp.o.d"
  "refresh_protocol_test"
  "refresh_protocol_test.pdb"
  "refresh_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refresh_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
