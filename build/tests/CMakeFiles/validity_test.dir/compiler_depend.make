# Empty compiler generated dependencies file for validity_test.
# This may be replaced when dependencies are built.
