# Empty dependencies file for chaum_pedersen_test.
# This may be replaced when dependencies are built.
