file(REMOVE_RECURSE
  "CMakeFiles/chaum_pedersen_test.dir/zkp/chaum_pedersen_test.cpp.o"
  "CMakeFiles/chaum_pedersen_test.dir/zkp/chaum_pedersen_test.cpp.o.d"
  "chaum_pedersen_test"
  "chaum_pedersen_test.pdb"
  "chaum_pedersen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chaum_pedersen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
