file(REMOVE_RECURSE
  "CMakeFiles/openssl_differential_test.dir/mpz/openssl_differential_test.cpp.o"
  "CMakeFiles/openssl_differential_test.dir/mpz/openssl_differential_test.cpp.o.d"
  "openssl_differential_test"
  "openssl_differential_test.pdb"
  "openssl_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openssl_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
