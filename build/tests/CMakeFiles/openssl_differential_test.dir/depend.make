# Empty dependencies file for openssl_differential_test.
# This may be replaced when dependencies are built.
