# Empty dependencies file for threaded_bus_test.
# This may be replaced when dependencies are built.
