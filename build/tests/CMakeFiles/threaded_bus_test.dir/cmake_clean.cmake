file(REMOVE_RECURSE
  "CMakeFiles/threaded_bus_test.dir/net/threaded_bus_test.cpp.o"
  "CMakeFiles/threaded_bus_test.dir/net/threaded_bus_test.cpp.o.d"
  "threaded_bus_test"
  "threaded_bus_test.pdb"
  "threaded_bus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
