# Empty dependencies file for soak_test.
# This may be replaced when dependencies are built.
