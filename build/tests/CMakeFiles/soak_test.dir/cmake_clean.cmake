file(REMOVE_RECURSE
  "CMakeFiles/soak_test.dir/integration/soak_test.cpp.o"
  "CMakeFiles/soak_test.dir/integration/soak_test.cpp.o.d"
  "soak_test"
  "soak_test.pdb"
  "soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
