file(REMOVE_RECURSE
  "CMakeFiles/pedersen_dkg_test.dir/threshold/pedersen_dkg_test.cpp.o"
  "CMakeFiles/pedersen_dkg_test.dir/threshold/pedersen_dkg_test.cpp.o.d"
  "pedersen_dkg_test"
  "pedersen_dkg_test.pdb"
  "pedersen_dkg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pedersen_dkg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
