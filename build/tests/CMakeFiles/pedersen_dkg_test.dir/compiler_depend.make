# Empty compiler generated dependencies file for pedersen_dkg_test.
# This may be replaced when dependencies are built.
