# Empty compiler generated dependencies file for pedersen_test.
# This may be replaced when dependencies are built.
