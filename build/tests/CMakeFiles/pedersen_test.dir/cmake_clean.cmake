file(REMOVE_RECURSE
  "CMakeFiles/pedersen_test.dir/zkp/pedersen_test.cpp.o"
  "CMakeFiles/pedersen_test.dir/zkp/pedersen_test.cpp.o.d"
  "pedersen_test"
  "pedersen_test.pdb"
  "pedersen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pedersen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
