file(REMOVE_RECURSE
  "CMakeFiles/pedersen_vss_test.dir/threshold/pedersen_vss_test.cpp.o"
  "CMakeFiles/pedersen_vss_test.dir/threshold/pedersen_vss_test.cpp.o.d"
  "pedersen_vss_test"
  "pedersen_vss_test.pdb"
  "pedersen_vss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pedersen_vss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
