# Empty dependencies file for pedersen_vss_test.
# This may be replaced when dependencies are built.
