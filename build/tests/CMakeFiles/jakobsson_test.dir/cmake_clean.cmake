file(REMOVE_RECURSE
  "CMakeFiles/jakobsson_test.dir/baselines/jakobsson_test.cpp.o"
  "CMakeFiles/jakobsson_test.dir/baselines/jakobsson_test.cpp.o.d"
  "jakobsson_test"
  "jakobsson_test.pdb"
  "jakobsson_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jakobsson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
