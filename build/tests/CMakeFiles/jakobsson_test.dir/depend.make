# Empty dependencies file for jakobsson_test.
# This may be replaced when dependencies are built.
