# Empty compiler generated dependencies file for jakobsson_test.
# This may be replaced when dependencies are built.
