# Empty compiler generated dependencies file for done_evidence_test.
# This may be replaced when dependencies are built.
