file(REMOVE_RECURSE
  "CMakeFiles/done_evidence_test.dir/core/done_evidence_test.cpp.o"
  "CMakeFiles/done_evidence_test.dir/core/done_evidence_test.cpp.o.d"
  "done_evidence_test"
  "done_evidence_test.pdb"
  "done_evidence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/done_evidence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
