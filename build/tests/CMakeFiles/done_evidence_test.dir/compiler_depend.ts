# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for done_evidence_test.
