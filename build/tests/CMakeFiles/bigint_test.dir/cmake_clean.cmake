file(REMOVE_RECURSE
  "CMakeFiles/bigint_test.dir/mpz/bigint_test.cpp.o"
  "CMakeFiles/bigint_test.dir/mpz/bigint_test.cpp.o.d"
  "bigint_test"
  "bigint_test.pdb"
  "bigint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
