file(REMOVE_RECURSE
  "CMakeFiles/thresh_sign_test.dir/threshold/thresh_sign_test.cpp.o"
  "CMakeFiles/thresh_sign_test.dir/threshold/thresh_sign_test.cpp.o.d"
  "thresh_sign_test"
  "thresh_sign_test.pdb"
  "thresh_sign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresh_sign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
