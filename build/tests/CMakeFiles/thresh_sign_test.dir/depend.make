# Empty dependencies file for thresh_sign_test.
# This may be replaced when dependencies are built.
