file(REMOVE_RECURSE
  "CMakeFiles/sha256_test.dir/hash/sha256_test.cpp.o"
  "CMakeFiles/sha256_test.dir/hash/sha256_test.cpp.o.d"
  "sha256_test"
  "sha256_test.pdb"
  "sha256_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sha256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
