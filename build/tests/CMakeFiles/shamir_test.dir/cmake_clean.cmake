file(REMOVE_RECURSE
  "CMakeFiles/shamir_test.dir/threshold/shamir_test.cpp.o"
  "CMakeFiles/shamir_test.dir/threshold/shamir_test.cpp.o.d"
  "shamir_test"
  "shamir_test.pdb"
  "shamir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shamir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
