# Empty dependencies file for shamir_test.
# This may be replaced when dependencies are built.
