file(REMOVE_RECURSE
  "CMakeFiles/transcript_test.dir/zkp/transcript_test.cpp.o"
  "CMakeFiles/transcript_test.dir/zkp/transcript_test.cpp.o.d"
  "transcript_test"
  "transcript_test.pdb"
  "transcript_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transcript_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
