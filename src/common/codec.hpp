// Canonical binary encoding for protocol messages.
//
// Self-verifying messages (§4.2.3) are signed over, hashed over, and nested
// inside each other, so every message needs one canonical byte form. The
// format is deliberately simple: fixed-width little-endian integers and
// length-prefixed byte strings; Bigints carry a sign byte plus big-endian
// magnitude. Reader performs strict bounds checking and decode functions
// reject trailing garbage, so a byte string has at most one valid parse.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mpz/bigint.hpp"

namespace dblind::common {

class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void str(std::string_view s) {
    bytes(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  }
  void digest(const std::array<std::uint8_t, 32>& d) { out_.insert(out_.end(), d.begin(), d.end()); }
  void bigint(const mpz::Bigint& v) {
    u8(v.is_negative() ? 1 : 0);
    bytes(v.to_bytes_be());
  }

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }
  [[nodiscard]] const std::vector<std::uint8_t>& view() const { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  std::vector<std::uint8_t> bytes() {
    std::uint32_t len = u32();
    need(len);
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }
  std::string str() {
    auto b = bytes();
    return {b.begin(), b.end()};
  }
  std::array<std::uint8_t, 32> digest() {
    std::array<std::uint8_t, 32> d{};
    const std::uint8_t* p = consume(d.size());
    std::copy_n(p, d.size(), d.begin());
    return d;
  }
  mpz::Bigint bigint() {
    std::uint8_t neg = u8();
    if (neg > 1) throw CodecError("bigint: bad sign byte");
    auto mag = bytes();
    mpz::Bigint v = mpz::Bigint::from_bytes_be(mag);
    return neg ? v.negated() : v;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  // Reads an element count and validates it against the bytes actually left
  // (each element needs at least `min_elem_bytes`). Prevents adversarial
  // counts from driving huge allocations before any data is parsed.
  std::uint32_t count(std::size_t min_elem_bytes = 1) {
    std::uint32_t n = u32();
    if (min_elem_bytes != 0 && n > remaining() / min_elem_bytes)
      throw CodecError("count exceeds available data");
    return n;
  }

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  // Decoders call this after parsing a top-level object.
  void expect_done() const {
    if (!done()) throw CodecError("trailing bytes after message");
  }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) throw CodecError("unexpected end of input");
  }

  // Bounds-checks and advances in one step; returns the start of the
  // consumed region. Keeping check and pointer formation together lets the
  // compiler see reads can't precede a successful check.
  const std::uint8_t* consume(std::size_t n) {
    need(n);
    const std::uint8_t* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace dblind::common
