// Validity of self-verifying messages (paper Figure 5, §4.2.3).
//
// "A valid message is, by definition, one that is consistent with the sender
// following the protocol. Thus, if messages that are not valid are ignored
// then attacks involving bogus messages become indistinguishable from lost
// messages."
//
// Each check below validates a message purely from its contents plus public
// configuration — including, recursively, all embedded evidence:
//   init        — correctly signed (by the coordinator named in id).
//   commit      — correctly signed (by the server it names).
//   reveal      — correctly signed and contains 2f+1 *different* valid
//                 commit messages with matching id.
//   contribute  — correctly signed, includes a valid verifiable dual
//                 encryption proof, and the encrypted contribution matches
//                 the commitment in the included reveal message.
//   blind/done  — correctly (threshold-)signed by the service.
//
// One rule beyond the paper's figure (implied by its §4.2.1 argument): the
// f+1 contribute messages justifying a blind payload must all embed the SAME
// reveal message. Otherwise a Byzantine coordinator can run two reveal
// rounds, let a compromised server commit *after* seeing contributions from
// the first round, and splice rounds together to choose the blinding factor.
// Together with the honest-server rule "contribute to at most one reveal per
// instance", same-reveal evidence restores the commit-before-reveal order.
#pragma once

#include <optional>

#include "core/config.hpp"
#include "core/messages.hpp"

namespace dblind::core {

// The bytes a ⟨m⟩_i signature actually covers: 4-byte little-endian config
// epoch, then the body. Binding the stamp into the signed bytes means an
// envelope can never be re-stamped into another configuration.
[[nodiscard]] std::vector<std::uint8_t> epoch_signed_bytes(ConfigEpoch epoch,
                                                           std::span<const std::uint8_t> body);

// Verifies the envelope signature against the named server's public key,
// over the epoch-prefixed bytes. False on unknown service/rank.
[[nodiscard]] bool envelope_signature_ok(const SystemConfig& cfg, const SignedMessage& env);

// Signs `body` with this server's key, producing the ⟨m⟩_i envelope stamped
// with (and signature-bound to) `cfg_epoch`.
[[nodiscard]] SignedMessage make_envelope(const SystemConfig& cfg, const ServerSecrets& me,
                                          std::vector<std::uint8_t> body, ConfigEpoch cfg_epoch,
                                          mpz::Prng& prng);

// Fig. 5 row "init": returns the decoded message iff valid.
[[nodiscard]] std::optional<InitMsg> check_init(const SystemConfig& cfg, const SignedMessage& env);

// Fig. 5 row "commit".
[[nodiscard]] std::optional<CommitMsg> check_commit(const SystemConfig& cfg,
                                                    const SignedMessage& env);

// Fig. 5 row "reveal": signature + 2f+1 different valid commits, matching id.
[[nodiscard]] std::optional<RevealMsg> check_reveal(const SystemConfig& cfg,
                                                    const SignedMessage& env);

// Fig. 5 row "contribute": signature + valid VDE + contribution matches the
// commitment inside the embedded (valid) reveal message.
[[nodiscard]] std::optional<ContributeMsg> check_contribute(const SystemConfig& cfg,
                                                            const SignedMessage& env);

// Fig. 5 row "blind": threshold signature of service B over a BlindPayload.
[[nodiscard]] std::optional<BlindPayload> check_blind(const SystemConfig& cfg,
                                                      const ServiceSignedMsg& msg);

// "done": threshold signature of service A over a DonePayload.
[[nodiscard]] std::optional<DonePayload> check_done(const SystemConfig& cfg,
                                                    const ServiceSignedMsg& msg);

// Evidence for a kBlind signing request (step 5(c)): f+1 valid contribute
// messages from distinct servers, same id, all embedding the same reveal,
// whose combined contribution equals the payload.
[[nodiscard]] bool check_blind_sign_request(const SystemConfig& cfg,
                                            std::span<const std::uint8_t> payload,
                                            std::span<const std::uint8_t> evidence);

// Evidence for a kDone signing request (step 6(d)): valid blind message,
// f+1 verified decryption shares for E_A(mρ) = E_A(m) × E_A(ρ) (computed
// against the locally stored E_A(m)) combining to mρ, and a payload equal to
// (id, E_A(m), (mρ)·E_B(ρ)^{-1}).
[[nodiscard]] bool check_done_sign_request(const SystemConfig& cfg,
                                           std::span<const std::uint8_t> payload,
                                           std::span<const std::uint8_t> evidence,
                                           const elgamal::Ciphertext& stored_ea_m);

// --- batch-verification fast path (ProtocolOptions::batch_verify) -----------
//
// Each *_batch function checks exactly the predicates of its serial
// counterpart, but verifies all envelope/commit signatures in one Schnorr
// batch equation and all Chaum-Pedersen/VDE/decryption-share proofs in one
// random-linear-combination multi-exponentiation (randomizers from `prng`).
// check_blind_sign_request_batch additionally exploits the same-reveal rule:
// the byte-identical reveal embedded in all f+1 contributes is validated
// once instead of f+1 times. Accept/reject agrees with the serial functions
// up to the 2^-128 batch soundness error (docs/PROTOCOL.md).

[[nodiscard]] std::optional<ContributeMsg> check_contribute_batch(const SystemConfig& cfg,
                                                                  const SignedMessage& env,
                                                                  mpz::Prng& prng);

// --- cross-transfer drain split (concurrent multi-transfer engine) -----------
//
// check_contribute_batch, split in two so the VDE check can be aggregated
// ACROSS pending contribute messages from many concurrent transfers:
// verify-pool workers run the structural + signature phase per message
// (precheck_contribute_batch — decode, epoch/rank/commitment matching, one
// Schnorr batch over the envelope, reveal and commit signatures), then the
// drain lowers every surviving message's VDE proof (contribute_vde_item +
// zkp::vde_lower_to_cp) into one zkp::CpCrossBatch and runs a SINGLE
// random-linear-combination pass for the whole drain. A message is accepted
// iff precheck passed and its VDE tag survived — exactly the predicate of
// check_contribute_batch, up to the same 2^-128 batch soundness error.

[[nodiscard]] std::optional<ContributeMsg> precheck_contribute_batch(const SystemConfig& cfg,
                                                                     const SignedMessage& env);

// The VDE batch item for a prechecked contribute message. The returned item
// points into `cfg` and `msg`, which must outlive its use.
[[nodiscard]] zkp::VdeBatchItem contribute_vde_item(const SystemConfig& cfg,
                                                    const ContributeMsg& msg);

[[nodiscard]] bool check_blind_sign_request_batch(const SystemConfig& cfg,
                                                  std::span<const std::uint8_t> payload,
                                                  std::span<const std::uint8_t> evidence,
                                                  mpz::Prng& prng);

[[nodiscard]] bool check_done_sign_request_batch(const SystemConfig& cfg,
                                                 std::span<const std::uint8_t> payload,
                                                 std::span<const std::uint8_t> evidence,
                                                 const elgamal::Ciphertext& stored_ea_m,
                                                 mpz::Prng& prng);

}  // namespace dblind::core
