// ProtocolServer: one server of a distributed service, running the complete
// re-encryption protocol of paper Figure 4.
//
// A single class implements both sides because several roles overlap:
//
//   Service B servers act as
//     - contributors (steps 2 & 4: commit, then contribute with VDE proof),
//     - coordinators C_j (steps 1, 3, 5; rank j starts after a backup delay
//       of (j-1)·coordinator_backup_delay — §4.1's delayed-coordinator
//       optimization; f+1 coordinators in total guarantee progress),
//     - threshold-signing members for B's service signature, and
//     - consumers of the final `done` message.
//
//   Service A servers act as
//     - responders (step 6: compute E_A(mρ), drive threshold decryption,
//       un-blind, drive A's threshold signature, send `done` to B),
//     - threshold-decryption share providers, and
//     - threshold-signing members for A's service signature.
//
// Every message is validated per Figure 5 before use; invalid messages are
// ignored (indistinguishable from loss). Byzantine behaviours for fault
// injection are selected via the Behavior enum.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include <deque>
#include <future>

#include "core/config.hpp"
#include "core/contribution_pool.hpp"
#include "core/messages.hpp"
#include "core/reconfig.hpp"
#include "core/transfer_engine.hpp"
#include "core/validity.hpp"
#include "core/verify_pool.hpp"
#include "hash/sha256.hpp"
#include "net/sim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "threshold/thresh_sign.hpp"

namespace dblind::core {

class ProtocolServer final : public net::Node {
 public:
  enum class Behavior : std::uint8_t {
    kHonest = 0,
    // Receives everything, sends nothing (distinct from a crash only in that
    // the node still counts as "running").
    kSilent,
    // Contributor sends an inconsistent encrypted contribution
    // (E_A(ρ), E_B(ρ')) with ρ != ρ' and a necessarily-bogus VDE proof
    // (§4.2.2's attack).
    kInconsistentContribution,
    // Contributor commits but never reveals its contribution (why the
    // coordinator must collect 2f+1 commitments, §4.2.1).
    kWithholdContribution,
    // Signing member participates through nonce reveal, then withholds its
    // partial signature (exercises the signing retry path).
    kWithholdPartial,
    // Coordinator fabricates (E_A(ρ̂), E_B(ρ̂)) it knows and asks B to
    // threshold-sign it without valid evidence (§4.2.3's attack).
    kBogusBlindCoordinator,
    // Coordinator colludes with compromised contributors to run the §4.2.1
    // adaptive-cancellation splice across two reveal rounds. Defeated by the
    // commit/reveal order plus the same-reveal evidence rule.
    kAdaptiveCancelCoordinator,
    // Contributor half of the adaptive attack: contributes a value crafted
    // to cancel previously-seen honest contributions.
    kAdaptiveCancelContributor,
  };

  ProtocolServer(SystemConfig cfg, ServerSecrets secrets, ProtocolOptions opts,
                 Behavior behavior = Behavior::kHonest);

  // --- pre-simulation setup --------------------------------------------------
  // Service A: store E_A(m) for a transfer, available from virtual time 0.
  void store_secret(TransferId transfer, elgamal::Ciphertext ea_m);
  // Service A: the ciphertext becomes available only at virtual time `when`
  // (models "E_A(m) not yet generated" for the pre-computation experiment).
  void store_secret_at(TransferId transfer, elgamal::Ciphertext ea_m, net::Time when);
  // Service B: announce a transfer to run. Must be called on every B server
  // before the simulation starts.
  void register_transfer(TransferId transfer);
  // Service B: the transfer only becomes known at virtual time `when` (open-
  // loop workload: Poisson arrivals hit the running system instead of being
  // batch-registered at time 0). Arrival behaves exactly like a client
  // kTransferRequest landing at `when`.
  void register_transfer_arriving(TransferId transfer, net::Time when);
  // Epochal reconfiguration: at virtual time `at`, start a reconfiguration
  // round proposing `spec` (this server acts as the round's coordinator).
  // Call on old ranks 1..f+1 with staggered times — like Fig. 4 coordinators,
  // f+1 staggered proposers guarantee progress without echo-vote splits in
  // the common case. A server already at (or past) spec.epoch skips the round.
  void schedule_reconfig(ReconfigSpec spec, net::Time at);

  // --- observers --------------------------------------------------------------
  // Service B: the validated re-encrypted ciphertext, once a valid `done`
  // message arrived.
  [[nodiscard]] std::optional<elgamal::Ciphertext> result(TransferId transfer) const;
  // CPU time spent inside this node's handlers (for the offloading claim).
  [[nodiscard]] double cpu_seconds() const { return cpu_seconds_; }
  // Number of transfers with a validated result. Atomic so that controlling
  // threads (e.g. net::ThreadedBus::run_until) can poll completion without a
  // data race; inspect `result()` itself only when the transport is paused.
  [[nodiscard]] std::uint64_t results_count() const {
    return results_count_.load(std::memory_order_acquire);
  }
  // Attack diagnostics: number of service signatures this (Byzantine)
  // coordinator managed to obtain on fabricated/spliced payloads.
  [[nodiscard]] int attack_successes() const { return attack_successes_; }
  // Received-message histogram by type (accounting for the benches).
  [[nodiscard]] const std::map<MsgType, std::uint64_t>& rx_histogram() const {
    return rx_counts_;
  }
  // Number of cached frames re-sent by the retransmission layer (benches
  // report this as retransmission overhead). Backed by an atomic cell so the
  // metrics registry can attach it as a counter time series.
  [[nodiscard]] std::uint64_t retransmits_sent() const {
    return retransmits_sent_.load(std::memory_order_relaxed);
  }
  // Currently installed config epoch (0 = the seed configuration).
  [[nodiscard]] ConfigEpoch config_epoch() const { return cfg_epoch_; }
  // Current rank under the installed configuration; 0 = retired/standby
  // (serves stored results and reconfiguration traffic, nothing else).
  [[nodiscard]] ServerRank rank() const { return secrets_.rank; }
  // True while this server is a roster member still waiting for re-shared
  // sub-shares after an install (it pulls them from the dealers).
  [[nodiscard]] bool share_pending() const { return share_pending_; }
  // This server's current view of the system configuration.
  [[nodiscard]] const SystemConfig& config() const { return cfg_; }

  // --- observability types ----------------------------------------------------
  // Optional fields of a trace event; which ones an event uses depends on
  // its kind (see obs/trace.hpp).
  struct TraceExtras {
    std::uint64_t transfer = 0;  // events with a transfer but no instance
    std::uint64_t peer = 0;
    std::uint32_t subject = 0;
    std::uint64_t count = 0;
    std::uint32_t attempt = 0;
    std::uint32_t cap = 0;
  };
  // Metric handles, resolved once from ProtocolOptions::metrics. Without a
  // registry every handle points at the process-wide discard cell, so updates
  // stay branch-free (ISSUE 4 satellite d).
  struct Metrics {
    bool resolved = false;
    static constexpr std::size_t kTypes = 29;  // MsgType values are 1..28
    std::array<obs::Counter, kTypes> rx_msgs;       // received, by type
    std::array<obs::Counter, kTypes> rx_bytes;      // payload bytes, by type
    std::array<obs::Counter, kTypes> mont_muls;     // handler mont-muls, by type
    std::array<obs::Histogram, kTypes> handler_wall_us;  // handler wall time
    // Per-phase latency in transport time (virtual µs under the Simulator).
    obs::Histogram phase_commit_us;      // epoch start -> reveal broadcast
    obs::Histogram phase_contribute_us;  // reveal broadcast -> blind-sign begin
    obs::Histogram phase_blind_sign_us;  // blind-sign begin -> service signature
    obs::Histogram phase_decrypt_us;     // decrypt begin -> f+1 valid replies
    obs::Histogram phase_done_sign_us;   // done-sign begin -> service signature
    obs::Counter verify_pass;
    obs::Counter verify_fail;
    obs::Counter batch_fallbacks;        // batch-mode checks that came back false
    obs::Histogram verify_queue_depth;   // pool queue depth at each enqueue
    obs::Histogram verify_drain_batch;   // verdicts applied per drain timer
    // Contribution-pool health (ISSUE 5): depth after each refill/drain,
    // event counts, and offline-vs-online mont-mul attribution. "online" is
    // everything spent inside the contributor's init/reveal handlers (the
    // critical path a coordinator waits on); "offline" is bundle creation
    // from prefill/refill timers.
    obs::Gauge pool_depth;
    obs::Counter pool_refills;
    obs::Counter pool_drains;
    obs::Counter pool_fallbacks;         // drain requests served on demand
    obs::Counter contrib_mont_muls_online;
    obs::Counter contrib_mont_muls_offline;
    // Epochal reconfiguration (PR 7): installed epoch + lifecycle counts.
    obs::Gauge config_epoch;
    obs::Counter reconfig_installs;   // dblind_reconfig_events_total{event="install"}
    obs::Counter reconfig_aborts;     // ...{event="abort"} (instances killed at installs)
    obs::Counter reconfig_stale_rejects;  // ...{event="stale_reject"} (kWrongEpoch sent)
    // Concurrent multi-transfer engine (PR 8): admission scheduler health and
    // cross-transfer drain shape.
    obs::Gauge engine_inflight;          // currently admitted self-coordinated transfers
    obs::Gauge engine_queued;            // transfers waiting for an admission slot
    obs::Counter engine_admits;
    obs::Counter engine_defers;
    obs::Histogram cross_drain_msgs;       // contribute messages per cross-transfer drain
    obs::Histogram cross_drain_equations;  // CP equations folded into the combined pass
  };

  // --- net::Node --------------------------------------------------------------
  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, net::NodeId from, std::span<const std::uint8_t> bytes) override;
  void on_timer(net::Context& ctx, std::uint64_t token) override;
  // Crash-recovery (net::Simulator::restart_at): durable state is what a
  // correct server persists before acting on it — stored secrets, registered
  // transfers, validated done messages, and the next coordinator epoch per
  // transfer. Everything else (round state, signing sessions, caches) is
  // volatile and lost on a crash.
  [[nodiscard]] std::vector<std::uint8_t> snapshot() const override;
  void restore(std::span<const std::uint8_t> snap) override;

 private:
  // ---- shared plumbing -------------------------------------------------------
  [[nodiscard]] const ServicePublic& my_service() const { return cfg_.service(secrets_.role); }
  [[nodiscard]] bool is_b() const { return secrets_.role == ServiceRole::kServiceB; }
  // Roster membership under the installed config. Retired/standby servers
  // (rank 0) never take part in Fig. 4 — they cannot sign envelopes the new
  // roster accepts — but keep serving results and reconfiguration traffic.
  [[nodiscard]] bool active() const { return secrets_.rank != 0; }
  void send_signed(net::Context& ctx, net::NodeId to, MsgType type,
                   const std::vector<std::uint8_t>& body);
  void broadcast_signed(net::Context& ctx, ServiceRole svc, MsgType type,
                        const std::vector<std::uint8_t>& body);
  void send_service_signed(net::Context& ctx, net::NodeId to, const ServiceSignedMsg& msg);
  // Signs `body` and returns the framed wire bytes (for caching + resend).
  [[nodiscard]] std::vector<std::uint8_t> signed_frame(net::Context& ctx,
                                                       const std::vector<std::uint8_t>& body);

  // ---- retransmission (chaos layer) -----------------------------------------
  // A set of already-signed frames re-sent with capped exponential backoff
  // until progress cancels the entry or attempts run out. Only cached bytes
  // are ever re-sent: retransmission never re-randomizes committed values.
  struct Resend {
    std::vector<std::pair<net::NodeId, std::vector<std::uint8_t>>> msgs;
    net::Time delay = 0;
    int attempts = 1;  // the original send counts as the first attempt
    int max_attempts = 0;
    TransferId transfer = 0;
    bool cancel_on_result = false;  // B: stop once `transfer` has a result
  };
  // Returns a key for cancel_resend, or 0 when retransmission is disabled.
  std::uint64_t arm_resend(net::Context& ctx, Resend r, net::Time initial_delay = 0,
                           int max_attempts = 0);
  void cancel_resend(std::uint64_t& key);
  void cancel_resends_for_transfer(TransferId transfer);
  void handle_resend_timer(net::Context& ctx, std::uint64_t key);
  // Re-sends one cached frame verbatim (empty frames are skipped).
  void resend_frame(net::Context& ctx, net::NodeId to, const std::vector<std::uint8_t>& frame);
  // B: periodic pull of a missing result from peer B servers (recovery after
  // restarts/partitions), using the client ResultRequest/ResultReply path.
  void arm_result_pull(net::Context& ctx, TransferId transfer);
  void handle_result_reply(net::Context& ctx, std::span<const std::uint8_t> body);
  [[nodiscard]] std::uint32_t next_epoch_of(TransferId transfer) const;

  // ---- contributor role (B) --------------------------------------------------
  struct ContributorState {
    Contribution contribution;
    mpz::Bigint r1, r2;  // encryption nonces (VDE witnesses)
    mpz::Bigint rho;
    // The consistent E_B(ρ, r2) the VDE proof is computed over. Equal to
    // contribution.eb for honest servers; kInconsistentContribution
    // advertises a different eb but must still attach a proof for the
    // consistent shadow pair.
    elgamal::Ciphertext eb_good;
    zkp::VdeOffline vde_offline;  // announcements, finished in handle_reveal
    std::uint64_t bundle = 0;     // id of the consumed bundle (tracing)
    bool committed = false;
    bool contributed = false;  // responded to (at most) one reveal
    // Cached signed frames, re-sent verbatim on duplicate init/reveal.
    std::vector<std::uint8_t> commit_frame;
    std::vector<std::uint8_t> contribute_frame;
    SignedMessage answered_reveal;  // the one reveal we responded to
  };
  void handle_init(net::Context& ctx, const SignedMessage& env);
  void handle_reveal(net::Context& ctx, const SignedMessage& env);
  ContributorState& contributor_state(net::Context& ctx, const InstanceId& id);
  // Pool drain with transparent on-demand fallback; also the pool-off path.
  [[nodiscard]] ContributionBundle obtain_bundle(net::Context& ctx, const InstanceId& id);
  // One bundle per tick while below capacity (kTimerPoolRefill).
  void pool_refill_tick(net::Context& ctx);
  void arm_pool_refill(net::Context& ctx);

  // ---- coordinator role (B) --------------------------------------------------
  struct CoordinatorState {
    InstanceId id;
    std::map<ServerRank, SignedMessage> commits;
    SignedMessage reveal_env;
    bool revealed = false;
    std::map<ServerRank, SignedMessage> contributes;
    bool signing = false;
    bool sent_blind = false;
    std::uint64_t init_resend = 0;    // retransmission keys (0 = none)
    std::uint64_t reveal_resend = 0;
    // Phase timestamps (observability only; never read by protocol logic).
    net::Time t_start = 0;   // instance opened
    net::Time t_reveal = 0;  // 2f+1 commits reached, reveal broadcast
    net::Time t_sign = 0;    // f+1 valid contributions, blind signing began
    // Adaptive-cancel attack bookkeeping:
    std::vector<SignedMessage> attack_first_round;  // honest contributions seen
  };
  void start_coordinator(net::Context& ctx, TransferId transfer, std::uint32_t epoch);
  void handle_commit(net::Context& ctx, const SignedMessage& env);
  void handle_contribute(net::Context& ctx, const SignedMessage& env);
  // State transition for a verified contribute message — shared by the inline
  // path and the worker-pool drain, so both evolve coordinator state
  // identically.
  void apply_contribute(net::Context& ctx, const SignedMessage& env,
                        const ContributeMsg& contribute);
  // Applies completed worker-pool verifications in message-arrival order.
  void drain_verifies(net::Context& ctx);
  // Cross-transfer variant (batch_verify + verify_workers): waits for every
  // queued structural precheck, folds ALL surviving VDE proofs — across
  // transfers and coordinators — into one combined RLC pass, then applies
  // verdicts in strict arrival order with per-(transfer, rank) culprit
  // attribution on failure.
  void drain_verifies_cross(net::Context& ctx);
  void coordinator_try_finish(net::Context& ctx, CoordinatorState& st);

  // ---- concurrent multi-transfer engine (core/transfer_engine.hpp) -----------
  // Starts coordinators (rank-staggered, like on_start) for transfers the
  // admission scheduler just moved to Active.
  void launch_admitted(net::Context& ctx, std::span<const TransferId> admitted);

  // ---- threshold-signing coordinator (A and B) --------------------------------
  struct SignSession {
    std::uint64_t session = 0;
    SignPurpose purpose{};
    std::vector<std::uint8_t> payload;
    std::vector<std::uint8_t> evidence;
    std::set<ServerRank> excluded;
    std::map<ServerRank, threshold::NonceCommitment> commits;
    std::vector<threshold::NonceCommitment> quorum;
    std::map<ServerRank, threshold::NonceReveal> reveals;
    std::map<ServerRank, threshold::PartialSignature> partials;
    bool done = false;
    int attempt = 0;
    std::uint64_t round_resend = 0;  // retransmits the current round's broadcast
    TransferId transfer = 0;
    bool cancel_on_result = false;
  };
  std::uint64_t start_sign_session(net::Context& ctx, SignPurpose purpose,
                                   std::vector<std::uint8_t> payload,
                                   std::vector<std::uint8_t> evidence,
                                   std::set<ServerRank> excluded = {}, int attempt = 0);
  void handle_sign_commit_reply(net::Context& ctx, const SignedMessage& env);
  void handle_sign_reveal_reply(net::Context& ctx, const SignedMessage& env);
  void handle_sign_partial_reply(net::Context& ctx, const SignedMessage& env);
  void sign_session_retry(net::Context& ctx, std::uint64_t session);
  void sign_session_finished(net::Context& ctx, SignSession& ss, zkp::SchnorrSignature sig);

  // ---- threshold-signing member (A and B) -------------------------------------
  struct MemberSession {
    std::vector<std::uint8_t> payload;
    std::vector<threshold::NonceCommitment> quorum;
    std::unique_ptr<threshold::SigningMember> member;
    bool responded = false;
    // Cached signed frames: a signing member must answer a duplicate round
    // message with the SAME bytes — a fresh nonce commitment/reveal for the
    // same session would be a catastrophic nonce reuse across equivocating
    // coordinators.
    std::vector<std::uint8_t> commit_frame;
    std::vector<std::uint8_t> reveal_frame;
    std::vector<std::uint8_t> partial_frame;
    hash::Digest reveals_digest{};  // body digest of the reveal set we answered
  };
  void handle_sign_request(net::Context& ctx, const SignedMessage& env);
  void handle_sign_quorum(net::Context& ctx, const SignedMessage& env);
  void handle_sign_reveal_set(net::Context& ctx, const SignedMessage& env);

  // ---- service A responder role ------------------------------------------------
  struct ResponderState {
    ServiceSignedMsg blind_env;
    BlindPayload blind;
    elgamal::Ciphertext ea_m_rho;
    std::map<std::uint32_t, threshold::DecryptionShare> shares;
    bool signing = false;
    bool sent_done = false;
    std::uint64_t decrypt_resend = 0;  // retransmits the decrypt-request round
    // Phase timestamps (observability only).
    net::Time t_begin = 0;      // decrypt round opened
    net::Time t_done_sign = 0;  // f+1 valid replies, done signing began
  };
  void handle_blind(net::Context& ctx, const ServiceSignedMsg& msg);
  void start_responder(net::Context& ctx, const InstanceId& id);
  void handle_decrypt_request(net::Context& ctx, const SignedMessage& env);
  void handle_decrypt_share_reply(net::Context& ctx, const SignedMessage& env);

  // ---- service B result consumption ---------------------------------------------
  void handle_done(net::Context& ctx, const ServiceSignedMsg& msg);
  // Shared by handle_done / handle_result_reply / restore: records a
  // validated done message (payload already checked against `msg`). `ctx` is
  // null when replaying durable state in restore() — no events are emitted
  // for dones that were already traced in a previous incarnation.
  void record_done(net::Context* ctx, const DonePayload& done, const ServiceSignedMsg& msg);

  // ---- client-facing handlers (library extension; see core/client.hpp) -----------
  void handle_transfer_request(net::Context& ctx, net::NodeId from,
                               std::span<const std::uint8_t> body);
  void handle_result_request(net::Context& ctx, net::NodeId from,
                             std::span<const std::uint8_t> body);
  void handle_client_decrypt_request(net::Context& ctx, net::NodeId from,
                                     std::span<const std::uint8_t> body);
  void schedule_coordinator(net::Context& ctx, TransferId transfer);

  // ---- epochal reconfiguration (see core/reconfig.hpp, docs/PROTOCOL.md) ----------
  // State of the (at most one) reconfiguration round this node is engaged in.
  // Volatile, like all round state: a crash mid-round loses it; the install
  // certificate chain (install_log_) is how recovered nodes catch up.
  struct ReconfigRound {
    ReconfigSpec spec;          // the spec this node dealt for
    bool coordinating = false;  // we broadcast the start and collect deals
    bool dealt = false;         // re-shared exactly once for spec.epoch
    bool applied = false;       // (coordinator) apply already broadcast
    bool echoed = false;        // echoed exactly one digest for spec.epoch
    std::map<std::uint32_t, SignedMessage> deals;  // coordinator: by old dealer rank
    std::uint64_t start_resend = 0;
    std::uint64_t deal_resend = 0;
    std::uint64_t apply_resend = 0;
    std::uint64_t echo_resend = 0;
  };
  // All Fig. 4 epoch gating + reconfiguration handlers below run on the
  // handler thread like everything else; none of this state needs locks.
  void maybe_send_wrong_epoch(net::Context& ctx, net::NodeId from, const SignedMessage& env);
  void send_reconfig_pull(net::Context& ctx, net::NodeId to);
  void start_reconfig_round(net::Context& ctx, const ReconfigSpec& spec);
  void reshare_for(net::Context& ctx, const ReconfigSpec& spec);
  void handle_reconfig_start(net::Context& ctx, const SignedMessage& env);
  void handle_reshare_deal(net::Context& ctx, const SignedMessage& env);
  void handle_reconfig_apply(net::Context& ctx, const SignedMessage& env);
  void handle_reconfig_echo(net::Context& ctx, const SignedMessage& env);
  void handle_reshare_subshare(net::Context& ctx, std::span<const std::uint8_t> body);
  void handle_wrong_epoch(net::Context& ctx, net::NodeId from,
                          std::span<const std::uint8_t> body);
  void handle_reconfig_pull(net::Context& ctx, net::NodeId from,
                            std::span<const std::uint8_t> body);
  void handle_reconfig_state(net::Context& ctx, net::NodeId from,
                             std::span<const std::uint8_t> body);
  void handle_subshare_pull(net::Context& ctx, net::NodeId from,
                            std::span<const std::uint8_t> body);
  void try_install(net::Context& ctx);
  void install_config(net::Context& ctx, const SignedMessage& apply_env,
                      const ReconfigApplyMsg& apply, std::vector<SignedMessage> echoes);
  // Post-install: verify a received sub-share against the installed deal
  // commitments; completes the pending share set when the quorum is full.
  void absorb_subshare(net::Context& ctx, const ReshareSubshareMsg& msg);
  void maybe_complete_share(net::Context& ctx);
  // Everyone a reconfiguration broadcast must reach: both current rosters
  // plus the target roster (joiners are not in any current roster yet).
  [[nodiscard]] std::vector<net::NodeId> reconfig_targets(const ReconfigSpec& spec) const;

  // ---- Byzantine helpers -----------------------------------------------------------
  void attack_coordinator_step(net::Context& ctx, CoordinatorState& st);

  // ---- observability (no protocol effect; docs/OBSERVABILITY.md) -------------------
  // Emits one event when opts_.trace is set; a no-op (single pointer test,
  // extras never built at the call site unless given) otherwise.
  void emit_trace(net::Context& ctx, obs::EventKind kind, const InstanceId* id = nullptr);
  void emit_trace(net::Context& ctx, obs::EventKind kind, const InstanceId* id,
                  const TraceExtras& extra);
  // Counts + traces a contribute verification outcome (inline and pool paths).
  // `rejected` (only ever non-null together with a null `contribute`) carries
  // the decoded message of a structurally-valid-but-proof-failing contribute,
  // so the cross-transfer drain can attribute the failure to the right
  // (transfer, rank) even though the message is dropped.
  void record_contribute_verdict(net::Context& ctx, const SignedMessage& env,
                                 const ContributeMsg* contribute,
                                 const ContributeMsg* rejected = nullptr);
  // Resolves metric handles from opts_.metrics (idempotent; called from
  // on_start so a restarted server re-binds to the same time series). With
  // no registry the handles stay default-constructed: every update lands in
  // the process-wide discard cell, branch-free.
  void resolve_metrics(net::Context& ctx);
  // Stall-watchdog plumbing (B servers; inert unless both opts_.trace and
  // opts_.watchdog_deadline are set). `watchdog_note` is called from
  // emit_trace for every transfer-scoped event: kDoneRecorded completes the
  // entry, anything else refreshes its deadline; a refresh that un-stalls a
  // transfer emits kStallResolved parented on the resolving event's span.
  void watchdog_note(net::Context& ctx, const obs::TraceEvent& ev);
  // Arms the low-frequency sweep timer iff some tracked transfer could still
  // newly stall (Watchdog::needs_sweep) and no timer is already pending —
  // fully-stalled or fully-done nodes let the event queue drain.
  void arm_watchdog_timer(net::Context& ctx);
  // Sweep: flips idle transfers to stalled and emits one kStall each, with
  // parent = the transfer's latest span (its parent chain is the stalled
  // span stack) and a one-shot public state dump in the count fields.
  void watchdog_tick(net::Context& ctx);

  SystemConfig cfg_;
  ServerSecrets secrets_;
  ProtocolOptions opts_;
  Behavior behavior_;

  // --- epochal reconfiguration state -----------------------------------------
  ConfigEpoch cfg_epoch_ = 0;
  // Construction-time copies: a crash loses every installed configuration
  // (config state is volatile by design — the install chain is re-learned
  // from peers), so restore() resets to these and recovers via pulls.
  SystemConfig initial_cfg_;
  ServerSecrets initial_secrets_;
  std::size_t initial_max_coordinators_ = 0;
  std::optional<ReconfigRound> reconfig_round_;
  // Valid applies / echo votes for the NEXT epoch, by apply digest. A node
  // echoes at most one digest; installing needs one digest with a valid
  // apply and 2f+1 distinct old-roster echoes.
  std::map<hash::Digest, SignedMessage> applies_by_digest_;
  std::map<hash::Digest, std::map<ServerRank, SignedMessage>> echoes_by_digest_;
  // Received re-sharing sub-shares, by (install epoch, old dealer rank).
  // Verified against the certified deal commitments at install time (or on
  // arrival, once installed); latest receipt wins so a garbage sub-share
  // cannot permanently shadow the dealer's real one.
  std::map<std::pair<ConfigEpoch, std::uint32_t>, ReshareSubshareMsg> subshares_;
  // Dealer side: cached deal/sub-share frames per install epoch, served to
  // kSubsharePull — but only to the node holding the pulled rank (sub-shares
  // are secret; frames[j] goes to targets[j-1] and nobody else). Volatile —
  // a crashed dealer cannot re-deal (a fresh polynomial would not match the
  // certified commitments), which is the documented liveness residual of
  // recovery-after-install.
  struct DealtEpoch {
    std::vector<net::NodeId> targets;               // new rank j -> targets[j-1]
    std::vector<std::vector<std::uint8_t>> frames;  // [0] deal, [j] rank j's sub-share
  };
  std::map<ConfigEpoch, DealtEpoch> dealt_frames_;
  // Certified installs, replayed to lagging peers one epoch at a time.
  std::map<ConfigEpoch, InstallRecord> install_log_;
  // Member of the new roster whose sub-share quorum is still incomplete.
  bool share_pending_ = false;
  std::uint64_t subshare_pull_resend_ = 0;
  // Set by restore(): the next on_start pulls the install chain from every
  // peer, since any install that happened while this server was down left it
  // with a stale share and roster.
  bool restored_ = false;
  // Pre-simulation schedule: (virtual time, spec) pairs armed in on_start.
  std::vector<std::pair<net::Time, ReconfigSpec>> scheduled_reconfigs_;

  // Per-transfer application state.
  std::map<TransferId, elgamal::Ciphertext> stored_;                   // A: E_A(m)
  std::map<TransferId, std::pair<elgamal::Ciphertext, net::Time>> pending_store_;  // A
  std::set<TransferId> transfers_;                                     // B: to run
  std::map<TransferId, elgamal::Ciphertext> results_;                  // B: E_B(m)
  // All validated done messages per transfer (several coordinators may each
  // produce one); used to answer clients and to authorize client-requested
  // decryption shares.
  std::map<TransferId, std::vector<ServiceSignedMsg>> done_msgs_;
  std::map<TransferId, std::vector<DonePayload>> done_payloads_;

  // Blind messages for secrets that have not arrived yet (pre-computation
  // experiment): replayed when the secret is stored.
  std::vector<ServiceSignedMsg> parked_blinds_;

  // Role state.
  std::map<InstanceId, ContributorState> contributor_;
  std::map<InstanceId, CoordinatorState> coordinator_;
  std::map<std::uint64_t, SignSession> sign_sessions_;  // keyed by session id (ours)
  std::map<std::pair<net::NodeId, std::uint64_t>, MemberSession> member_sessions_;
  std::map<InstanceId, ResponderState> responder_;
  std::set<InstanceId> seen_blind_;  // A: instances already being responded to

  std::uint64_t next_session_ = 1;
  std::map<MsgType, std::uint64_t> rx_counts_;
  std::atomic<std::uint64_t> results_count_{0};
  double cpu_seconds_ = 0;
  int attack_successes_ = 0;

  // Retransmission state (sender side).
  std::map<std::uint64_t, Resend> resends_;
  std::uint64_t next_resend_ = 1;  // 0 = invalid key / "no resend armed"
  std::map<TransferId, std::uint64_t> result_pull_keys_;  // B: active pulls
  std::atomic<std::uint64_t> retransmits_sent_{0};
  Metrics metrics_;
  // Next coordinator epoch to use per transfer. Durable: a restarted
  // coordinator must not reuse an epoch it may already have announced with a
  // different (lost) contribution set.
  std::map<TransferId, std::uint32_t> next_epoch_;
  // Receiver-side reply caches: duplicates are answered with the exact bytes
  // sent the first time.
  std::map<std::pair<InstanceId, ServerRank>, std::vector<std::uint8_t>> decrypt_reply_frames_;
  std::map<std::pair<net::NodeId, TransferId>,
           std::pair<std::vector<std::uint8_t>, std::vector<std::uint8_t>>>
      client_decrypt_cache_;  // (request body, reply frame)

  // Verification worker pool (opts_.verify_workers > 0): contribute messages
  // are checked off-handler; results apply in arrival order at the drain
  // timer. The deque gives reference-stable slots for in-flight jobs; entries
  // are volatile (dropped on restore(), like all round state). Declared
  // before verify_pool_ so the pool (whose destructor joins the workers)
  // dies first and no job can outlive its slot.
  struct PendingVerify {
    SignedMessage env;
    std::optional<ContributeMsg> result;
    std::future<void> done;
  };
  std::deque<PendingVerify> pending_verifies_;
  std::unique_ptr<VerifyPool> verify_pool_;

  // Offline/online contribution split (B contributors). The dedicated prng is
  // forked once per incarnation in on_start and is the ONLY source of
  // contribution randomness, in both pool-on and pool-off modes — that is
  // what keeps the two modes byte-identical on the wire for a given seed.
  // The pool itself is volatile: restore() drops it (bundles hold secret ρ
  // values that must never be serialized) and bundle ids keep counting up so
  // no id is ever consumed twice per node.
  std::optional<mpz::Prng> offline_prng_;
  std::unique_ptr<ContributionPool> pool_;
  std::uint64_t next_bundle_id_ = 1;
  bool pool_timer_armed_ = false;

  // Concurrent multi-transfer engine: per-transfer lifecycle records sharded
  // by id plus the FIFO admission scheduler gating self-coordination (see
  // core/transfer_engine.hpp). Scheduling state is volatile — restore() resets
  // it and the next on_start re-feeds the durable transfer set.
  TransferEngine engine_;
  // Stall watchdog (observability only; obs/watchdog.hpp). Volatile like all
  // scheduling state: restore() resets it and the next on_start re-arms the
  // durable transfer set. Touched only from this node's handler thread.
  obs::Watchdog watchdog_;
  bool watchdog_timer_armed_ = false;
  // Root key for per-instance contribution prngs (opts_.per_transfer_rng):
  // drawn once per incarnation in on_start; each instance's stream is
  // SHA256(root ‖ transfer ‖ coordinator ‖ epoch ‖ cfg_epoch), so a
  // transfer's wire bytes are independent of interleaving with other
  // transfers. Unset when the knob is off — no extra rng draws happen, and
  // the seed engine's byte-exact draw order is preserved.
  std::optional<hash::Digest> instance_rng_root_;
  // Open-loop arrivals: (virtual time, transfer) pairs armed in on_start.
  std::vector<std::pair<net::Time, TransferId>> scheduled_arrivals_;

  // Timer token layout (high byte = kind).
  static constexpr std::uint64_t kTimerCoordinator = 1ull << 56;   // | transfer
  static constexpr std::uint64_t kTimerResponder = 2ull << 56;     // | dense instance key
  static constexpr std::uint64_t kTimerSignRetry = 3ull << 56;     // | session id
  static constexpr std::uint64_t kTimerStoreSecret = 4ull << 56;   // | transfer
  static constexpr std::uint64_t kTimerResend = 5ull << 56;        // | resend key
  static constexpr std::uint64_t kTimerVerifyDrain = 6ull << 56;   // (no payload)
  static constexpr std::uint64_t kTimerPoolRefill = 7ull << 56;    // (no payload)
  static constexpr std::uint64_t kTimerReconfig = 8ull << 56;      // | schedule index
  static constexpr std::uint64_t kTimerTransferArrival = 9ull << 56;  // | arrival index
  static constexpr std::uint64_t kTimerWatchdog = 10ull << 56;        // (no payload)
  std::map<std::uint64_t, InstanceId> responder_timer_ids_;
  std::uint64_t next_responder_timer_ = 0;
};

}  // namespace dblind::core
