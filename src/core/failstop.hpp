// The fail-stop distributed blinding protocol of paper Figure 3.
//
// This is the paper's stepping-stone variant: no signatures, no commitments,
// no VDE — just init → contribute → combine. It is correct against fail-stop
// adversaries (crash + disclosure) but NOT against Byzantine ones: the
// adaptive-contribution attack of §4.2.1 lets a compromised coordinator
// choose the blinding factor. Both behaviours are implemented here so tests
// and benches can demonstrate the attack succeeding against Figure 3 and
// failing against Figure 4.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/messages.hpp"
#include "elgamal/elgamal.hpp"
#include "net/sim.hpp"

namespace dblind::core {

struct FailstopOptions {
  group::GroupParams params = group::GroupParams::named(group::ParamId::kToy64);
  std::size_t n = 4;
  std::size_t f = 1;
  std::uint64_t seed = 1;
  net::Time delay_min = 500;
  net::Time delay_max = 20'000;
  // Backup-coordinator start delay ((rank-1)·delay); f+1 coordinators total.
  net::Time backup_delay = 400'000;
  // Ranks crashed from the start.
  std::set<std::uint32_t> crashed;
  // Coordinator 1 mounts the §4.2.1 adaptive-cancellation attack.
  bool adaptive_attack = false;
};

struct FailstopOutcome {
  Contribution blinded;       // (E_A(ρ), E_B(ρ))
  bool by_attacker = false;   // produced by the Byzantine coordinator
};

class FailstopBlindingSystem {
 public:
  explicit FailstopBlindingSystem(FailstopOptions opts);

  // Runs until at least one CORRECT coordinator produced an output (the
  // paper's progress criterion) — or, with adaptive_attack, until the
  // attacker produced its spliced output too.
  bool run(std::uint64_t max_events = 10'000'000);

  // Output of coordinator `rank` (1-based), if it finished.
  [[nodiscard]] std::optional<FailstopOutcome> outcome(std::uint32_t rank) const;
  // The ρ̂ the attacker chose (meaningful only with adaptive_attack).
  [[nodiscard]] const mpz::Bigint& attacker_rho() const { return attacker_rho_; }

  // Oracle decryption of blinding pairs for verification.
  [[nodiscard]] mpz::Bigint decrypt_a(const elgamal::Ciphertext& c) const;
  [[nodiscard]] mpz::Bigint decrypt_b(const elgamal::Ciphertext& c) const;
  // Consistency check: both halves of an outcome encrypt the same ρ.
  [[nodiscard]] bool consistent(const FailstopOutcome& o) const;

  [[nodiscard]] net::Simulator& sim() { return *sim_; }

 private:
  class ServerNode;

  FailstopOptions opts_;
  std::unique_ptr<elgamal::KeyPair> ka_;
  std::unique_ptr<elgamal::KeyPair> kb_;
  std::unique_ptr<net::Simulator> sim_;
  std::vector<ServerNode*> nodes_;
  mpz::Bigint attacker_rho_;
};

}  // namespace dblind::core
