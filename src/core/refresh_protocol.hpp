// Online proactive share refresh: §5's periodic refresh as a distributed
// protocol over the asynchronous network (not just the offline
// threshold::refresh_service function).
//
// One epoch refreshes an (n, f) service's key shares in place:
//
//   1. A refresh coordinator (rank 1; delayed backups as in §4.1) broadcasts
//      ⟨epoch, init⟩.
//   2. Every server deals a Feldman-committed sharing of ZERO and sends the
//      full deal (commitments + all sub-shares) to the coordinator, signed.
//      (Zero-deals reveal nothing about the key; within-service links are
//      assumed secure, §2.)
//   3. The coordinator picks the first f+1 VALID deals (zero-commitment +
//      per-sub-share Feldman checks) and broadcasts the chosen set as the
//      epoch's ⟨apply⟩ message.
//   4. Echo round (Bracha-style): each server verifies the set itself, then
//      broadcasts a signed echo of the set's digest. A server APPLIES the
//      set only after collecting 2f+1 matching echoes. Quorum intersection
//      makes divergence impossible: two conflicting sets would both need
//      2f+1 echoes out of 3f+1 servers, so some correct server — which only
//      echoes once per epoch — would have echoed both.
//
// Safety: shares after the epoch still interpolate to the same key (the
// public key is untouched); a Byzantine coordinator can stall its epoch
// (backups take over) but cannot split correct servers across different
// share states; a Byzantine dealer's bad deal is excluded by verification.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/messages.hpp"
#include "net/sim.hpp"
#include "threshold/keygen.hpp"
#include "threshold/refresh.hpp"
#include "zkp/schnorr.hpp"

namespace dblind::core {

struct RefreshSystemOptions {
  group::GroupParams params = group::GroupParams::named(group::ParamId::kToy64);
  threshold::ServiceConfig cfg{4, 1};
  std::uint64_t seed = 1;
  net::Time delay_min = 500;
  net::Time delay_max = 20'000;
  net::Time backup_delay = 400'000;
  // Ranks crashed from the start.
  std::set<std::uint32_t> crashed;
  // Ranks that deal corrupted zero-sharings (must be excluded).
  std::set<std::uint32_t> bad_dealers;
  // Rank-1 coordinator equivocates: sends different (individually valid)
  // apply-sets to different halves of the service. The echo round must
  // prevent any divergence in applied state.
  bool equivocating_coordinator = false;
};

class RefreshSystem {
 public:
  explicit RefreshSystem(RefreshSystemOptions opts);
  ~RefreshSystem();

  // Runs one refresh epoch until every live server applied a deal set (or
  // the event budget runs out). Returns success.
  bool run(std::uint64_t max_events = 5'000'000);

  // Post-epoch state of server `rank`.
  [[nodiscard]] std::optional<threshold::Share> new_share(std::uint32_t rank) const;
  [[nodiscard]] std::optional<threshold::FeldmanCommitments> new_commitments(
      std::uint32_t rank) const;
  // The pre-epoch key material (for comparisons in tests).
  [[nodiscard]] const threshold::ServiceKeyMaterial& old_material() const { return *material_; }

  [[nodiscard]] net::Simulator& sim() { return *sim_; }

 private:
  class ServerNode;

  RefreshSystemOptions opts_;
  std::unique_ptr<threshold::ServiceKeyMaterial> material_;
  std::vector<zkp::SchnorrSigningKey> server_keys_;  // message-signing keys
  std::vector<zkp::SchnorrVerifyKey> server_vkeys_;
  std::unique_ptr<net::Simulator> sim_;
  std::vector<ServerNode*> nodes_;
};

}  // namespace dblind::core
