#include "core/client.hpp"

#include "core/validity.hpp"
#include "threshold/thresh_decrypt.hpp"

namespace dblind::core {

namespace {

std::vector<std::uint8_t> frame_client(const std::vector<std::uint8_t>& body) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(WireKind::kClient));
  w.bytes(body);
  return w.take();
}

}  // namespace

std::string client_decrypt_context(TransferId transfer) {
  return "dblind/client-decrypt/t" + std::to_string(transfer);
}

ClientNode::ClientNode(SystemConfig cfg, TransferId transfer, mpz::Bigint m,
                       net::Time poll_interval)
    : cfg_(std::move(cfg)), transfer_(transfer), m_(std::move(m)),
      poll_interval_(poll_interval) {}

void ClientNode::send_client(net::Context& ctx, net::NodeId to,
                             const std::vector<std::uint8_t>& body) {
  ctx.send(to, frame_client(body));
}

void ClientNode::broadcast_b(net::Context& ctx, const std::vector<std::uint8_t>& body) {
  for (ServerRank r = 1; r <= cfg_.b.cfg.n; ++r) send_client(ctx, cfg_.b.node_of(r), body);
}

void ClientNode::on_start(net::Context& ctx) {
  // Publish: one request to everyone; A stores, B registers and runs. The
  // encryption happens exactly once — retries re-send these same bytes.
  TransferRequestMsg req;
  req.transfer = transfer_;
  req.ea_m = cfg_.a.encryption_key.encrypt(m_, ctx.rng());
  publish_body_ = encode_body(MsgType::kTransferRequest, req);
  for (ServerRank r = 1; r <= cfg_.a.cfg.n; ++r)
    send_client(ctx, cfg_.a.node_of(r), publish_body_);
  broadcast_b(ctx, publish_body_);
  ctx.set_timer(poll_interval_, 1);
}

void ClientNode::on_timer(net::Context& ctx, std::uint64_t) {
  if (plaintext_) return;
  if (!chosen_) {
    // Re-publish (lossy networks may have starved some servers of the
    // transfer request entirely — servers dedupe) and poll for the result.
    for (ServerRank r = 1; r <= cfg_.a.cfg.n; ++r)
      send_client(ctx, cfg_.a.node_of(r), publish_body_);
    broadcast_b(ctx, publish_body_);
    ResultRequestMsg req;
    req.transfer = transfer_;
    broadcast_b(ctx, encode_body(MsgType::kResultRequest, req));
  } else {
    // Result chosen but shares still missing: re-request decryption shares
    // (same ciphertext — B servers answer duplicates from their reply cache).
    broadcast_b(ctx, decrypt_request_body_);
  }
  ctx.set_timer(poll_interval_, 1);
}

void ClientNode::on_message(net::Context& ctx, net::NodeId from,
                            std::span<const std::uint8_t> bytes) {
  (void)from;  // every reply is verified by content, not by sender
  try {
    Reader r(bytes);
    if (static_cast<WireKind>(r.u8()) != WireKind::kClient) return;
    std::vector<std::uint8_t> body = r.bytes();
    r.expect_done();
    switch (peek_type(body)) {
      case MsgType::kResultReply: {
        if (chosen_) return;
        auto msg = decode_as<ResultReplyMsg>(MsgType::kResultReply, body);
        auto done = check_done(cfg_, msg.done);  // K_B-verifiable
        if (!done || done->id.transfer != transfer_) return;
        chosen_ = done->eb_m;
        ClientDecryptRequestMsg req;
        req.transfer = transfer_;
        req.ciphertext = *chosen_;
        decrypt_request_body_ = encode_body(MsgType::kClientDecryptRequest, req);
        broadcast_b(ctx, decrypt_request_body_);
        break;
      }
      case MsgType::kClientDecryptReply: {
        if (!chosen_ || plaintext_) return;
        auto msg = decode_as<ClientDecryptReplyMsg>(MsgType::kClientDecryptReply, body);
        if (msg.transfer != transfer_) return;
        if (!threshold::verify_decryption_share(cfg_.params, cfg_.b.enc_commitments, *chosen_,
                                                msg.share, client_decrypt_context(transfer_)))
          return;
        shares_.emplace(msg.share.index, msg.share);
        if (shares_.size() < cfg_.b.cfg.quorum()) return;
        std::vector<threshold::DecryptionShare> quorum;
        for (const auto& [rank, share] : shares_) {
          if (quorum.size() == cfg_.b.cfg.quorum()) break;
          quorum.push_back(share);
        }
        plaintext_ = threshold::combine_decryption(cfg_.params, *chosen_, quorum);
        finished_.store(true, std::memory_order_release);
        break;
      }
      default:
        break;
    }
  } catch (const CodecError&) {
  }
}

}  // namespace dblind::core
