// ClientNode: an end-user of the two-service system (library extension).
//
// The paper's architecture keeps clients outside the services' key universe:
// a client knows only the SERVICE public keys. This node exercises the whole
// pipeline without any test oracle:
//
//   1. publish:  encrypt m under K_A, send a transfer request to every A
//      server (which stores E_A(m)) and every B server (which registers the
//      transfer and starts the re-encryption protocol);
//   2. poll:     periodically ask B servers for the transfer's result and
//      verify the service-signed `done` message with K_B alone;
//   3. retrieve: ask B's servers for threshold-decryption shares of the
//      chosen E_B(m), verify each share proof against B's public Feldman
//      commitments, and combine f+1 of them into the plaintext.
//
// Everything the client receives is self-verifying; nothing it learns lets
// it impersonate servers. B servers only produce decryption shares for
// ciphertexts that appear in a valid `done` message for the requested
// transfer, so the client-facing API is not a general decryption oracle.
#pragma once

#include <atomic>
#include <map>
#include <optional>

#include "core/config.hpp"
#include "core/messages.hpp"
#include "net/sim.hpp"

namespace dblind::core {

class ClientNode final : public net::Node {
 public:
  // The client will publish `m` (a group element) as transfer `transfer`.
  // Pick transfer ids that do not collide with other publishers.
  ClientNode(SystemConfig cfg, TransferId transfer, mpz::Bigint m,
             net::Time poll_interval = 50'000);

  // The recovered plaintext, once retrieval finished.
  [[nodiscard]] std::optional<mpz::Bigint> plaintext() const { return plaintext_; }
  // True once a valid service-signed done message was received.
  [[nodiscard]] bool have_result() const { return chosen_.has_value(); }
  // Race-free completion flag for cross-thread polling (net::ThreadedBus):
  // once true, stop the transport and read plaintext() safely.
  [[nodiscard]] bool finished() const { return finished_.load(std::memory_order_acquire); }

  void on_start(net::Context& ctx) override;
  void on_message(net::Context& ctx, net::NodeId from, std::span<const std::uint8_t> bytes) override;
  void on_timer(net::Context& ctx, std::uint64_t token) override;

 private:
  void send_client(net::Context& ctx, net::NodeId to, const std::vector<std::uint8_t>& body);
  void broadcast_b(net::Context& ctx, const std::vector<std::uint8_t>& body);

  SystemConfig cfg_;
  TransferId transfer_;
  mpz::Bigint m_;
  net::Time poll_interval_;
  std::optional<elgamal::Ciphertext> chosen_;  // the E_B(m) we are decrypting
  std::map<std::uint32_t, threshold::DecryptionShare> shares_;
  std::optional<mpz::Bigint> plaintext_;
  std::atomic<bool> finished_{false};
  // Cached request bodies, re-sent verbatim on every poll tick until the
  // protocol answers. Re-encrypting m on a publish retry would hand A servers
  // divergent E_A(m) ciphertexts (first writer wins, so some servers would
  // hold a ciphertext the others refuse to corroborate).
  std::vector<std::uint8_t> publish_body_;
  std::vector<std::uint8_t> decrypt_request_body_;
};

// Context string for client-driven threshold decryption at B.
[[nodiscard]] std::string client_decrypt_context(TransferId transfer);

}  // namespace dblind::core
