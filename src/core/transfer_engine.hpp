// TransferEngine: sharded per-transfer state machines plus a small admission
// scheduler, so one ProtocolServer can drive many transfers concurrently
// through commit/reveal/contribute/blind/done without the implicit
// one-transfer-at-a-time flow the seed server grew up with.
//
// Responsibilities are deliberately narrow:
//
//   - Each transfer owns one explicit lifecycle record (phase, birth config
//     epoch, admission counters), stored in a shard keyed by transfer id so
//     lookups from concurrent callers (ThreadedBus handlers, benches, the
//     load harness) never contend on one global lock.
//   - A FIFO scheduler admits transfers into at most `max_inflight`
//     concurrently-active slots (0 = unlimited, the seed behavior). FIFO
//     admission is the no-starvation guarantee: a queued transfer is admitted
//     after exactly the completions of the transfers admitted before it
//     (asserted by tests/core/transfer_engine_test.cpp).
//   - Epoch boundaries (PR 7): abort_inflight() demotes exactly the active
//     transfers back to the head of the queue — queued and done transfers are
//     untouched — so an install aborts the in-flight transfers of the old
//     epoch and no others.
//
// The engine schedules; it never touches protocol state. ProtocolServer owns
// all Fig. 4 state and calls back into start_coordinator for every id the
// engine admits. All methods are internally synchronized (core/sync.hpp
// capabilities), so the engine is safe to query from outside the handler
// thread.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/sync.hpp"
#include "core/types.hpp"

namespace dblind::core {

// Lifecycle of one transfer inside the engine. Registered transfers become
// Queued when eligible to run (registration time, or their scheduled arrival
// in the open-loop harness), Active when the scheduler admits them, Done when
// a validated result lands. Aborted is transient: an epoch install demotes
// Active back to Queued via Aborted bookkeeping.
enum class TransferPhase : std::uint8_t {
  kRegistered = 0,
  kQueued,
  kActive,
  kDone,
};

class TransferEngine {
 public:
  struct Options {
    // Maximum concurrently-active transfers; 0 = unlimited (every request is
    // admitted immediately — byte-identical scheduling to the seed engine).
    std::size_t max_inflight = 0;
    // Shard count for the per-transfer records (rounded up to >= 1).
    std::size_t shards = 8;
  };

  // What request_start decided for the *requested* transfer.
  enum class Admission : std::uint8_t {
    kAdmitted,       // the transfer is now active (it is in the result list)
    kQueued,         // no free slot; it waits in FIFO order
    kAlreadyActive,  // duplicate request (e.g. a backup timer re-fired)
    kDone,           // a result already exists; nothing to run
  };

  explicit TransferEngine(Options opts);

  // Idempotently creates the record for `t` (phase kRegistered).
  void register_transfer(TransferId t) EXCLUDES(sched_mu_);

  // Marks `t` eligible and fills free slots. Every id in `admitted` (which
  // may include other, earlier-queued transfers) is now Active and must be
  // handed to start_coordinator by the caller.
  struct StartResult {
    Admission decision = Admission::kQueued;
    std::vector<TransferId> admitted;
  };
  [[nodiscard]] StartResult request_start(TransferId t) EXCLUDES(sched_mu_);

  // Records a validated result for `t` and fills the slot it frees. Returns
  // the ids admitted from the queue (Active; caller starts them). Safe for
  // transfers the engine never admitted (results learned via pulls).
  [[nodiscard]] std::vector<TransferId> complete(TransferId t) EXCLUDES(sched_mu_);

  // Epoch boundary: demote every Active transfer to the FRONT of the queue
  // (they keep their admission priority under the new epoch) and return them.
  // Queued/Done transfers are untouched — the returned set is exactly the
  // in-flight set of the old epoch.
  [[nodiscard]] std::vector<TransferId> abort_inflight() EXCLUDES(sched_mu_);

  // Pops queued transfers into free slots without changing eligibility; used
  // after abort_inflight() to resume under the new configuration.
  [[nodiscard]] std::vector<TransferId> fill_slots() EXCLUDES(sched_mu_);

  // Crash semantics: all scheduling state is volatile (restore() calls this);
  // durable facts (registered transfers, results) are re-fed by the server.
  void reset() EXCLUDES(sched_mu_);

  // --- observers --------------------------------------------------------------
  [[nodiscard]] TransferPhase phase(TransferId t) const EXCLUDES(sched_mu_);
  [[nodiscard]] std::size_t inflight() const EXCLUDES(sched_mu_);
  [[nodiscard]] std::size_t queued() const EXCLUDES(sched_mu_);
  [[nodiscard]] std::uint64_t admitted_total() const EXCLUDES(sched_mu_);
  [[nodiscard]] std::size_t max_inflight() const { return max_inflight_; }

 private:
  struct Record {
    TransferPhase phase = TransferPhase::kRegistered;
  };
  struct Shard {
    mutable Mutex mu;
    // Open-addressed by transfer id; transfers are dense small integers in
    // practice but nothing here relies on that.
    std::vector<std::pair<TransferId, Record>> records GUARDED_BY(mu);
  };

  [[nodiscard]] Shard& shard_of(TransferId t) const {
    return shards_[static_cast<std::size_t>(t) % shards_.size()];
  }
  // Phase bookkeeping on the owning shard (scheduler decisions stay under
  // sched_mu_; per-transfer phase reads only need the shard lock).
  void set_phase(TransferId t, TransferPhase p) const;
  [[nodiscard]] TransferPhase get_phase(TransferId t) const;

  // Pops queue heads into free slots. REQUIRES(sched_mu_).
  void fill_locked(std::vector<TransferId>& admitted) REQUIRES(sched_mu_);

  const std::size_t max_inflight_;
  mutable std::vector<Shard> shards_;

  mutable Mutex sched_mu_;
  std::deque<TransferId> queue_ GUARDED_BY(sched_mu_);
  std::size_t inflight_ GUARDED_BY(sched_mu_) = 0;
  std::uint64_t admitted_total_ GUARDED_BY(sched_mu_) = 0;
};

}  // namespace dblind::core
