#include "core/system.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "threshold/shamir.hpp"

namespace dblind::core {

namespace {

struct ServiceSetup {
  ServicePublic pub;
  std::vector<ServerSecrets> secrets;
  mpz::Bigint oracle_private;  // reconstructed encryption key (tests only)
};

ServiceSetup make_service(const group::GroupParams& params, const threshold::ServiceConfig& cfg,
                          ServiceRole role, bool use_dkg, mpz::Prng& prng) {
  auto keygen = [&]() {
    if (use_dkg) return threshold::run_joint_feldman_dkg(params, cfg, prng).material;
    return threshold::ServiceKeyMaterial::dealer_keygen(params, cfg, prng);
  };
  threshold::ServiceKeyMaterial enc = keygen();
  threshold::ServiceKeyMaterial sig = keygen();

  ServiceSetup out{
      ServicePublic{
          cfg,
          enc.public_key(),
          enc.commitments(),
          zkp::SchnorrVerifyKey(params, sig.public_key().y()),
          sig.commitments(),
          {},
          0,
          {},
      },
      {},
      {},
  };

  for (ServerRank r = 1; r <= cfg.n; ++r) {
    zkp::SchnorrSigningKey server_key = zkp::SchnorrSigningKey::generate(params, prng);
    out.pub.server_sign_keys.push_back(server_key.verify_key());
    out.secrets.push_back(ServerSecrets{role, r, enc.share_of(r), sig.share_of(r),
                                        server_key.secret()});
  }

  // Test oracle: reconstruct the encryption private key from a quorum.
  std::vector<threshold::Share> quorum;
  for (ServerRank r = 1; r <= cfg.quorum(); ++r) quorum.push_back(enc.share_of(r));
  out.oracle_private = threshold::shamir_reconstruct(quorum, params.q());
  return out;
}

}  // namespace

System::System(SystemOptions opts)
    : opts_(std::move(opts)), setup_rng_(opts_.seed ^ 0x5e70u) {
  ServiceSetup a = make_service(opts_.params, opts_.a, ServiceRole::kServiceA, opts_.use_dkg,
                                setup_rng_);
  ServiceSetup b = make_service(opts_.params, opts_.b, ServiceRole::kServiceB, opts_.use_dkg,
                                setup_rng_);
  a_private_key_ = a.oracle_private;
  b_private_key_ = b.oracle_private;

  std::unique_ptr<net::DelayPolicy> policy = std::move(opts_.delay_policy);
  if (!policy) policy = std::make_unique<net::UniformDelay>(opts_.delay_min, opts_.delay_max);
  sim_ = std::make_unique<net::Simulator>(opts_.seed, std::move(policy));
  if (opts_.protocol.trace != nullptr) {
    // One recorder covers both layers: protocol events (emitted by servers)
    // and network events (emitted by the simulator).
    sim_->set_trace(opts_.protocol.trace);
    opts_.protocol.trace->run_meta(obs::RunMeta{
        opts_.seed, static_cast<std::uint32_t>(opts_.a.n), static_cast<std::uint32_t>(opts_.a.f),
        static_cast<std::uint32_t>(opts_.b.n), static_cast<std::uint32_t>(opts_.b.f),
        static_cast<std::uint32_t>(opts_.protocol.retransmit_max_attempts)});
  }

  a.pub.first_node = 0;
  b.pub.first_node = static_cast<net::NodeId>(opts_.a.n);
  cfg_.emplace(SystemConfig{opts_.params, std::move(a.pub), std::move(b.pub)});

  auto behavior_of = [](const std::vector<ProtocolServer::Behavior>& v, ServerRank r) {
    return r <= v.size() ? v[r - 1] : ProtocolServer::Behavior::kHonest;
  };
  for (ServerRank r = 1; r <= opts_.a.n; ++r) {
    auto node = std::make_unique<ProtocolServer>(*cfg_, a.secrets[r - 1], opts_.protocol,
                                                 behavior_of(opts_.a_behaviors, r));
    a_servers_.push_back(node.get());
    sim_->add_node(std::move(node));
  }
  for (ServerRank r = 1; r <= opts_.b.n; ++r) {
    auto node = std::make_unique<ProtocolServer>(*cfg_, b.secrets[r - 1], opts_.protocol,
                                                 behavior_of(opts_.b_behaviors, r));
    b_servers_.push_back(node.get());
    sim_->add_node(std::move(node));
    b_family_.push_back(BFamilyEntry{
        b_servers_.back(), cfg_->b.node_of(r),
        behavior_of(opts_.b_behaviors, r) == ProtocolServer::Behavior::kHonest});
  }
  // Standby B servers: rank 0 (no shares), real message-signing keys, node
  // ids after both rosters. They idle until a ReconfigSpec adopts them.
  for (std::size_t i = 0; i < opts_.b_standby; ++i) {
    zkp::SchnorrSigningKey standby_key = zkp::SchnorrSigningKey::generate(opts_.params,
                                                                          setup_rng_);
    sign_point_[b_standby_node(i)] = standby_key.verify_key().point();
    auto node = std::make_unique<ProtocolServer>(
        *cfg_, ServerSecrets{ServiceRole::kServiceB, 0, {}, {}, standby_key.secret()},
        opts_.protocol, ProtocolServer::Behavior::kHonest);
    b_standby_servers_.push_back(node.get());
    sim_->add_node(std::move(node));
    b_family_.push_back(BFamilyEntry{b_standby_servers_.back(), b_standby_node(i), true});
  }
  for (ServerRank r = 1; r <= opts_.a.n; ++r) {
    sign_point_[cfg_->a.node_of(r)] = cfg_->a.server_sign_keys[r - 1].point();
  }
  for (ServerRank r = 1; r <= opts_.b.n; ++r) {
    sign_point_[cfg_->b.node_of(r)] = cfg_->b.server_sign_keys[r - 1].point();
  }
}

ReconfigSpec System::make_b_spec(ConfigEpoch epoch, std::uint32_t f,
                                 const std::vector<net::NodeId>& roster) const {
  ReconfigSpec spec;
  spec.service = static_cast<std::uint8_t>(ServiceRole::kServiceB);
  spec.epoch = epoch;
  spec.n = static_cast<std::uint32_t>(roster.size());
  spec.f = f;
  spec.roster.reserve(roster.size());
  for (net::NodeId node : roster) {
    auto it = sign_point_.find(node);
    if (it == sign_point_.end())
      throw std::invalid_argument("make_b_spec: node has no registered sign key");
    spec.roster.push_back(RosterEntry{static_cast<std::uint32_t>(node), it->second});
  }
  return spec;
}

void System::schedule_reconfig_b(const ReconfigSpec& spec, net::Time at, net::Time stagger) {
  const std::uint32_t proposers = static_cast<std::uint32_t>(cfg_->b.cfg.f) + 1;
  for (ServerRank r = 1; r <= proposers && r <= cfg_->b.cfg.n; ++r) {
    b_servers_[r - 1]->schedule_reconfig(spec, at + (r - 1) * stagger);
  }
}

TransferId System::add_transfer(const mpz::Bigint& m) {
  return add_transfer_at(m, 0);
}

TransferId System::add_transfer_at(const mpz::Bigint& m, net::Time when) {
  // Identity is rejected explicitly: ElGamal over it degenerates (the blind
  // m·rho collapses to rho). On mod-p the 0 encoding is simply not in the
  // group; on ristretto255 the all-zero string IS the identity's canonical
  // encoding, so in_group alone would admit it.
  if (!cfg_->params.in_group(m) || cfg_->params.is_identity(m))
    throw std::invalid_argument("add_transfer: plaintext must be a group element");
  TransferId t = next_transfer_++;
  elgamal::Ciphertext ea_m = cfg_->a.encryption_key.encrypt(m, setup_rng_);
  for (ProtocolServer* s : a_servers_) {
    if (when == 0) {
      s->store_secret(t, ea_m);
    } else {
      s->store_secret_at(t, ea_m, when);
    }
  }
  // Standby servers register too: if a reconfiguration adopts one, its
  // install cascade arms result pulls for every known transfer, so joiners
  // converge on results that completed before they held a share.
  for (const BFamilyEntry& e : b_family_) e.server->register_transfer(t);
  transfers_.push_back(t);
  plaintexts_[t] = m;
  return t;
}

TransferId System::add_transfer_arriving(const mpz::Bigint& m, net::Time when) {
  if (when == 0) return add_transfer(m);
  if (!cfg_->params.in_group(m) || cfg_->params.is_identity(m))
    throw std::invalid_argument("add_transfer: plaintext must be a group element");
  TransferId t = next_transfer_++;
  elgamal::Ciphertext ea_m = cfg_->a.encryption_key.encrypt(m, setup_rng_);
  for (ProtocolServer* s : a_servers_) s->store_secret_at(t, ea_m, when);
  // B servers learn of the transfer only when its arrival timer fires, so the
  // admission engine sees a true open-loop arrival process rather than a
  // pre-registered batch.
  for (const BFamilyEntry& e : b_family_) e.server->register_transfer_arriving(t, when);
  transfers_.push_back(t);
  plaintexts_[t] = m;
  return t;
}

bool System::is_honest_b(ServerRank rank) const {
  if (rank <= opts_.b_behaviors.size() &&
      opts_.b_behaviors[rank - 1] != ProtocolServer::Behavior::kHonest)
    return false;
  return !sim_->crashed(cfg_->b.node_of(rank));
}

bool System::run_to_completion(std::uint64_t max_events) {
  // Roster-aware completeness: only CURRENT roster members are obligated to
  // hold results — retired or not-yet-adopted servers stop receiving done
  // broadcasts when an epochal reconfiguration changes the roster. Without
  // churn this degenerates to the classic "every honest B server" check.
  auto complete = [&] {
    bool any_active = false;
    for (const BFamilyEntry& e : b_family_) {
      if (!e.honest || sim_->crashed(e.node)) continue;
      if (e.server->rank() == 0 || e.server->share_pending()) continue;
      any_active = true;
      for (TransferId t : transfers_) {
        if (!e.server->result(t)) return false;
      }
    }
    return any_active;
  };
  return sim_->run_until(complete, max_events);
}

std::optional<elgamal::Ciphertext> System::result(TransferId t, ServerRank rank) {
  return b_servers_.at(rank - 1)->result(t);
}

mpz::Bigint System::oracle_decrypt_b(const elgamal::Ciphertext& c) const {
  return elgamal::KeyPair::from_private(cfg_->params, b_private_key_).decrypt(c);
}

mpz::Bigint System::oracle_decrypt_a(const elgamal::Ciphertext& c) const {
  return elgamal::KeyPair::from_private(cfg_->params, a_private_key_).decrypt(c);
}

std::map<MsgType, std::uint64_t> System::rx_histogram() const {
  std::map<MsgType, std::uint64_t> out;
  for (const auto& servers : {a_servers_, b_servers_}) {
    for (const ProtocolServer* s : servers) {
      for (const auto& [type, count] : s->rx_histogram()) out[type] += count;
    }
  }
  return out;
}

double System::service_cpu_seconds(ServiceRole role) const {
  double total = 0;
  const auto& servers = role == ServiceRole::kServiceA ? a_servers_ : b_servers_;
  for (const ProtocolServer* s : servers) total += s->cpu_seconds();
  return total;
}

}  // namespace dblind::core
