#include "core/validity.hpp"

#include <deque>
#include <set>

namespace dblind::core {

namespace {

// Decodes an envelope body as T (with tag `type`); nullopt on any codec error.
template <typename T>
std::optional<T> try_decode(MsgType type, std::span<const std::uint8_t> body) {
  try {
    return decode_as<T>(type, body);
  } catch (const CodecError&) {
    return std::nullopt;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

}  // namespace

std::vector<std::uint8_t> epoch_signed_bytes(ConfigEpoch epoch,
                                             std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + body.size());
  out.push_back(static_cast<std::uint8_t>(epoch & 0xff));
  out.push_back(static_cast<std::uint8_t>((epoch >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((epoch >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((epoch >> 24) & 0xff));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

bool envelope_signature_ok(const SystemConfig& cfg, const SignedMessage& env) {
  if (env.service > 1) return false;
  const ServicePublic& svc = cfg.service(static_cast<ServiceRole>(env.service));
  if (env.signer == 0 || env.signer > svc.cfg.n) return false;
  return svc.server_key(env.signer).verify(epoch_signed_bytes(env.cfg_epoch, env.body), env.sig);
}

SignedMessage make_envelope(const SystemConfig& cfg, const ServerSecrets& me,
                            std::vector<std::uint8_t> body, ConfigEpoch cfg_epoch,
                            mpz::Prng& prng) {
  zkp::SchnorrSigningKey key =
      zkp::SchnorrSigningKey::from_private(cfg.params, me.server_sign_secret);
  SignedMessage env;
  env.service = static_cast<std::uint8_t>(me.role);
  env.signer = me.rank;
  env.cfg_epoch = cfg_epoch;
  env.sig = key.sign(epoch_signed_bytes(cfg_epoch, body), prng);
  env.body = std::move(body);
  return env;
}

std::optional<InitMsg> check_init(const SystemConfig& cfg, const SignedMessage& env) {
  if (!envelope_signature_ok(cfg, env)) return std::nullopt;
  auto msg = try_decode<InitMsg>(MsgType::kInit, env.body);
  if (!msg) return std::nullopt;
  // The init message is the coordinator announcing its own instance.
  if (env.service != static_cast<std::uint8_t>(ServiceRole::kServiceB)) return std::nullopt;
  if (env.signer != msg->id.coordinator) return std::nullopt;
  return msg;
}

std::optional<CommitMsg> check_commit(const SystemConfig& cfg, const SignedMessage& env) {
  if (!envelope_signature_ok(cfg, env)) return std::nullopt;
  auto msg = try_decode<CommitMsg>(MsgType::kCommit, env.body);
  if (!msg) return std::nullopt;
  if (env.service != static_cast<std::uint8_t>(ServiceRole::kServiceB)) return std::nullopt;
  if (env.signer != msg->server) return std::nullopt;
  return msg;
}

std::optional<RevealMsg> check_reveal(const SystemConfig& cfg, const SignedMessage& env) {
  if (!envelope_signature_ok(cfg, env)) return std::nullopt;
  auto msg = try_decode<RevealMsg>(MsgType::kReveal, env.body);
  if (!msg) return std::nullopt;
  if (env.service != static_cast<std::uint8_t>(ServiceRole::kServiceB)) return std::nullopt;
  if (env.signer != msg->id.coordinator) return std::nullopt;
  // (ii) a set M of 2f+1 different valid commit messages with matching id.
  const std::size_t need = 2 * cfg.b.cfg.f + 1;
  if (msg->commits.size() != need) return std::nullopt;
  std::set<ServerRank> seen;
  for (const SignedMessage& commit_env : msg->commits) {
    // I6: the commit set justifying a reveal must come from the reveal's own
    // configuration epoch — no splicing evidence across reconfigurations.
    if (commit_env.cfg_epoch != env.cfg_epoch) return std::nullopt;
    auto commit = check_commit(cfg, commit_env);
    if (!commit) return std::nullopt;
    if (commit->id != msg->id) return std::nullopt;
    if (!seen.insert(commit->server).second) return std::nullopt;  // must be different servers
  }
  return msg;
}

std::optional<ContributeMsg> check_contribute(const SystemConfig& cfg, const SignedMessage& env) {
  if (!envelope_signature_ok(cfg, env)) return std::nullopt;
  auto msg = try_decode<ContributeMsg>(MsgType::kContribute, env.body);
  if (!msg) return std::nullopt;
  if (env.service != static_cast<std::uint8_t>(ServiceRole::kServiceB)) return std::nullopt;
  if (env.signer != msg->server) return std::nullopt;

  // I6: the embedded reveal must be from the contribute's own config epoch.
  if (msg->reveal.cfg_epoch != env.cfg_epoch) return std::nullopt;

  // (iii) the encrypted contribution corresponds to the commitment in the
  // included reveal message (which must itself be valid, with matching id).
  auto reveal = check_reveal(cfg, msg->reveal);
  if (!reveal || reveal->id != msg->id) return std::nullopt;
  bool committed = false;
  for (const SignedMessage& commit_env : reveal->commits) {
    auto commit = try_decode<CommitMsg>(MsgType::kCommit, commit_env.body);
    if (commit && commit->server == msg->server) {
      committed = commit->commitment == msg->contribution.commitment_digest();
      break;
    }
  }
  if (!committed) return std::nullopt;

  // (ii) valid verifiable dual encryption proof, bound to (instance, server).
  if (!zkp::vde_verify(cfg.a.encryption_key, msg->contribution.ea, cfg.b.encryption_key,
                       msg->contribution.eb, msg->vde, vde_context(msg->id, msg->server)))
    return std::nullopt;
  return msg;
}

std::optional<BlindPayload> check_blind(const SystemConfig& cfg, const ServiceSignedMsg& msg) {
  if (msg.service != static_cast<std::uint8_t>(ServiceRole::kServiceB)) return std::nullopt;
  if (!cfg.b.signing_key.verify(msg.body, msg.sig)) return std::nullopt;
  return try_decode<BlindPayload>(MsgType::kBlind, msg.body);
}

std::optional<DonePayload> check_done(const SystemConfig& cfg, const ServiceSignedMsg& msg) {
  if (msg.service != static_cast<std::uint8_t>(ServiceRole::kServiceA)) return std::nullopt;
  if (!cfg.a.signing_key.verify(msg.body, msg.sig)) return std::nullopt;
  return try_decode<DonePayload>(MsgType::kDone, msg.body);
}

bool check_blind_sign_request(const SystemConfig& cfg, std::span<const std::uint8_t> payload,
                              std::span<const std::uint8_t> evidence) {
  auto blind = [&]() -> std::optional<BlindPayload> {
    return try_decode<BlindPayload>(MsgType::kBlind, payload);
  }();
  if (!blind) return false;
  BlindEvidence ev;
  try {
    Reader r(evidence);
    ev = BlindEvidence::decode(r);
    r.expect_done();
  } catch (const CodecError&) {
    return false;
  }

  // f+1 valid contribute messages, distinct servers, same id, same reveal.
  if (ev.contributes.size() != cfg.b.cfg.quorum()) return false;
  std::set<ServerRank> servers;
  std::vector<elgamal::Ciphertext> eas, ebs;
  const SignedMessage* reveal = nullptr;
  for (const SignedMessage& env : ev.contributes) {
    // I6: the f+1 contributions must all be stamped with one config epoch.
    if (env.cfg_epoch != ev.contributes.front().cfg_epoch) return false;
    auto c = check_contribute(cfg, env);
    if (!c) return false;
    if (c->id != blind->id) return false;
    if (!servers.insert(c->server).second) return false;
    if (reveal == nullptr) {
      reveal = &env;  // remember the first; compare the rest below
    }
    eas.push_back(c->contribution.ea);
    ebs.push_back(c->contribution.eb);
  }
  // Same-reveal rule (see header comment): compare the embedded reveal of
  // every contribute message for byte-for-byte equality.
  std::optional<ContributeMsg> first =
      try_decode<ContributeMsg>(MsgType::kContribute, ev.contributes.front().body);
  if (!first) return false;
  for (const SignedMessage& env : ev.contributes) {
    auto c = try_decode<ContributeMsg>(MsgType::kContribute, env.body);
    if (!c || !(c->reveal == first->reveal)) return false;
  }

  // The payload must be exactly the homomorphic product of the evidence
  // contributions (and non-degenerate, per the ElGamal Multiplication side
  // condition).
  auto ea = cfg.a.encryption_key.product(eas);
  auto eb = cfg.b.encryption_key.product(ebs);
  if (!ea || !eb) return false;
  return *ea == blind->blinded.ea && *eb == blind->blinded.eb;
}

namespace {

using SigBatch = std::vector<zkp::BatchEntry>;

// Owns the epoch-prefixed byte strings referenced (as spans) by SigBatch
// entries. A deque keeps element addresses stable across growth, which the
// spans inside zkp::BatchEntry rely on.
using SignedBytesArena = std::deque<std::vector<std::uint8_t>>;

std::span<const std::uint8_t> arena_signed_bytes(SignedBytesArena& arena, const SignedMessage& env) {
  arena.push_back(epoch_signed_bytes(env.cfg_epoch, env.body));
  return arena.back();
}

// Structural part of check_commit: everything except the envelope signature,
// which is appended to `sigs` for one combined Schnorr batch check.
std::optional<CommitMsg> collect_commit(const SystemConfig& cfg, const SignedMessage& env,
                                        ConfigEpoch expect_epoch, SigBatch& sigs,
                                        SignedBytesArena& arena) {
  if (env.service != static_cast<std::uint8_t>(ServiceRole::kServiceB)) return std::nullopt;
  if (env.signer == 0 || env.signer > cfg.b.cfg.n) return std::nullopt;
  if (env.cfg_epoch != expect_epoch) return std::nullopt;  // I6
  auto msg = try_decode<CommitMsg>(MsgType::kCommit, env.body);
  if (!msg) return std::nullopt;
  if (env.signer != msg->server) return std::nullopt;
  sigs.push_back({&cfg.b.server_key(env.signer), arena_signed_bytes(arena, env), &env.sig});
  return msg;
}

// Structural part of check_reveal; all 2f+2 signatures (the reveal envelope
// plus its commits) go into `sigs`.
std::optional<RevealMsg> collect_reveal(const SystemConfig& cfg, const SignedMessage& env,
                                        ConfigEpoch expect_epoch, SigBatch& sigs,
                                        SignedBytesArena& arena) {
  if (env.service != static_cast<std::uint8_t>(ServiceRole::kServiceB)) return std::nullopt;
  if (env.signer == 0 || env.signer > cfg.b.cfg.n) return std::nullopt;
  if (env.cfg_epoch != expect_epoch) return std::nullopt;  // I6
  auto msg = try_decode<RevealMsg>(MsgType::kReveal, env.body);
  if (!msg) return std::nullopt;
  if (env.signer != msg->id.coordinator) return std::nullopt;
  sigs.push_back({&cfg.b.server_key(env.signer), arena_signed_bytes(arena, env), &env.sig});
  const std::size_t need = 2 * cfg.b.cfg.f + 1;
  if (msg->commits.size() != need) return std::nullopt;
  std::set<ServerRank> seen;
  for (const SignedMessage& commit_env : msg->commits) {
    auto commit = collect_commit(cfg, commit_env, expect_epoch, sigs, arena);
    if (!commit) return std::nullopt;
    if (commit->id != msg->id) return std::nullopt;
    if (!seen.insert(commit->server).second) return std::nullopt;
  }
  return msg;
}

// The commitment-match clause of check_contribute: `server` committed, in the
// (already structurally valid) reveal, to this contribution.
bool commitment_matches(const RevealMsg& reveal, ServerRank server, const ContributeMsg& msg) {
  for (const SignedMessage& commit_env : reveal.commits) {
    auto commit = try_decode<CommitMsg>(MsgType::kCommit, commit_env.body);
    if (commit && commit->server == server)
      return commit->commitment == msg.contribution.commitment_digest();
  }
  return false;
}

}  // namespace

std::optional<ContributeMsg> precheck_contribute_batch(const SystemConfig& cfg,
                                                       const SignedMessage& env) {
  if (env.service != static_cast<std::uint8_t>(ServiceRole::kServiceB)) return std::nullopt;
  if (env.signer == 0 || env.signer > cfg.b.cfg.n) return std::nullopt;
  auto msg = try_decode<ContributeMsg>(MsgType::kContribute, env.body);
  if (!msg) return std::nullopt;
  if (env.signer != msg->server) return std::nullopt;

  SigBatch sigs;
  SignedBytesArena arena;
  sigs.push_back({&cfg.b.server_key(env.signer), arena_signed_bytes(arena, env), &env.sig});
  auto reveal = collect_reveal(cfg, msg->reveal, env.cfg_epoch, sigs, arena);
  if (!reveal || reveal->id != msg->id) return std::nullopt;
  if (!commitment_matches(*reveal, msg->server, *msg)) return std::nullopt;
  if (!zkp::schnorr_batch_verify(cfg.params, sigs)) return std::nullopt;
  return msg;
}

zkp::VdeBatchItem contribute_vde_item(const SystemConfig& cfg, const ContributeMsg& msg) {
  return {&cfg.a.encryption_key, &msg.contribution.ea,
          &cfg.b.encryption_key, &msg.contribution.eb,
          &msg.vde,              vde_context(msg.id, msg.server)};
}

std::optional<ContributeMsg> check_contribute_batch(const SystemConfig& cfg,
                                                    const SignedMessage& env, mpz::Prng& prng) {
  auto msg = precheck_contribute_batch(cfg, env);
  if (!msg) return std::nullopt;
  zkp::VdeBatchItem vde = contribute_vde_item(cfg, *msg);
  if (!zkp::vde_batch_verify(std::span<const zkp::VdeBatchItem>(&vde, 1), prng))
    return std::nullopt;
  return msg;
}

bool check_blind_sign_request_batch(const SystemConfig& cfg, std::span<const std::uint8_t> payload,
                                    std::span<const std::uint8_t> evidence, mpz::Prng& prng) {
  auto blind = try_decode<BlindPayload>(MsgType::kBlind, payload);
  if (!blind) return false;
  BlindEvidence ev;
  try {
    Reader r(evidence);
    ev = BlindEvidence::decode(r);
    r.expect_done();
  } catch (const CodecError&) {
    return false;
  }

  if (ev.contributes.size() != cfg.b.cfg.quorum()) return false;
  SigBatch sigs;
  SignedBytesArena arena;
  std::vector<ContributeMsg> msgs;
  msgs.reserve(ev.contributes.size());
  std::set<ServerRank> servers;
  const ConfigEpoch epoch = ev.contributes.front().cfg_epoch;
  for (const SignedMessage& env : ev.contributes) {
    if (env.service != static_cast<std::uint8_t>(ServiceRole::kServiceB)) return false;
    if (env.signer == 0 || env.signer > cfg.b.cfg.n) return false;
    if (env.cfg_epoch != epoch) return false;  // I6: one config epoch per quorum
    auto c = try_decode<ContributeMsg>(MsgType::kContribute, env.body);
    if (!c) return false;
    if (env.signer != c->server) return false;
    if (c->id != blind->id) return false;
    if (!servers.insert(c->server).second) return false;
    sigs.push_back({&cfg.b.server_key(env.signer), arena_signed_bytes(arena, env), &env.sig});
    msgs.push_back(std::move(*c));
  }

  // Same-reveal rule first: with all embedded reveals byte-identical, the
  // shared reveal (and its 2f+1 commits) needs validating only once — the
  // serial path re-checks it per contribute.
  const ContributeMsg& first = msgs.front();
  for (const ContributeMsg& c : msgs) {
    if (!(c.reveal == first.reveal)) return false;
  }
  auto reveal = collect_reveal(cfg, first.reveal, epoch, sigs, arena);
  if (!reveal || reveal->id != blind->id) return false;
  for (const ContributeMsg& c : msgs) {
    if (!commitment_matches(*reveal, c.server, c)) return false;
  }
  if (!zkp::schnorr_batch_verify(cfg.params, sigs)) return false;

  std::vector<zkp::VdeBatchItem> vdes;
  vdes.reserve(msgs.size());
  for (const ContributeMsg& c : msgs) {
    vdes.push_back({&cfg.a.encryption_key, &c.contribution.ea, &cfg.b.encryption_key,
                    &c.contribution.eb, &c.vde, vde_context(c.id, c.server)});
  }
  if (!zkp::vde_batch_verify(vdes, prng)) return false;

  std::vector<elgamal::Ciphertext> eas, ebs;
  for (const ContributeMsg& c : msgs) {
    eas.push_back(c.contribution.ea);
    ebs.push_back(c.contribution.eb);
  }
  auto ea = cfg.a.encryption_key.product(eas);
  auto eb = cfg.b.encryption_key.product(ebs);
  if (!ea || !eb) return false;
  return *ea == blind->blinded.ea && *eb == blind->blinded.eb;
}

bool check_done_sign_request_batch(const SystemConfig& cfg, std::span<const std::uint8_t> payload,
                                   std::span<const std::uint8_t> evidence,
                                   const elgamal::Ciphertext& stored_ea_m, mpz::Prng& prng) {
  auto done = try_decode<DonePayload>(MsgType::kDone, payload);
  if (!done) return false;
  DoneEvidence ev;
  try {
    Reader r(evidence);
    ev = DoneEvidence::decode(r);
    r.expect_done();
  } catch (const CodecError&) {
    return false;
  }

  auto blind = check_blind(cfg, ev.blind);
  if (!blind || blind->id != done->id) return false;

  auto ea_m_rho = cfg.a.encryption_key.multiply(stored_ea_m, blind->blinded.ea);
  if (!ea_m_rho) return false;

  if (ev.shares.size() != cfg.a.cfg.quorum()) return false;
  std::set<std::uint32_t> seen;
  for (const threshold::DecryptionShare& s : ev.shares) {
    if (!seen.insert(s.index).second) return false;
  }
  if (!threshold::batch_verify_decryption_shares(cfg.params, cfg.a.enc_commitments, *ea_m_rho,
                                                 ev.shares, decrypt_context(done->id), prng))
    return false;
  mpz::Bigint m_rho = threshold::combine_decryption(cfg.params, *ea_m_rho, ev.shares);
  if (m_rho != ev.m_rho) return false;
  if (!cfg.params.in_zp_star(m_rho)) return false;

  if (!(done->ea_m == stored_ea_m)) return false;
  elgamal::Ciphertext expect_eb_m =
      cfg.b.encryption_key.juxtapose(m_rho, cfg.b.encryption_key.inverse(blind->blinded.eb));
  return done->eb_m == expect_eb_m;
}

bool check_done_sign_request(const SystemConfig& cfg, std::span<const std::uint8_t> payload,
                             std::span<const std::uint8_t> evidence,
                             const elgamal::Ciphertext& stored_ea_m) {
  auto done = try_decode<DonePayload>(MsgType::kDone, payload);
  if (!done) return false;
  DoneEvidence ev;
  try {
    Reader r(evidence);
    ev = DoneEvidence::decode(r);
    r.expect_done();
  } catch (const CodecError&) {
    return false;
  }

  auto blind = check_blind(cfg, ev.blind);
  if (!blind || blind->id != done->id) return false;

  // Recompute E_A(mρ) from the locally stored E_A(m) (step 6(a)).
  auto ea_m_rho = cfg.a.encryption_key.multiply(stored_ea_m, blind->blinded.ea);
  if (!ea_m_rho) return false;

  // V^id_mρ: f+1 verified decryption shares combining to mρ (step 6(b)).
  if (ev.shares.size() != cfg.a.cfg.quorum()) return false;
  std::set<std::uint32_t> seen;
  for (const threshold::DecryptionShare& s : ev.shares) {
    if (!seen.insert(s.index).second) return false;
    if (!threshold::verify_decryption_share(cfg.params, cfg.a.enc_commitments, *ea_m_rho, s,
                                            decrypt_context(done->id)))
      return false;
  }
  mpz::Bigint m_rho = threshold::combine_decryption(cfg.params, *ea_m_rho, ev.shares);
  if (m_rho != ev.m_rho) return false;
  if (!cfg.params.in_zp_star(m_rho)) return false;

  // Payload consistency (steps 6(c)/6(d)): E_A(m) is the stored ciphertext
  // and E_B(m) = (mρ)·E_B(ρ)^{-1}.
  if (!(done->ea_m == stored_ea_m)) return false;
  elgamal::Ciphertext expect_eb_m =
      cfg.b.encryption_key.juxtapose(m_rho, cfg.b.encryption_key.inverse(blind->blinded.eb));
  return done->eb_m == expect_eb_m;
}

}  // namespace dblind::core
